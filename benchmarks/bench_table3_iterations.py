"""Table 3 — primary-preconditioner invocations until convergence (CPU track).

For a representative subset of the CPU suite (one matrix per behaviour class),
runs CG or BiCGStab, restarted FGMRES(64), and the three F3R implementations,
and reports the number of invocations of the primary preconditioner M — the
paper's precision-independent convergence metric.

Shape assertions (mirroring the paper's observations):
* the three F3R variants converge within one outer iteration of each other;
* F3R's count is a multiple of m2*m3*m4 = 64;
* on the easy stencil problems the one-preconditioning-per-iteration methods
  (CG / BiCGStab) need fewer invocations than F3R, as in the paper.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table, run_f3r, run_krylov_baseline

from conftest import cached_cpu_preconditioner, cached_problem

#: (matrix, krylov baseline) pairs: CG for symmetric, BiCGStab for non-symmetric
CASES = [
    ("hpcg_7_7_7", "cg"),
    ("G3_circuit", "cg"),
    ("Emilia_923", "cg"),
    ("hpgmp_7_7_7", "bicgstab"),
    ("atmosmodd", "bicgstab"),
]

MAX_BASELINE_ITERS = 3000


def table3_rows() -> list[dict]:
    rows = []
    for name, krylov in CASES:
        problem = cached_problem(name)
        precond = cached_cpu_preconditioner(name)

        baseline = run_krylov_baseline(problem, precond, krylov, "fp64",
                                       max_iterations=MAX_BASELINE_ITERS)
        fgmres = run_krylov_baseline(problem, precond, "fgmres", "fp64",
                                     max_iterations=MAX_BASELINE_ITERS)
        f3r = {variant: run_f3r(problem, precond, variant=variant)
               for variant in ("fp64", "fp32", "fp16")}

        def _count(record):
            return record.preconditioner_applications if record.converged else None

        rows.append({
            "matrix": name,
            "CG/BiCGStab": _count(baseline) or "-",
            "fp64-FGMRES(64)": _count(fgmres) or "-",
            "fp64-F3R": _count(f3r["fp64"]) or "-",
            "fp32-F3R": _count(f3r["fp32"]) or "-",
            "fp16-F3R": _count(f3r["fp16"]) or "-",
        })
    return rows


def _assert_table3_shape(rows: list[dict]) -> None:
    for row in rows:
        counts = {k: v for k, v in row.items() if k != "matrix"}
        # every F3R variant converged on every problem of this subset
        for variant in ("fp64-F3R", "fp32-F3R", "fp16-F3R"):
            assert isinstance(counts[variant], int), f"{variant} failed on {row['matrix']}"
            assert counts[variant] % 64 == 0
        # low precision does not significantly change F3R's convergence
        assert abs(counts["fp16-F3R"] - counts["fp64-F3R"]) <= 64
        assert abs(counts["fp32-F3R"] - counts["fp64-F3R"]) <= 64
        # the stencil problems are "easy": CG/BiCGStab needs fewer invocations
        if row["matrix"].startswith("hpcg") and isinstance(counts["CG/BiCGStab"], int):
            assert counts["CG/BiCGStab"] <= counts["fp16-F3R"]


def test_benchmark_table3(benchmark):
    rows = benchmark.pedantic(table3_rows, rounds=1, iterations=1)
    _assert_table3_shape(rows)
    print()
    print(format_table(rows, title="Table 3: preconditioner invocations until convergence"))

"""Figure 1 — modeled performance relative to fp64-F3R on the CPU node.

For symmetric and non-symmetric subsets, runs the three F3R implementations
plus the fp64/fp16 CG-or-BiCGStab and FGMRES(64) baselines with the CPU-node
machine model, and prints each solver's speedup over the fp64-F3R baseline,
exactly in the layout of Figure 1's bars.

Shape assertions (the paper's Fig. 1 findings), checked on the problems whose
iteration counts are comparable across precisions (at reproduction scale the
easy stencil problems converge within a single outermost iteration, which
makes their per-problem speedups a granularity artifact — see EXPERIMENTS.md):

* fp32-F3R is faster than fp64-F3R and fp16-F3R is faster than fp32-F3R;
* the fp16-F3R speedup lands in the paper's band (roughly 1.5x-2.5x);
* every F3R variant converges on every problem of the subset.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table, geometric_mean, run_f3r, run_krylov_baseline
from repro.perf import CPU_NODE

from conftest import cached_cpu_preconditioner, cached_problem

#: hard SPD problems (thousands of preconditionings in the paper)
SYMMETRIC = ["Emilia_923", "audikw_1", "hpcg_7_7_7"]
#: hard non-symmetric + one easy stencil problem
NONSYMMETRIC = ["vas_stokes_1M", "hpgmp_7_7_7"]

MAX_BASELINE_ITERS = 3000


def _records_for(name: str) -> dict[str, object]:
    problem = cached_problem(name)
    precond = cached_cpu_preconditioner(name)
    krylov = "cg" if problem.symmetric else "bicgstab"

    records = {}
    for variant in ("fp64", "fp32", "fp16"):
        records[f"{variant}-F3R"] = run_f3r(problem, precond, variant=variant,
                                            machine=CPU_NODE)
    for storage in ("fp64", "fp16"):
        records[f"{storage}-{'CG' if krylov == 'cg' else 'BiCGStab'}"] = \
            run_krylov_baseline(problem, precond, krylov, storage,
                                machine=CPU_NODE, max_iterations=MAX_BASELINE_ITERS)
        records[f"{storage}-FGMRES(64)"] = \
            run_krylov_baseline(problem, precond, "fgmres", storage,
                                machine=CPU_NODE, max_iterations=MAX_BASELINE_ITERS)
    return records


def figure1_rows(names: list[str]) -> list[dict]:
    rows = []
    for name in names:
        records = _records_for(name)
        base = records["fp64-F3R"]
        row = {"matrix": name, "_apps": {k: r.preconditioner_applications
                                         for k, r in records.items()}}
        for solver, record in records.items():
            if record.converged and base.converged and record.modeled_time > 0:
                row[solver] = base.modeled_time / record.modeled_time
            else:
                row[solver] = float("nan")
        rows.append(row)
    return rows


def _comparable(row: dict) -> bool:
    """Iteration counts of the three F3R variants agree (same outer iterations)."""
    apps = row["_apps"]
    return apps["fp64-F3R"] == apps["fp32-F3R"] == apps["fp16-F3R"]


def _assert_fig1_shape(rows: list[dict]) -> None:
    comparable = [row for row in rows if _comparable(row)]
    assert comparable, "no problem had matching F3R iteration counts"
    for row in rows:
        assert row["fp64-F3R"] == pytest.approx(1.0)
        assert row["fp16-F3R"] == row["fp16-F3R"], f"fp16-F3R failed on {row['matrix']}"
    for row in comparable:
        assert row["fp32-F3R"] > 1.0, row["matrix"]
        assert row["fp16-F3R"] > row["fp32-F3R"], row["matrix"]
    gmean = geometric_mean([row["fp16-F3R"] for row in comparable])
    assert 1.3 < gmean < 3.0, f"fp16-F3R geometric-mean speedup {gmean:.2f} out of band"


def _run_and_report() -> list[dict]:
    rows = figure1_rows(SYMMETRIC) + figure1_rows(NONSYMMETRIC)
    display = [{k: v for k, v in row.items() if k != "_apps"} for row in rows]
    print()
    print(format_table(display,
                       title="Figure 1: modeled speedup over fp64-F3R (CPU node)",
                       float_fmt="{:.2f}"))
    comparable = [row["fp16-F3R"] for row in rows if _comparable(row)]
    print(f"\nfp16-F3R geometric-mean speedup over fp64-F3R "
          f"(iteration-matched problems): {geometric_mean(comparable):.2f}x "
          f"(paper: 1.59x-2.42x, average 1.87x on CPU)")
    return rows


def test_benchmark_figure1_cpu(benchmark):
    rows = benchmark.pedantic(_run_and_report, rounds=1, iterations=1)
    _assert_fig1_shape(rows)

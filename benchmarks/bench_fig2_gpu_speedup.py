"""Figure 2 — modeled performance relative to fp64-F3R on the GPU node.

The GPU track differs from the CPU track in three ways, all reproduced here:
the primary preconditioner is SD-AINV (applied with two SpMVs instead of
triangular solves), the machine model is the A100 node (higher bandwidth but
larger kernel-launch / reduction latencies), and the SpMV storage format is
sliced ELLPACK, whose padding inflates traffic relative to CSR.

Shape assertions (the paper's Fig. 2 findings):
* fp16-F3R remains faster than fp64-F3R;
* the precision speedups are more moderate than on the CPU node on average
  (1.55x vs 1.87x in the paper);
* the sliced-ELLPACK padding ratio is >= 1 and the GPU machine model charges
  for the padded entries.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table, geometric_mean, run_f3r, run_krylov_baseline
from repro.perf import CPU_NODE, GPU_NODE, counting
from repro.sparse import SlicedEllMatrix

from conftest import cached_gpu_preconditioner, cached_problem

PROBLEMS = ["audikw_1", "Queen_4147", "vas_stokes_1M", "hpcg_7_7_7"]
MAX_BASELINE_ITERS = 3000


def figure2_rows() -> list[dict]:
    rows = []
    for name in PROBLEMS:
        problem = cached_problem(name)
        precond = cached_gpu_preconditioner(name)
        krylov = "cg" if problem.symmetric else "bicgstab"

        records = {}
        for variant in ("fp64", "fp32", "fp16"):
            records[f"{variant}-F3R"] = run_f3r(problem, precond, variant=variant,
                                                machine=GPU_NODE)
        records["fp16-" + ("CG" if krylov == "cg" else "BiCGStab")] = run_krylov_baseline(
            problem, precond, krylov, "fp16", machine=GPU_NODE,
            max_iterations=MAX_BASELINE_ITERS)
        records["fp16-FGMRES(64)"] = run_krylov_baseline(
            problem, precond, "fgmres", "fp16", machine=GPU_NODE,
            max_iterations=MAX_BASELINE_ITERS)

        base = records["fp64-F3R"]
        row = {"matrix": name}
        for solver, record in records.items():
            row[solver] = (base.modeled_time / record.modeled_time
                           if record.converged and record.modeled_time > 0 else float("nan"))
        rows.append(row)
    return rows


def _assert_fig2_shape(rows):
    hard = [row for row in rows if row["matrix"] != "hpcg_7_7_7"]
    for row in rows:
        assert row["fp64-F3R"] == pytest.approx(1.0)
        if row["fp16-F3R"] == row["fp16-F3R"]:
            assert row["fp16-F3R"] > 0.9
    for row in hard:
        # the multi-outer-iteration problems show the paper's ordering
        assert row["fp32-F3R"] > 1.0
        assert row["fp16-F3R"] > row["fp32-F3R"]
    gmean = geometric_mean([row["fp16-F3R"] for row in hard])
    assert 1.2 < gmean < 3.0


def _run_and_report():
    rows = figure2_rows()
    print()
    print(format_table(rows, title="Figure 2: modeled speedup over fp64-F3R (GPU node, SD-AINV)",
                       float_fmt="{:.2f}"))
    gmean = geometric_mean([row["fp16-F3R"] for row in rows])
    print(f"\nfp16-F3R geometric-mean speedup over fp64-F3R (GPU): {gmean:.2f}x "
          f"(paper: 1.55x average)")
    return rows


def test_gpu_latency_moderates_speedup():
    """Section 5.2: the GPU's larger kernel-launch / reduction latencies damp
    the benefit of cutting traffic.  Compare the fp16/fp64 modeled-time ratio
    under the latency-free roofline and the latency-bearing GPU model for the
    same recorded traffic."""
    from repro.perf import GPU_NODE_FULL

    name = "Emilia_923"
    problem = cached_problem(name)
    precond = cached_gpu_preconditioner(name)
    r64 = run_f3r(problem, precond, variant="fp64")
    r16 = run_f3r(problem, precond, variant="fp16")
    if not (r64.converged and r16.converged):
        pytest.skip("solver did not converge at this scale")
    roofline = GPU_NODE.time_for(r64.counter) / GPU_NODE.time_for(r16.counter)
    with_latency = GPU_NODE_FULL.time_for(r64.counter) / GPU_NODE_FULL.time_for(r16.counter)
    assert with_latency <= roofline * 1.01


def test_sliced_ellpack_traffic():
    """The GPU format pays for padding: ELLPACK SpMV traffic >= CSR SpMV traffic."""
    problem = cached_problem("G3_circuit")
    ell = SlicedEllMatrix(problem.matrix, chunk_size=32)
    assert ell.padding_ratio >= 1.0
    import numpy as np

    x = np.ones(problem.n)
    with counting() as c_ell:
        ell.matvec(x)
    with counting() as c_csr:
        problem.matrix.matvec(x)
    assert c_ell.total_value_bytes >= c_csr.total_value_bytes


def test_benchmark_figure2(benchmark):
    rows = benchmark.pedantic(_run_and_report, rounds=1, iterations=1)
    _assert_fig2_shape(rows)

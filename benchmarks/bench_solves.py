"""End-to-end solve benchmarks: compiled plans vs the legacy unplanned path.

Times warm, steady-state fp16-F3R solves on the two acceptance problems of
the solve-plan layer —

* the HPCG 27-point **matrix-free stencil** at ``grid³`` (64³ at full
  scale), preconditioned with the Jacobi fallback, and
* a **mid-size assembled** 2-D Poisson system with block-IC(0)
  (``nblocks=16``, the paper's thread-per-block configuration),

once with the plan layer + staged-fp16 kernels active (the default) and once
with both disabled (``REPRO_PLANS=0`` semantics — the pre-plan execution
path, kept in the solvers precisely so this comparison stays honest).  Both
paths produce bit-identical results; the report records the per-problem
steady-state speedup and writes ``BENCH_solves.json``.

Not collected by pytest; run directly or via make:

    PYTHONPATH=src python benchmarks/bench_solves.py --scale smoke --check
    PYTHONPATH=src python benchmarks/bench_solves.py --scale full \
        --require-speedup 1.3

``--check`` compares speedups against the committed baseline
(``BENCH_solves_baseline.json``) and fails on a >2x regression;
``--require-speedup X`` enforces an absolute floor on every problem's
planned-over-legacy speedup (the solve-plan issue's acceptance criterion).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.backends import halfvec
from repro.core import F3RConfig, F3RSolver
from repro.matgen import hpcg_operator, poisson2d
from repro.plans import use_plans

#: per-scale problem sizes: (stencil grid side, poisson grid side, repeats)
SCALES = {
    "smoke": {"stencil_grid": 24, "poisson_side": 120, "repeats": 2},
    "full": {"stencil_grid": 64, "poisson_side": 300, "repeats": 2},
}

#: blocks of the assembled problem's block-IC(0) preconditioner
NBLOCKS = 16

BASELINE_PATH = Path(__file__).parent / "BENCH_solves_baseline.json"
OUTPUT_PATH = Path(__file__).parent / "BENCH_solves.json"


def _steady_state_solve(solver, b, repeats: int):
    """Best warm-solve wall time (plans/arenas/casts warmed beforehand)."""
    solver.solve(b)
    solver.solve(b)
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = solver.solve(b)
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_problem(name: str, matrix, b, repeats: int, **solver_kwargs) -> dict:
    config = F3RConfig(variant="fp16", backend="fast")

    with use_plans(False):
        staged = halfvec.set_staged_half(False)
        try:
            legacy_solver = F3RSolver(matrix, preconditioner="auto",
                                      config=config, **solver_kwargs)
            legacy_s, legacy_result = _steady_state_solve(legacy_solver, b,
                                                          repeats)
        finally:
            halfvec.set_staged_half(staged)

    with use_plans(True):
        planned_solver = F3RSolver(matrix, preconditioner="auto",
                                   config=config, **solver_kwargs)
        planned_s, planned_result = _steady_state_solve(planned_solver, b,
                                                        repeats)

    # the headline contract: the planned path changes nothing observable —
    # a bit-level divergence fails the benchmark outright
    assert planned_result.iterations == legacy_result.iterations, \
        f"{name}: planned and legacy solves diverged (iteration counts)"
    assert np.array_equal(planned_result.x, legacy_result.x), \
        f"{name}: planned and legacy solves are not bit-identical"
    return {
        "n": matrix.nrows,
        "legacy_s": legacy_s,
        "planned_s": planned_s,
        "speedup": round(legacy_s / planned_s if planned_s > 0 else float("inf"), 3),
        "converged": bool(planned_result.converged),
        "iterations": int(planned_result.iterations),
        "identical_results": True,
    }


def run(scale: str) -> dict:
    params = SCALES[scale]
    rng = np.random.default_rng(42)

    stencil = hpcg_operator(params["stencil_grid"])
    b1 = rng.uniform(-1.0, 1.0, stencil.nrows)
    assembled = poisson2d(params["poisson_side"])
    b2 = rng.uniform(-1.0, 1.0, assembled.nrows)

    problems = {
        f"f3r_stencil_{params['stencil_grid']}^3":
            bench_problem("stencil", stencil, b1, params["repeats"]),
        f"f3r_assembled_poisson_{params['poisson_side']}^2":
            bench_problem("assembled", assembled, b2, params["repeats"],
                          nblocks=NBLOCKS),
    }
    return {"scale": scale, "nblocks": NBLOCKS, "problems": problems}


def check_regressions(report: dict, baseline: dict, factor: float = 2.0) -> list[str]:
    failures = []
    if baseline.get("scale") != report.get("scale"):
        return [f"baseline mismatch: scale={baseline.get('scale')!r} vs "
                f"current {report.get('scale')!r}; regenerate with "
                f"--write-baseline"]
    for name, base in baseline.get("problems", {}).items():
        current = report.get("problems", {}).get(name)
        if current is None:
            failures.append(f"{name}: missing from current run")
            continue
        floor = base["speedup"] / factor
        if current["speedup"] < floor:
            failures.append(f"{name}: speedup {current['speedup']:.2f}x < "
                            f"{floor:.2f}x (baseline {base['speedup']:.2f}x "
                            f"/ {factor:g})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--json", type=Path, default=OUTPUT_PATH)
    parser.add_argument("--check", action="store_true",
                        help="fail on >2x speedup regression vs the baseline")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    parser.add_argument("--require-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless every problem's planned-over-legacy "
                             "speedup is >= X")
    parser.add_argument("--write-baseline", action="store_true")
    args = parser.parse_args(argv)

    report = run(args.scale)

    print(f"end-to-end solve benchmarks — scale={args.scale} "
          f"(fp16-F3R, fast backend, warm plan cache)")
    for name, row in report["problems"].items():
        print(f"  {name:<32} legacy {row['legacy_s']:8.3f}s   "
              f"planned {row['planned_s']:8.3f}s   speedup {row['speedup']:5.2f}x"
              f"   identical={row['identical_results']}")

    args.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.json}")
    if args.write_baseline:
        args.baseline.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote baseline {args.baseline}")

    status = 0
    if args.check:
        if not args.baseline.exists():
            print(f"no baseline at {args.baseline}; run with --write-baseline "
                  "first", file=sys.stderr)
            return 2
        failures = check_regressions(report, json.loads(args.baseline.read_text()))
        if failures:
            print("REGRESSIONS:\n  " + "\n  ".join(failures), file=sys.stderr)
            status = 1
        else:
            print("no speedup regressions vs baseline")
    if args.require_speedup is not None:
        for name, row in report["problems"].items():
            if row["speedup"] < args.require_speedup:
                print(f"REQUIREMENT FAILED: {name} speedup "
                      f"{row['speedup']:.2f}x < {args.require_speedup:g}x",
                      file=sys.stderr)
                status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())

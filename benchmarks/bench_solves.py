"""End-to-end solve benchmarks: compiled plans vs the legacy unplanned path.

Times warm, steady-state fp16-F3R solves on the two acceptance problems of
the solve-plan layer —

* the HPCG 27-point **matrix-free stencil** at ``grid³`` (64³ at full
  scale), preconditioned with the Jacobi fallback, and
* a **mid-size assembled** 2-D Poisson system with block-IC(0)
  (``nblocks=16``, the paper's thread-per-block configuration),

once with the plan layer + staged-fp16 kernels active (the default) and once
with both disabled (``REPRO_PLANS=0`` semantics — the pre-plan execution
path, kept in the solvers precisely so this comparison stays honest).  Both
paths produce bit-identical results; the report records the per-problem
steady-state speedup and writes ``BENCH_solves.json``.

Not collected by pytest; run directly or via make:

    PYTHONPATH=src python benchmarks/bench_solves.py --scale smoke --check
    PYTHONPATH=src python benchmarks/bench_solves.py --scale full \
        --require-speedup 1.3

``--check`` compares speedups against the committed baseline
(``BENCH_solves_baseline.json``) and fails on a >2x regression;
``--require-speedup X`` enforces an absolute floor on every problem's
planned-over-legacy speedup (the solve-plan issue's acceptance criterion).

``--threads-sweep`` instead times warm solves across ``REPRO_THREADS`` in
{1, 2, 4} (and the core count when larger), verifies every thread count's
result is **bit-identical** to the serial solve, and writes
``BENCH_solves_threads.json``; ``--check-threads`` compares against the
committed ``BENCH_solves_threads_baseline.json`` (baselines are
machine-dependent — regenerate with ``--write-baseline`` on the target
host; on a single-core host the sweep still gates bit-identity while the
speedups sit at ~1x), and ``--require-parallel-speedup X`` enforces the
multicore issue's acceptance floor (≥1.5x warm-solve throughput at ≥4
threads) where the hardware can express it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro import par
from repro.backends import halfvec
from repro.core import F3RConfig, F3RSolver
from repro.matgen import hpcg_operator, poisson2d
from repro.plans import clear_plan_cache, use_plans
from repro.plans.autotune import clear_autotune_cache

#: per-scale problem sizes: (stencil grid side, poisson grid side, repeats)
SCALES = {
    "smoke": {"stencil_grid": 24, "poisson_side": 120, "repeats": 2},
    "full": {"stencil_grid": 64, "poisson_side": 300, "repeats": 2},
}

#: blocks of the assembled problem's block-IC(0) preconditioner
NBLOCKS = 16

BASELINE_PATH = Path(__file__).parent / "BENCH_solves_baseline.json"
OUTPUT_PATH = Path(__file__).parent / "BENCH_solves.json"
THREADS_BASELINE_PATH = Path(__file__).parent / "BENCH_solves_threads_baseline.json"
THREADS_OUTPUT_PATH = Path(__file__).parent / "BENCH_solves_threads.json"


def _steady_state_solve(solver, b, repeats: int):
    """Best warm-solve wall time (plans/arenas/casts warmed beforehand)."""
    solver.solve(b)
    solver.solve(b)
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = solver.solve(b)
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_problem(name: str, matrix, b, repeats: int, **solver_kwargs) -> dict:
    config = F3RConfig(variant="fp16", backend="fast")

    with use_plans(False):
        staged = halfvec.set_staged_half(False)
        try:
            legacy_solver = F3RSolver(matrix, preconditioner="auto",
                                      config=config, **solver_kwargs)
            legacy_s, legacy_result = _steady_state_solve(legacy_solver, b,
                                                          repeats)
        finally:
            halfvec.set_staged_half(staged)

    with use_plans(True):
        planned_solver = F3RSolver(matrix, preconditioner="auto",
                                   config=config, **solver_kwargs)
        planned_s, planned_result = _steady_state_solve(planned_solver, b,
                                                        repeats)

    # the headline contract: the planned path changes nothing observable —
    # a bit-level divergence fails the benchmark outright
    assert planned_result.iterations == legacy_result.iterations, \
        f"{name}: planned and legacy solves diverged (iteration counts)"
    assert np.array_equal(planned_result.x, legacy_result.x), \
        f"{name}: planned and legacy solves are not bit-identical"
    return {
        "n": matrix.nrows,
        "legacy_s": legacy_s,
        "planned_s": planned_s,
        "speedup": round(legacy_s / planned_s if planned_s > 0 else float("inf"), 3),
        "converged": bool(planned_result.converged),
        "iterations": int(planned_result.iterations),
        "identical_results": True,
    }


def run(scale: str) -> dict:
    params = SCALES[scale]
    rng = np.random.default_rng(42)

    stencil = hpcg_operator(params["stencil_grid"])
    b1 = rng.uniform(-1.0, 1.0, stencil.nrows)
    assembled = poisson2d(params["poisson_side"])
    b2 = rng.uniform(-1.0, 1.0, assembled.nrows)

    problems = {
        f"f3r_stencil_{params['stencil_grid']}^3":
            bench_problem("stencil", stencil, b1, params["repeats"]),
        f"f3r_assembled_poisson_{params['poisson_side']}^2":
            bench_problem("assembled", assembled, b2, params["repeats"],
                          nblocks=NBLOCKS),
    }
    return {"scale": scale, "nblocks": NBLOCKS, "problems": problems}


def _sweep_thread_counts() -> list[int]:
    counts = [1, 2, 4]
    cores = os.cpu_count() or 1
    if cores > 4:
        counts.append(cores)
    return counts


def bench_problem_threads(name: str, matrix, b, repeats: int,
                          **solver_kwargs) -> dict:
    """Warm fp16-F3R solve throughput across thread counts, bit-identity gated.

    Each thread count gets a fresh solver (the adaptive Richardson weights
    carry state across invocations) and a fresh plan/autotune cache so the
    per-budget thread verdicts are re-measured; results must be
    bit-identical to the 1-thread run — the determinism half of the
    multicore acceptance criterion.
    """
    rows = {}
    reference = None
    for threads in _sweep_thread_counts():
        clear_plan_cache()
        clear_autotune_cache()
        with par.use_threads(threads):
            config = F3RConfig(variant="fp16", backend="fast")
            solver = F3RSolver(matrix, preconditioner="auto", config=config,
                               **solver_kwargs)
            seconds, result = _steady_state_solve(solver, b, repeats)
        if reference is None:
            reference = result
        assert np.array_equal(result.x, reference.x), \
            f"{name}: REPRO_THREADS={threads} diverged from the serial solve"
        rows[str(threads)] = {
            "solve_s": seconds,
            "speedup_vs_1": round(rows["1"]["solve_s"] / seconds, 3)
            if rows else 1.0,
        }
    clear_plan_cache()
    clear_autotune_cache()
    return {"n": matrix.nrows, "threads": rows,
            "identical_results": True,
            "best_speedup": max(r["speedup_vs_1"] for r in rows.values())}


def run_threads_sweep(scale: str) -> dict:
    params = SCALES[scale]
    rng = np.random.default_rng(42)
    stencil = hpcg_operator(params["stencil_grid"])
    b1 = rng.uniform(-1.0, 1.0, stencil.nrows)
    assembled = poisson2d(params["poisson_side"])
    b2 = rng.uniform(-1.0, 1.0, assembled.nrows)
    problems = {
        f"f3r_stencil_{params['stencil_grid']}^3":
            bench_problem_threads("stencil", stencil, b1, params["repeats"]),
        f"f3r_assembled_poisson_{params['poisson_side']}^2":
            bench_problem_threads("assembled", assembled, b2,
                                  params["repeats"], nblocks=NBLOCKS),
    }
    return {"scale": scale, "nblocks": NBLOCKS, "cores": os.cpu_count(),
            "thread_counts": _sweep_thread_counts(), "problems": problems}


def check_thread_regressions(report: dict, baseline: dict,
                             factor: float = 2.0) -> list[str]:
    failures = []
    if baseline.get("scale") != report.get("scale"):
        return [f"threads baseline mismatch: scale={baseline.get('scale')!r} "
                f"vs current {report.get('scale')!r}; regenerate with "
                f"--write-baseline"]
    for name, base in baseline.get("problems", {}).items():
        current = report.get("problems", {}).get(name)
        if current is None:
            failures.append(f"{name}: missing from current run")
            continue
        if not current.get("identical_results"):
            failures.append(f"{name}: thread sweep results not bit-identical")
        floor = base["best_speedup"] / factor
        if current["best_speedup"] < floor:
            failures.append(f"{name}: best thread speedup "
                            f"{current['best_speedup']:.2f}x < {floor:.2f}x "
                            f"(baseline {base['best_speedup']:.2f}x / {factor:g})")
    return failures


def check_regressions(report: dict, baseline: dict, factor: float = 2.0) -> list[str]:
    failures = []
    if baseline.get("scale") != report.get("scale"):
        return [f"baseline mismatch: scale={baseline.get('scale')!r} vs "
                f"current {report.get('scale')!r}; regenerate with "
                f"--write-baseline"]
    for name, base in baseline.get("problems", {}).items():
        current = report.get("problems", {}).get(name)
        if current is None:
            failures.append(f"{name}: missing from current run")
            continue
        floor = base["speedup"] / factor
        if current["speedup"] < floor:
            failures.append(f"{name}: speedup {current['speedup']:.2f}x < "
                            f"{floor:.2f}x (baseline {base['speedup']:.2f}x "
                            f"/ {factor:g})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--json", type=Path, default=OUTPUT_PATH)
    parser.add_argument("--check", action="store_true",
                        help="fail on >2x speedup regression vs the baseline")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    parser.add_argument("--require-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless every problem's planned-over-legacy "
                             "speedup is >= X")
    parser.add_argument("--write-baseline", action="store_true")
    parser.add_argument("--threads-sweep", action="store_true",
                        help="benchmark warm solves across REPRO_THREADS "
                             "{1, 2, 4, cores} instead of planned-vs-legacy "
                             "(bit-identity enforced)")
    parser.add_argument("--check-threads", action="store_true",
                        help="fail on >2x best-thread-speedup regression vs "
                             "the committed threads baseline")
    parser.add_argument("--threads-baseline", type=Path,
                        default=THREADS_BASELINE_PATH)
    parser.add_argument("--require-parallel-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless every problem reaches >= X best "
                             "thread speedup (multicore hardware only)")
    args = parser.parse_args(argv)

    if args.threads_sweep:
        report = run_threads_sweep(args.scale)
        print(f"thread-sweep solve benchmarks — scale={args.scale} "
              f"(fp16-F3R, fast backend, {report['cores']} cores, "
              f"warm plan cache; all results bit-identical)")
        for name, row in report["problems"].items():
            timings = "   ".join(
                f"T={t} {r['solve_s']:7.3f}s ({r['speedup_vs_1']:.2f}x)"
                for t, r in row["threads"].items())
            print(f"  {name:<32} {timings}")
        out = (THREADS_OUTPUT_PATH if args.json == OUTPUT_PATH else args.json)
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out}")
        if args.write_baseline:
            args.threads_baseline.write_text(json.dumps(report, indent=2) + "\n")
            print(f"wrote baseline {args.threads_baseline}")
        status = 0
        if args.check_threads:
            if not args.threads_baseline.exists():
                print(f"no baseline at {args.threads_baseline}; run with "
                      "--write-baseline first", file=sys.stderr)
                return 2
            failures = check_thread_regressions(
                report, json.loads(args.threads_baseline.read_text()))
            if failures:
                print("REGRESSIONS:\n  " + "\n  ".join(failures),
                      file=sys.stderr)
                status = 1
            else:
                print("no thread-speedup regressions vs baseline")
        if args.require_parallel_speedup is not None:
            for name, row in report["problems"].items():
                if row["best_speedup"] < args.require_parallel_speedup:
                    print(f"REQUIREMENT FAILED: {name} best thread speedup "
                          f"{row['best_speedup']:.2f}x < "
                          f"{args.require_parallel_speedup:g}x", file=sys.stderr)
                    status = 1
        return status

    report = run(args.scale)

    print(f"end-to-end solve benchmarks — scale={args.scale} "
          f"(fp16-F3R, fast backend, warm plan cache)")
    for name, row in report["problems"].items():
        print(f"  {name:<32} legacy {row['legacy_s']:8.3f}s   "
              f"planned {row['planned_s']:8.3f}s   speedup {row['speedup']:5.2f}x"
              f"   identical={row['identical_results']}")

    args.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.json}")
    if args.write_baseline:
        args.baseline.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote baseline {args.baseline}")

    status = 0
    if args.check:
        if not args.baseline.exists():
            print(f"no baseline at {args.baseline}; run with --write-baseline "
                  "first", file=sys.stderr)
            return 2
        failures = check_regressions(report, json.loads(args.baseline.read_text()))
        if failures:
            print("REGRESSIONS:\n  " + "\n  ".join(failures), file=sys.stderr)
            status = 1
        else:
            print("no speedup regressions vs baseline")
    if args.require_speedup is not None:
        for name, row in report["problems"].items():
            if row["speedup"] < args.require_speedup:
                print(f"REQUIREMENT FAILED: {name} speedup "
                      f"{row['speedup']:.2f}x < {args.require_speedup:g}x",
                      file=sys.stderr)
                status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())

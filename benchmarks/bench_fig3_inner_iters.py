"""Figure 3 — sensitivity of fp16-F3R to the inner iteration counts m2, m3, m4.

Sweeps each parameter around the default (m2, m3, m4) = (8, 4, 2) on a small
problem subset and reports, for every setting, the convergence speed and the
modeled performance relative to the default — the two axes of the paper's
Fig. 3 scatter plots.

Shape assertions (Section 6.1's observations):
* every swept configuration still converges;
* increasing m4 beyond 2 does not improve convergence (relative convergence
  speed <= ~1) — Assumption (ii) breaks for m4 >= 3;
* the m2/m3 sweeps stay within a moderate band around the default (their
  effect is much smaller than m4's).
"""

from __future__ import annotations

from repro.core import F3RConfig
from repro.experiments import format_table, run_f3r
from repro.perf import CPU_NODE

from conftest import cached_cpu_preconditioner, cached_problem

PROBLEMS = ["Emilia_923", "hpgmp_7_7_7"]

SWEEP = {
    "m4": [1, 3, 4],
    "m3": [2, 6],
    "m2": [6, 10],
}


def figure3_rows() -> list[dict]:
    rows = []
    for name in PROBLEMS:
        problem = cached_problem(name)
        precond = cached_cpu_preconditioner(name)
        default = run_f3r(problem, precond, variant="fp16", config=F3RConfig())
        assert default.converged, f"default fp16-F3R failed on {name}"

        for param, values in SWEEP.items():
            for value in values:
                config = F3RConfig().with_params(**{param: value})
                record = run_f3r(problem, precond, variant="fp16", config=config)
                rel_convergence = (default.preconditioner_applications
                                   / record.preconditioner_applications
                                   if record.converged else float("nan"))
                rel_performance = (default.modeled_time / record.modeled_time
                                   if record.converged else float("nan"))
                rows.append({
                    "matrix": name,
                    "parameter": f"{param}={value}",
                    "m2-m3-m4": f"{config.m2}-{config.m3}-{config.m4}",
                    "relative_convergence": rel_convergence,
                    "relative_performance": rel_performance,
                    "converged": record.converged,
                })
    return rows


def _assert_fig3_shape(rows: list[dict]) -> None:
    assert all(row["converged"] for row in rows)
    for row in rows:
        if row["parameter"] in ("m4=3", "m4=4"):
            # larger m4 does not accelerate convergence (Assumption (ii) fails there)
            assert row["relative_convergence"] <= 1.3
        if row["parameter"].startswith(("m2=", "m3=")):
            assert 0.3 < row["relative_performance"] < 2.0


def _run_and_report() -> list[dict]:
    rows = figure3_rows()
    print()
    print(format_table(rows, title="Figure 3: fp16-F3R sensitivity to m2, m3, m4 "
                                   "(relative to the 8-4-2 default; >1 is better)",
                       float_fmt="{:.2f}"))
    return rows


def test_benchmark_figure3_parameter_sweep(benchmark):
    rows = benchmark.pedantic(_run_and_report, rounds=1, iterations=1)
    _assert_fig3_shape(rows)

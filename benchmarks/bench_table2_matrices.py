"""Table 2 — the test-matrix inventory and its surrogate realization.

Prints, for every matrix of the paper's Table 2, the original metadata
(n, nnz, nnz/row, αILU, αAINV) next to the surrogate generated at the harness
scale, and benchmarks the generation of the largest stencil problem.
"""

from __future__ import annotations

from repro.matgen import MATRIX_REGISTRY, get_matrix, table2_rows
from repro.experiments import format_table

from conftest import BENCH_SCALE


def test_table2_inventory():
    rows = table2_rows(scale=BENCH_SCALE)
    assert len(rows) == 31

    # paper metadata spot checks (Table 2 values)
    by_name = {row["matrix"]: row for row in rows}
    assert by_name["Queen_4147"]["paper_n"] == 4_147_110
    assert by_name["stokes"]["paper_nnz"] == 349_321_980
    assert by_name["audikw_1"]["alpha_ainv"] == 1.6
    assert by_name["hpcg_8_8_8"]["paper_nnz_per_row"] == 26.79

    # surrogate behaviour-class checks: density ordering follows the paper's
    for sparse_name in ("G3_circuit", "ecology2", "t2em"):
        assert by_name[sparse_name]["surrogate_nnz_per_row"] < 10
    for dense_name in ("Serena", "audikw_1", "hpcg_7_7_7"):
        assert by_name[dense_name]["surrogate_nnz_per_row"] > 15

    print()
    print(format_table(
        rows,
        columns=["matrix", "paper_n", "paper_nnz_per_row", "alpha_ilu", "alpha_ainv",
                 "symmetric", "family", "surrogate_n", "surrogate_nnz_per_row"],
        title=f"Table 2: test matrices (surrogates at scale={BENCH_SCALE!r})",
    ))


def test_symmetry_split_matches_paper():
    symmetric = [n for n, s in MATRIX_REGISTRY.items() if s.symmetric]
    nonsymmetric = [n for n, s in MATRIX_REGISTRY.items() if not s.symmetric]
    assert len(symmetric) == 15
    assert len(nonsymmetric) == 16


def test_benchmark_hpcg_generation(benchmark):
    matrix = benchmark.pedantic(lambda: get_matrix("hpcg_8_8_8", scale=BENCH_SCALE),
                                rounds=1, iterations=1)
    assert matrix.is_symmetric(tol=1e-10)
    assert matrix.nnz_per_row > 15

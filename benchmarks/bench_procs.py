"""Process-tier benchmark: sharded gateway throughput across ``REPRO_PROCS``.

Drives the :class:`~repro.serve.ShardedGateway` over a mixed assembled /
matrix-free workload and reports, per process count in the sweep:

* end-to-end throughput (requests/s) and wall time for the full workload,
* the zero-copy picture — shm segments published, bytes shared, and how many
  setups fell back to pickling (should be 0 for CSR/stencil traffic), and
* bit-identity of every solution against the in-process
  :class:`~repro.serve.BatchDispatcher` reference (``max_workers=1`` — the
  deterministic configuration; see tests/test_procpool.py).

A second phase measures the warm-worker cold start: run one gateway against
an empty ``REPRO_ARTIFACTS`` store, close it, then start a *fresh* gateway
(fresh worker processes) against the populated store and record the
worker-side artifact hits plus the first-pass wall-time ratio.

Dev-box caveat: on a 1-core container ``auto`` resolves to 1 and the
multi-process entries measure spawn + queue overhead, not parallel speedup —
the sweep's value there is the bit-identity and zero-copy accounting, so the
regression gate only floors the ``procs=1`` throughput.  Writes
``BENCH_procs.json``.

Not collected by pytest; run directly or via make:

    PYTHONPATH=src python benchmarks/bench_procs.py --check
    PYTHONPATH=src python benchmarks/bench_procs.py --write-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

# must precede the repro imports: measured autotune reads REPRO_TUNE at
# import time, and per-process timing must not steer format choices when
# the whole point is bit-identity across process counts
os.environ.setdefault("REPRO_TUNE", "0")

import numpy as np

import repro.cache as cache
from repro.core import F3RConfig
from repro.matgen import hpcg_matrix
from repro.operators import AssembledOperator, StencilOperator
from repro.serve import BatchDispatcher, ShardedGateway
from repro.sparse import diagonal_scaling
from repro.sparse.triangular import clear_levels_memo

SCALES = {
    "smoke": {"hpcg_n": 12, "n_rhs": 24, "max_batch": 4, "repeats": 2},
    "full": {"hpcg_n": 24, "n_rhs": 96, "max_batch": 8, "repeats": 3},
}

BASELINE_PATH = Path(__file__).parent / "BENCH_procs_baseline.json"
OUTPUT_PATH = Path(__file__).parent / "BENCH_procs.json"


def _workload(hpcg_n: int, n_rhs: int):
    """Mixed traffic: one assembled HPCG matrix + one matrix-free stencil."""
    A, _ = diagonal_scaling(hpcg_matrix(hpcg_n))
    assembled = AssembledOperator(A)
    offsets = [(0, 0, 0), (1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0),
               (0, 0, 1), (0, 0, -1)]
    stencil = StencilOperator((hpcg_n,) * 3, offsets,
                              [6.5, -1, -1, -1, -1, -1, -1])
    rng = np.random.default_rng(2024)
    return [((assembled if i % 2 == 0 else stencil),
             rng.random(assembled.nrows if i % 2 == 0 else stencil.nrows))
            for i in range(n_rhs)]


def _procs_sweep() -> list:
    cores = os.cpu_count() or 1
    sweep = [1, 2, min(4, max(2, cores))]
    return sorted(set(sweep))


def _run_gateway(pairs, config, procs, max_batch, repeats):
    """Best-of-``repeats`` wall seconds plus the last run's summary/results."""
    best, results, summary = float("inf"), None, None
    for _ in range(repeats):
        with ShardedGateway(config, procs=procs, max_batch=max_batch,
                            max_workers=1) as gateway:
            start = time.perf_counter()
            results = gateway.solve_many(pairs)
            elapsed = time.perf_counter() - start
            summary = gateway.stats.summary()
        best = min(best, elapsed)
    return best, results, summary


def run(scale: str) -> dict:
    params = SCALES[scale]
    pairs = _workload(params["hpcg_n"], params["n_rhs"])
    config = F3RConfig(variant="fp16", backend="fast")
    n_rhs, max_batch = params["n_rhs"], params["max_batch"]

    with BatchDispatcher(config, max_batch=max_batch, max_workers=1) as d:
        reference = d.solve_many(pairs)
    assert all(r.converged for r in reference)

    sweep = {}
    identical = True
    for procs in _procs_sweep():
        wall, results, summary = _run_gateway(pairs, config, procs,
                                              max_batch, params["repeats"])
        same = all(np.array_equal(ref.x, got.x)
                   for ref, got in zip(reference, results))
        identical = identical and same
        procs_section = summary["procs"]
        entry = {
            "wall_s": round(wall, 6),
            "requests_per_s": round(n_rhs / wall, 2),
            "bit_identical": same,
            "mode": procs_section["mode"],
        }
        if procs_section["mode"] == "process-pool":
            workers = procs_section["workers"]
            entry["shm"] = {
                "published": procs_section["shm"]["lifetime_published"],
                "bytes": procs_section["shm"]["bytes"],
            }
            entry["worker_batches"] = workers["batches"]
            entry["pickled_setups"] = workers["pickled_setups"]
        sweep[str(procs)] = entry

    # warm-worker cold start: fresh worker processes against a populated
    # artifact store skip refactorization on their first batch
    store_dir = tempfile.mkdtemp(prefix="repro-procs-bench-")
    old = cache.set_artifacts_dir(store_dir)
    cache.reset_cold_start_stats()
    clear_levels_memo()
    try:
        cold_wall, _, _ = _run_gateway(pairs, config, 2, max_batch, 1)
        warm_wall, _, warm_summary = _run_gateway(pairs, config, 2,
                                                  max_batch, 1)
        warm_workers = warm_summary["procs"]["workers"]
        warm = {
            "cold_first_pass_s": round(cold_wall, 6),
            "warm_first_pass_s": round(warm_wall, 6),
            "speedup": round(cold_wall / warm_wall if warm_wall > 0
                             else float("inf"), 3),
            "worker_artifact_hits": dict(warm_workers["warm_from_artifacts"]),
            "worker_artifact_saved_ms": round(
                warm_workers["artifact_saved_ms"], 3),
        }
    finally:
        cache.set_artifacts_dir(old)
        cache.reset_cold_start_stats()
        clear_levels_memo()
        shutil.rmtree(store_dir, ignore_errors=True)

    return {
        "scale": scale,
        "cores": os.cpu_count() or 1,
        "n": pairs[0][0].nrows,
        "n_rhs": n_rhs,
        "max_batch": max_batch,
        "procs_sweep": sweep,
        "bit_identical": identical,
        "warm_worker": warm,
    }


def check_regressions(report: dict, baseline: dict,
                      factor: float = 2.0) -> list[str]:
    """Gate on correctness invariants plus the ``procs=1`` throughput floor.

    Multi-process throughput is not floored — on a 1-core box those entries
    measure oversubscription and vary too much to gate on.
    """
    failures = []
    if baseline.get("scale") != report.get("scale"):
        return [f"baseline mismatch: scale={baseline.get('scale')!r} vs "
                f"current {report.get('scale')!r}; regenerate with "
                f"--write-baseline"]
    if not report.get("bit_identical"):
        failures.append("gateway results not bit-identical to the "
                        "in-process dispatcher")
    for procs, entry in report["procs_sweep"].items():
        if entry.get("mode") == "process-pool" and entry["pickled_setups"]:
            failures.append(f"procs={procs}: {entry['pickled_setups']} "
                            f"setups fell back to pickling (zero-copy "
                            f"publish failed)")
    hits = report["warm_worker"]["worker_artifact_hits"]
    if not any(hits.values()):
        failures.append("fresh workers recorded no warm-from-artifact hits")
    base = baseline["procs_sweep"]["1"]["requests_per_s"]
    current = report["procs_sweep"]["1"]["requests_per_s"]
    floor = base / factor
    if current < floor:
        failures.append(f"procs=1 throughput {current:.1f} req/s < "
                        f"{floor:.1f} (baseline {base:.1f} / {factor:g})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--json", type=Path, default=OUTPUT_PATH)
    parser.add_argument("--check", action="store_true",
                        help="fail on identity/zero-copy violations or a "
                             ">2x procs=1 throughput regression vs baseline")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    parser.add_argument("--write-baseline", action="store_true")
    args = parser.parse_args(argv)

    report = run(args.scale)
    print(json.dumps(report, indent=2))
    args.json.write_text(json.dumps(report, indent=2) + "\n")

    if args.write_baseline:
        args.baseline.write_text(json.dumps(report, indent=2) + "\n")
        print(f"baseline written to {args.baseline}")
        return 0

    if args.check:
        if not args.baseline.exists():
            print(f"no baseline at {args.baseline}; run --write-baseline",
                  file=sys.stderr)
            return 1
        failures = check_regressions(report,
                                     json.loads(args.baseline.read_text()))
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("no process-tier regressions vs baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Micro-benchmarks for the kernel engine: reference vs fast backend, and
batched (multi-RHS) vs looped execution.

Times the four hot kernels — CSR SpMV, sliced-ELLPACK SpMV, level-scheduled
triangular solve, and one FGMRES(m) cycle — on both registered backends, plus
the batched kernels (CSR SpMM, batched trsm), a full ``solve_batch`` of
the fp16-F3R solver against ``k`` sequential ``solve`` calls, and the
matrix-free stencil applies (single + batched) against the assembled CSR
kernels on the HPCG 27-point operator at a 64³ grid, and emits a
``BENCH_kernels.json`` speedup summary.

Not collected by pytest (the tier-1 suite); run directly or via make:

    PYTHONPATH=src python benchmarks/bench_kernels.py --scale smoke --check
    PYTHONPATH=src python benchmarks/bench_kernels.py --scale medium \
        --require 3.0 --require-batched 3.0

``--check`` compares the measured speedups against the committed baseline
(``benchmarks/BENCH_kernels_baseline.json``) and exits non-zero when any
kernel's fast-backend (or batched-over-looped / matrix-free-over-assembled)
speedup regressed by more than 2x — speedup ratios are compared rather than
wall times so the gate is stable across machines.  ``--require X`` enforces
an absolute floor on the ELL-SpMV and FGMRES-cycle speedups (kernel-engine
issue), ``--require-batched X`` on the ``solve_batch`` speedup (batched-solve
issue), and ``--require-stencil X`` on the matrix-free-over-assembled apply
speedups (operator-layer issue: the batched stencil apply must beat the
assembled CSR SpMM at >= 64³ grid points).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.backends import use_backend
from repro.core import F3RConfig, F3RSolver
from repro.matgen import hpcg_matrix, hpcg_operator, poisson2d
from repro.precision import Precision
from repro.precond import ilu0_factor
from repro.solvers import fgmres_cycle
from repro.sparse import SlicedEllMatrix, TriangularFactor

#: grid side of the 5-point Poisson problem per scale (n = side^2 unknowns)
SCALES = {"smoke": 90, "small": 160, "medium": 300}

#: grid side of the end-to-end ``solve_batch`` benchmark per scale (kept
#: smaller than the kernel grid: it times 8 full emulated F3R solves)
SOLVE_SCALES = {"smoke": 40, "small": 90, "medium": 300}

#: right-hand sides per batch in the batched benchmarks
BATCH_K = 8

#: grid side of the matrix-free stencil benchmark (HPCG 27-point); 64³ is the
#: operator-layer acceptance threshold — the batched matrix-free apply must
#: beat the assembled CSR SpMM at this size
STENCIL_GRID = 64

BASELINE_PATH = Path(__file__).parent / "BENCH_kernels_baseline.json"
OUTPUT_PATH = Path(__file__).parent / "BENCH_kernels.json"

#: kernels the --require floor applies to (the kernel-engine acceptance criterion)
REQUIRED_KERNELS = ("spmv_ell", "fgmres_cycle")

#: batched entries the --require-batched floor applies to
REQUIRED_BATCHED = ("solve_batch",)

#: stencil entries the --require-stencil floor applies to
REQUIRED_STENCIL = ("stencil_apply", "stencil_apply_batch")

#: fused entries the --require-fused floor applies to (solve-plan issue)
REQUIRED_FUSED = ("spmv_axpy", "orthonormalize", "weighted_update_fp16",
                  "stencil_fp16_staged")


def _time(fn, repeats: int, warmup: int = 1) -> float:
    """Best-of-``repeats`` wall time of ``fn`` (seconds)."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def build_problem(side: int):
    """Poisson 5-point matrix + derived operands shared by every kernel."""
    matrix = poisson2d(side)
    n = matrix.nrows
    rng = np.random.default_rng(0)
    x = rng.uniform(-1.0, 1.0, n)
    ell = SlicedEllMatrix(matrix, chunk_size=32)
    lower, _ = ilu0_factor(matrix)
    return {"matrix": matrix, "ell": ell, "lower": lower, "x": x, "n": n}


def bench_backend(problem, backend: str, repeats: int, m: int) -> dict[str, float]:
    matrix = problem["matrix"]
    ell = problem["ell"]
    x = problem["x"]
    with use_backend(backend):
        # fresh factor per backend so plan caching is part of the measurement's
        # warmup, not carried over from the other engine
        factor = TriangularFactor(problem["lower"], lower=True, unit_diagonal=True)
        times = {
            "spmv_csr": _time(lambda: matrix.matvec(x), repeats),
            "spmv_ell": _time(lambda: ell.matvec(x), repeats),
            "trsv": _time(lambda: factor.solve(x), repeats),
            "fgmres_cycle": _time(
                lambda: fgmres_cycle(matrix, x, None, m=m, vec_prec=Precision.FP64),
                repeats, warmup=1),
        }
    return times


def bench_batched_kernels(problem, repeats: int, k: int = BATCH_K) -> dict[str, dict]:
    """Batched-vs-looped timings of SpMM and trsm on the fast engine."""
    matrix = problem["matrix"]
    x_block = np.random.default_rng(1).uniform(-1.0, 1.0, (problem["n"], k))
    entries = {}
    with use_backend("fast"):
        factor = TriangularFactor(problem["lower"], lower=True, unit_diagonal=True)
        looped = _time(lambda: [matrix.matvec(np.ascontiguousarray(x_block[:, j]))
                                for j in range(k)], repeats)
        batched = _time(lambda: matrix.matmat(x_block), repeats)
        entries["spmm_csr"] = {"looped_s": looped, "batched_s": batched}
        looped = _time(lambda: [factor.solve(np.ascontiguousarray(x_block[:, j]))
                                for j in range(k)], repeats)
        batched = _time(lambda: factor.solve_batch(x_block), repeats)
        entries["trsm"] = {"looped_s": looped, "batched_s": batched}
    for row in entries.values():
        row["speedup"] = round(row["looped_s"] / row["batched_s"]
                               if row["batched_s"] > 0 else float("inf"), 3)
        row["k"] = k
    return entries


def bench_solve_batch(scale: str, k: int = BATCH_K) -> dict:
    """``solve_batch`` with ``k`` RHS vs ``k`` sequential fp16-F3R solves.

    Measures the end-to-end amortization the batched stack buys: one
    preconditioner setup, SpMM matvecs, batched triangular solves, and
    lockstep inner levels against ``k`` independent solves of the same
    solver object (best-of-1: the solves are deterministic and expensive).
    """
    matrix = poisson2d(SOLVE_SCALES[scale])
    rhs = np.random.default_rng(2).uniform(-1.0, 1.0, (matrix.nrows, k))
    config = F3RConfig(variant="fp16", tol=1e-8, backend="fast")
    solver = F3RSolver(matrix, preconditioner="auto", nblocks=16, config=config)
    # warm up kernels, plans and arenas outside the measurement
    solver.solve(rhs[:, 0])
    solver.solve_batch(rhs[:, :2])

    start = time.perf_counter()
    sequential = [solver.solve(np.ascontiguousarray(rhs[:, j])) for j in range(k)]
    looped_s = time.perf_counter() - start
    start = time.perf_counter()
    batch = solver.solve_batch(rhs)
    batched_s = time.perf_counter() - start
    return {
        "looped_s": looped_s,
        "batched_s": batched_s,
        "speedup": round(looped_s / batched_s if batched_s > 0 else float("inf"), 3),
        "k": k,
        "n": matrix.nrows,
        "all_converged": bool(all(r.converged for r in sequential)
                              and batch.all_converged),
    }


def bench_stencil(repeats: int, k: int = BATCH_K, grid: int = STENCIL_GRID) -> dict[str, dict]:
    """Matrix-free stencil applies vs the assembled CSR kernels (fast engine).

    The HPCG 27-point operator is box-separable, so the matrix-free apply
    runs as per-axis fused convolution sweeps with no value/index streams —
    the regime where dropping assembled storage wins even against scipy's
    compiled CSR kernels.
    """
    matrix = hpcg_matrix(grid)
    op = hpcg_operator(grid)
    rng = np.random.default_rng(3)
    x = rng.uniform(-1.0, 1.0, op.nrows)
    x_block = rng.uniform(-1.0, 1.0, (op.nrows, k))
    entries = {}
    with use_backend("fast"):
        entries["stencil_apply"] = {
            "assembled_s": _time(lambda: matrix.matvec(x), repeats),
            "matrix_free_s": _time(lambda: op.apply(x), repeats),
        }
        entries["stencil_apply_batch"] = {
            "assembled_s": _time(lambda: matrix.matmat(x_block), repeats),
            "matrix_free_s": _time(lambda: op.apply_batch(x_block), repeats),
            "k": k,
        }
    for row in entries.values():
        row["speedup"] = round(row["assembled_s"] / row["matrix_free_s"]
                               if row["matrix_free_s"] > 0 else float("inf"), 3)
        row["grid"] = f"{grid}^3"
    return entries


def bench_fused(problem, repeats: int) -> dict[str, dict]:
    """Fused solve-plan kernels vs their unfused sequences (fast engine).

    The fp16 rows use subnormal-heavy vectors (tiny residual magnitudes, the
    steady-state regime of the inner Richardson level) — the case the staged
    float32 paths exist for.
    """
    from repro.backends import Workspace, get_backend, halfvec
    from repro.matgen import hpcg_operator
    from repro.sparse import vectorops as vo

    matrix = problem["matrix"]
    n = problem["n"]
    rng = np.random.default_rng(5)
    x = rng.uniform(-1.0, 1.0, n)
    b = rng.uniform(-1.0, 1.0, n)
    entries = {}
    with use_backend("fast"):
        backend = get_backend()
        scratch = matrix.scratch()

        unfused = _time(lambda: vo.axpy(
            -1.0, matrix.matvec(x, record=False), b,
            out_precision=Precision.FP64, record=False), repeats)
        fused = _time(lambda: backend.spmv_axpy(
            matrix.values, matrix.indices, matrix.indptr, x, b,
            out_precision=Precision.FP64, record=False, scratch=scratch),
            repeats)
        entries["spmv_axpy"] = {"unfused_s": unfused, "fused_s": fused}

        ws1, ws2 = Workspace(), Workspace()
        basis1 = ws1.get("b", (3, n), np.float32)
        basis2 = ws2.get("b", (3, n), np.float32)
        v0 = rng.standard_normal(n).astype(np.float32)
        v0 /= np.linalg.norm(v0)
        basis1[0] = v0
        basis2[0] = v0
        w = rng.standard_normal(n).astype(np.float32)

        def unfused_gs():
            h, w_o, h_norm = backend.orthogonalize(basis1, 0, w.copy(),
                                                   Precision.FP32,
                                                   scratch=ws1, record=False)
            basis1[1] = vo.scal(1.0 / h_norm, w_o, record=False)

        fused = _time(lambda: backend.orthonormalize(
            basis2, 0, w.copy(), Precision.FP32, scratch=ws2, record=False),
            repeats)
        unfused = _time(unfused_gs, repeats)
        entries["orthonormalize"] = {"unfused_s": unfused, "fused_s": fused}

        # steady-state fp16 magnitudes: mostly fp16-subnormal values
        z16 = (rng.uniform(-1.0, 1.0, n) * 2e-5).astype(np.float16)
        mr16 = (rng.uniform(-1.0, 1.0, n) * 2e-5).astype(np.float16)
        ws = Workspace()
        unfused = _time(lambda: vo.axpy(0.97, mr16, z16, record=False),
                        repeats)
        fused = _time(lambda: backend.weighted_update(
            z16.copy(), mr16, 0.97, Precision.FP16, scratch=ws, record=False),
            repeats)
        entries["weighted_update_fp16"] = {"unfused_s": unfused, "fused_s": fused}

        op16 = hpcg_operator(32).astype(Precision.FP16)
        x16 = (rng.uniform(-1.0, 1.0, op16.nrows) * 2e-5).astype(np.float16)
        fused = _time(lambda: op16.apply(x16, record=False), repeats)
        staged_state = halfvec.set_staged_half(False)
        try:
            unfused = _time(lambda: op16.apply(x16, record=False), repeats)
        finally:
            halfvec.set_staged_half(staged_state)
        entries["stencil_fp16_staged"] = {"unfused_s": unfused, "fused_s": fused}

    for row in entries.values():
        row["speedup"] = round(row["unfused_s"] / row["fused_s"]
                               if row["fused_s"] > 0 else float("inf"), 3)
    return entries


def run(scale: str, repeats: int, m: int) -> dict:
    side = SCALES[scale]
    problem = build_problem(side)
    reference = bench_backend(problem, "reference", repeats, m)
    fast = bench_backend(problem, "fast", repeats, m)
    kernels = {}
    for name in reference:
        speedup = reference[name] / fast[name] if fast[name] > 0 else float("inf")
        kernels[name] = {
            "reference_s": reference[name],
            "fast_s": fast[name],
            "speedup": round(speedup, 3),
        }
    batched = bench_batched_kernels(problem, repeats)
    batched["solve_batch"] = bench_solve_batch(scale)
    stencil = bench_stencil(repeats)
    fused = bench_fused(problem, repeats)
    return {
        "scale": scale,
        "n": problem["n"],
        "nnz": problem["matrix"].nnz,
        "fgmres_m": m,
        "repeats": repeats,
        "kernels": kernels,
        "batched": batched,
        "stencil": stencil,
        "fused": fused,
    }


#: machine-drift tolerance applied under the ``baseline/factor`` floor: the
#: committed baseline is machine-dependent, and host differences (CPU
#: generation, cache sizes, container noise) routinely move individual
#: speedups 10-20% without any code change — the stencil_apply floor drift
#: documented in CHANGES.md.  A real regression at the 2x gate still trips
#: it; the band only absorbs hardware skew near the floor.
DRIFT_TOLERANCE = 0.15


def check_regressions(report: dict, baseline: dict, factor: float = 2.0,
                      tolerance: float = DRIFT_TOLERANCE) -> list[str]:
    """Speedup regressions beyond ``factor`` against the committed baseline.

    The floor for each entry is ``baseline_speedup / factor``, relaxed by
    ``tolerance`` (a fraction) to absorb cross-machine drift.
    """
    failures = []
    # speedups vary systematically with problem size and cycle length, so a
    # baseline from a different configuration would skew the gate silently
    for key in ("scale", "fgmres_m"):
        if baseline.get(key) != report.get(key):
            failures.append(f"baseline mismatch: {key}={baseline.get(key)!r} "
                            f"vs current {report.get(key)!r}; regenerate with "
                            f"--write-baseline")
    if failures:
        return failures
    for section in ("kernels", "batched", "stencil", "fused"):
        for name, base in baseline.get(section, {}).items():
            current = report.get(section, {}).get(name)
            if current is None:
                failures.append(f"{name}: missing from current run")
                continue
            floor = base["speedup"] / factor * (1.0 - tolerance)
            if current["speedup"] < floor:
                failures.append(
                    f"{name}: speedup {current['speedup']:.2f}x < {floor:.2f}x "
                    f"(baseline {base['speedup']:.2f}x / {factor:g}, "
                    f"-{tolerance:.0%} drift band)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--fgmres-m", type=int, default=30,
                        help="iterations of the timed FGMRES cycle")
    parser.add_argument("--json", type=Path, default=OUTPUT_PATH,
                        help="where to write the speedup summary")
    parser.add_argument("--check", action="store_true",
                        help="fail on >2x speedup regression vs the baseline JSON")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    parser.add_argument("--require", type=float, default=None, metavar="X",
                        help="fail unless ELL-SpMV and FGMRES-cycle speedups >= X")
    parser.add_argument("--require-batched", type=float, default=None, metavar="X",
                        help="fail unless the solve_batch speedup >= X")
    parser.add_argument("--require-stencil", type=float, default=None, metavar="X",
                        help="fail unless the matrix-free stencil apply speedups "
                             "over the assembled kernels are >= X")
    parser.add_argument("--require-fused", type=float, default=None, metavar="X",
                        help="fail unless every fused solve-plan kernel is >= X "
                             "times its unfused sequence")
    parser.add_argument("--write-baseline", action="store_true",
                        help="overwrite the committed baseline with this run")
    args = parser.parse_args(argv)

    report = run(args.scale, args.repeats, args.fgmres_m)

    print(f"kernel engine micro-benchmarks — scale={args.scale} "
          f"(n={report['n']}, nnz={report['nnz']})")
    for name, row in report["kernels"].items():
        print(f"  {name:<14} reference {row['reference_s'] * 1e3:9.3f} ms   "
              f"fast {row['fast_s'] * 1e3:9.3f} ms   speedup {row['speedup']:6.2f}x")
    print(f"batched (k={BATCH_K}) vs looped — fast engine")
    for name, row in report["batched"].items():
        print(f"  {name:<14} looped    {row['looped_s'] * 1e3:9.3f} ms   "
              f"batched {row['batched_s'] * 1e3:6.3f} ms   speedup {row['speedup']:6.2f}x")
    print(f"matrix-free stencil vs assembled CSR — fast engine, "
          f"HPCG {STENCIL_GRID}^3")
    for name, row in report["stencil"].items():
        print(f"  {name:<19} assembled {row['assembled_s'] * 1e3:9.3f} ms   "
              f"matrix-free {row['matrix_free_s'] * 1e3:9.3f} ms   "
              f"speedup {row['speedup']:6.2f}x")
    print("fused solve-plan kernels vs unfused sequences — fast engine")
    for name, row in report["fused"].items():
        print(f"  {name:<21} unfused {row['unfused_s'] * 1e3:9.3f} ms   "
              f"fused {row['fused_s'] * 1e3:9.3f} ms   "
              f"speedup {row['speedup']:6.2f}x")

    args.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.json}")
    if args.write_baseline:
        args.baseline.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote baseline {args.baseline}")

    status = 0
    if args.check:
        if not args.baseline.exists():
            print(f"no baseline at {args.baseline}; run with --write-baseline first",
                  file=sys.stderr)
            return 2
        baseline = json.loads(args.baseline.read_text())
        failures = check_regressions(report, baseline)
        if failures:
            print("REGRESSIONS:\n  " + "\n  ".join(failures), file=sys.stderr)
            status = 1
        else:
            print("no speedup regressions vs baseline")
    if args.require is not None:
        for name in REQUIRED_KERNELS:
            speedup = report["kernels"][name]["speedup"]
            if speedup < args.require:
                print(f"REQUIREMENT FAILED: {name} speedup {speedup:.2f}x "
                      f"< {args.require:g}x", file=sys.stderr)
                status = 1
    if args.require_batched is not None:
        for name in REQUIRED_BATCHED:
            speedup = report["batched"][name]["speedup"]
            if speedup < args.require_batched:
                print(f"REQUIREMENT FAILED: {name} speedup {speedup:.2f}x "
                      f"< {args.require_batched:g}x", file=sys.stderr)
                status = 1
    if args.require_stencil is not None:
        for name in REQUIRED_STENCIL:
            speedup = report["stencil"][name]["speedup"]
            if speedup < args.require_stencil:
                print(f"REQUIREMENT FAILED: {name} speedup {speedup:.2f}x "
                      f"< {args.require_stencil:g}x", file=sys.stderr)
                status = 1
    if args.require_fused is not None:
        for name in REQUIRED_FUSED:
            speedup = report["fused"][name]["speedup"]
            if speedup < args.require_fused:
                print(f"REQUIREMENT FAILED: {name} speedup {speedup:.2f}x "
                      f"< {args.require_fused:g}x", file=sys.stderr)
                status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())

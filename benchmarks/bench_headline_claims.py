"""Headline claims of the abstract / Section 5, plus the cost-model ablation.

* fp16-F3R speeds up fp64-F3R and fp32-F3R without degrading convergence
  (abstract: up to 1.65x over fp64 on GPU / 2.42x on CPU, up to 1.60x over fp32).
* The Section 4.1 memory-access model (Eqs. 1-3) predicts the measured traffic
  ordering: replacing the innermost FGMRES by Richardson reduces traffic, and
  nesting a long FGMRES cycle reduces traffic (the ablation DESIGN.md calls out).
"""

from __future__ import annotations

import pytest

from repro.core import CostModel, F3RConfig
from repro.experiments import format_table, geometric_mean, run_f3r, run_variant
from repro.perf import CPU_NODE, counting

from conftest import cached_cpu_preconditioner, cached_problem

PROBLEMS = ["Emilia_923", "audikw_1"]


def headline_rows() -> list[dict]:
    rows = []
    for name in PROBLEMS:
        problem = cached_problem(name)
        precond = cached_cpu_preconditioner(name)
        records = {variant: run_f3r(problem, precond, variant=variant)
                   for variant in ("fp64", "fp32", "fp16")}
        base = records["fp64"]
        rows.append({
            "matrix": name,
            "fp16_over_fp64": base.modeled_time / records["fp16"].modeled_time,
            "fp16_over_fp32": records["fp32"].modeled_time / records["fp16"].modeled_time,
            "fp32_over_fp64": base.modeled_time / records["fp32"].modeled_time,
            "fp64_apps": base.preconditioner_applications,
            "fp16_apps": records["fp16"].preconditioner_applications,
        })
    return rows


def _assert_headline_shape(rows: list[dict]) -> None:
    for row in rows:
        # convergence is not degraded by fp16 (within one outer iteration)
        assert abs(row["fp16_apps"] - row["fp64_apps"]) <= 64
        assert row["fp32_over_fp64"] > 1.0
        assert row["fp16_over_fp32"] > 1.0
    gmean = geometric_mean([row["fp16_over_fp64"] for row in rows])
    assert 1.3 < gmean < 3.0


def test_benchmark_headline_speedups(benchmark):
    rows = benchmark.pedantic(headline_rows, rounds=1, iterations=1)
    _assert_headline_shape(rows)
    print()
    print(format_table(rows, title="Headline: fp16-F3R speedups "
                                   "(paper: up to 2.42x over fp64, 1.60x over fp32 on CPU)",
                       float_fmt="{:.2f}"))


def test_cost_model_predicts_measured_traffic_ordering():
    """Ablation: the Eq. 1-3 model and the instrumented kernels agree on which
    design choice moves less memory."""
    name = "hpcg_7_7_7"
    problem = cached_problem(name)
    precond = cached_cpu_preconditioner(name)
    model = CostModel.for_problem(problem.matrix, precond)

    # model prediction: F3R's (F8, F4, R2, M) stack per outer iteration is
    # cheaper than F4's (F8, F4, F2, M) stack
    model_f3r = model.nested_fr(4, 2)
    model_f4 = model.nested_ff(4, 2)
    assert model_f3r < model_f4

    # measurement: bytes per preconditioning of fp16-F3R < F4
    f3r = run_f3r(problem, precond, variant="fp16", config=F3RConfig())
    f4 = run_variant(problem, precond, "F4")
    measured_f3r = f3r.counter.total_bytes / max(1, f3r.preconditioner_applications)
    measured_f4 = f4.counter.total_bytes / max(1, f4.preconditioner_applications)
    assert measured_f3r < measured_f4

"""Figure 5 — effect of the adaptive weight-update cycle c in the Richardson part.

Sweeps c over a subset of the paper's values {1, 16, 256} against the default
c = 64 and reports relative convergence speed and relative modeled performance.

Shape assertions (Section 6.3):
* every setting of c converges (the technique is robust to c);
* c = 1 (refresh every call) pays extra SpMVs/reductions without a matching
  convergence gain, so its relative performance does not exceed the default's
  by much;
* the spread across c values is moderate (no dramatic winner), matching the
  paper's "no clear trend" observation.
"""

from __future__ import annotations

from repro.core import F3RConfig
from repro.experiments import format_table, run_f3r

from conftest import cached_cpu_preconditioner, cached_problem

PROBLEMS = ["Emilia_923", "hpgmp_7_7_7"]
CYCLES = [1, 16, 256]


def figure5_rows() -> list[dict]:
    rows = []
    for name in PROBLEMS:
        problem = cached_problem(name)
        precond = cached_cpu_preconditioner(name)
        default = run_f3r(problem, precond, variant="fp16", config=F3RConfig(cycle=64))
        assert default.converged
        for cycle in CYCLES:
            record = run_f3r(problem, precond, variant="fp16",
                             config=F3RConfig(cycle=cycle))
            rows.append({
                "matrix": name,
                "c": cycle,
                "converged": record.converged,
                "relative_convergence": (default.preconditioner_applications
                                         / record.preconditioner_applications
                                         if record.converged else float("nan")),
                "relative_performance": (default.modeled_time / record.modeled_time
                                         if record.converged else float("nan")),
            })
    return rows


def _assert_fig5_shape(rows: list[dict]) -> None:
    assert all(row["converged"] for row in rows)
    for row in rows:
        assert 0.3 < row["relative_performance"] < 2.0
        assert 0.3 < row["relative_convergence"] < 2.0
    c1_rows = [row for row in rows if row["c"] == 1]
    # refreshing every call adds work without a matching convergence payoff
    assert all(row["relative_performance"] < 1.5 for row in c1_rows)


def _run_and_report() -> list[dict]:
    rows = figure5_rows()
    print()
    print(format_table(rows, title="Figure 5: weight-update cycle c relative to c=64 "
                                   "(>1 is better)", float_fmt="{:.2f}"))
    return rows


def test_benchmark_figure5_weight_cycle(benchmark):
    rows = benchmark.pedantic(_run_and_report, rounds=1, iterations=1)
    _assert_fig5_shape(rows)

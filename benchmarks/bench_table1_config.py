"""Table 1 — the F3R precision schedule, and the cost of building the solver.

Regenerates the paper's Table 1 (per-level precisions of fp16-F3R) directly
from the implementation's configuration objects, so any drift between the code
and the paper's specification fails here.
"""

from __future__ import annotations

from repro.core import F3RConfig, build_f3r, precision_schedule
from repro.experiments import format_table
from repro.precision import Precision

from conftest import cached_cpu_preconditioner, cached_problem

_PROBLEM = "hpcg_7_7_7"


def table1_rows() -> list[dict]:
    config = F3RConfig(variant="fp16")
    schedule = precision_schedule("fp16")
    labels = {1: f"F^m1 (m1={config.m1})", 2: f"F^m2 (m2={config.m2})",
              3: f"F^m3 (m3={config.m3})", 4: f"R^m4 (m4={config.m4})"}
    rows = []
    for level, prec in schedule.items():
        rows.append({
            "solver": labels[level],
            "A": prec.matrix.label,
            "vectors": prec.vector.label,
            "M": prec.preconditioner.label if prec.preconditioner else "-",
        })
    return rows


def test_table1_matches_paper():
    rows = {row["solver"].split()[0]: row for row in table1_rows()}
    assert rows["F^m1"] == {"solver": rows["F^m1"]["solver"], "A": "fp64",
                            "vectors": "fp64", "M": "-"}
    assert rows["F^m2"]["A"] == "fp32" and rows["F^m2"]["vectors"] == "fp32"
    assert rows["F^m3"]["A"] == "fp16" and rows["F^m3"]["vectors"] == "fp32"
    assert rows["R^m4"] == {"solver": rows["R^m4"]["solver"], "A": "fp16",
                            "vectors": "fp16", "M": "fp16"}
    print()
    print(format_table(table1_rows(), title="Table 1: precision schedule of fp16-F3R"))


def test_built_solver_matches_table1():
    problem = cached_problem(_PROBLEM)
    solver = build_f3r(problem.matrix, cached_cpu_preconditioner(_PROBLEM),
                       F3RConfig(variant="fp16"))
    level2 = solver.child
    level3 = level2.child
    level4 = level3.child
    assert solver.matrix.precision is Precision.FP64
    assert level2.matrix.precision is Precision.FP32
    assert level3.matrix.precision is Precision.FP16
    assert level4.matrix.precision is Precision.FP16
    assert level4.preconditioner.precision is Precision.FP16


def test_benchmark_build_f3r(benchmark):
    """Time the construction of the nested solver (matrix casts included)."""
    problem = cached_problem(_PROBLEM)
    precond = cached_cpu_preconditioner(_PROBLEM)

    def build():
        return build_f3r(problem.matrix, precond, F3RConfig(variant="fp16"))

    solver = benchmark.pedantic(build, rounds=1, iterations=1)
    assert solver.m == 100

"""Figure 6 — adaptive weight updating vs a fixed Richardson weight.

Runs fp16-F3R with the adaptive strategy (Algorithm 1) and with fixed weights
ω ∈ {0.7, 1.0, 1.3}, reporting each fixed setting's performance and convergence
relative to the adaptive run (values < 1 mean the adaptive strategy is better,
matching the paper's presentation).

Shape assertions (Section 6.3):
* the adaptive strategy converges on every problem;
* no fixed weight beats the adaptive strategy by a large margin (it is
  "one of the best in most cases");
* at least one fixed weight is clearly worse than (or no better than) the
  adaptive strategy — sensitivity to the manual choice is the reason the
  adaptive technique exists.
"""

from __future__ import annotations

from repro.core import F3RConfig
from repro.experiments import format_table, run_f3r

from conftest import cached_cpu_preconditioner, cached_problem

PROBLEMS = ["Emilia_923", "hpgmp_7_7_7"]
WEIGHTS = [0.7, 1.0, 1.3]


def figure6_rows() -> list[dict]:
    rows = []
    for name in PROBLEMS:
        problem = cached_problem(name)
        precond = cached_cpu_preconditioner(name)
        adaptive = run_f3r(problem, precond, variant="fp16",
                           config=F3RConfig(adaptive_weight=True))
        assert adaptive.converged, f"adaptive fp16-F3R failed on {name}"
        for weight in WEIGHTS:
            record = run_f3r(problem, precond, variant="fp16",
                             config=F3RConfig(adaptive_weight=False, fixed_weight=weight))
            rows.append({
                "matrix": name,
                "omega": weight,
                "converged": record.converged,
                "performance_vs_adaptive": (record.modeled_time and
                                            adaptive.modeled_time and
                                            (adaptive.modeled_time / record.modeled_time)
                                            if record.converged else float("nan")),
                "convergence_vs_adaptive": (adaptive.preconditioner_applications
                                            / record.preconditioner_applications
                                            if record.converged else float("nan")),
            })
    return rows


def _assert_fig6_shape(rows: list[dict]) -> None:
    for row in rows:
        if row["converged"]:
            # no fixed weight dominates the adaptive strategy by a large margin
            assert row["performance_vs_adaptive"] < 1.5
    # at least one fixed weight is no better than the adaptive strategy
    assert any((not row["converged"]) or row["performance_vs_adaptive"] <= 1.05
               for row in rows)


def _run_and_report() -> list[dict]:
    rows = figure6_rows()
    print()
    print(format_table(rows, title="Figure 6: fixed weight vs adaptive strategy "
                                   "(values >1 mean the fixed weight beats adaptive)",
                       float_fmt="{:.2f}"))
    return rows


def test_benchmark_figure6_adaptive_weight(benchmark):
    rows = benchmark.pedantic(_run_and_report, rounds=1, iterations=1)
    _assert_fig6_shape(rows)

"""Cold-start setup benchmark: vectorized setup + the persistent artifact cache.

Times the *setup* stages a restarted server pays before its first solve on
the smoke Poisson block-IC(0) case — ILU(0)/IC(0) factorization, the
block-Jacobi preconditioner build (level schedules included), block-diagonal
fusion, and the full :class:`~repro.core.F3RSolver` setup — in three modes:

* ``cold``       — no artifact store (today's default path),
* ``cold_store`` — empty ``REPRO_ARTIFACTS`` store: compute + persist, and
* ``warm``       — populated store, in-process memo cleared: what a process
  restart pays when the artifacts are already on disk.

Every mode's factors and level schedules are checked bit-identical to the
cold path, and the report records the per-stage and total warm-over-cold
speedup.  Writes ``BENCH_cold_start.json``.

Not collected by pytest; run directly or via make:

    PYTHONPATH=src python benchmarks/bench_cold_start.py --check
    PYTHONPATH=src python benchmarks/bench_cold_start.py --require-warm-speedup 2.0

``--check`` compares the warm speedup against the committed baseline
(``BENCH_cold_start_baseline.json``, machine-dependent — regenerate with
``--write-baseline``) and fails on a >2x regression; ``--require-warm-speedup
X`` enforces the cold-start issue's absolute acceptance floor on the total
setup speedup.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

import repro.cache as cache
from repro.core import F3RConfig, F3RSolver
from repro.matgen import poisson2d
from repro.plans import clear_plan_cache
from repro.precond.block_jacobi import BlockJacobiIC0
from repro.precond.ilu0 import ilu0_factor
from repro.sparse.triangular import clear_levels_memo

SCALES = {
    "smoke": {"poisson_side": 120, "nblocks": 16, "repeats": 2},
    "full": {"poisson_side": 300, "nblocks": 16, "repeats": 2},
}

BASELINE_PATH = Path(__file__).parent / "BENCH_cold_start_baseline.json"
OUTPUT_PATH = Path(__file__).parent / "BENCH_cold_start.json"


def _fresh_matrix(side: int):
    """A new matrix object per measurement so no per-object caches leak in."""
    return poisson2d(side)


def _time_stages(side: int, nblocks: int, repeats: int) -> tuple[dict, dict]:
    """Best-of-``repeats`` per-stage setup seconds, plus a result digest."""
    timings = {}
    digest = {}

    def best_of(stage, fn):
        best, out = float("inf"), None
        for _ in range(repeats):
            clear_plan_cache()
            clear_levels_memo()
            matrix = _fresh_matrix(side)
            start = time.perf_counter()
            out = fn(matrix)
            best = min(best, time.perf_counter() - start)
        timings[stage] = best
        return out

    lower, upper = best_of("ilu0_factor", lambda m: ilu0_factor(m))
    digest["ilu0"] = (float(np.abs(lower.values).sum()),
                      float(np.abs(upper.values).sum()))

    precond = best_of("block_ic0",
                      lambda m: BlockJacobiIC0(m, nblocks=nblocks))
    digest["levels"] = sum(int(lvl.sum()) for block in precond._blocks
                           for lvl in block._lower.levels)

    best_of("fuse", lambda m: precond._fused_parts())

    config = F3RConfig(variant="fp16", backend="fast")
    best_of("solver_setup",
            lambda m: F3RSolver(m, preconditioner="auto", config=config,
                                nblocks=nblocks))

    timings["total"] = sum(v for k, v in timings.items() if k != "total")
    return timings, digest


def run(scale: str) -> dict:
    params = SCALES[scale]
    side, nblocks = params["poisson_side"], params["nblocks"]
    repeats = params["repeats"]

    store_dir = tempfile.mkdtemp(prefix="repro-artifacts-")
    old = cache.set_artifacts_dir("")
    try:
        cold, cold_digest = _time_stages(side, nblocks, repeats)

        cache.set_artifacts_dir(store_dir)
        cache.reset_cold_start_stats()
        cold_store, store_digest = _time_stages(side, nblocks, repeats)

        cache.reset_cold_start_stats()
        warm, warm_digest = _time_stages(side, nblocks, repeats)
        warm_stats = cache.cold_start_stats()
    finally:
        cache.set_artifacts_dir(old)
        clear_levels_memo()
        clear_plan_cache()
        shutil.rmtree(store_dir, ignore_errors=True)

    assert warm_digest == cold_digest == store_digest, \
        "artifact-cached setup is not bit-identical to the cold path"
    assert warm_stats["hits"] > 0, "warm mode never hit the artifact store"

    def round_all(d):
        return {k: round(v, 6) for k, v in d.items()}

    return {
        "scale": scale,
        "n": side * side,
        "nblocks": nblocks,
        "stages": sorted(k for k in cold if k != "total"),
        "cold_s": round_all(cold),
        "cold_store_s": round_all(cold_store),
        "warm_s": round_all(warm),
        "warm_speedup": {
            k: round(cold[k] / warm[k] if warm[k] > 0 else float("inf"), 3)
            for k in cold
        },
        "warm_artifact_hits": warm_stats["hits"],
        "identical_results": True,
    }


def check_regressions(report: dict, baseline: dict, factor: float = 2.0) -> list[str]:
    failures = []
    if baseline.get("scale") != report.get("scale"):
        return [f"baseline mismatch: scale={baseline.get('scale')!r} vs "
                f"current {report.get('scale')!r}; regenerate with "
                f"--write-baseline"]
    if not report.get("identical_results"):
        failures.append("warm setup results not bit-identical to cold path")
    base_speedup = baseline["warm_speedup"]["total"]
    current_speedup = report["warm_speedup"]["total"]
    floor = base_speedup / factor
    if current_speedup < floor:
        failures.append(f"total warm speedup {current_speedup:.2f}x < "
                        f"{floor:.2f}x (baseline {base_speedup:.2f}x / "
                        f"{factor:g})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--json", type=Path, default=OUTPUT_PATH)
    parser.add_argument("--check", action="store_true",
                        help="fail on >2x warm-speedup regression vs baseline")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    parser.add_argument("--require-warm-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the total warm-over-cold setup "
                             "speedup is >= X")
    parser.add_argument("--write-baseline", action="store_true")
    args = parser.parse_args(argv)

    report = run(args.scale)
    print(json.dumps(report, indent=2))
    args.json.write_text(json.dumps(report, indent=2) + "\n")

    if args.write_baseline:
        args.baseline.write_text(json.dumps(report, indent=2) + "\n")
        print(f"baseline written to {args.baseline}")
        return 0

    status = 0
    if args.require_warm_speedup is not None:
        speedup = report["warm_speedup"]["total"]
        if speedup < args.require_warm_speedup:
            print(f"FAIL: total warm setup speedup {speedup:.2f}x < "
                  f"required {args.require_warm_speedup:g}x", file=sys.stderr)
            status = 1
    if args.check:
        if not args.baseline.exists():
            print(f"no baseline at {args.baseline}; run --write-baseline",
                  file=sys.stderr)
            return 1
        failures = check_regressions(report,
                                     json.loads(args.baseline.read_text()))
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        status = status or (1 if failures else 0)
    return status


if __name__ == "__main__":
    sys.exit(main())

"""Shared infrastructure for the benchmark harness.

Every module in this directory regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index).  Conventions:

* Problem scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
  (``tiny`` by default so the whole harness runs in a few minutes; ``small`` or
  ``medium`` reproduce the trends on larger problems).
* Each module prints its reproduced table/series to stdout (run pytest with
  ``-s`` to see it) and asserts the qualitative shape the paper reports.
* pytest-benchmark measures the wall-clock of one representative solve per
  module (``rounds=1`` — the solves are deterministic and expensive).
"""

from __future__ import annotations

import functools
import os

import pytest

from repro.experiments import build_problem

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "tiny")

#: number of block-Jacobi blocks used throughout the harness (the paper uses
#: one per hardware thread; at reproduction scale a handful keeps blocks from
#: becoming trivially small)
BENCH_NBLOCKS = int(os.environ.get("REPRO_BENCH_NBLOCKS", "16"))


@functools.lru_cache(maxsize=None)
def cached_problem(name: str):
    """Build (and cache) a problem at the harness scale."""
    return build_problem(name, scale=BENCH_SCALE, seed=0)


@functools.lru_cache(maxsize=None)
def cached_cpu_preconditioner(name: str):
    """fp64 block-Jacobi ILU(0)/IC(0) for the named problem (CPU track)."""
    return cached_problem(name).cpu_preconditioner(nblocks=BENCH_NBLOCKS)


@functools.lru_cache(maxsize=None)
def cached_gpu_preconditioner(name: str):
    """fp64 SD-AINV for the named problem (GPU track)."""
    return cached_problem(name).gpu_preconditioner()


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE

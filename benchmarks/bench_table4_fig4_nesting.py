"""Table 4 and Figure 4 — nesting-depth variants F2, fp16-F2, F3, fp16-F3, F4.

Table 4 is the precision schedule of the five comparison solvers; Figure 4
relates their convergence and modeled performance to fp16-F3R.

Shape assertions (Section 6.2):
* F4 converges like fp16-F3R (validating Assumption (ii) for m4 = 2) but moves
  more data per preconditioning step (the Richardson level skips the Arnoldi
  process);
* F2 converges but pays the full FGMRES(64) Arnoldi cost per preconditioning,
  so its per-step traffic exceeds fp16-F3R's;
* fully-fp16 long inner cycles (fp16-F2) converge more slowly than their
  fp32-vector counterparts or fail — the "precision overflow" failure mode.
"""

from __future__ import annotations

from repro.core import VARIANT_SPECS, variant_description
from repro.experiments import format_table, run_f3r, run_variant
from repro.perf import CPU_NODE

from conftest import cached_cpu_preconditioner, cached_problem

PROBLEMS = ["Emilia_923", "hpcg_7_7_7"]
VARIANTS = ["F2", "fp16-F2", "F3", "fp16-F3", "F4"]


def table4_rows() -> list[dict]:
    rows = []
    for name in VARIANTS:
        specs = VARIANT_SPECS[name]()
        for spec in specs:
            rows.append({
                "solver": name,
                "part": spec.label,
                "A": spec.precisions.matrix.label,
                "vectors": spec.precisions.vector.label,
                "M": (spec.precisions.preconditioner.label
                      if spec.precisions.preconditioner else "-"),
            })
    return rows


def test_table4_variant_schedules():
    rows = table4_rows()
    by = {(r["solver"], r["part"]): r for r in rows}
    # Table 4 spot checks
    assert by[("F2", "F64")]["A"] == "fp32" and by[("F2", "F64")]["M"] == "fp16"
    assert by[("fp16-F2", "F64")]["vectors"] == "fp16"
    assert by[("F3", "F8")]["A"] in ("fp32", "fp16")
    assert by[("F4", "F2")]["A"] == "fp16" and by[("F4", "F2")]["M"] == "fp16"
    print()
    print(format_table(rows, title="Table 4: nesting-depth comparison solvers"))
    for name in VARIANTS:
        print(f"  {name}: {variant_description(name)}")


def figure4_rows() -> list[dict]:
    rows = []
    for problem_name in PROBLEMS:
        problem = cached_problem(problem_name)
        precond = cached_cpu_preconditioner(problem_name)
        reference = run_f3r(problem, precond, variant="fp16")
        assert reference.converged
        for variant in VARIANTS:
            record = run_variant(problem, precond, variant)
            rows.append({
                "matrix": problem_name,
                "solver": variant,
                "converged": record.converged,
                "relative_convergence": (reference.preconditioner_applications
                                         / record.preconditioner_applications
                                         if record.converged else float("nan")),
                "relative_performance": (reference.modeled_time / record.modeled_time
                                         if record.converged else float("nan")),
                "bytes_per_precondition": (record.counter.total_bytes
                                           / max(1, record.preconditioner_applications)),
                "_f3r_bytes_per_precondition": (reference.counter.total_bytes
                                                / max(1, reference.preconditioner_applications)),
            })
    return rows


def _assert_fig4_shape(rows: list[dict]) -> None:
    by = {(r["matrix"], r["solver"]): r for r in rows}
    for problem_name in PROBLEMS:
        f4 = by[(problem_name, "F4")]
        assert f4["converged"]
        # Richardson innermost (fp16-F3R) is cheaper per preconditioning than F4
        assert f4["_f3r_bytes_per_precondition"] < f4["bytes_per_precondition"]
        f2 = by[(problem_name, "F2")]
        if f2["converged"]:
            assert f2["_f3r_bytes_per_precondition"] < f2["bytes_per_precondition"]


def _run_and_report() -> list[dict]:
    rows = figure4_rows()
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    print()
    print(format_table(display,
                       title="Figure 4: nesting-depth variants relative to fp16-F3R "
                             "(>1 means the variant is better)",
                       float_fmt="{:.2f}"))
    return rows


def test_benchmark_figure4_nesting_depth(benchmark):
    rows = benchmark.pedantic(_run_and_report, rounds=1, iterations=1)
    _assert_fig4_shape(rows)

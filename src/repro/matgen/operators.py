"""Matrix-free counterparts of the assembled stencil generators.

Every regular-grid generator in this package has a
:class:`~repro.operators.StencilOperator` twin here, built from the same
stencil coefficients on the same grid layout — ``<name>_operator(...)``
produces the operator whose :meth:`~repro.operators.StencilOperator.assemble`
is entry-for-entry the matrix ``<name>(...)`` builds (the equivalence tests
pin this).  The assembled generators index their grids x-fastest
(``idx = ix + nx*(iy + ny*iz)``) except the Poisson family, which uses
NumPy's C order; the operators translate both into the C-ordered ``dims``
convention of :class:`StencilOperator`.
"""

from __future__ import annotations

from ..operators import StencilOperator

__all__ = [
    "anisotropic_diffusion_3d_operator",
    "convection_diffusion_2d_operator",
    "convection_diffusion_3d_operator",
    "hpcg_operator",
    "hpgmp_operator",
    "laplacian_1d_operator",
    "poisson2d_operator",
    "poisson3d_operator",
    "stencil27_operator",
]


def laplacian_1d_operator(n: int, scale: float = 1.0) -> StencilOperator:
    """Matrix-free twin of :func:`repro.matgen.laplacian_1d`."""
    return StencilOperator((n,), [(0,), (-1,), (1,)],
                           [2.0 * scale, -1.0 * scale, -1.0 * scale])


def poisson2d_operator(nx: int, ny: int | None = None) -> StencilOperator:
    """Matrix-free twin of :func:`repro.matgen.poisson2d` (5-point)."""
    ny = nx if ny is None else ny
    offsets = [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)]
    return StencilOperator((nx, ny), offsets, [4.0, -1.0, -1.0, -1.0, -1.0])


def poisson3d_operator(nx: int, ny: int | None = None,
                       nz: int | None = None) -> StencilOperator:
    """Matrix-free twin of :func:`repro.matgen.poisson3d` (7-point)."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    offsets = [(0, 0, 0), (-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0),
               (0, 0, -1), (0, 0, 1)]
    return StencilOperator((nx, ny, nz), offsets, [6.0] + [-1.0] * 6)


def stencil27_operator(
    nx: int,
    ny: int,
    nz: int,
    diag_value: float = 26.0,
    off_value: float = -1.0,
    z_forward_value: float | None = None,
    z_backward_value: float | None = None,
) -> StencilOperator:
    """Matrix-free twin of :func:`repro.matgen.stencil27_matrix`.

    The assembled generator indexes x-fastest, so the C-ordered grid is
    ``(nz, ny, nx)`` with offsets ``(dz, dy, dx)``.
    """
    zf = off_value if z_forward_value is None else z_forward_value
    zb = off_value if z_backward_value is None else z_backward_value
    offsets, values = [], []
    for dz in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                offsets.append((dz, dy, dx))
                if (dx, dy, dz) == (0, 0, 0):
                    values.append(diag_value)
                elif (dx, dy, dz) == (0, 0, 1):
                    values.append(zf)
                elif (dx, dy, dz) == (0, 0, -1):
                    values.append(zb)
                else:
                    values.append(off_value)
    return StencilOperator((nz, ny, nx), offsets, values)


def hpcg_operator(nx: int, ny: int | None = None,
                  nz: int | None = None) -> StencilOperator:
    """Matrix-free twin of :func:`repro.matgen.hpcg_matrix`."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    return stencil27_operator(nx, ny, nz, diag_value=26.0, off_value=-1.0)


def hpgmp_operator(nx: int, ny: int | None = None, nz: int | None = None,
                   beta: float = 0.5) -> StencilOperator:
    """Matrix-free twin of :func:`repro.matgen.hpgmp_matrix`."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    return stencil27_operator(nx, ny, nz, diag_value=26.0, off_value=-1.0,
                              z_forward_value=-1.0 + beta,
                              z_backward_value=-1.0 - beta)


def convection_diffusion_2d_operator(
        nx: int, ny: int | None = None, peclet: float = 10.0,
        velocity: tuple[float, float] = (1.0, 0.5)) -> StencilOperator:
    """Matrix-free twin of :func:`repro.matgen.convection_diffusion_2d`."""
    ny = nx if ny is None else ny
    h = 1.0 / (nx + 1)
    vx, vy = velocity
    cx = peclet * abs(vx) * h
    cy = peclet * abs(vy) * h
    # x-fastest assembled indexing -> C-ordered dims (ny, nx), offsets (dy, dx)
    offsets = [(0, 0), (0, -1), (0, 1), (-1, 0), (1, 0)]
    values = [
        4.0 + cx + cy,
        -1.0 - (cx if vx > 0 else 0.0),   # west (upwind for vx > 0)
        -1.0 - (cx if vx < 0 else 0.0),   # east
        -1.0 - (cy if vy > 0 else 0.0),   # south
        -1.0 - (cy if vy < 0 else 0.0),   # north
    ]
    return StencilOperator((ny, nx), offsets, values)


def convection_diffusion_3d_operator(
        nx: int, ny: int | None = None, nz: int | None = None,
        peclet: float = 10.0,
        velocity: tuple[float, float, float] = (1.0, 0.5, 0.25)) -> StencilOperator:
    """Matrix-free twin of :func:`repro.matgen.convection_diffusion_3d`."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    h = 1.0 / (nx + 1)
    vx, vy, vz = velocity
    cx = peclet * abs(vx) * h
    cy = peclet * abs(vy) * h
    cz = peclet * abs(vz) * h
    offsets = [(0, 0, 0), (0, 0, -1), (0, 0, 1), (0, -1, 0), (0, 1, 0),
               (-1, 0, 0), (1, 0, 0)]
    values = [
        6.0 + cx + cy + cz,
        -1.0 - (cx if vx > 0 else 0.0),
        -1.0 - (cx if vx < 0 else 0.0),
        -1.0 - (cy if vy > 0 else 0.0),
        -1.0 - (cy if vy < 0 else 0.0),
        -1.0 - (cz if vz > 0 else 0.0),
        -1.0 - (cz if vz < 0 else 0.0),
    ]
    return StencilOperator((nz, ny, nx), offsets, values)


def anisotropic_diffusion_3d_operator(
        nx: int, ny: int | None = None, nz: int | None = None,
        epsilon_y: float = 1e-2, epsilon_z: float = 1e-4) -> StencilOperator:
    """Matrix-free twin of :func:`repro.matgen.anisotropic_diffusion_3d`."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    offsets = [(0, 0, 0), (0, 0, -1), (0, 0, 1), (0, -1, 0), (0, 1, 0),
               (-1, 0, 0), (1, 0, 0)]
    values = [
        2.0 * (1.0 + epsilon_y + epsilon_z),
        -1.0, -1.0,
        -epsilon_y, -epsilon_y,
        -epsilon_z, -epsilon_z,
    ]
    return StencilOperator((nz, ny, nx), offsets, values)

"""Matrix generators: HPCG/HPGMP stencils, PDE model problems, SuiteSparse surrogates."""

from .stencil import hpcg_matrix, hpgmp_matrix, stencil27_matrix
from .poisson import laplacian_1d, poisson2d, poisson3d
from .convdiff import (
    anisotropic_diffusion_3d,
    convection_diffusion_2d,
    convection_diffusion_3d,
)
from .suitesparse_like import circuit_like, elasticity_like, flow_like, stokes_like
from .random_matrices import (
    random_diagonally_dominant,
    random_sparse,
    random_spd,
    random_tridiagonal,
)
from .operators import (
    anisotropic_diffusion_3d_operator,
    convection_diffusion_2d_operator,
    convection_diffusion_3d_operator,
    hpcg_operator,
    hpgmp_operator,
    laplacian_1d_operator,
    poisson2d_operator,
    poisson3d_operator,
    stencil27_operator,
)
from .registry import (
    MATRIX_REGISTRY,
    MatrixSpec,
    get_matrix,
    list_matrices,
    nonsymmetric_matrices,
    symmetric_matrices,
    table2_rows,
)

__all__ = [
    "hpcg_matrix",
    "hpgmp_matrix",
    "stencil27_matrix",
    "laplacian_1d",
    "poisson2d",
    "poisson3d",
    "anisotropic_diffusion_3d",
    "convection_diffusion_2d",
    "convection_diffusion_3d",
    "circuit_like",
    "elasticity_like",
    "flow_like",
    "stokes_like",
    "random_diagonally_dominant",
    "random_sparse",
    "random_spd",
    "random_tridiagonal",
    "anisotropic_diffusion_3d_operator",
    "convection_diffusion_2d_operator",
    "convection_diffusion_3d_operator",
    "hpcg_operator",
    "hpgmp_operator",
    "laplacian_1d_operator",
    "poisson2d_operator",
    "poisson3d_operator",
    "stencil27_operator",
    "MATRIX_REGISTRY",
    "MatrixSpec",
    "get_matrix",
    "list_matrices",
    "nonsymmetric_matrices",
    "symmetric_matrices",
    "table2_rows",
]

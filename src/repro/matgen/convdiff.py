"""Convection–diffusion and anisotropic diffusion model problems.

These generators provide the *non-symmetric* and *ill-conditioned symmetric*
problem classes of the paper's test set:

* upwind convection–diffusion (surrogate for atmosmodd/atmosmodj/atmosmodl,
  Transport, t2em, tmt_unsym): non-symmetric, diagonally dominant, convergence
  behaviour governed by the Péclet number;
* anisotropic diffusion (surrogate for the hard structural SPD matrices
  Emilia_923, Serena, audikw_1, ldoor, Bump_2911, Queen_4147): SPD but with a
  large coefficient contrast, so block-Jacobi ILU needs many iterations —
  matching the paper's iteration counts in the thousands for those matrices.
"""

from __future__ import annotations

import numpy as np

from ..sparse import COOMatrix, CSRMatrix

__all__ = ["convection_diffusion_2d", "convection_diffusion_3d", "anisotropic_diffusion_3d"]


def _assemble(n: int, entries: list[tuple[np.ndarray, np.ndarray, np.ndarray]]) -> CSRMatrix:
    rows = np.concatenate([e[0] for e in entries]).astype(np.int32)
    cols = np.concatenate([e[1] for e in entries]).astype(np.int32)
    vals = np.concatenate([e[2] for e in entries])
    return COOMatrix(rows, cols, vals, (n, n)).to_csr()


def convection_diffusion_2d(nx: int, ny: int | None = None,
                            peclet: float = 10.0,
                            velocity: tuple[float, float] = (1.0, 0.5)) -> CSRMatrix:
    """Upwind-discretized 2-D convection–diffusion on an nx × ny grid.

    ``-Δu + Pe (v·∇)u`` with first-order upwinding; the matrix is an M-matrix
    (row-diagonally dominant) but non-symmetric, with the asymmetry growing
    with ``peclet``.
    """
    ny = nx if ny is None else ny
    n = nx * ny
    idx = np.arange(n, dtype=np.int64)
    ix = idx % nx
    iy = idx // nx
    h = 1.0 / (nx + 1)
    vx, vy = velocity
    cx = peclet * abs(vx) * h
    cy = peclet * abs(vy) * h

    entries = []
    diag = np.full(n, 4.0 + cx + cy, dtype=np.float64)
    entries.append((idx, idx, diag))

    def neighbour(mask: np.ndarray, offset: int, value: float) -> None:
        rows = idx[mask]
        entries.append((rows, rows + offset, np.full(rows.size, value, dtype=np.float64)))

    # x-direction: upwind puts the convective term on the upstream neighbour.
    west_val = -1.0 - (cx if vx > 0 else 0.0)
    east_val = -1.0 - (cx if vx < 0 else 0.0)
    south_val = -1.0 - (cy if vy > 0 else 0.0)
    north_val = -1.0 - (cy if vy < 0 else 0.0)

    neighbour(ix > 0, -1, west_val)
    neighbour(ix < nx - 1, +1, east_val)
    neighbour(iy > 0, -nx, south_val)
    neighbour(iy < ny - 1, +nx, north_val)
    return _assemble(n, entries)


def convection_diffusion_3d(nx: int, ny: int | None = None, nz: int | None = None,
                            peclet: float = 10.0,
                            velocity: tuple[float, float, float] = (1.0, 0.5, 0.25)) -> CSRMatrix:
    """Upwind-discretized 3-D convection–diffusion (7-point + upwind convection)."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    n = nx * ny * nz
    idx = np.arange(n, dtype=np.int64)
    ix = idx % nx
    iy = (idx // nx) % ny
    iz = idx // (nx * ny)
    h = 1.0 / (nx + 1)
    vx, vy, vz = velocity
    cx = peclet * abs(vx) * h
    cy = peclet * abs(vy) * h
    cz = peclet * abs(vz) * h

    entries = []
    entries.append((idx, idx, np.full(n, 6.0 + cx + cy + cz, dtype=np.float64)))

    def neighbour(mask: np.ndarray, offset: int, value: float) -> None:
        rows = idx[mask]
        entries.append((rows, rows + offset, np.full(rows.size, value, dtype=np.float64)))

    neighbour(ix > 0, -1, -1.0 - (cx if vx > 0 else 0.0))
    neighbour(ix < nx - 1, +1, -1.0 - (cx if vx < 0 else 0.0))
    neighbour(iy > 0, -nx, -1.0 - (cy if vy > 0 else 0.0))
    neighbour(iy < ny - 1, +nx, -1.0 - (cy if vy < 0 else 0.0))
    neighbour(iz > 0, -nx * ny, -1.0 - (cz if vz > 0 else 0.0))
    neighbour(iz < nz - 1, +nx * ny, -1.0 - (cz if vz < 0 else 0.0))
    return _assemble(n, entries)


def anisotropic_diffusion_3d(nx: int, ny: int | None = None, nz: int | None = None,
                             epsilon_y: float = 1e-2, epsilon_z: float = 1e-4) -> CSRMatrix:
    """7-point anisotropic diffusion: conductivity 1 along x, εy along y, εz along z.

    Strong anisotropy makes point/block-ILU smoothers much less effective,
    reproducing the slow-converging SPD problem class (thousands of
    preconditioned iterations) of the paper's structural matrices.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    n = nx * ny * nz
    idx = np.arange(n, dtype=np.int64)
    ix = idx % nx
    iy = (idx // nx) % ny
    iz = idx // (nx * ny)

    entries = []
    entries.append((idx, idx, np.full(n, 2.0 * (1.0 + epsilon_y + epsilon_z), dtype=np.float64)))

    def neighbour(mask: np.ndarray, offset: int, value: float) -> None:
        rows = idx[mask]
        entries.append((rows, rows + offset, np.full(rows.size, value, dtype=np.float64)))

    neighbour(ix > 0, -1, -1.0)
    neighbour(ix < nx - 1, +1, -1.0)
    neighbour(iy > 0, -nx, -epsilon_y)
    neighbour(iy < ny - 1, +nx, -epsilon_y)
    neighbour(iz > 0, -nx * ny, -epsilon_z)
    neighbour(iz < nz - 1, +nx * ny, -epsilon_z)
    return _assemble(n, entries)

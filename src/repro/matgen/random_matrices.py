"""Random matrix generators for tests and property-based checks.

These are not surrogates for any paper matrix; they exist so the test suite
and hypothesis strategies can exercise the sparse substrate and solvers on
matrices with controlled properties (SPD, diagonally dominant, given density).
"""

from __future__ import annotations

import numpy as np

from ..sparse import COOMatrix, CSRMatrix

__all__ = [
    "random_sparse",
    "random_diagonally_dominant",
    "random_spd",
    "random_tridiagonal",
]


def random_sparse(n: int, density: float = 0.05, seed: int = 0,
                  symmetric: bool = False) -> CSRMatrix:
    """Random sparse matrix with roughly ``density * n^2`` nonzeros.

    The diagonal is always present (shifted to avoid exact singularity), which
    keeps the result usable with ILU(0)-type preconditioners.
    """
    rng = np.random.default_rng(seed)
    nnz_target = max(n, int(density * n * n))
    rows = rng.integers(0, n, size=nnz_target)
    cols = rng.integers(0, n, size=nnz_target)
    vals = rng.standard_normal(nnz_target)
    if symmetric:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
        vals = np.concatenate([vals, vals])
    diag_idx = np.arange(n, dtype=np.int64)
    diag_vals = n * density + 1.0 + rng.uniform(0.0, 1.0, size=n)
    rows = np.concatenate([rows, diag_idx])
    cols = np.concatenate([cols, diag_idx])
    vals = np.concatenate([vals, diag_vals])
    return COOMatrix(rows.astype(np.int32), cols.astype(np.int32), vals, (n, n)).to_csr()


def random_diagonally_dominant(n: int, nnz_per_row: int = 5, seed: int = 0,
                               symmetric: bool = False, dominance: float = 1.1) -> CSRMatrix:
    """Random sparse matrix whose diagonal strictly dominates each row.

    Strict diagonal dominance guarantees ILU(0) exists without breakdown and
    that Jacobi/Richardson iterations converge, which makes these matrices the
    workhorse of the solver unit tests.
    """
    rng = np.random.default_rng(seed)
    k = max(1, min(nnz_per_row - 1, n - 1))
    rows = np.repeat(np.arange(n, dtype=np.int64), k)
    cols = rng.integers(0, n, size=n * k)
    # avoid accidental diagonal hits: shift them by one (mod n)
    hits = cols == rows
    cols[hits] = (cols[hits] + 1) % n
    vals = rng.uniform(-1.0, 1.0, size=n * k)

    if symmetric:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
        vals = np.concatenate([vals, vals])

    row_abs = np.zeros(n, dtype=np.float64)
    np.add.at(row_abs, rows, np.abs(vals))
    diag = dominance * row_abs + 1.0

    rows = np.concatenate([rows, np.arange(n, dtype=np.int64)])
    cols = np.concatenate([cols, np.arange(n, dtype=np.int64)])
    vals = np.concatenate([vals, diag])
    return COOMatrix(rows.astype(np.int32), cols.astype(np.int32), vals, (n, n)).to_csr()


def random_spd(n: int, nnz_per_row: int = 5, seed: int = 0,
               dominance: float = 1.1) -> CSRMatrix:
    """Random sparse symmetric positive-definite matrix (via symmetric dominance)."""
    return random_diagonally_dominant(n, nnz_per_row=nnz_per_row, seed=seed,
                                      symmetric=True, dominance=dominance)


def random_tridiagonal(n: int, seed: int = 0, spd: bool = True) -> CSRMatrix:
    """Random tridiagonal matrix, optionally SPD (dominant positive diagonal)."""
    rng = np.random.default_rng(seed)
    lower = rng.uniform(-1.0, -0.1, size=n - 1)
    upper = lower.copy() if spd else rng.uniform(-1.0, -0.1, size=n - 1)
    diag = np.zeros(n)
    diag[:-1] += np.abs(upper)
    diag[1:] += np.abs(lower)
    diag += rng.uniform(0.5, 1.5, size=n)

    rows = np.concatenate([np.arange(n), np.arange(n - 1), np.arange(1, n)])
    cols = np.concatenate([np.arange(n), np.arange(1, n), np.arange(n - 1)])
    vals = np.concatenate([diag, upper, lower])
    return COOMatrix(rows.astype(np.int32), cols.astype(np.int32), vals, (n, n)).to_csr()

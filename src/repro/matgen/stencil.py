"""HPCG and HPGMP benchmark matrix generators.

The paper's regular test problems come from the HPCG benchmark (27-point
stencil on a 3-D grid: diagonal 26, off-diagonals −1) and from the HPGMP
benchmark, which modifies HPCG by replacing the couplings to the forward and
backward neighbours along the z-axis with ``−1 + β`` and ``−1 − β`` (β = 0.5
in the paper's experiments), making the matrix non-symmetric.

Both constructions are fully specified in the paper, so they are reimplemented
here exactly (at reproduction-scale grid sizes).
"""

from __future__ import annotations

import numpy as np

from ..sparse import COOMatrix, CSRMatrix

__all__ = ["hpcg_matrix", "hpgmp_matrix", "stencil27_matrix"]


def _grid_indices(nx: int, ny: int, nz: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(ix, iy, iz) coordinates of every grid point in lexicographic order."""
    idx = np.arange(nx * ny * nz, dtype=np.int64)
    ix = idx % nx
    iy = (idx // nx) % ny
    iz = idx // (nx * ny)
    return ix, iy, iz


def stencil27_matrix(
    nx: int,
    ny: int,
    nz: int,
    diag_value: float = 26.0,
    off_value: float = -1.0,
    z_forward_value: float | None = None,
    z_backward_value: float | None = None,
) -> CSRMatrix:
    """General 27-point stencil matrix on an ``nx × ny × nz`` grid.

    ``z_forward_value`` / ``z_backward_value`` override the coupling to the
    (0, 0, +1) and (0, 0, −1) neighbours respectively, which is how HPGMP
    breaks symmetry; left as ``None`` they default to ``off_value``.
    """
    if min(nx, ny, nz) < 1:
        raise ValueError("grid dimensions must be positive")
    zf = off_value if z_forward_value is None else z_forward_value
    zb = off_value if z_backward_value is None else z_backward_value

    n = nx * ny * nz
    ix, iy, iz = _grid_indices(nx, ny, nz)

    rows_list: list[np.ndarray] = []
    cols_list: list[np.ndarray] = []
    vals_list: list[np.ndarray] = []

    for dz in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                jx = ix + dx
                jy = iy + dy
                jz = iz + dz
                valid = (
                    (jx >= 0) & (jx < nx)
                    & (jy >= 0) & (jy < ny)
                    & (jz >= 0) & (jz < nz)
                )
                rows = np.flatnonzero(valid)
                cols = jx[valid] + nx * (jy[valid] + ny * jz[valid])
                if dx == 0 and dy == 0 and dz == 0:
                    value = diag_value
                elif dx == 0 and dy == 0 and dz == 1:
                    value = zf
                elif dx == 0 and dy == 0 and dz == -1:
                    value = zb
                else:
                    value = off_value
                rows_list.append(rows)
                cols_list.append(cols)
                vals_list.append(np.full(rows.size, value, dtype=np.float64))

    coo = COOMatrix(
        np.concatenate(rows_list).astype(np.int32),
        np.concatenate(cols_list).astype(np.int32),
        np.concatenate(vals_list),
        (n, n),
    )
    return coo.to_csr()


def hpcg_matrix(nx: int, ny: int | None = None, nz: int | None = None) -> CSRMatrix:
    """HPCG benchmark matrix: symmetric 27-point stencil, diag 26, off-diag −1.

    With a single argument, a cube ``nx³`` grid is generated, matching the
    paper's ``hpcg_x_y_z`` naming where the suffix is log2 of each dimension.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    return stencil27_matrix(nx, ny, nz, diag_value=26.0, off_value=-1.0)


def hpgmp_matrix(nx: int, ny: int | None = None, nz: int | None = None,
                 beta: float = 0.5) -> CSRMatrix:
    """HPGMP benchmark matrix: HPCG with z-axis couplings −1+β (forward) and
    −1−β (backward), non-symmetric for β ≠ 0.  The paper uses β = 0.5."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    return stencil27_matrix(
        nx, ny, nz,
        diag_value=26.0, off_value=-1.0,
        z_forward_value=-1.0 + beta, z_backward_value=-1.0 - beta,
    )

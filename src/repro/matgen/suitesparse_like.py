"""Synthetic surrogates for the paper's SuiteSparse test matrices.

The paper evaluates on large SuiteSparse matrices (up to 16.8M rows) that are
not redistributable inside this offline reproduction.  Each surrogate below
generates a matrix in the same *behaviour class* — symmetry, nnz/row density,
conditioning difficulty, structure — at laptop-feasible size, so the solver
comparisons retain their shape.  The mapping from paper matrix name to
surrogate lives in :mod:`repro.matgen.registry`.

Behaviour classes
-----------------
* ``circuit_like``         — very sparse (≈5 nnz/row) irregular SPD/nonsymmetric
  graph problems (G3_circuit, Freescale1, rajat31, t2em).
* ``elasticity_like``      — dense-stencil SPD problems with strong coefficient
  contrast; slow ILU convergence (audikw_1, Serena, Emilia_923, ldoor,
  Bump_2911, Queen_4147).
* ``flow_like``            — nonsymmetric convective problems (atmosmod*,
  Transport, tmt_unsym).
* ``stokes_like``          — hard nonsymmetric problems with near-singular
  diagonal blocks where BiCGStab/FGMRES(64) tend to fail (ss, stokes,
  vas_stokes_1M/2M).
"""

from __future__ import annotations

import numpy as np

from ..sparse import COOMatrix, CSRMatrix
from .convdiff import anisotropic_diffusion_3d, convection_diffusion_3d
from .stencil import stencil27_matrix

__all__ = ["circuit_like", "elasticity_like", "flow_like", "stokes_like"]


def _add_random_symmetric_edges(coo_rows, coo_cols, coo_vals, n, n_edges, rng, weight_scale):
    """Append random symmetric off-diagonal couplings (graph edges)."""
    i = rng.integers(0, n, size=n_edges)
    j = rng.integers(0, n, size=n_edges)
    keep = i != j
    i, j = i[keep], j[keep]
    w = -np.abs(rng.uniform(0.1, 1.0, size=i.size)) * weight_scale
    coo_rows.extend([i, j])
    coo_cols.extend([j, i])
    coo_vals.extend([w, w])
    return i, j, w


def circuit_like(n: int, extra_edge_factor: float = 1.5, symmetric: bool = True,
                 seed: int = 0) -> CSRMatrix:
    """Irregular graph-Laplacian-like matrix with ≈5 nonzeros per row.

    A 1-D chain provides the baseline connectivity (so the graph is connected);
    random long-range edges give the irregular circuit structure.  The result
    is diagonally dominant: a shifted graph Laplacian, SPD when ``symmetric``.
    """
    rng = np.random.default_rng(seed)
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []

    # backbone chain
    idx = np.arange(n - 1, dtype=np.int64)
    w = -np.abs(rng.uniform(0.5, 1.5, size=n - 1))
    rows.extend([idx, idx + 1])
    cols.extend([idx + 1, idx])
    vals.extend([w, w])

    n_extra = int(extra_edge_factor * n)
    _add_random_symmetric_edges(rows, cols, vals, n, n_extra, rng, weight_scale=1.0)

    rows_arr = np.concatenate(rows)
    cols_arr = np.concatenate(cols)
    vals_arr = np.concatenate(vals)

    if not symmetric:
        # perturb the couplings asymmetrically (row-dependent factor)
        vals_arr = vals_arr * (1.0 + 0.3 * rng.standard_normal(vals_arr.size))

    # diagonal = |row sum of off-diagonals| + shift, guaranteeing dominance
    diag = np.zeros(n, dtype=np.float64)
    np.add.at(diag, rows_arr, np.abs(vals_arr))
    diag += 0.05 * np.mean(diag[diag > 0]) if np.any(diag > 0) else 1.0

    rows_all = np.concatenate([rows_arr, np.arange(n, dtype=np.int64)])
    cols_all = np.concatenate([cols_arr, np.arange(n, dtype=np.int64)])
    vals_all = np.concatenate([vals_arr, diag])
    return COOMatrix(rows_all.astype(np.int32), cols_all.astype(np.int32), vals_all,
                     (n, n)).to_csr()


def elasticity_like(nx: int, ny: int | None = None, nz: int | None = None,
                    contrast: float = 1e3, seed: int = 0) -> CSRMatrix:
    """SPD 27-point-stencil problem with piecewise-constant coefficient jumps.

    The grid is partitioned into random material regions whose conductivities
    span ``[1, contrast]``; the stencil couplings are scaled by the harmonic
    mean of the incident coefficients.  High nnz/row (27) and the coefficient
    contrast reproduce the structural-mechanics behaviour class: SPD, but ILU-
    preconditioned Krylov needs thousands of iterations at large contrast.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    rng = np.random.default_rng(seed)

    base = stencil27_matrix(nx, ny, nz, diag_value=26.0, off_value=-1.0)
    n = base.nrows

    # random material id per grid point, 8 regions with log-uniform coefficients
    n_regions = 8
    coeffs = np.exp(np.linspace(0.0, np.log(contrast), n_regions))
    region = rng.integers(0, n_regions, size=n)
    kappa = coeffs[region]

    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(base.indptr))
    cols = base.indices.astype(np.int64)
    vals = base.values.astype(np.float64).copy()
    # harmonic mean of the two incident coefficients scales each coupling
    hmean = 2.0 * kappa[rows] * kappa[cols] / (kappa[rows] + kappa[cols])
    off = rows != cols
    vals[off] *= hmean[off]
    # rebuild the diagonal as the off-diagonal row sum plus a small shift,
    # keeping the matrix symmetric positive definite despite the contrast
    diag_from_offs = np.zeros(n, dtype=np.float64)
    np.add.at(diag_from_offs, rows[off], -vals[off])
    new_diag = diag_from_offs + 1e-3 * np.maximum(diag_from_offs, 1.0)
    vals[~off] = new_diag[rows[~off]]

    return CSRMatrix(vals, base.indices.copy(), base.indptr.copy(), base.shape)


def flow_like(nx: int, ny: int | None = None, nz: int | None = None,
              peclet: float = 20.0, seed: int = 0) -> CSRMatrix:
    """Nonsymmetric convective-flow problem (atmospheric-model class).

    Convection–diffusion with a rotational velocity field: each grid point gets
    a direction drawn from a smooth random field, so the asymmetry is spatially
    varying as in the atmosmod* matrices.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    rng = np.random.default_rng(seed)
    base = convection_diffusion_3d(nx, ny, nz, peclet=peclet,
                                   velocity=(1.0, 0.7, 0.4))
    # add a small random nonsymmetric perturbation to off-diagonals
    n = base.nrows
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(base.indptr))
    off = rows != base.indices
    vals = base.values.astype(np.float64).copy()
    vals[off] *= 1.0 + 0.1 * rng.standard_normal(np.count_nonzero(off))
    return CSRMatrix(vals, base.indices.copy(), base.indptr.copy(), base.shape)


def stokes_like(nx: int, ny: int | None = None, nz: int | None = None,
                viscosity_contrast: float = 3e3, skew: float = 0.6,
                diag_weakening: float = 0.15, seed: int = 0) -> CSRMatrix:
    """Hard nonsymmetric problem in the vas_stokes / stokes behaviour class.

    Built from the high-contrast elasticity-like stencil (the hard-SPD
    behaviour class) made nonsymmetric by (i) a multiplicative convective skew
    on the x-neighbour couplings and (ii) random weakening of the diagonal.
    These are the problems where the paper's block-ILU-preconditioned solvers
    need thousands of preconditioning steps and where BiCGStab / restarted
    FGMRES(64) struggle while F3R grinds through; the surrogate reproduces the
    slow-convergence regime (hundreds of preconditionings) at laptop scale.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    rng = np.random.default_rng(seed)

    base = elasticity_like(nx, ny, nz, contrast=viscosity_contrast, seed=seed)
    n = base.nrows
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(base.indptr))
    cols = base.indices.astype(np.int64)
    vals = base.values.astype(np.float64).copy()

    # multiplicative convective skew on the x-neighbour couplings
    forward = cols == rows + 1
    backward = cols == rows - 1
    vals[forward] *= 1.0 + skew
    vals[backward] *= 1.0 - skew

    # weaken the diagonal (but keep it positive) to emulate the near-saddle-point
    # character that defeats short-recurrence methods
    diag_mask = rows == cols
    vals[diag_mask] *= 1.0 - diag_weakening * rng.uniform(0.0, 1.0,
                                                          size=np.count_nonzero(diag_mask))

    return CSRMatrix(vals, base.indices.copy(), base.indptr.copy(), base.shape)

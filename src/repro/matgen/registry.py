"""Registry of the paper's test matrices (Table 2) and their surrogates.

For each matrix the paper evaluates, the registry records the original
metadata (size, nonzeros, symmetry, αILU, αAINV from Table 2) and binds a
surrogate generator that reproduces the matrix's behaviour class at
reproduction scale.  Three scales are provided so tests can run in seconds
while the benchmark harness uses larger problems:

* ``tiny``   — unit-test scale (n ≈ 10²–10³)
* ``small``  — default benchmark scale (n ≈ 10³–10⁴)
* ``medium`` — extended benchmark scale (n ≈ 10⁴–10⁵)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..sparse import CSRMatrix
from .convdiff import convection_diffusion_3d
from .poisson import poisson2d, poisson3d
from .stencil import hpcg_matrix, hpgmp_matrix
from .suitesparse_like import circuit_like, elasticity_like, flow_like, stokes_like

__all__ = ["MatrixSpec", "MATRIX_REGISTRY", "get_matrix", "list_matrices",
           "symmetric_matrices", "nonsymmetric_matrices", "table2_rows"]

#: grid edge length per scale for stencil-based surrogates
_GRID = {"tiny": 8, "small": 14, "medium": 22}
#: row count per scale for graph-based surrogates
_GRAPH_N = {"tiny": 600, "small": 4000, "medium": 20000}


@dataclass(frozen=True)
class MatrixSpec:
    """One row of the paper's Table 2 plus the surrogate binding."""

    name: str
    paper_n: int
    paper_nnz: int
    symmetric: bool
    alpha_ilu: float
    alpha_ainv: float
    family: str
    generator: Callable[[str], CSRMatrix]
    note: str = ""

    @property
    def paper_nnz_per_row(self) -> float:
        return self.paper_nnz / self.paper_n

    def build(self, scale: str = "small") -> CSRMatrix:
        """Generate the surrogate matrix at the requested scale."""
        if scale not in _GRID:
            raise ValueError(f"unknown scale {scale!r}; choose from {sorted(_GRID)}")
        return self.generator(scale)


def _stencil_gen(factory, *, grid_factor: float = 1.0, **kwargs):
    def gen(scale: str) -> CSRMatrix:
        nx = max(4, int(round(_GRID[scale] * grid_factor)))
        return factory(nx, **kwargs)
    return gen


def _graph_gen(factory, *, n_factor: float = 1.0, **kwargs):
    def gen(scale: str) -> CSRMatrix:
        n = max(64, int(round(_GRAPH_N[scale] * n_factor)))
        return factory(n, **kwargs)
    return gen


def _poisson2d_gen(**kwargs):
    def gen(scale: str) -> CSRMatrix:
        nx = max(8, int(round(np.sqrt(_GRAPH_N[scale]))))
        return poisson2d(nx, **kwargs)
    return gen


_R: dict[str, MatrixSpec] = {}


def _register(spec: MatrixSpec) -> None:
    if spec.name in _R:
        raise ValueError(f"duplicate matrix name {spec.name!r}")
    _R[spec.name] = spec


# --------------------------------------------------------------------------- #
# Symmetric (SPD) matrices of Table 2
# --------------------------------------------------------------------------- #
_register(MatrixSpec(
    "Bump_2911", 2_911_419, 127_729_899, True, 1.1, 1.2, "structural",
    _stencil_gen(elasticity_like, contrast=3e3, seed=1),
    "reservoir-geomechanics SPD; surrogate: high-contrast elasticity-like stencil"))
_register(MatrixSpec(
    "Emilia_923", 923_136, 40_373_538, True, 1.0, 1.2, "structural",
    _stencil_gen(elasticity_like, contrast=2e3, seed=2),
    "geomechanical SPD; surrogate: high-contrast elasticity-like stencil"))
_register(MatrixSpec(
    "G3_circuit", 1_585_478, 7_660_826, True, 1.0, 1.0, "circuit",
    _graph_gen(circuit_like, symmetric=True, seed=3),
    "circuit simulation SPD; surrogate: irregular graph Laplacian"))
_register(MatrixSpec(
    "Queen_4147", 4_147_110, 316_548_962, True, 1.1, 1.3, "structural",
    _stencil_gen(elasticity_like, contrast=5e3, seed=4),
    "3D structural SPD, 76 nnz/row; surrogate: high-contrast elasticity-like stencil"))
_register(MatrixSpec(
    "Serena", 1_391_349, 64_131_971, True, 1.1, 1.2, "structural",
    _stencil_gen(elasticity_like, contrast=1e3, seed=5),
    "gas-reservoir SPD; surrogate: elasticity-like stencil"))
_register(MatrixSpec(
    "apache2", 715_176, 4_817_870, True, 1.0, 1.0, "poisson",
    _stencil_gen(poisson3d),
    "structural SPD 7-pt; no solver converged on CPU in the paper"))
_register(MatrixSpec(
    "audikw_1", 943_695, 77_651_847, True, 1.1, 1.6, "structural",
    _stencil_gen(elasticity_like, contrast=8e3, seed=6),
    "crankshaft FE SPD, 82 nnz/row; hardest αAINV in Table 2"))
_register(MatrixSpec(
    "ecology2", 999_999, 4_995_991, True, 1.0, 1.0, "poisson",
    _poisson2d_gen(),
    "2D circuit-theory ecology SPD 5-pt; FGMRES(64) fails, F3R converges"))
_register(MatrixSpec(
    "hpcg_7_7_7", 2_097_152, 55_742_968, True, 1.0, 1.0, "hpcg",
    _stencil_gen(hpcg_matrix, grid_factor=1.0),
    "HPCG 27-pt stencil, 2^7 per axis in the paper"))
_register(MatrixSpec(
    "hpcg_8_7_7", 4_194_304, 111_777_784, True, 1.0, 1.0, "hpcg",
    _stencil_gen(hpcg_matrix, grid_factor=1.15),
    "HPCG 27-pt stencil"))
_register(MatrixSpec(
    "hpcg_8_8_7", 8_388_608, 224_140_792, True, 1.0, 1.0, "hpcg",
    _stencil_gen(hpcg_matrix, grid_factor=1.3),
    "HPCG 27-pt stencil"))
_register(MatrixSpec(
    "hpcg_8_8_8", 16_777_216, 449_455_096, True, 1.0, 1.0, "hpcg",
    _stencil_gen(hpcg_matrix, grid_factor=1.45),
    "HPCG 27-pt stencil, largest"))
_register(MatrixSpec(
    "ldoor", 952_203, 42_493_817, True, 1.1, 1.3, "structural",
    _stencil_gen(elasticity_like, contrast=2.5e3, seed=7),
    "car-door FE SPD; surrogate: high-contrast elasticity-like stencil"))
_register(MatrixSpec(
    "thermal2", 1_228_045, 8_580_313, True, 1.0, 1.0, "poisson",
    _stencil_gen(poisson3d, grid_factor=1.1),
    "thermal FE SPD 7-pt-like"))
_register(MatrixSpec(
    "tmt_sym", 726_713, 5_080_961, True, 1.0, 1.0, "poisson",
    _poisson2d_gen(),
    "electromagnetics SPD 5-pt-like"))

# --------------------------------------------------------------------------- #
# Non-symmetric matrices of Table 2
# --------------------------------------------------------------------------- #
_register(MatrixSpec(
    "Freescale1", 3_428_755, 17_052_626, False, 1.1, 1.1, "circuit",
    _graph_gen(circuit_like, symmetric=False, seed=8),
    "circuit simulation nonsymmetric; no CPU solver converged in the paper"))
_register(MatrixSpec(
    "Transport", 1_602_111, 23_487_281, False, 1.0, 1.0, "flow",
    _stencil_gen(flow_like, peclet=30.0, seed=9),
    "FE flow transport; hard nonsymmetric"))
_register(MatrixSpec(
    "atmosmodd", 1_270_432, 8_814_880, False, 1.0, 1.0, "flow",
    _stencil_gen(convection_diffusion_3d, peclet=8.0, velocity=(1.0, 0.0, 0.0)),
    "atmospheric model; mildly nonsymmetric 7-pt"))
_register(MatrixSpec(
    "atmosmodj", 1_270_432, 8_814_880, False, 1.0, 1.0, "flow",
    _stencil_gen(convection_diffusion_3d, peclet=8.0, velocity=(0.0, 1.0, 0.0)),
    "atmospheric model; mildly nonsymmetric 7-pt"))
_register(MatrixSpec(
    "atmosmodl", 1_489_752, 10_319_760, False, 1.0, 1.0, "flow",
    _stencil_gen(convection_diffusion_3d, grid_factor=1.05, peclet=6.0,
                 velocity=(0.0, 0.0, 1.0)),
    "atmospheric model; easiest of the three"))
_register(MatrixSpec(
    "hpgmp_7_7_7", 2_097_152, 55_742_968, False, 1.0, 1.0, "hpgmp",
    _stencil_gen(hpgmp_matrix, grid_factor=1.0),
    "HPGMP 27-pt stencil with beta=0.5 z-coupling shift"))
_register(MatrixSpec(
    "hpgmp_8_7_7", 4_194_304, 111_777_784, False, 1.0, 1.0, "hpgmp",
    _stencil_gen(hpgmp_matrix, grid_factor=1.15),
    "HPGMP 27-pt stencil"))
_register(MatrixSpec(
    "hpgmp_8_8_7", 8_388_608, 224_140_792, False, 1.0, 1.0, "hpgmp",
    _stencil_gen(hpgmp_matrix, grid_factor=1.3),
    "HPGMP 27-pt stencil"))
_register(MatrixSpec(
    "hpgmp_8_8_8", 16_777_216, 449_455_096, False, 1.0, 1.0, "hpgmp",
    _stencil_gen(hpgmp_matrix, grid_factor=1.45),
    "HPGMP 27-pt stencil, largest"))
_register(MatrixSpec(
    "rajat31", 4_690_002, 20_316_253, False, 1.0, 1.0, "circuit",
    _graph_gen(circuit_like, symmetric=False, extra_edge_factor=1.2, seed=10),
    "circuit simulation; the one case where nesting hurt on GPU"))
_register(MatrixSpec(
    "ss", 1_652_680, 34_753_577, False, 1.1, 1.2, "stokes",
    _stencil_gen(stokes_like, viscosity_contrast=5e2, seed=11),
    "semiconductor process; CG/BiCGStab fail, F3R converges"))
_register(MatrixSpec(
    "stokes", 11_449_533, 349_321_980, False, 1.0, 1.3, "stokes",
    _stencil_gen(stokes_like, grid_factor=1.2, viscosity_contrast=2e3, seed=12),
    "incompressible-flow; hardest problem, only F3R/F3 converge"))
_register(MatrixSpec(
    "t2em", 921_632, 4_590_832, False, 1.0, 1.0, "circuit",
    _graph_gen(circuit_like, symmetric=False, extra_edge_factor=1.4, seed=13),
    "electromagnetics nonsymmetric, 5 nnz/row"))
_register(MatrixSpec(
    "tmt_unsym", 917_825, 4_584_801, False, 1.0, 1.0, "flow",
    _stencil_gen(convection_diffusion_3d, peclet=15.0, velocity=(0.6, 0.6, 0.3)),
    "electromagnetics nonsymmetric; FGMRES(64) fails, F3R converges"))
_register(MatrixSpec(
    "vas_stokes_1M", 1_090_664, 34_767_207, False, 1.0, 1.3, "stokes",
    _stencil_gen(stokes_like, viscosity_contrast=1e3, seed=14),
    "vascular-flow Stokes; only F3R-family solvers converge"))
_register(MatrixSpec(
    "vas_stokes_2M", 2_146_677, 65_129_037, False, 1.0, 1.3, "stokes",
    _stencil_gen(stokes_like, grid_factor=1.1, viscosity_contrast=1.5e3, seed=15),
    "vascular-flow Stokes, larger"))


MATRIX_REGISTRY: dict[str, MatrixSpec] = dict(_R)


def list_matrices(family: str | None = None, symmetric: bool | None = None) -> list[str]:
    """Names of registered matrices, optionally filtered by family / symmetry."""
    names = []
    for name, spec in MATRIX_REGISTRY.items():
        if family is not None and spec.family != family:
            continue
        if symmetric is not None and spec.symmetric != symmetric:
            continue
        names.append(name)
    return names


def symmetric_matrices() -> list[str]:
    return list_matrices(symmetric=True)


def nonsymmetric_matrices() -> list[str]:
    return list_matrices(symmetric=False)


def get_matrix(name: str, scale: str = "small") -> CSRMatrix:
    """Build the surrogate for the paper matrix ``name`` at the given scale."""
    if name not in MATRIX_REGISTRY:
        raise KeyError(f"unknown matrix {name!r}; known: {sorted(MATRIX_REGISTRY)}")
    return MATRIX_REGISTRY[name].build(scale)


def table2_rows(scale: str = "small") -> list[dict]:
    """Reproduce Table 2: per matrix, the paper metadata plus the surrogate's
    actual size/nnz at the chosen scale."""
    rows = []
    for name, spec in MATRIX_REGISTRY.items():
        surrogate = spec.build(scale)
        rows.append({
            "matrix": name,
            "paper_n": spec.paper_n,
            "paper_nnz": spec.paper_nnz,
            "paper_nnz_per_row": round(spec.paper_nnz_per_row, 2),
            "alpha_ilu": spec.alpha_ilu,
            "alpha_ainv": spec.alpha_ainv,
            "symmetric": spec.symmetric,
            "family": spec.family,
            "surrogate_n": surrogate.nrows,
            "surrogate_nnz": surrogate.nnz,
            "surrogate_nnz_per_row": round(surrogate.nnz_per_row, 2),
        })
    return rows

"""Classical Poisson / Laplacian model problems (5-point and 7-point stencils).

These are the standard SPD model problems used as surrogates for the "easy"
symmetric SuiteSparse matrices (ecology2, apache2, tmt_sym, thermal2, ...):
low nnz/row (5-7), diagonally dominant or nearly so, condition number growing
with the grid size.
"""

from __future__ import annotations

import numpy as np

from ..sparse import COOMatrix, CSRMatrix

__all__ = ["poisson2d", "poisson3d", "laplacian_1d"]


def laplacian_1d(n: int, scale: float = 1.0) -> CSRMatrix:
    """Tridiagonal 1-D Laplacian ``tridiag(-1, 2, -1) * scale``."""
    if n < 1:
        raise ValueError("n must be positive")
    rows = []
    cols = []
    vals = []
    idx = np.arange(n, dtype=np.int64)
    rows.append(idx); cols.append(idx); vals.append(np.full(n, 2.0 * scale))
    rows.append(idx[1:]); cols.append(idx[:-1]); vals.append(np.full(n - 1, -1.0 * scale))
    rows.append(idx[:-1]); cols.append(idx[1:]); vals.append(np.full(n - 1, -1.0 * scale))
    coo = COOMatrix(np.concatenate(rows).astype(np.int32), np.concatenate(cols).astype(np.int32),
                    np.concatenate(vals), (n, n))
    return coo.to_csr()


def _stencil_nd(dims: tuple[int, ...], diag: float, offs: dict[tuple[int, ...], float]) -> CSRMatrix:
    """Assemble an arbitrary axis-aligned stencil on a tensor grid."""
    n = int(np.prod(dims))
    ndim = len(dims)
    coords = np.unravel_index(np.arange(n, dtype=np.int64), dims)

    rows_list = [np.arange(n, dtype=np.int64)]
    cols_list = [np.arange(n, dtype=np.int64)]
    vals_list = [np.full(n, diag, dtype=np.float64)]

    for offset, value in offs.items():
        shifted = [coords[d] + offset[d] for d in range(ndim)]
        valid = np.ones(n, dtype=bool)
        for d in range(ndim):
            valid &= (shifted[d] >= 0) & (shifted[d] < dims[d])
        rows = np.flatnonzero(valid)
        cols = np.ravel_multi_index(tuple(s[valid] for s in shifted), dims)
        rows_list.append(rows)
        cols_list.append(cols)
        vals_list.append(np.full(rows.size, value, dtype=np.float64))

    coo = COOMatrix(
        np.concatenate(rows_list).astype(np.int32),
        np.concatenate(cols_list).astype(np.int32),
        np.concatenate(vals_list),
        (n, n),
    )
    return coo.to_csr()


def poisson2d(nx: int, ny: int | None = None) -> CSRMatrix:
    """5-point 2-D Poisson matrix (diag 4, neighbours −1) on an nx × ny grid."""
    ny = nx if ny is None else ny
    offs = {(-1, 0): -1.0, (1, 0): -1.0, (0, -1): -1.0, (0, 1): -1.0}
    return _stencil_nd((nx, ny), 4.0, offs)


def poisson3d(nx: int, ny: int | None = None, nz: int | None = None) -> CSRMatrix:
    """7-point 3-D Poisson matrix (diag 6, neighbours −1) on an nx × ny × nz grid."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    offs = {
        (-1, 0, 0): -1.0, (1, 0, 0): -1.0,
        (0, -1, 0): -1.0, (0, 1, 0): -1.0,
        (0, 0, -1): -1.0, (0, 0, 1): -1.0,
    }
    return _stencil_nd((nx, ny, nz), 6.0, offs)

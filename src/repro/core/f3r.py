"""F3R: the paper's proposed nested mixed-precision solver.

``build_f3r`` assembles the four-level nested solver
``(F^m1, F^m2, F^m3, R^m4, M)`` from an :class:`F3RConfig`, and ``solve_f3r``
is the one-call convenience wrapper used by the examples and the experiment
harness.
"""

from __future__ import annotations

import contextlib

import numpy as np

from ..backends import use_backend
from ..operators import as_operator
from ..precond import make_primary_preconditioner
from ..precond.base import Preconditioner
from ..solvers import (
    BatchSolveResult,
    LevelSpec,
    OuterFGMRES,
    SolveResult,
    build_nested_solver,
)
from .config import F3RConfig

__all__ = ["build_f3r", "solve_f3r", "F3RSolver"]


def _level_specs(config: F3RConfig) -> list[LevelSpec]:
    schedule = config.schedule()
    return [
        LevelSpec("fgmres", config.m1, schedule[1]),
        LevelSpec("fgmres", config.m2, schedule[2]),
        LevelSpec("fgmres", config.m3, schedule[3]),
        LevelSpec(
            "richardson", config.m4, schedule[4],
            richardson_options={
                "cycle": config.cycle,
                "adaptive": config.adaptive_weight,
                "weight": config.fixed_weight,
            },
        ),
    ]


def build_f3r(matrix, preconditioner: Preconditioner,
              config: F3RConfig | None = None) -> OuterFGMRES:
    """Construct the F3R solver for ``matrix`` with the given primary preconditioner.

    ``matrix`` may be an assembled :class:`~repro.sparse.CSRMatrix` or any
    :class:`~repro.operators.LinearOperator` (the solver levels only apply
    it).  The preconditioner should be constructed in fp64; the builder casts
    it to the precision required by the innermost level of the chosen variant.
    """
    config = config or F3RConfig()
    levels = _level_specs(config)
    solver = build_nested_solver(
        matrix, preconditioner, levels, tol=config.tol,
        max_restarts=config.max_restarts, name=config.name,
    )
    return solver


class F3RSolver:
    """Object-style façade bundling matrix, preconditioner and configuration.

    This is the main public entry point::

        from repro import F3RSolver, F3RConfig
        solver = F3RSolver(A, preconditioner="auto", config=F3RConfig(variant="fp16"))
        result = solver.solve(b)
    """

    def __init__(self, matrix, preconditioner="auto",
                 config: F3RConfig | None = None, nblocks: int | None = None,
                 alpha: float = 1.0) -> None:
        # Anything satisfying the LinearOperator contract works: assembled
        # CSR (wrapped for format auto-selection), matrix-free stencils,
        # composites.  Preconditioner "auto" falls back to Jacobi built from
        # operator.diagonal() when entries aren't assembled.
        self.matrix = as_operator(matrix)
        self.config = config or F3RConfig()
        # The backend knob scopes construction too: preconditioner setup
        # (ILU(0) factorization, triangular plans) must run on the same
        # engine the solve will use.
        with self._backend_scope():
            if isinstance(preconditioner, str):
                preconditioner = make_primary_preconditioner(
                    self.matrix, kind=preconditioner, nblocks=nblocks, alpha=alpha,
                )
            self.preconditioner = preconditioner
            self._outer = build_f3r(self.matrix, preconditioner, self.config)

    def _backend_scope(self):
        """``use_backend(config.backend)`` or a no-op when unset."""
        if self.config.backend is not None:
            return use_backend(self.config.backend)
        return contextlib.nullcontext()

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def primary_preconditioner(self):
        return self._outer.primary_preconditioner

    def solve(self, b: np.ndarray, x0: np.ndarray | None = None) -> SolveResult:
        with self._backend_scope():
            return self._outer.solve(b, x0=x0)

    def solve_batch(self, b: np.ndarray,
                    x0: np.ndarray | None = None) -> BatchSolveResult:
        """Solve ``A X = B`` for the columns of ``B`` against one setup.

        All right-hand sides share this solver's matrix casts, preconditioner
        factorization and level workspaces; the nested levels advance the
        columns in lockstep so the hot kernels run batched (SpMM, trsm).  See
        :meth:`repro.solvers.OuterFGMRES.solve_batch`.
        """
        with self._backend_scope():
            return self._outer.solve_batch(b, x0=x0)

    def rebuild(self, config: F3RConfig) -> "F3RSolver":
        """Return a new solver sharing matrix and preconditioner with a new config."""
        return F3RSolver(self.matrix, self.preconditioner, config=config)


def solve_f3r(matrix, b: np.ndarray, preconditioner="auto",
              config: F3RConfig | None = None, nblocks: int | None = None,
              alpha: float = 1.0, x0: np.ndarray | None = None) -> SolveResult:
    """One-call F3R solve: build the preconditioner and solver, then run it."""
    solver = F3RSolver(matrix, preconditioner=preconditioner, config=config,
                       nblocks=nblocks, alpha=alpha)
    return solver.solve(b, x0=x0)

"""F3R: the paper's proposed nested mixed-precision solver.

``build_f3r`` assembles the four-level nested solver
``(F^m1, F^m2, F^m3, R^m4, M)`` from an :class:`F3RConfig`, and ``solve_f3r``
is the one-call convenience wrapper used by the examples and the experiment
harness.
"""

from __future__ import annotations

import contextlib

import numpy as np

from ..backends import use_backend
from ..operators import as_operator
from ..precond import make_primary_preconditioner
from ..precond.base import Preconditioner
from ..solvers import (
    BatchSolveResult,
    LevelSpec,
    OuterFGMRES,
    SolveResult,
    build_nested_solver,
)
from ..solvers.guards import validate_rhs
from .config import F3RConfig
from .recovery import (
    RecoveryPolicy,
    recover_solve,
    recover_solve_batch,
    recovery_enabled,
)

__all__ = ["build_f3r", "solve_f3r", "F3RSolver"]


def _level_specs(config: F3RConfig) -> list[LevelSpec]:
    schedule = config.schedule()
    return [
        LevelSpec("fgmres", config.m1, schedule[1]),
        LevelSpec("fgmres", config.m2, schedule[2]),
        LevelSpec("fgmres", config.m3, schedule[3]),
        LevelSpec(
            "richardson", config.m4, schedule[4],
            richardson_options={
                "cycle": config.cycle,
                "adaptive": config.adaptive_weight,
                "weight": config.fixed_weight,
            },
        ),
    ]


def build_f3r(matrix, preconditioner: Preconditioner,
              config: F3RConfig | None = None) -> OuterFGMRES:
    """Construct the F3R solver for ``matrix`` with the given primary preconditioner.

    ``matrix`` may be an assembled :class:`~repro.sparse.CSRMatrix` or any
    :class:`~repro.operators.LinearOperator` (the solver levels only apply
    it).  The preconditioner should be constructed in fp64; the builder casts
    it to the precision required by the innermost level of the chosen variant.
    """
    config = config or F3RConfig()
    levels = _level_specs(config)
    solver = build_nested_solver(
        matrix, preconditioner, levels, tol=config.tol,
        max_restarts=config.max_restarts, name=config.name,
    )
    return solver


class F3RSolver:
    """Object-style façade bundling matrix, preconditioner and configuration.

    This is the main public entry point::

        from repro import F3RSolver, F3RConfig
        solver = F3RSolver(A, preconditioner="auto", config=F3RConfig(variant="fp16"))
        result = solver.solve(b)
    """

    def __init__(self, matrix, preconditioner="auto",
                 config: F3RConfig | None = None, nblocks: int | None = None,
                 alpha: float = 1.0,
                 recovery: RecoveryPolicy | bool | None = None) -> None:
        # Anything satisfying the LinearOperator contract works: assembled
        # CSR (wrapped for format auto-selection), matrix-free stencils,
        # composites.  Preconditioner "auto" falls back to Jacobi built from
        # operator.diagonal() when entries aren't assembled.
        self.matrix = as_operator(matrix)
        self.config = config or F3RConfig()
        # Recovery ladder (repro.core.recovery): None = the process default
        # (on unless REPRO_RECOVERY/REPRO_GUARDS disable it), False = off,
        # True/policy = explicitly on (still requires REPRO_GUARDS, which
        # also gates the events the ladder reacts to).
        self.recovery_policy = (None if recovery is False
                                else recovery if isinstance(recovery, RecoveryPolicy)
                                else RecoveryPolicy())
        self._recovery_default = recovery is None
        self._precond_spec = (preconditioner if isinstance(preconditioner, str)
                              else None, nblocks, alpha)
        self._escalated_cache: dict[str, "F3RSolver"] = {}
        # The backend knob scopes construction too: preconditioner setup
        # (ILU(0) factorization, triangular plans) must run on the same
        # engine the solve will use.
        with self._backend_scope():
            if isinstance(preconditioner, str):
                preconditioner = make_primary_preconditioner(
                    self.matrix, kind=preconditioner, nblocks=nblocks, alpha=alpha,
                )
            self.preconditioner = preconditioner
            self._outer = build_f3r(self.matrix, preconditioner, self.config)

    def _backend_scope(self):
        """``use_backend(config.backend)`` or a no-op when unset."""
        if self.config.backend is not None:
            return use_backend(self.config.backend)
        return contextlib.nullcontext()

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def primary_preconditioner(self):
        return self._outer.primary_preconditioner

    def _recovery_active(self) -> bool:
        if self.recovery_policy is None:
            return False
        if self._recovery_default:
            return recovery_enabled()
        from ..solvers.guards import guards_enabled
        return guards_enabled()

    def _escalated(self, variant: str) -> "F3RSolver":
        """A sibling solver at an escalated precision variant (cached).

        Shares this solver's matrix and preconditioner objects — matrix and
        factor casts share structure, and the fingerprint-keyed plan cache
        makes the escalated plans warm after the first escalation.
        """
        solver = self._escalated_cache.get(variant)
        if solver is None:
            solver = F3RSolver(self.matrix, self.preconditioner,
                               config=self.config.with_params(variant=variant),
                               recovery=False)
            self._escalated_cache[variant] = solver
        return solver

    def degraded_sibling(self, variant: str) -> "F3RSolver":
        """A sibling solver at a *cheaper* precision variant (cached).

        The serve-time brownout knob: like :meth:`_escalated` it shares this
        solver's matrix and preconditioner objects, but the recovery ladder
        stays **active** on the sibling — a degraded solve that stagnates at
        the cheaper tier re-escalates through the normal ladder, so brownout
        trades per-iteration cost for iterations without ever weakening the
        convergence contract.
        """
        key = f"degrade:{variant}"
        solver = self._escalated_cache.get(key)
        if solver is None:
            solver = F3RSolver(self.matrix, self.preconditioner,
                               config=self.config.with_params(variant=variant))
            self._escalated_cache[key] = solver
        return solver

    def _rebuilt_stronger(self, alpha_boost: float) -> "F3RSolver | None":
        """An fp64-variant solver over a stronger-αILU preconditioner rebuild.

        Returns ``None`` when no stronger preconditioner can be built (the
        original had no αILU notion and no known factory kind).
        """
        key = f"rebuild:{alpha_boost}"
        solver = self._escalated_cache.get(key)
        if solver is not None:
            return solver
        kind, nblocks, alpha = self._precond_spec
        base_alpha = getattr(self.preconditioner, "alpha", None)
        if kind is None and base_alpha is None:
            return None
        boosted = max(float(base_alpha if base_alpha is not None else alpha), 1.0)
        boosted *= float(alpha_boost)
        try:
            with self._backend_scope():
                precond = make_primary_preconditioner(
                    self.matrix, kind=kind or "auto", nblocks=nblocks,
                    alpha=boosted)
        except (ValueError, TypeError):
            return None
        solver = F3RSolver(self.matrix, precond,
                           config=self.config.with_params(variant="fp64"),
                           recovery=False)
        self._escalated_cache[key] = solver
        return solver

    def solve(self, b: np.ndarray, x0: np.ndarray | None = None) -> SolveResult:
        b = np.asarray(b)
        validate_rhs(b, "f3r.solve", expected_rows=self.matrix.nrows)
        with self._backend_scope():
            if not self._recovery_active():
                return self._outer.solve(b, x0=x0)
            return recover_solve(self, b, x0, self.recovery_policy)

    def solve_batch(self, b: np.ndarray,
                    x0: np.ndarray | None = None) -> BatchSolveResult:
        """Solve ``A X = B`` for the columns of ``B`` against one setup.

        All right-hand sides share this solver's matrix casts, preconditioner
        factorization and level workspaces; the nested levels advance the
        columns in lockstep so the hot kernels run batched (SpMM, trsm).  See
        :meth:`repro.solvers.OuterFGMRES.solve_batch`.  When recovery is
        active, poisoned or unconverged columns climb the escalation ladder
        individually (:func:`repro.core.recovery.recover_solve_batch`).
        """
        b_arr = np.asarray(b)
        if b_arr.ndim == 2:
            # non-finite entries are rejected here, before setup/cycle work;
            # shape diagnostics stay with OuterFGMRES.solve_batch (it knows
            # the (n, k)-vs-(k, n) hint)
            if not np.all(np.isfinite(b_arr)):
                validate_rhs(b_arr, "f3r.solve_batch")
        with self._backend_scope():
            if not self._recovery_active():
                return self._outer.solve_batch(b, x0=x0)
            b_block = np.asarray(b, dtype=np.float64)
            if b_block.ndim == 1:
                b_block = b_block[:, None]
            if (b_block.ndim != 2 or b_block.shape[0] != self.matrix.ncols):
                # delegate for the detailed shape error message
                return self._outer.solve_batch(b, x0=x0)
            x0_block = None
            if x0 is not None:
                x0_block = np.array(x0, dtype=np.float64)
                if x0_block.ndim == 1 and b_block.shape[1] == 1:
                    x0_block = x0_block[:, None]
                if x0_block.shape != b_block.shape:
                    return self._outer.solve_batch(b, x0=x0)
            return recover_solve_batch(self, b_block, x0_block,
                                       self.recovery_policy)

    def rebuild(self, config: F3RConfig) -> "F3RSolver":
        """Return a new solver sharing matrix and preconditioner with a new config."""
        return F3RSolver(self.matrix, self.preconditioner, config=config)


def solve_f3r(matrix, b: np.ndarray, preconditioner="auto",
              config: F3RConfig | None = None, nblocks: int | None = None,
              alpha: float = 1.0, x0: np.ndarray | None = None) -> SolveResult:
    """One-call F3R solve: build the preconditioner and solver, then run it."""
    solver = F3RSolver(matrix, preconditioner=preconditioner, config=config,
                       nblocks=nblocks, alpha=alpha)
    return solver.solve(b, x0=x0)

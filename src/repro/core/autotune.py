"""Parameter search for fp16-F3R-best.

The paper reports, next to the default configuration, an "fp16-F3R-best"
obtained by optimizing (m2, m3, m4) per problem; the figures list the winning
triple above every bar.  This module reproduces that search: a small grid of
candidate triples is run to convergence and ranked by modeled execution time
on the chosen machine model (tie-broken by preconditioner applications).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perf import CPU_NODE, MachineModel, TrafficCounter, counting
from ..precond.base import Preconditioner
from ..sparse import CSRMatrix
from .config import F3RConfig
from .f3r import build_f3r

__all__ = ["TuneResult", "default_candidates", "tune_f3r"]

#: The candidate grid the paper's Section 6.1 sweeps (m2, m3, m4 around the default).
_DEFAULT_M2 = (6, 7, 8, 9, 10)
_DEFAULT_M3 = (2, 3, 4, 5, 6)
_DEFAULT_M4 = (1, 2)


@dataclass(frozen=True)
class TuneResult:
    """Outcome of evaluating one candidate configuration."""

    config: F3RConfig
    converged: bool
    preconditioner_applications: int
    modeled_time: float
    wall_time: float

    @property
    def params(self) -> tuple[int, int, int]:
        return (self.config.m2, self.config.m3, self.config.m4)

    def label(self) -> str:
        return "-".join(str(v) for v in self.params)


def default_candidates(base: F3RConfig | None = None,
                       m2_values=_DEFAULT_M2, m3_values=_DEFAULT_M3,
                       m4_values=_DEFAULT_M4) -> list[F3RConfig]:
    """The full grid of Section 6.1 candidates built around ``base``."""
    base = base or F3RConfig(variant="fp16")
    configs = []
    for m2 in m2_values:
        for m3 in m3_values:
            for m4 in m4_values:
                configs.append(base.with_params(m2=m2, m3=m3, m4=m4))
    return configs


def tune_f3r(matrix: CSRMatrix, preconditioner: Preconditioner, b: np.ndarray,
             candidates: list[F3RConfig] | None = None,
             machine: MachineModel = CPU_NODE,
             keep_all: bool = False) -> TuneResult | tuple[TuneResult, list[TuneResult]]:
    """Evaluate candidate F3R configurations and return the fastest converged one.

    Parameters
    ----------
    candidates:
        Configurations to try; defaults to a compact grid around the paper's
        default (the full Section 6.1 grid is available via
        :func:`default_candidates`).
    machine:
        Machine model used to convert each run's memory traffic into modeled
        execution time.
    keep_all:
        When ``True``, also return the per-candidate results (for Fig. 3-style
        scatter plots).
    """
    if candidates is None:
        base = F3RConfig(variant="fp16")
        candidates = [
            base,
            base.with_params(m2=6), base.with_params(m2=10),
            base.with_params(m3=3), base.with_params(m3=5), base.with_params(m3=6),
            base.with_params(m4=1),
            base.with_params(m2=9, m3=4), base.with_params(m2=8, m3=5),
        ]

    results: list[TuneResult] = []
    for config in candidates:
        solver = build_f3r(matrix, preconditioner, config)
        counter = TrafficCounter()
        with counting(counter):
            outcome = solver.solve(b)
        results.append(TuneResult(
            config=config,
            converged=outcome.converged,
            preconditioner_applications=outcome.preconditioner_applications,
            modeled_time=machine.time_for(counter),
            wall_time=outcome.wall_time,
        ))

    converged = [r for r in results if r.converged]
    pool = converged if converged else results
    best = min(pool, key=lambda r: (r.modeled_time, r.preconditioner_applications))
    if keep_all:
        return best, results
    return best

"""Recovery policy: turn solver guard events into completed solves.

Mixed-precision iterative refinement (the GMRES-IR line of work) converges
reliably only when breakdown and stagnation are *detected and recovered*,
not assumed away.  The guards (:mod:`repro.solvers.guards`) provide the
detection; this module provides the recovery — an escalation ladder executed
by :class:`~repro.core.F3RSolver` when a solve raises a structured event or
ends unconverged:

1. **Restart** from the last finite iterate the event carried (the cheap
   fix: an isolated fp16 overflow often disappears once the Krylov space is
   rebuilt from the current approximation).
2. **Escalate vector precision** fp16 → fp32 → fp64.  Escalated solvers
   reuse the original preconditioner object (casts share structure — no
   refactorization) and hit the fingerprint-keyed plan cache, so an
   escalated attempt starts on warm plans.
3. **Rebuild the preconditioner** with stronger settings (boosted αILU
   diagonal scaling) under the fp64 variant — the last resort for solves
   whose factorization itself is the problem.
4. **Fail with a structured report**: the returned
   :class:`~repro.solvers.SolveResult` carries a :class:`SolveReport`
   recording every attempt, so serving layers can distinguish "converged
   after recovery" from "exhausted the ladder".

Batched solves recover **per column**: a breakdown attributed to specific
columns re-solves only those columns through the ladder while the healthy
columns of the deflation group finish from their last finite iterates.

Recovery is inert unless guards are enabled (``REPRO_GUARDS``) — with the
kill switch thrown, :class:`~repro.core.F3RSolver` behaves exactly as it
did before this layer existed.  ``REPRO_RECOVERY=0`` disables only the
ladder while keeping the guard events raising.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..solvers import SolveResult
from ..solvers.guards import SolveEvent, StagnationWindow, guards_enabled

__all__ = [
    "RecoveryPolicy",
    "AttemptRecord",
    "SolveReport",
    "degraded_variant",
    "recovery_enabled",
    "set_recovery_enabled",
    "use_recovery",
    "recover_solve",
    "recover_solve_batch",
]

_ENABLED = os.environ.get("REPRO_RECOVERY", "1").strip().lower() not in (
    "0", "off", "false", "no")

#: precision-escalation order; a solve enters the ladder at its own variant
_VARIANT_ORDER = ("fp16", "fp32", "fp64")


def degraded_variant(variant: str) -> str | None:
    """One precision tier *below* ``variant``, or ``None`` at the floor.

    The serve-time brownout policy's knob: a degradable request starts one
    tier cheaper (``fp64``→``fp32``→``fp16``), and this ladder — running in
    the opposite direction — re-escalates it if the cheaper tier stagnates,
    so degradation never changes what "converged" means.
    """
    try:
        idx = _VARIANT_ORDER.index(variant)
    except ValueError:
        return None
    return _VARIANT_ORDER[idx - 1] if idx > 0 else None


def recovery_enabled() -> bool:
    """Whether :class:`~repro.core.F3RSolver` runs the recovery ladder."""
    return _ENABLED and guards_enabled()


def set_recovery_enabled(enabled: bool) -> bool:
    """Enable/disable the recovery ladder (process-wide); returns old state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def use_recovery(enabled: bool = True):
    """Scoped recovery toggle (parity tests compare both paths)."""
    previous = set_recovery_enabled(enabled)
    try:
        yield
    finally:
        set_recovery_enabled(previous)


# ---------------------------------------------------------------------- #
# Policy and report types
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class RecoveryPolicy:
    """Tunables of the escalation ladder.

    Attributes
    ----------
    restart_first:
        Try one plain restart from the event's last finite iterate before
        escalating precision.
    escalate_on_unconverged:
        Treat a clean-but-unconverged solve (restart budget exhausted) like
        a stagnation event and climb the ladder.
    rebuild_preconditioner:
        Enable the final rebuild-with-stronger-settings rung.
    alpha_boost:
        Multiplier applied to the αILU diagonal scaling on the rebuild rung.
    stagnation_window, stagnation_min_drop:
        Parameters of the :class:`~repro.solvers.guards.StagnationWindow`
        armed on every attempt: stalled when relative-residual progress over
        the last ``window`` outer cycles is below ``min_drop``.
    """

    restart_first: bool = True
    escalate_on_unconverged: bool = True
    rebuild_preconditioner: bool = True
    alpha_boost: float = 2.0
    stagnation_window: int = 3
    stagnation_min_drop: float = 0.10


@dataclass
class AttemptRecord:
    """One rung of the ladder, as executed."""

    stage: str                      # "initial" | "restart" | "escalate:fp32" | ...
    variant: str                    # precision variant the attempt ran at
    converged: bool = False
    relative_residual: float = float("nan")
    iterations: int = 0
    wall_time: float = 0.0
    event: dict | None = None       # the guard event that ended the attempt

    def summary(self) -> dict:
        return {
            "stage": self.stage,
            "variant": self.variant,
            "converged": self.converged,
            "relative_residual": self.relative_residual,
            "iterations": self.iterations,
            "wall_time": self.wall_time,
            "event": self.event,
        }


@dataclass
class SolveReport:
    """Every attempt the recovery ladder made for one right-hand side."""

    attempts: list[AttemptRecord] = field(default_factory=list)

    def record(self, attempt: AttemptRecord) -> AttemptRecord:
        self.attempts.append(attempt)
        return attempt

    @property
    def succeeded(self) -> bool:
        return bool(self.attempts) and self.attempts[-1].converged

    @property
    def final_stage(self) -> str:
        return self.attempts[-1].stage if self.attempts else "none"

    @property
    def escalations(self) -> int:
        return sum(1 for a in self.attempts if a.stage.startswith("escalate:"))

    @property
    def restarts(self) -> int:
        return sum(1 for a in self.attempts if a.stage == "restart")

    @property
    def rebuilds(self) -> int:
        return sum(1 for a in self.attempts if a.stage == "rebuild")

    @property
    def events(self) -> list[dict]:
        return [a.event for a in self.attempts if a.event is not None]

    def summary(self) -> dict:
        return {
            "succeeded": self.succeeded,
            "final_stage": self.final_stage,
            "escalations": self.escalations,
            "restarts": self.restarts,
            "rebuilds": self.rebuilds,
            "attempts": [a.summary() for a in self.attempts],
        }


# ---------------------------------------------------------------------- #
# Ladder execution
# ---------------------------------------------------------------------- #
def _finite_or_none(iterate: np.ndarray | None) -> np.ndarray | None:
    """The iterate if it is usable as a restart guess, else ``None``."""
    if iterate is None or not np.all(np.isfinite(iterate)):
        return None
    if not iterate.any():
        return None
    return iterate


def _escalation_variants(current: str) -> list[str]:
    """Variants strictly above ``current`` in the fp16→fp32→fp64 order."""
    try:
        idx = _VARIANT_ORDER.index(current)
    except ValueError:
        return ["fp64"]
    return list(_VARIANT_ORDER[idx + 1:])


def _run_attempt(solver_obj, b: np.ndarray, x0: np.ndarray | None,
                 stage: str, variant: str, policy: RecoveryPolicy,
                 report: SolveReport):
    """Execute one rung; returns ``(result_or_None, record)``.

    A rung ends in one of three ways: converged result (ladder done),
    unconverged result (climb), or a guard event (climb, reusing the
    event's last finite iterate).
    """
    window = StagnationWindow(window=policy.stagnation_window,
                              min_drop=policy.stagnation_min_drop)
    start = time.perf_counter()
    try:
        result = solver_obj.solve(b, x0=x0, stagnation=window)
    except SolveEvent as event:
        record = report.record(AttemptRecord(
            stage=stage, variant=variant, converged=False,
            wall_time=time.perf_counter() - start, event=event.describe()))
        record.iterate = _finite_or_none(event.iterate)   # transient, not serialized
        return None, record
    record = report.record(AttemptRecord(
        stage=stage, variant=variant, converged=bool(result.converged),
        relative_residual=float(result.relative_residual),
        iterations=int(result.iterations),
        wall_time=time.perf_counter() - start))
    record.iterate = _finite_or_none(result.x)
    return result, record


def recover_solve(f3r, b: np.ndarray, x0: np.ndarray | None,
                  policy: RecoveryPolicy,
                  prior: list[AttemptRecord] | None = None) -> SolveResult:
    """Run ``f3r``'s single-RHS solve through the escalation ladder.

    ``f3r`` is the owning :class:`~repro.core.F3RSolver`; attempts run on
    its compiled outer solver and on lazily built escalated siblings
    (:meth:`F3RSolver._escalated`).  The returned result always carries the
    :class:`SolveReport` when more than the initial attempt ran.

    ``prior`` seeds the report with attempts that already happened elsewhere
    (the lockstep batch attempt in :func:`recover_solve_batch`); when set,
    the "initial" rung is considered spent and the ladder starts at restart,
    and the report is attached to the result even if that restart converges.
    """
    report = SolveReport()
    best: SolveResult | None = None
    x0_next = x0

    if prior:
        for rec in prior:
            report.record(rec)
        result = None
    else:
        result, record = _run_attempt(f3r._outer, b, x0_next, "initial",
                                      f3r.config.variant, policy, report)
        if result is not None and result.converged:
            return result
        if result is not None:
            best = result
        x0_next = record.iterate if record.iterate is not None else x0

    # rung 1: plain restart from the last finite iterate (same precision)
    if policy.restart_first and (result is None or policy.escalate_on_unconverged):
        result, record = _run_attempt(f3r._outer, b, x0_next, "restart",
                                      f3r.config.variant, policy, report)
        if result is not None and result.converged:
            result.recovery = report
            return result
        if result is not None and best is None:
            best = result
        if record.iterate is not None:
            x0_next = record.iterate

    # rung 2: precision escalation on warm plans
    for variant in _escalation_variants(f3r.config.variant):
        escalated = f3r._escalated(variant)
        result, record = _run_attempt(escalated._outer, b, x0_next,
                                      f"escalate:{variant}", variant,
                                      policy, report)
        if result is not None and result.converged:
            result.recovery = report
            return result
        if result is not None:
            best = result
        if record.iterate is not None:
            x0_next = record.iterate

    # rung 3: stronger preconditioner under the fp64 variant
    if policy.rebuild_preconditioner:
        rebuilt = f3r._rebuilt_stronger(policy.alpha_boost)
        if rebuilt is not None:
            result, record = _run_attempt(rebuilt._outer, b, x0_next,
                                          "rebuild", "fp64", policy, report)
            if result is not None and result.converged:
                result.recovery = report
                return result
            if result is not None:
                best = result

    # ladder exhausted: return the best unconverged result, report attached
    if best is None:
        n = b.shape[0]
        best = SolveResult(
            x=np.zeros(n, dtype=np.float64), converged=False, iterations=0,
            preconditioner_applications=0, relative_residual=float("inf"),
            solver_name=f3r.config.name)
    best.recovery = report
    return best


def recover_solve_batch(f3r, b_block: np.ndarray, x0: np.ndarray | None,
                        policy: RecoveryPolicy):
    """Batched solve with per-column recovery.

    The lockstep batch runs once; if a guard event fires, the event's column
    attribution splits the batch — healthy columns resume as one batch from
    their last finite iterates, poisoned columns climb the ladder
    individually — so one bad right-hand side does not poison its deflation
    group.  Columns that end unconverged without an event are escalated
    individually as well.
    """
    from ..solvers.base import BatchSolveResult

    start = time.perf_counter()
    n, k = b_block.shape
    all_cols = list(range(k))

    try:
        batch = f3r._outer.solve_batch(b_block, x0=x0)
    except SolveEvent as event:
        bad = sorted(set(event.columns)) if event.columns else all_cols
        good = [i for i in all_cols if i not in bad]
        iterate = event.iterate
        results: list[SolveResult | None] = [None] * k

        if good:
            x0_good = None
            if iterate is not None:
                block = iterate[:, good]
                if np.all(np.isfinite(block)) and block.any():
                    x0_good = block
            try:
                good_batch = f3r._outer.solve_batch(b_block[:, good], x0=x0_good)
                for pos, col in enumerate(good):
                    results[col] = good_batch.results[pos]
            except SolveEvent:
                # the event was not attributable after all: every surviving
                # column goes through its own ladder below
                bad = all_cols
                good = []

        for col in (c for c in all_cols if results[c] is None):
            x0_col = None
            if iterate is not None:
                x0_col = _finite_or_none(np.ascontiguousarray(iterate[:, col]))
            if x0_col is None and x0 is not None:
                x0_col = np.ascontiguousarray(x0[:, col])
            batch_attempt = AttemptRecord(
                stage="initial", variant=f3r.config.variant, converged=False,
                event=event.describe())
            results[col] = recover_solve(f3r, np.ascontiguousarray(b_block[:, col]),
                                         x0_col, policy, prior=[batch_attempt])

        x = np.stack([r.x for r in results], axis=1)
        return BatchSolveResult(x=x, results=results,
                                wall_time=time.perf_counter() - start)

    if not policy.escalate_on_unconverged:
        return batch
    bad = [i for i, r in enumerate(batch.results)
           if not r.converged or not np.isfinite(r.relative_residual)]
    if not bad:
        return batch

    # per-column escalation for the stragglers, splicing into the batch
    results = list(batch.results)
    x = batch.x.copy()
    for col in bad:
        stale = results[col]
        seed = stale.x
        x0_col = seed if np.all(np.isfinite(seed)) and seed.any() else None
        batch_attempt = AttemptRecord(
            stage="initial", variant=f3r.config.variant, converged=False,
            relative_residual=float(stale.relative_residual),
            iterations=int(stale.iterations))
        results[col] = recover_solve(f3r, np.ascontiguousarray(b_block[:, col]),
                                     x0_col, policy, prior=[batch_attempt])
        x[:, col] = results[col].x
    return BatchSolveResult(x=x, results=results,
                            wall_time=time.perf_counter() - start)

"""Core contribution: the F3R solver, its variants, configuration, and cost models."""

from .config import DEFAULT_FP16, DEFAULT_FP32, DEFAULT_FP64, F3RConfig, precision_schedule
from .f3r import F3RSolver, build_f3r, solve_f3r
from .recovery import (
    AttemptRecord,
    RecoveryPolicy,
    SolveReport,
    degraded_variant,
    recovery_enabled,
    set_recovery_enabled,
    use_recovery,
)
from .variants import VARIANT_SPECS, build_variant, variant_description, variant_names
from .cost_model import (
    CostModel,
    cost_fgmres,
    cost_nested_ff,
    cost_nested_fr,
    cost_richardson,
    nesting_benefit,
    operator_traffic_constant,
    optimal_split,
    preconditioner_constant,
    traffic_constant,
)
from .autotune import TuneResult, default_candidates, tune_f3r

__all__ = [
    "F3RConfig",
    "precision_schedule",
    "DEFAULT_FP16",
    "DEFAULT_FP32",
    "DEFAULT_FP64",
    "F3RSolver",
    "build_f3r",
    "solve_f3r",
    "AttemptRecord",
    "RecoveryPolicy",
    "SolveReport",
    "degraded_variant",
    "recovery_enabled",
    "set_recovery_enabled",
    "use_recovery",
    "VARIANT_SPECS",
    "build_variant",
    "variant_description",
    "variant_names",
    "CostModel",
    "cost_fgmres",
    "cost_richardson",
    "cost_nested_ff",
    "cost_nested_fr",
    "nesting_benefit",
    "optimal_split",
    "traffic_constant",
    "operator_traffic_constant",
    "preconditioner_constant",
    "TuneResult",
    "default_candidates",
    "tune_f3r",
]

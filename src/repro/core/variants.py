"""Nesting-depth variants of Table 4: F2, fp16-F2, F3, fp16-F3, F4.

Section 6.2 of the paper compares F3R against shallower and deeper nestings to
validate its two assumptions (splitting FGMRES does not hurt convergence;
a 2-iteration Richardson can replace a 2-iteration FGMRES).  Each variant
below reproduces one row-group of Table 4, with exactly the precisions listed
there.
"""

from __future__ import annotations

from ..precision import LevelPrecision, Precision
from ..precond.base import Preconditioner
from ..solvers import LevelSpec, OuterFGMRES, build_nested_solver
from ..sparse import CSRMatrix

__all__ = ["VARIANT_SPECS", "build_variant", "variant_names", "variant_description"]

_FP64 = Precision.FP64
_FP32 = Precision.FP32
_FP16 = Precision.FP16


def _specs_f2() -> list[LevelSpec]:
    """F2 = (F100, F64, M): inner FGMRES in fp32 vectors, fp16 preconditioner."""
    return [
        LevelSpec("fgmres", 100, LevelPrecision(_FP64, _FP64)),
        LevelSpec("fgmres", 64, LevelPrecision(_FP32, _FP32, _FP16)),
    ]


def _specs_fp16_f2() -> list[LevelSpec]:
    """fp16-F2 = (F100, F64, M) with the inner FGMRES entirely in fp16."""
    return [
        LevelSpec("fgmres", 100, LevelPrecision(_FP64, _FP64)),
        LevelSpec("fgmres", 64, LevelPrecision(_FP16, _FP16, _FP16)),
    ]


def _specs_f3() -> list[LevelSpec]:
    """F3 = (F100, F8, F8, M): inner-inner FGMRES stores A in fp16, vectors fp32."""
    return [
        LevelSpec("fgmres", 100, LevelPrecision(_FP64, _FP64)),
        LevelSpec("fgmres", 8, LevelPrecision(_FP32, _FP32)),
        LevelSpec("fgmres", 8, LevelPrecision(_FP16, _FP32, _FP16)),
    ]


def _specs_fp16_f3() -> list[LevelSpec]:
    """fp16-F3 = (F100, F8, F8, M) with the innermost FGMRES entirely in fp16."""
    return [
        LevelSpec("fgmres", 100, LevelPrecision(_FP64, _FP64)),
        LevelSpec("fgmres", 8, LevelPrecision(_FP32, _FP32)),
        LevelSpec("fgmres", 8, LevelPrecision(_FP16, _FP16, _FP16)),
    ]


def _specs_f4() -> list[LevelSpec]:
    """F4 = (F100, F8, F4, F2, M): like fp16-F3R but the innermost level is FGMRES."""
    return [
        LevelSpec("fgmres", 100, LevelPrecision(_FP64, _FP64)),
        LevelSpec("fgmres", 8, LevelPrecision(_FP32, _FP32)),
        LevelSpec("fgmres", 4, LevelPrecision(_FP16, _FP32)),
        LevelSpec("fgmres", 2, LevelPrecision(_FP16, _FP16, _FP16)),
    ]


VARIANT_SPECS: dict[str, callable] = {
    "F2": _specs_f2,
    "fp16-F2": _specs_fp16_f2,
    "F3": _specs_f3,
    "fp16-F3": _specs_fp16_f3,
    "F4": _specs_f4,
}

_DESCRIPTIONS = {
    "F2": "(F100, F64, M) — two-level nested FGMRES, fp32 inner vectors, fp16 M",
    "fp16-F2": "(F100, F64, M) — two-level nested FGMRES, fully fp16 inner level",
    "F3": "(F100, F8, F8, M) — three-level nested FGMRES, fp16 A / fp32 vectors innermost",
    "fp16-F3": "(F100, F8, F8, M) — three-level nested FGMRES, fully fp16 innermost",
    "F4": "(F100, F8, F4, F2, M) — four-level nested FGMRES (Richardson replaced by F2)",
}


def variant_names() -> list[str]:
    return list(VARIANT_SPECS)


def variant_description(name: str) -> str:
    return _DESCRIPTIONS[name]


def build_variant(name: str, matrix: CSRMatrix, preconditioner: Preconditioner,
                  tol: float = 1e-8, max_restarts: int = 2) -> OuterFGMRES:
    """Build one of the Table 4 nesting-depth variants."""
    if name not in VARIANT_SPECS:
        raise ValueError(f"unknown variant {name!r}; choose from {variant_names()}")
    specs = VARIANT_SPECS[name]()
    return build_nested_solver(matrix, preconditioner, specs, tol=tol,
                               max_restarts=max_restarts, name=name)

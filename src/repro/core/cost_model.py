"""Memory-access cost models of Section 4.1 (Equations 1-3).

The paper motivates F3R's structure with a rough model of memory accesses per
matrix row ``n``:

* one FGMRES(m) cycle on top of M  (Eq. 1):
  ``O(F^m, M) = cA*m + cM*m + (5/2) m²``
* one Richardson(m) sweep on top of M  (Eq. 1):
  ``O(R^m, M) = cA*(m−1) + cM*m + 4(m−1)``
* a two-level nested FGMRES with m = m̄ · m̿ (Eq. 2):
  ``O(F^m̄, F^m̿, M) = cA*m̄ + O(F^m̿, M)*m̄ + (5/2) m̄²``
* FGMRES wrapping Richardson (Eq. 3): same with ``O(R^m̿, M)``.

``cA`` and ``cM`` are the per-row traffic constants of the matrix and
preconditioner (values + 32-bit indices, measured in fp64-word equivalents:
the paper's example is cA = 45 for 30 nnz/row with fp64 values).  These models
guide the choice of (m2, m3, m4); the reproduction also uses them in the
ablation benchmark that verifies the measured traffic tracks the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..precision import BYTES_PER_INDEX, Precision, as_precision

__all__ = [
    "cost_fgmres",
    "cost_richardson",
    "cost_nested_ff",
    "cost_nested_fr",
    "nesting_benefit",
    "traffic_constant",
    "operator_traffic_constant",
    "preconditioner_constant",
    "CostModel",
    "optimal_split",
]

_WORD = 8.0  # fp64 word, the unit the paper's constants are expressed in


def traffic_constant(matrix, value_precision: Precision | str = Precision.FP64) -> float:
    """``cA``: memory accesses per row for one SpMV, in fp64-word equivalents.

    ``cA = (nnz/row) * (value_bytes + index_bytes) / 8``; the paper's example
    (30 nnz/row, fp64 values, 32-bit indices) gives 45.  ``matrix`` is
    anything exposing ``nnz_per_row`` (a :class:`CSRMatrix` or a
    :class:`~repro.operators.LinearOperator`).  For a matrix-free
    :class:`~repro.operators.StencilOperator` the *assembled* constant no
    longer reflects the traffic its fused apply actually moves — the value
    and index streams vanish; see :func:`operator_traffic_constant`.
    """
    p = as_precision(value_precision)
    return matrix.nnz_per_row * (p.bytes + BYTES_PER_INDEX) / _WORD


def operator_traffic_constant(operator,
                              value_precision: Precision | str = Precision.FP64) -> float:
    """``cA`` of the operator's actual apply kernel, in fp64 words per row.

    Assembled operators stream values + indices (``cA`` of Eq. 1); a
    matrix-free stencil reads only its coefficient table, so its per-row
    constant collapses to effectively zero, and composites delegate to
    their base.  The estimate lives on the operator contract
    (:meth:`repro.operators.LinearOperator.apply_traffic_constant`); a raw
    :class:`CSRMatrix` falls back to the assembled formula.  This is the
    constant to feed the nesting model when solving matrix-free.
    """
    p = as_precision(value_precision)
    estimate = getattr(operator, "apply_traffic_constant", None)
    if estimate is not None:
        return float(estimate(p))
    return traffic_constant(operator, p)


def preconditioner_constant(preconditioner, n: int | None = None) -> float:
    """``cM``: preconditioner traffic per row per application, in fp64 words."""
    nbytes = preconditioner.memory_bytes()
    rows = n or preconditioner.shape[0]
    return nbytes / rows / _WORD if rows else 0.0


def cost_fgmres(m: int, c_a: float, c_m: float) -> float:
    """Eq. (1): memory accesses per row of one (F^m, M) cycle."""
    return c_a * m + c_m * m + 2.5 * m * m


def cost_richardson(m: int, c_a: float, c_m: float) -> float:
    """Eq. (1): memory accesses per row of one (R^m, M) sweep (zero initial guess)."""
    return c_a * (m - 1) + c_m * m + 4.0 * (m - 1)


def cost_nested_ff(m_outer: int, m_inner: int, c_a: float, c_m: float) -> float:
    """Eq. (2): two-level nested FGMRES (F^m̄, F^m̿, M)."""
    return c_a * m_outer + cost_fgmres(m_inner, c_a, c_m) * m_outer + 2.5 * m_outer * m_outer


def cost_nested_fr(m_outer: int, m_inner: int, c_a: float, c_m: float) -> float:
    """Eq. (3): FGMRES wrapping Richardson (F^m̄, R^m̿, M)."""
    return c_a * m_outer + cost_richardson(m_inner, c_a, c_m) * m_outer + 2.5 * m_outer * m_outer


def nesting_benefit(m: int, m_outer: int, c_a: float, c_m: float,
                    inner: str = "fgmres") -> float:
    """Traffic of the flat (F^m, M) minus the nested solver with m = m̄·m̿.

    Positive values mean nesting reduces memory accesses.  ``inner`` selects
    between Eq. (2) (``"fgmres"``) and Eq. (3) (``"richardson"``).
    """
    if m % m_outer != 0:
        raise ValueError("m must be divisible by the outer iteration count")
    m_inner = m // m_outer
    flat = cost_fgmres(m, c_a, c_m)
    if inner == "fgmres":
        nested = cost_nested_ff(m_outer, m_inner, c_a, c_m)
    elif inner == "richardson":
        nested = cost_nested_fr(m_outer, m_inner, c_a, c_m)
    else:
        raise ValueError("inner must be 'fgmres' or 'richardson'")
    return flat - nested


def optimal_split(m: int, c_a: float, c_m: float, inner: str = "fgmres",
                  divisors_only: bool = False) -> tuple[int, float]:
    """The outer iteration count m̄ minimizing the nested cost for a fixed m.

    The paper notes that for cA = 45 and m = 64 the optimum is m̄ = 10 even
    though 10 does not divide 64; set ``divisors_only=True`` to restrict the
    search to divisors of m (the choice actually used to build F3R).
    """
    best = None
    candidates = range(2, m)
    for m_outer in candidates:
        if divisors_only and m % m_outer != 0:
            continue
        m_inner = m / m_outer
        if inner == "fgmres":
            cost = (c_a * m_outer + cost_fgmres(m_inner, c_a, c_m) * m_outer
                    + 2.5 * m_outer * m_outer)
        else:
            cost = (c_a * m_outer + cost_richardson(m_inner, c_a, c_m) * m_outer
                    + 2.5 * m_outer * m_outer)
        if best is None or cost < best[1]:
            best = (m_outer, cost)
    if best is None:
        raise ValueError("m too small to split")
    return best


@dataclass(frozen=True)
class CostModel:
    """Cost model bound to a specific matrix / preconditioner pair."""

    c_a: float
    c_m: float

    @classmethod
    def for_problem(cls, matrix, preconditioner,
                    value_precision: Precision | str = Precision.FP64) -> "CostModel":
        """Model for a matrix/preconditioner pair.

        ``matrix`` may be assembled or any operator; matrix-free stencil
        operators get the collapsed ``cA`` of their fused apply
        (:func:`operator_traffic_constant`), so nesting-depth choices made
        from the model reflect the traffic the solve actually moves.
        """
        return cls(
            c_a=operator_traffic_constant(matrix, value_precision),
            c_m=preconditioner_constant(preconditioner, matrix.nrows),
        )

    def fgmres(self, m: int) -> float:
        return cost_fgmres(m, self.c_a, self.c_m)

    def richardson(self, m: int) -> float:
        return cost_richardson(m, self.c_a, self.c_m)

    def nested_ff(self, m_outer: int, m_inner: int) -> float:
        return cost_nested_ff(m_outer, m_inner, self.c_a, self.c_m)

    def nested_fr(self, m_outer: int, m_inner: int) -> float:
        return cost_nested_fr(m_outer, m_inner, self.c_a, self.c_m)

    def f3r_per_outer_iteration(self, m2: int, m3: int, m4: int) -> float:
        """Modeled traffic of one outermost F3R iteration (per row).

        Level by level: the outermost iteration performs one SpMV and its share
        of the Arnoldi process, and invokes the (F^m2, F^m3, R^m4, M) stack once.
        """
        inner3 = self.nested_fr(m3, m4)
        inner2 = self.c_a * m2 + inner3 * m2 + 2.5 * m2 * m2
        return self.c_a + inner2 + 2.5

"""F3R configuration: iteration counts, precision variant, Richardson options.

The defaults reproduce the paper's default setting
``(m1, m2, m3, m4) = (100, 8, 4, 2)`` with weight-update cycle ``c = 64``
(Section 5), and the three precision variants evaluated there:

* ``"fp16"`` — the proposed solver of Table 1 (fp64 → fp32 → fp16/fp32 → fp16),
* ``"fp32"`` — fp64 outermost, fp32 for all inner solvers,
* ``"fp64"`` — uniform fp64 (the baseline the speedups are measured against).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..backends import available_backends
from ..precision import LevelPrecision, Precision

__all__ = ["F3RConfig", "precision_schedule"]

_VARIANTS = ("fp16", "fp32", "fp64")


def precision_schedule(variant: str) -> dict[int, LevelPrecision]:
    """Per-level precision assignment for an F3R variant (Table 1 and Section 5)."""
    if variant == "fp16":
        return {
            1: LevelPrecision(Precision.FP64, Precision.FP64),
            2: LevelPrecision(Precision.FP32, Precision.FP32),
            3: LevelPrecision(Precision.FP16, Precision.FP32),
            4: LevelPrecision(Precision.FP16, Precision.FP16, Precision.FP16),
        }
    if variant == "fp32":
        return {
            1: LevelPrecision(Precision.FP64, Precision.FP64),
            2: LevelPrecision(Precision.FP32, Precision.FP32),
            3: LevelPrecision(Precision.FP32, Precision.FP32),
            4: LevelPrecision(Precision.FP32, Precision.FP32, Precision.FP32),
        }
    if variant == "fp64":
        return {
            1: LevelPrecision(Precision.FP64, Precision.FP64),
            2: LevelPrecision(Precision.FP64, Precision.FP64),
            3: LevelPrecision(Precision.FP64, Precision.FP64),
            4: LevelPrecision(Precision.FP64, Precision.FP64, Precision.FP64),
        }
    raise ValueError(f"unknown F3R variant {variant!r}; choose from {_VARIANTS}")


@dataclass(frozen=True)
class F3RConfig:
    """Complete parameterization of an F3R solver instance.

    Attributes
    ----------
    m1, m2, m3, m4:
        Iterations of the outermost FGMRES, the two inner FGMRES levels, and
        the innermost Richardson level.
    cycle:
        Weight-update period ``c`` of the adaptive Richardson (Algorithm 1).
    variant:
        Precision variant: ``"fp16"`` (proposed), ``"fp32"``, or ``"fp64"``.
    adaptive_weight:
        ``False`` selects the static-weight strategy of Fig. 6.
    fixed_weight:
        Weight used when ``adaptive_weight`` is ``False`` (and the initial
        value when it is ``True``).
    tol:
        Relative-residual convergence tolerance (the paper uses 1e-8).
    max_restarts:
        Number of additional full executions when the outermost cycle is
        exhausted (the paper allows three executions in total).
    backend:
        Kernel backend the solve runs on (``"fast"``, ``"reference"``, or any
        name registered with :func:`repro.backends.register_backend`).
        ``None`` (the default) uses the calling thread's active backend —
        thread-local ``set_backend``, else the ``REPRO_BACKEND`` environment
        variable, else ``"fast"``.
    """

    m1: int = 100
    m2: int = 8
    m3: int = 4
    m4: int = 2
    cycle: int = 64
    variant: str = "fp16"
    adaptive_weight: bool = True
    fixed_weight: float = 1.0
    tol: float = 1e-8
    max_restarts: int = 2
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.variant not in _VARIANTS:
            raise ValueError(f"unknown F3R variant {self.variant!r}; choose from {_VARIANTS}")
        if self.backend is not None:
            normalized = self.backend.strip().lower()
            if normalized not in available_backends():
                raise ValueError(f"unknown kernel backend {self.backend!r}; "
                                 f"choose from {available_backends()}")
            # frozen dataclass: store the registry-normalized name
            object.__setattr__(self, "backend", normalized)
        for label, value in (("m1", self.m1), ("m2", self.m2), ("m3", self.m3),
                             ("m4", self.m4), ("cycle", self.cycle)):
            if value < 1:
                raise ValueError(f"{label} must be >= 1 (got {value})")

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return f"{self.variant}-F3R"

    @property
    def inner_iterations(self) -> tuple[int, int, int]:
        return (self.m2, self.m3, self.m4)

    @property
    def preconditionings_per_outer_iteration(self) -> int:
        """Primary-preconditioner invocations per outermost FGMRES iteration."""
        return self.m2 * self.m3 * self.m4

    def schedule(self) -> dict[int, LevelPrecision]:
        return precision_schedule(self.variant)

    def with_params(self, **changes) -> "F3RConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        sched = self.schedule()
        lines = [f"{self.name}: (F{self.m1}, F{self.m2}, F{self.m3}, R{self.m4}, M), "
                 f"c={self.cycle}, tol={self.tol:g}"]
        labels = {1: f"F{self.m1}", 2: f"F{self.m2}", 3: f"F{self.m3}", 4: f"R{self.m4}"}
        for level, prec in sched.items():
            lines.append(f"  level {level} ({labels[level]}): {prec.describe()}")
        return "\n".join(lines)


#: Default configurations matching the paper's three implementations.
DEFAULT_FP16 = F3RConfig(variant="fp16")
DEFAULT_FP32 = F3RConfig(variant="fp32")
DEFAULT_FP64 = F3RConfig(variant="fp64")

__all__ += ["DEFAULT_FP16", "DEFAULT_FP32", "DEFAULT_FP64"]

"""Row-block partitioning for block-Jacobi preconditioning.

The paper's CPU experiments use block-Jacobi ILU(0)/IC(0) with one block per
hardware thread (112 blocks on the 2 × 56-core node).  The partitioner here
reproduces that structure: contiguous row ranges, as equal as possible, with
the block count either given explicitly or derived from a target block size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BlockPartition", "partition_rows"]


@dataclass(frozen=True)
class BlockPartition:
    """A partition of ``n`` rows into contiguous blocks.

    ``offsets`` has length ``nblocks + 1``; block ``k`` covers rows
    ``offsets[k]:offsets[k+1]``.
    """

    n: int
    offsets: np.ndarray

    def __post_init__(self) -> None:
        offsets = np.asarray(self.offsets, dtype=np.int64)
        object.__setattr__(self, "offsets", offsets)
        if offsets[0] != 0 or offsets[-1] != self.n:
            raise ValueError("offsets must start at 0 and end at n")
        if np.any(np.diff(offsets) <= 0):
            raise ValueError("blocks must be non-empty and increasing")

    @property
    def nblocks(self) -> int:
        return self.offsets.size - 1

    def block(self, k: int) -> tuple[int, int]:
        return int(self.offsets[k]), int(self.offsets[k + 1])

    def blocks(self):
        for k in range(self.nblocks):
            yield self.block(k)

    def sizes(self) -> np.ndarray:
        return np.diff(self.offsets)

    def block_of_row(self, row: int) -> int:
        return int(np.searchsorted(self.offsets, row, side="right") - 1)


def partition_rows(n: int, nblocks: int | None = None,
                   target_block_size: int | None = None) -> BlockPartition:
    """Partition ``n`` rows into contiguous, nearly equal blocks.

    Exactly one of ``nblocks`` / ``target_block_size`` may be given; with
    neither, a single block (plain ILU(0)) is returned.
    """
    if nblocks is not None and target_block_size is not None:
        raise ValueError("give either nblocks or target_block_size, not both")
    if n <= 0:
        raise ValueError("n must be positive")
    if nblocks is None:
        if target_block_size is None:
            nblocks = 1
        else:
            nblocks = max(1, (n + target_block_size - 1) // target_block_size)
    nblocks = int(min(max(1, nblocks), n))
    base = n // nblocks
    remainder = n % nblocks
    sizes = np.full(nblocks, base, dtype=np.int64)
    sizes[:remainder] += 1
    offsets = np.zeros(nblocks + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return BlockPartition(n=n, offsets=offsets)

"""Dense vector kernels with precision emulation and traffic accounting.

The Krylov solvers are built exclusively on these primitives (dot, nrm2, axpy,
scal, copy, xpby, waxpby), so every flop and byte the solvers execute flows
through a single instrumented code path.  Each kernel:

* promotes its operands to the wider precision for the arithmetic (the paper's
  promotion rule),
* rounds the result to the requested output precision, and
* records bytes moved / flops with :mod:`repro.perf.counters`.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import record_bytes, record_flops, record_kernel
from ..precision import Precision, as_precision, precision_of_dtype, promote

__all__ = ["dot", "nrm2", "axpy", "axpy_block", "diagmul", "xpby", "waxpby",
           "scal", "vcopy", "vzeros", "cast_vector", "cast_block"]


def _prec(x: np.ndarray) -> Precision:
    return precision_of_dtype(x.dtype)


def vzeros(n: int, precision: Precision | str) -> np.ndarray:
    """Zero vector of length n in the storage dtype of ``precision``."""
    return np.zeros(n, dtype=as_precision(precision).dtype)


def cast_vector(x: np.ndarray, precision: Precision | str, record: bool = True) -> np.ndarray:
    """Round a vector to ``precision`` (a read + write of the vector)."""
    p = as_precision(precision)
    src = _prec(x)
    if record and p != src:
        record_kernel("cast")
        record_bytes(src, x.size * src.bytes)
        record_bytes(p, x.size * p.bytes)
    if x.dtype == p.dtype:
        return x
    return x.astype(p.dtype)


def cast_block(x: np.ndarray, precision: Precision | str, record: bool = True) -> np.ndarray:
    """Round a ``(n, k)`` block to ``precision`` (counter parity with ``k``
    :func:`cast_vector` calls)."""
    p = as_precision(precision)
    src = _prec(x)
    if record and p != src:
        record_kernel("cast", x.shape[1])
        record_bytes(src, x.size * src.bytes)
        record_bytes(p, x.size * p.bytes)
    if x.dtype == p.dtype:
        return x
    return x.astype(p.dtype)


def dot(x: np.ndarray, y: np.ndarray, record: bool = True) -> float:
    """Inner product computed in the promoted precision, returned as float."""
    px, py = _prec(x), _prec(y)
    compute = promote(px, py)
    xc = x if x.dtype == compute.dtype else x.astype(compute.dtype)
    yc = y if y.dtype == compute.dtype else y.astype(compute.dtype)
    result = np.dot(xc, yc)
    if record:
        record_kernel("dot")
        record_bytes(px, x.size * px.bytes)
        record_bytes(py, y.size * py.bytes)
        record_flops(compute, 2 * x.size)
    return float(result)


def nrm2(x: np.ndarray, record: bool = True) -> float:
    """Euclidean norm computed in the operand precision."""
    p = _prec(x)
    result = np.sqrt(np.dot(x, x).astype(np.float64))
    if record:
        record_kernel("norm")
        record_bytes(p, x.size * p.bytes)
        record_flops(p, 2 * x.size)
    return float(result)


def axpy(alpha: float, x: np.ndarray, y: np.ndarray,
         out_precision: Precision | str | None = None, record: bool = True) -> np.ndarray:
    """Return ``alpha * x + y`` rounded to ``out_precision`` (default: y's precision)."""
    px, py = _prec(x), _prec(y)
    compute = promote(px, py)
    out = as_precision(out_precision) if out_precision is not None else py
    alpha_c = compute.dtype.type(alpha)
    xc = x if x.dtype == compute.dtype else x.astype(compute.dtype)
    yc = y if y.dtype == compute.dtype else y.astype(compute.dtype)
    result = (alpha_c * xc + yc).astype(out.dtype, copy=False)
    if record:
        record_kernel("axpy")
        record_bytes(px, x.size * px.bytes)
        record_bytes(py, y.size * py.bytes)
        record_bytes(out, result.size * out.bytes)
        record_flops(compute, 2 * x.size)
    return result


def axpy_block(alpha: float, x: np.ndarray, y: np.ndarray,
               out_precision: Precision | str | None = None,
               record: bool = True) -> np.ndarray:
    """``alpha * X + Y`` column-wise for ``(n, k)`` blocks.

    Counter parity with ``k`` :func:`axpy` calls — the batched form used by
    the composite operators and lockstep solver levels.
    """
    px, py = _prec(x), _prec(y)
    compute = promote(px, py)
    out = as_precision(out_precision) if out_precision is not None else py
    alpha_c = compute.dtype.type(alpha)
    result = (alpha_c * x.astype(compute.dtype, copy=False)
              + y.astype(compute.dtype, copy=False)).astype(out.dtype, copy=False)
    if record:
        n, k = x.shape
        record_kernel("axpy", k)
        record_bytes(px, k * n * px.bytes)
        record_bytes(py, k * n * py.bytes)
        record_bytes(out, k * n * out.bytes)
        record_flops(compute, 2 * k * n)
    return result


def diagmul(scale: np.ndarray, x: np.ndarray,
            out_precision: Precision | str | None = None,
            record: bool = True) -> np.ndarray:
    """``diag(scale) @ x`` for a vector or an ``(n, k)`` block.

    Arithmetic in the promotion of the scale and vector precisions, rounded
    to ``out_precision`` (default: the vector precision); counter parity
    with ``k`` single-vector multiplies (Jacobi-style accounting).
    """
    sp = _prec(scale)
    vp = _prec(x)
    compute = promote(sp, vp)
    out = as_precision(out_precision) if out_precision is not None else vp
    s = scale.astype(compute.dtype, copy=False)
    if x.ndim == 2:
        s = s[:, None]
    result = (x.astype(compute.dtype, copy=False) * s).astype(out.dtype, copy=False)
    if record:
        n = x.shape[0]
        k = x.shape[1] if x.ndim == 2 else 1
        record_kernel("diag_scale", k)
        record_bytes(sp, k * n * sp.bytes)
        record_bytes(vp, k * n * vp.bytes)
        record_bytes(out, k * n * out.bytes)
        record_flops(compute, k * n)
    return result


def xpby(x: np.ndarray, beta: float, y: np.ndarray,
         out_precision: Precision | str | None = None, record: bool = True) -> np.ndarray:
    """Return ``x + beta * y`` (the BiCGStab/CG search-direction update shape)."""
    px, py = _prec(x), _prec(y)
    compute = promote(px, py)
    out = as_precision(out_precision) if out_precision is not None else px
    beta_c = compute.dtype.type(beta)
    xc = x if x.dtype == compute.dtype else x.astype(compute.dtype)
    yc = y if y.dtype == compute.dtype else y.astype(compute.dtype)
    result = (xc + beta_c * yc).astype(out.dtype, copy=False)
    if record:
        record_kernel("axpy")
        record_bytes(px, x.size * px.bytes)
        record_bytes(py, y.size * py.bytes)
        record_bytes(out, result.size * out.bytes)
        record_flops(compute, 2 * x.size)
    return result


def waxpby(alpha: float, x: np.ndarray, beta: float, y: np.ndarray,
           out_precision: Precision | str | None = None, record: bool = True) -> np.ndarray:
    """Return ``alpha * x + beta * y`` (general two-vector update)."""
    px, py = _prec(x), _prec(y)
    compute = promote(px, py)
    out = as_precision(out_precision) if out_precision is not None else promote(px, py)
    a = compute.dtype.type(alpha)
    b = compute.dtype.type(beta)
    xc = x if x.dtype == compute.dtype else x.astype(compute.dtype)
    yc = y if y.dtype == compute.dtype else y.astype(compute.dtype)
    result = (a * xc + b * yc).astype(out.dtype, copy=False)
    if record:
        record_kernel("waxpby")
        record_bytes(px, x.size * px.bytes)
        record_bytes(py, y.size * py.bytes)
        record_bytes(out, result.size * out.bytes)
        record_flops(compute, 3 * x.size)
    return result


def scal(alpha: float, x: np.ndarray, record: bool = True) -> np.ndarray:
    """Return ``alpha * x`` in x's precision."""
    p = _prec(x)
    result = (p.dtype.type(alpha) * x).astype(p.dtype, copy=False)
    if record:
        record_kernel("scal")
        record_bytes(p, 2 * x.size * p.bytes)
        record_flops(p, x.size)
    return result


def vcopy(x: np.ndarray, precision: Precision | str | None = None,
          record: bool = True) -> np.ndarray:
    """Copy ``x``, optionally into a different storage precision."""
    p = as_precision(precision) if precision is not None else _prec(x)
    src = _prec(x)
    result = x.astype(p.dtype, copy=True)
    if record:
        record_kernel("copy")
        record_bytes(src, x.size * src.bytes)
        record_bytes(p, x.size * p.bytes)
    return result

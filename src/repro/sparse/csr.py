"""Compressed Sparse Row (CSR) matrix with mixed-precision SpMV.

This is the primary storage format of the paper's CPU experiments ("The
coefficient matrix and preconditioner were stored in the compressed sparse row
format").  Values may be stored in fp64, fp32 or fp16; column indices and row
pointers are always 32-bit integers, matching the paper.

The SpMV kernel emulates the paper's precision rule: arithmetic is carried out
in the promotion of the matrix-storage and vector precisions, and the result is
rounded to the requested output precision.  The kernel itself lives in the
active :mod:`repro.backends` engine (``reference`` or ``fast``); every call
records its memory traffic with :mod:`repro.perf.counters`.

Matrices are treated as immutable after construction: the ``fast`` backend
caches dtype-converted copies of ``values`` in a per-matrix workspace.
"""

from __future__ import annotations

import numpy as np

from ..backends import get_backend
from ..backends.workspace import ScratchOwner, ThreadLocalWorkspace
from ..par.partition import par_state
from ..precision import BYTES_PER_INDEX, Precision, as_precision, precision_of_dtype

__all__ = ["CSRMatrix", "spmv_csr"]


def spmv_csr(
    values: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    x: np.ndarray,
    out_precision: Precision | str | None = None,
    record: bool = True,
) -> np.ndarray:
    """y = A @ x for a CSR matrix given by (values, indices, indptr).

    Arithmetic runs in the promotion of ``values.dtype`` and ``x.dtype``; the
    result is rounded to ``out_precision`` (default: the vector precision).
    Dispatches to the active kernel backend.
    """
    return get_backend().spmv_csr(values, indices, indptr, x,
                                  out_precision=out_precision, record=record)


class CSRMatrix(ScratchOwner):
    """Sparse matrix in CSR format with 32-bit indices.

    Parameters
    ----------
    values, indices, indptr:
        Standard CSR arrays.  Column indices within each row must be sorted
        (the constructor sorts them if necessary).
    shape:
        ``(nrows, ncols)``.
    """

    __slots__ = ("values", "indices", "indptr", "shape", "_transpose", "_scratch",
                 "_fingerprint", "_fingerprint_parent", "_par")

    def __init__(self, values, indices, indptr, shape) -> None:
        self.indices = np.ascontiguousarray(indices, dtype=np.int32)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int32)
        values = np.ascontiguousarray(values)
        if values.dtype not in (np.float16, np.float32, np.float64):
            values = values.astype(np.float64)
        self.values = values
        self.shape = (int(shape[0]), int(shape[1]))
        if self.indptr.size != self.shape[0] + 1:
            raise ValueError("indptr length must be nrows + 1")
        if self.indices.size != self.values.size:
            raise ValueError("indices and values must have the same length")
        if self.indptr[0] != 0 or self.indptr[-1] != self.values.size:
            raise ValueError("malformed indptr")
        self._transpose: CSRMatrix | None = None
        self._scratch: ThreadLocalWorkspace | None = None
        self._par = None          # repro.par.ParState, attached on first use
        self._fingerprint: str | None = None
        # (source values array, target-precision label or None) when this
        # matrix is an astype copy of a not-yet-fingerprinted source: lets
        # fingerprint() derive the source's content hash lazily without
        # retaining the source *object* (its cached transpose, scratch
        # arenas, ...) — the index arrays are shared with the copy anyway
        self._fingerprint_parent: tuple | None = None
        self._sort_rows()

    # ------------------------------------------------------------------ #
    def _sort_rows(self) -> None:
        """Ensure column indices are sorted within each row (vectorized)."""
        indptr = self.indptr
        diffs = np.diff(self.indices)
        row_boundaries = np.zeros(self.indices.size, dtype=bool)
        if self.indices.size:
            starts = indptr[1:-1]
            row_boundaries[starts[starts < self.indices.size]] = True
        unsorted = np.any((diffs < 0) & ~row_boundaries[1:]) if self.indices.size > 1 else False
        if not unsorted:
            return
        row_ids = np.repeat(np.arange(self.shape[0], dtype=np.int64), np.diff(indptr))
        order = np.lexsort((self.indices, row_ids))
        self.indices = self.indices[order]
        self.values = self.values[order]

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return int(self.values.size)

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def precision(self) -> Precision:
        return precision_of_dtype(self.values.dtype)

    @property
    def nnz_per_row(self) -> float:
        return self.nnz / max(1, self.nrows)

    def row_nnz(self) -> np.ndarray:
        return np.diff(self.indptr)

    def memory_bytes(self) -> int:
        """Bytes occupied by values + indices + row pointers."""
        return (self.values.size * self.precision.bytes
                + self.indices.size * BYTES_PER_INDEX
                + self.indptr.size * BYTES_PER_INDEX)

    # ------------------------------------------------------------------ #
    def matvec(self, x: np.ndarray, out_precision: Precision | str | None = None,
               record: bool = True) -> np.ndarray:
        """Sparse matrix-vector product ``A @ x`` with precision emulation."""
        x = np.asarray(x)
        if x.shape != (self.ncols,):
            raise ValueError(f"dimension mismatch: A is {self.shape}, x has shape {x.shape}")
        return get_backend().spmv_csr(self.values, self.indices, self.indptr, x,
                                      out_precision=out_precision, record=record,
                                      scratch=self.scratch(), par=par_state(self))

    def matmat(self, x: np.ndarray, out_precision: Precision | str | None = None,
               record: bool = True) -> np.ndarray:
        """Batched product ``A @ X`` for ``X`` of shape ``(ncols, k)``.

        One column per right-hand side; the active backend's SpMM kernel
        streams the matrix once over all columns (the ``fast`` engine) or
        loops the SpMV oracle column by column (``reference``).
        """
        x = np.asarray(x)
        if x.ndim != 2 or x.shape[0] != self.ncols:
            raise ValueError(f"dimension mismatch: A is {self.shape}, X has shape {x.shape}")
        return get_backend().spmm_csr(self.values, self.indices, self.indptr, x,
                                      out_precision=out_precision, record=record,
                                      scratch=self.scratch(), par=par_state(self))

    # Operator-contract aliases: a CSRMatrix satisfies the
    # :class:`repro.operators.LinearOperator` surface structurally, so the
    # solver stack (which targets ``apply``/``apply_batch``) accepts a raw
    # matrix as well as a wrapped operator.
    def apply(self, x: np.ndarray, out_precision: Precision | str | None = None,
              record: bool = True) -> np.ndarray:
        return self.matvec(x, out_precision=out_precision, record=record)

    def apply_batch(self, x: np.ndarray, out_precision: Precision | str | None = None,
                    record: bool = True) -> np.ndarray:
        return self.matmat(x, out_precision=out_precision, record=record)

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        return self.matmat(x) if x.ndim == 2 else self.matvec(x)

    def rmatvec(self, x: np.ndarray, record: bool = True) -> np.ndarray:
        """Transpose product ``A.T @ x`` (used by AINV construction and tests)."""
        return self.transpose().matvec(np.asarray(x), record=record)

    # ------------------------------------------------------------------ #
    def diagonal(self) -> np.ndarray:
        """Main diagonal as a dense fp64 vector (zeros where absent)."""
        from .ops import extract_diagonal

        return extract_diagonal(self)

    def transpose(self) -> "CSRMatrix":
        """Return A^T as a CSR matrix (values keep their dtype).

        The result is cached: repeated calls (AINV construction, ``rmatvec``,
        symmetry checks) return the same object, and the transpose's transpose
        is the original matrix.
        """
        cached = self._transpose
        if cached is not None:
            return cached
        nrows, ncols = self.shape
        nnz = self.nnz
        row_ids = np.repeat(np.arange(nrows, dtype=np.int32), np.diff(self.indptr))
        order = np.lexsort((row_ids, self.indices))
        t_indices = row_ids[order]
        t_values = self.values[order]
        t_indptr = np.zeros(ncols + 1, dtype=np.int32)
        np.add.at(t_indptr, self.indices + 1, 1)
        np.cumsum(t_indptr, out=t_indptr)
        if t_indptr[-1] != nnz:
            raise ValueError("inconsistent CSR structure: column indices out of range")
        result = CSRMatrix(t_values, t_indices, t_indptr, (ncols, nrows))
        result._transpose = self
        self._transpose = result
        return result

    def astype(self, precision: Precision | str) -> "CSRMatrix":
        """Copy with values cast to ``precision`` (indices shared).

        The copy's :meth:`fingerprint` is threaded through rather than
        rehashed: a same-precision cast keeps the source fingerprint (the
        content is identical) and a converting cast derives its fingerprint
        from the source's in O(1).  Every ``astype`` product of one matrix
        therefore yields the same dispatcher cache key for a given target
        precision, without re-reading the value array.  The derivation is
        lazy — solve paths that never fingerprint pay no hashing at all;
        until first use the copy holds a reference to its source (the index
        arrays are shared with it anyway).
        """
        p = as_precision(precision)
        out = CSRMatrix(self.values.astype(p.dtype), self.indices, self.indptr,
                        self.shape)
        fp = self._fingerprint
        if fp is None and self._fingerprint_parent is not None:
            # chained casts are rare: resolve this copy's own derived
            # fingerprint now so every descendant derives from one lineage
            fp = self.fingerprint()
        if fp is not None:
            if p.dtype != self.values.dtype:
                from ..operators.base import derived_fingerprint

                fp = derived_fingerprint(fp, "astype", p.label)
            out._fingerprint = fp
        else:
            # defer all hashing: keep only the source's hash inputs (its
            # values array; indices/indptr are shared with the copy)
            label = None if p.dtype == self.values.dtype else p.label
            out._fingerprint_parent = (self.values, label)
        return out

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(self.values.copy(), self.indices.copy(), self.indptr.copy(), self.shape)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        if self.nnz:
            rows = np.repeat(np.arange(self.nrows, dtype=np.int64), np.diff(self.indptr))
            dense[rows, self.indices] = self.values.astype(np.float64)
        return dense

    def to_coo(self):
        from .coo import COOMatrix

        rows = np.repeat(np.arange(self.nrows, dtype=np.int32), np.diff(self.indptr))
        return COOMatrix(rows, self.indices.copy(), self.values.astype(np.float64),
                         self.shape)

    def to_scipy(self):
        """Convert to ``scipy.sparse.csr_matrix`` (fp64 values) for testing."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.values.astype(np.float64), self.indices, self.indptr), shape=self.shape
        )

    @classmethod
    def from_scipy(cls, mat) -> "CSRMatrix":
        csr = mat.tocsr()
        return cls(csr.data, csr.indices, csr.indptr, csr.shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        from .coo import COOMatrix

        return COOMatrix.from_dense(dense).to_csr()

    @classmethod
    def identity(cls, n: int, precision: Precision | str = Precision.FP64) -> "CSRMatrix":
        p = as_precision(precision)
        values = np.ones(n, dtype=p.dtype)
        indices = np.arange(n, dtype=np.int32)
        indptr = np.arange(n + 1, dtype=np.int32)
        return cls(values, indices, indptr, (n, n))

    @classmethod
    def from_diagonal(cls, diag: np.ndarray,
                      precision: Precision | str = Precision.FP64) -> "CSRMatrix":
        diag = np.asarray(diag, dtype=np.float64)
        n = diag.size
        p = as_precision(precision)
        return cls(diag.astype(p.dtype), np.arange(n, dtype=np.int32),
                   np.arange(n + 1, dtype=np.int32), (n, n))

    # ------------------------------------------------------------------ #
    def extract_block(self, start: int, stop: int) -> "CSRMatrix":
        """Return the square diagonal block ``A[start:stop, start:stop]``.

        Used by the block-Jacobi preconditioner: couplings outside the block
        are discarded, exactly as in the paper's block-Jacobi ILU(0).
        """
        m = stop - start
        lo, hi = int(self.indptr[start]), int(self.indptr[stop])
        cols = self.indices[lo:hi]
        row_counts = np.diff(self.indptr[start:stop + 1])
        rows = np.repeat(np.arange(m, dtype=np.int64), row_counts)
        mask = (cols >= start) & (cols < stop)
        sel_cols = (cols[mask] - start).astype(np.int32)
        sel_vals = self.values[lo:hi][mask]
        indptr = np.zeros(m + 1, dtype=np.int32)
        np.cumsum(np.bincount(rows[mask], minlength=m), out=indptr[1:])
        return CSRMatrix(sel_vals, sel_cols, indptr, (m, m))

    def fingerprint(self) -> str:
        """Stable identity hash of the matrix, computed once and cached.

        For a directly constructed matrix this is a content hash (structure
        + values + dtype + shape): independently built equal-valued matrices
        fingerprint identically.  An :meth:`astype` copy instead *derives*
        its fingerprint from its source's in O(1) — every cast of one matrix
        to a given precision yields the same key, but a converting cast's
        key intentionally differs from that of an equal matrix built
        directly at the target precision (the value array is never
        re-hashed).  Used by :class:`repro.serve.BatchDispatcher` to group
        solve requests targeting the same operator and to key its
        preconditioner cache.
        """
        fp = self._fingerprint
        if fp is None:
            parent = self._fingerprint_parent
            if parent is not None:
                # astype copy: recompute the source's content hash from its
                # retained hash inputs, then derive this copy's key (a
                # same-dtype cast keeps the source key — equal content)
                source_values, label = parent
                fp = self._content_hash(source_values)
                if label is not None:
                    from ..operators.base import derived_fingerprint

                    fp = derived_fingerprint(fp, "astype", label)
                self._fingerprint_parent = None   # release the source values
            else:
                fp = self._content_hash(self.values)
            self._fingerprint = fp
        return fp

    def _content_hash(self, values: np.ndarray) -> str:
        """Content hash over (shape, dtype, indptr, indices, values)."""
        import hashlib

        h = hashlib.blake2b(digest_size=16)
        h.update(repr((self.shape, str(values.dtype))).encode())
        h.update(self.indptr.tobytes())
        h.update(self.indices.tobytes())
        h.update(values.tobytes())
        return h.hexdigest()

    def is_symmetric(self, tol: float = 1e-12) -> bool:
        """Check structural+numerical symmetry (within ``tol``) via A - A^T.

        Uses a transient scipy transpose rather than :meth:`transpose` so a
        one-off symmetry check doesn't pin a cached A^T for the matrix's
        lifetime.
        """
        if self.nrows != self.ncols:
            return False
        a_sp = self.to_scipy()
        at_sp = a_sp.transpose().tocsr()
        diff = (a_sp - at_sp).tocoo()
        if diff.nnz == 0:
            return True
        scale = max(1.0, float(np.max(np.abs(self.values.astype(np.float64)))))
        return bool(np.max(np.abs(diff.data)) <= tol * scale)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
                f"precision={self.precision.label})")

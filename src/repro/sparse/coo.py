"""Coordinate (COO) sparse matrix container.

COO is the assembly format: the matrix generators in :mod:`repro.matgen` emit
triplets, which are then converted to CSR (CPU experiments) or sliced ELLPACK
(GPU experiments) for the solver kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["COOMatrix"]


@dataclass
class COOMatrix:
    """Sparse matrix in coordinate format.

    Duplicate entries are allowed at construction and summed by
    :meth:`to_csr` / :meth:`sum_duplicates`, matching the usual finite-element
    assembly convention.
    """

    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=np.int32)
        self.cols = np.asarray(self.cols, dtype=np.int32)
        self.values = np.asarray(self.values, dtype=np.float64)
        if not (self.rows.shape == self.cols.shape == self.values.shape):
            raise ValueError("rows, cols and values must have the same length")
        nrows, ncols = self.shape
        if self.rows.size:
            if self.rows.min() < 0 or self.rows.max() >= nrows:
                raise ValueError("row index out of range")
            if self.cols.min() < 0 or self.cols.max() >= ncols:
                raise ValueError("column index out of range")

    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def sum_duplicates(self) -> "COOMatrix":
        """Return an equivalent COO matrix with duplicate (i, j) entries summed."""
        if self.nnz == 0:
            return COOMatrix(self.rows, self.cols, self.values, self.shape)
        ncols = self.shape[1]
        keys = self.rows.astype(np.int64) * ncols + self.cols.astype(np.int64)
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        vals_sorted = self.values[order]
        unique_mask = np.empty(keys_sorted.size, dtype=bool)
        unique_mask[0] = True
        np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=unique_mask[1:])
        group_starts = np.flatnonzero(unique_mask)
        summed = np.add.reduceat(vals_sorted, group_starts)
        unique_keys = keys_sorted[group_starts]
        rows = (unique_keys // ncols).astype(np.int32)
        cols = (unique_keys % ncols).astype(np.int32)
        return COOMatrix(rows, cols, summed, self.shape)

    def to_csr(self):
        """Convert to :class:`repro.sparse.csr.CSRMatrix` (duplicates summed)."""
        from .csr import CSRMatrix

        dedup = self.sum_duplicates()
        nrows = self.shape[0]
        order = np.lexsort((dedup.cols, dedup.rows))
        rows = dedup.rows[order]
        cols = dedup.cols[order]
        vals = dedup.values[order]
        indptr = np.zeros(nrows + 1, dtype=np.int32)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(vals, cols, indptr, self.shape)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.rows, self.cols), self.values)
        return dense

    def transpose(self) -> "COOMatrix":
        return COOMatrix(self.cols.copy(), self.rows.copy(), self.values.copy(),
                         (self.shape[1], self.shape[0]))

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        rows, cols = np.nonzero(dense)
        return cls(rows.astype(np.int32), cols.astype(np.int32), dense[rows, cols], dense.shape)

"""Level-scheduled sparse triangular solves.

The block-Jacobi ILU(0)/IC(0) preconditioner of the CPU experiments applies
``M^{-1} r`` through one forward (lower) and one backward (upper) triangular
solve per block.  A naive row-by-row substitution is a Python-level loop over
every row of every block at every preconditioner application, which is far too
slow for the experiment suite.  Instead we use *level scheduling* — the same
technique GPU triangular-solve kernels use — computing once, at factorization
time, a partition of the rows into dependency levels; at solve time each level
is processed with vectorized gathers and segment sums.

The substitution kernel dispatches through the active :mod:`repro.backends`
engine.  The ``fast`` backend additionally caches per-level gather indices on
the factor (``_fast_plan``) so repeated applications do no index arithmetic.

Precision: gathers and the per-level update run in the promotion of the factor
and right-hand-side precisions, and the solution vector is stored back in the
requested output precision after each level, so low-precision rounding
accumulates level by level as it would element-by-element on hardware.
"""

from __future__ import annotations

import numpy as np

from ..backends import get_backend
from ..backends.workspace import ScratchOwner
from ..precision import Precision, as_precision, precision_of_dtype
from .csr import CSRMatrix

__all__ = ["TriangularFactor", "compute_levels", "clear_levels_memo",
           "fuse_block_diagonal", "solve_lower", "solve_upper"]


#: structural memo for level schedules, keyed by the dependency edge list.
#: The ILU(0) elimination order, the resulting ``L`` factor's solve schedule
#: and every ``astype``/refactorization of the same pattern share one entry,
#: so block-Jacobi setup derives each block's levels once instead of three
#: times.  Bounded LRU; entries are treated as immutable by all readers.
_LEVELS_MEMO: "dict[str, list[np.ndarray]]" = {}
_LEVELS_MEMO_MAX = 64
_LEVELS_MEMO_LOCK = None  # created lazily to keep import light


def _levels_lock():
    global _LEVELS_MEMO_LOCK
    if _LEVELS_MEMO_LOCK is None:
        import threading
        _LEVELS_MEMO_LOCK = threading.Lock()
    return _LEVELS_MEMO_LOCK


def clear_levels_memo() -> None:
    """Forget memoized level schedules (tests/benchmarks)."""
    with _levels_lock():
        _LEVELS_MEMO.clear()


def _memo_put(key: str, levels: list[np.ndarray]) -> None:
    with _levels_lock():
        if key not in _LEVELS_MEMO and len(_LEVELS_MEMO) >= _LEVELS_MEMO_MAX:
            _LEVELS_MEMO.pop(next(iter(_LEVELS_MEMO)))
        _LEVELS_MEMO[key] = levels


def _levels_from_arrays(arrays: dict | None, n: int) -> list[np.ndarray] | None:
    """Rebuild a level schedule from a cached payload; ``None`` if unusable."""
    if arrays is None:
        return None
    try:
        rows = np.ascontiguousarray(arrays["rows"], dtype=np.int32)
        sizes = np.ascontiguousarray(arrays["sizes"], dtype=np.int64)
    except Exception:
        return None
    if sizes.ndim != 1 or rows.ndim != 1 or int(sizes.sum()) != rows.size:
        return None
    if rows.size and (rows.min() < 0 or rows.max() >= n):
        return None
    return np.split(rows, np.cumsum(sizes)[:-1])


def compute_levels(indices: np.ndarray, indptr: np.ndarray, lower: bool) -> list[np.ndarray]:
    """Partition the rows of a triangular CSR matrix into dependency levels.

    Row ``i`` of a lower-triangular matrix depends on every column ``j < i``
    present in the row; its level is ``1 + max(level of its dependencies)``.
    Rows in the same level are mutually independent and can be solved together.

    Computed by vectorized frontier peeling (Kahn rounds): round ``r``
    removes exactly the rows whose dependencies were all removed in earlier
    rounds, which is the longest-dependency-chain level by induction — the
    same partition the row-by-row recurrence produces, with each level
    ascending by row index (``flatnonzero`` order matches the stable argsort
    of the level array).  One ``O(frontier edges)`` numpy pass per level
    replaces the former Python loop over all ``n`` rows, which dominated
    block-Jacobi factorization cold-start.

    Schedules are memoized in-process by the structural hash of the
    dependency edge list and, with ``REPRO_ARTIFACTS`` set, persisted across
    processes through :mod:`repro.cache`.
    """
    n = indptr.size - 1
    if n == 0:
        return []
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    cols = indices.astype(np.int64, copy=False)
    mask = cols < rows if lower else cols > rows
    dep_src = cols[mask]                 # j: the dependency
    dep_dst = rows[mask]                 # i: the dependent row

    from ..cache import artifact_key, artifacts_enabled, load_arrays, store_arrays

    key = artifact_key("levels", n, dep_src, dep_dst)
    with _levels_lock():
        cached = _LEVELS_MEMO.get(key)
    if cached is not None:
        return list(cached)
    persist = artifacts_enabled()
    if persist:
        levels = _levels_from_arrays(load_arrays("levels", key), n)
        if levels is not None:
            _memo_put(key, levels)
            return list(levels)

    from time import perf_counter
    start = perf_counter()
    levels = _peel_levels(n, dep_src, dep_dst)
    cost_ms = (perf_counter() - start) * 1e3
    _memo_put(key, levels)
    if persist:
        sizes = np.array([lvl.size for lvl in levels], dtype=np.int64)
        rows_flat = (np.concatenate(levels) if levels
                     else np.empty(0, dtype=np.int32))
        store_arrays("levels", key, {"rows": rows_flat, "sizes": sizes},
                     cost_ms=cost_ms)
    return list(levels)


def _peel_levels(n: int, dep_src: np.ndarray, dep_dst: np.ndarray) -> list[np.ndarray]:
    """Frontier peeling over the dependency edge list (see compute_levels)."""
    indegree = np.bincount(dep_dst, minlength=n)

    # adjacency j -> dependents i, CSR-shaped over sources (edges arrive
    # row-major, i.e. sorted by i; a stable sort by j keeps per-source
    # dependents ascending)
    order = np.argsort(dep_src, kind="stable")
    adj_dst = dep_dst[order]
    adj_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(dep_src, minlength=n), out=adj_ptr[1:])

    levels: list[np.ndarray] = []
    frontier = np.flatnonzero(indegree == 0)
    from ..backends.base import segment_ramp

    while frontier.size:
        levels.append(frontier.astype(np.int32))
        starts = adj_ptr[frontier]
        counts = adj_ptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break                        # no dependents left anywhere
        idx = np.repeat(starts, counts) + segment_ramp(counts)
        # decrement only the rows actually reached this round (each edge is
        # visited exactly once over the whole peel, so total work stays
        # O(nnz log nnz) even for chain-structured factors with n levels);
        # np.unique sorts, keeping each frontier ascending by row index
        cand, dec = np.unique(adj_dst[idx], return_counts=True)
        indegree[cand] -= dec
        frontier = cand[indegree[cand] == 0]
    return levels


class TriangularFactor(ScratchOwner):
    """A triangular CSR factor prepared for repeated level-scheduled solves.

    Parameters
    ----------
    matrix:
        Triangular :class:`CSRMatrix` (strictly or including the diagonal).
    lower:
        ``True`` for a lower-triangular factor (forward substitution).
    unit_diagonal:
        If ``True``, the diagonal is taken to be 1 and any stored diagonal
        entries are ignored (the ``L`` factor of ILU(0)).
    """

    def __init__(self, matrix: CSRMatrix, lower: bool, unit_diagonal: bool = False) -> None:
        self.matrix = matrix
        self.lower = bool(lower)
        self.unit_diagonal = bool(unit_diagonal)
        n = matrix.nrows
        self.levels = compute_levels(matrix.indices, matrix.indptr, lower)

        # Pre-split the rows into off-diagonal part + diagonal in one
        # vectorized pass so neither construction nor solve does per-row work.
        indptr = matrix.indptr
        indices = matrix.indices
        values = matrix.values
        rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        if lower:
            off_mask = indices < rows
        else:
            off_mask = indices > rows

        diag = np.ones(n, dtype=np.float64) if unit_diagonal else np.zeros(n, dtype=np.float64)
        if not unit_diagonal:
            diag_mask = indices == rows
            has_diag = np.zeros(n, dtype=bool)
            has_diag[rows[diag_mask]] = True
            if not has_diag.all():
                missing = int(np.argmin(has_diag))
                raise ValueError(f"missing diagonal entry in row {missing} of triangular factor")
            diag[rows[diag_mask]] = values[diag_mask].astype(np.float64)

        self.off_cols = indices[off_mask]
        self.off_vals = values[off_mask]
        off_rowptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows[off_mask], minlength=n), out=off_rowptr[1:])
        self.off_rowptr = off_rowptr
        self.diag = diag
        self.inv_diag = np.where(diag != 0.0, 1.0 / np.where(diag == 0.0, 1.0, diag), 0.0)
        self.precision = precision_of_dtype(values.dtype)
        # fast-backend caches: per-level gather plan (layout-only, shared by
        # astype copies), per-dtype gathered off-diagonal values, and
        # per-thread scratch buffers
        self._fast_plan: list | None = None
        self._fast_vals: dict = {}
        self._scratch = None
        self._par = None          # repro.par.ParState (partitions + verdicts)

    # ------------------------------------------------------------------ #
    @property
    def nrows(self) -> int:
        return self.matrix.nrows

    @property
    def nlevels(self) -> int:
        return len(self.levels)

    def astype(self, precision: Precision | str) -> "TriangularFactor":
        """Re-cast the factor values (and diagonal) to ``precision``."""
        p = as_precision(precision)
        out = object.__new__(TriangularFactor)
        out.matrix = self.matrix.astype(p)
        out.lower = self.lower
        out.unit_diagonal = self.unit_diagonal
        out.levels = self.levels
        out.off_cols = self.off_cols
        out.off_vals = self.off_vals.astype(p.dtype)
        out.off_rowptr = self.off_rowptr
        out.diag = p.dtype.type(1.0) * self.diag.astype(p.dtype).astype(np.float64)
        out.inv_diag = self.inv_diag.astype(p.dtype).astype(np.float64)
        out.precision = p
        out._fast_plan = self._fast_plan   # gather plan is layout-only: share it
        out._fast_vals = {}                # value-dependent: per instance
        out._scratch = None
        out._par = None
        return out

    # ------------------------------------------------------------------ #
    def solve(self, b: np.ndarray, out_precision: Precision | str | None = None,
              record: bool = True) -> np.ndarray:
        """Solve ``T x = b`` by level-scheduled substitution."""
        return get_backend().trsv(self, np.asarray(b), out_precision=out_precision,
                                  record=record)

    def solve_batch(self, b: np.ndarray,
                    out_precision: Precision | str | None = None,
                    record: bool = True) -> np.ndarray:
        """Solve ``T X = B`` for ``B`` of shape ``(n, k)`` (one RHS per column).

        The ``fast`` engine sweeps each dependency level once for all columns,
        amortizing the level-schedule traversal; ``reference`` loops the
        single-RHS oracle.
        """
        b = np.asarray(b)
        if b.ndim != 2 or b.shape[0] != self.nrows:
            raise ValueError(f"batched triangular solve needs B of shape "
                             f"({self.nrows}, k); got {b.shape}")
        return get_backend().trsm(self, b, out_precision=out_precision,
                                  record=record)


def fuse_block_diagonal(factors: list[TriangularFactor]) -> TriangularFactor:
    """Fuse independent factors into one block-diagonal factor.

    The blocks of a block-Jacobi preconditioner are mutually independent, so
    their dependency-level schedules merge — level ``i`` of every block can
    solve together — and one level sweep of the fused factor serves all
    blocks at once (the emulation analogue of thread-per-block execution).

    The fused factor copies each block's *numerical state* (off-diagonal
    values, diagonal, inverse diagonal) verbatim rather than re-deriving it
    from the concatenated matrix, so solving with it is bit-identical to the
    per-block loop even after precision casts (``astype`` rounds a factor's
    cached ``inv_diag``; recomputing ``1/diag`` from cast values would
    differ).
    """
    if not factors:
        raise ValueError("fuse_block_diagonal needs at least one factor")
    first = factors[0]
    if any(f.lower != first.lower or f.unit_diagonal != first.unit_diagonal
           or f.precision != first.precision for f in factors):
        raise ValueError("fused factors must agree on orientation, diagonal "
                         "convention and precision")
    sizes = [f.nrows for f in factors]
    offsets = np.cumsum([0] + sizes[:-1])
    n = int(sum(sizes))

    out = object.__new__(TriangularFactor)
    # block-diagonal CSR of the underlying matrices (dtype preserved)
    values = np.concatenate([f.matrix.values for f in factors])
    indices = np.concatenate([f.matrix.indices.astype(np.int64) + off
                              for f, off in zip(factors, offsets)]).astype(np.int32)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.concatenate([np.diff(f.matrix.indptr) for f in factors]),
              out=indptr[1:])
    out.matrix = CSRMatrix(values, indices, indptr.astype(np.int32), (n, n))

    out.lower = first.lower
    out.unit_diagonal = first.unit_diagonal
    out.off_cols = np.concatenate([f.off_cols.astype(np.int64) + off
                                   for f, off in zip(factors, offsets)]).astype(
                                       first.off_cols.dtype)
    out.off_vals = np.concatenate([f.off_vals for f in factors])
    off_rowptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.concatenate([np.diff(f.off_rowptr) for f in factors]),
              out=off_rowptr[1:])
    out.off_rowptr = off_rowptr
    out.diag = np.concatenate([f.diag for f in factors])
    out.inv_diag = np.concatenate([f.inv_diag for f in factors])
    out.precision = first.precision
    # Merged level schedule, one pass over all blocks: concatenate every
    # block's (level id, globalized row) pairs and stable-sort by level id —
    # block order within a level and row order within a block are preserved,
    # so the result matches the former per-level concatenation loop exactly.
    nlevels = max(f.nlevels for f in factors)
    if nlevels == 0:
        out.levels = []
    else:
        leveled = [(f, off) for f, off in zip(factors, offsets) if f.nlevels]
        level_sizes = np.concatenate(
            [[lvl.size for lvl in f.levels] for f, _ in leveled]).astype(np.int64)
        level_ids = np.concatenate(
            [np.arange(f.nlevels, dtype=np.int64) for f, _ in leveled])
        rows_all = np.concatenate(
            [np.concatenate(f.levels).astype(np.int64) + off
             for f, off in leveled])
        order = np.argsort(np.repeat(level_ids, level_sizes), kind="stable")
        rows_sorted = rows_all[order].astype(np.int32)
        merged_sizes = np.bincount(level_ids, weights=level_sizes,
                                   minlength=nlevels).astype(np.int64)
        out.levels = np.split(rows_sorted, np.cumsum(merged_sizes)[:-1])
    out._fast_plan = None
    out._fast_vals = {}
    out._scratch = None
    out._par = None
    return out


def solve_lower(matrix: CSRMatrix, b: np.ndarray, unit_diagonal: bool = False,
                record: bool = True) -> np.ndarray:
    """One-shot forward substitution (builds the level schedule each call)."""
    return TriangularFactor(matrix, lower=True, unit_diagonal=unit_diagonal).solve(b, record=record)


def solve_upper(matrix: CSRMatrix, b: np.ndarray, unit_diagonal: bool = False,
                record: bool = True) -> np.ndarray:
    """One-shot backward substitution (builds the level schedule each call)."""
    return TriangularFactor(matrix, lower=False, unit_diagonal=unit_diagonal).solve(b, record=record)

"""Level-scheduled sparse triangular solves.

The block-Jacobi ILU(0)/IC(0) preconditioner of the CPU experiments applies
``M^{-1} r`` through one forward (lower) and one backward (upper) triangular
solve per block.  A naive row-by-row substitution is a Python-level loop over
every row of every block at every preconditioner application, which is far too
slow for the experiment suite.  Instead we use *level scheduling* — the same
technique GPU triangular-solve kernels use — computing once, at factorization
time, a partition of the rows into dependency levels; at solve time each level
is processed with vectorized gathers and segment sums.

Precision: gathers and the per-level update run in the promotion of the factor
and right-hand-side precisions, and the solution vector is stored back in the
requested output precision after each level, so low-precision rounding
accumulates level by level as it would element-by-element on hardware.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import record_bytes, record_flops, record_kernel
from ..precision import BYTES_PER_INDEX, Precision, as_precision, precision_of_dtype, promote
from .csr import CSRMatrix

__all__ = ["TriangularFactor", "compute_levels", "solve_lower", "solve_upper"]


def compute_levels(indices: np.ndarray, indptr: np.ndarray, lower: bool) -> list[np.ndarray]:
    """Partition the rows of a triangular CSR matrix into dependency levels.

    Row ``i`` of a lower-triangular matrix depends on every column ``j < i``
    present in the row; its level is ``1 + max(level of its dependencies)``.
    Rows in the same level are mutually independent and can be solved together.
    """
    n = indptr.size - 1
    level = np.zeros(n, dtype=np.int64)
    if lower:
        row_iter = range(n)
    else:
        row_iter = range(n - 1, -1, -1)
    for i in row_iter:
        lo, hi = indptr[i], indptr[i + 1]
        cols = indices[lo:hi]
        if lower:
            deps = cols[cols < i]
        else:
            deps = cols[cols > i]
        level[i] = (level[deps].max() + 1) if deps.size else 0
    nlevels = int(level.max()) + 1 if n else 0
    order = np.argsort(level, kind="stable")
    sorted_levels = level[order]
    boundaries = np.searchsorted(sorted_levels, np.arange(nlevels + 1))
    return [order[boundaries[k]:boundaries[k + 1]].astype(np.int32) for k in range(nlevels)]


class TriangularFactor:
    """A triangular CSR factor prepared for repeated level-scheduled solves.

    Parameters
    ----------
    matrix:
        Triangular :class:`CSRMatrix` (strictly or including the diagonal).
    lower:
        ``True`` for a lower-triangular factor (forward substitution).
    unit_diagonal:
        If ``True``, the diagonal is taken to be 1 and any stored diagonal
        entries are ignored (the ``L`` factor of ILU(0)).
    """

    def __init__(self, matrix: CSRMatrix, lower: bool, unit_diagonal: bool = False) -> None:
        self.matrix = matrix
        self.lower = bool(lower)
        self.unit_diagonal = bool(unit_diagonal)
        n = matrix.nrows
        self.levels = compute_levels(matrix.indices, matrix.indptr, lower)

        # Pre-split each row into off-diagonal part + diagonal value so the
        # solve loop does no per-row Python work.
        indptr = matrix.indptr
        indices = matrix.indices
        values = matrix.values
        diag = np.ones(n, dtype=np.float64) if unit_diagonal else np.zeros(n, dtype=np.float64)

        off_cols = []
        off_vals = []
        off_rowptr = np.zeros(n + 1, dtype=np.int64)
        for i in range(n):
            lo, hi = indptr[i], indptr[i + 1]
            cols = indices[lo:hi]
            vals = values[lo:hi]
            if lower:
                off_mask = cols < i
            else:
                off_mask = cols > i
            diag_mask = cols == i
            if not unit_diagonal:
                if np.any(diag_mask):
                    diag[i] = float(vals[diag_mask][0])
                else:
                    raise ValueError(f"missing diagonal entry in row {i} of triangular factor")
            off_cols.append(cols[off_mask])
            off_vals.append(vals[off_mask])
            off_rowptr[i + 1] = off_rowptr[i] + int(np.count_nonzero(off_mask))

        self.off_cols = (np.concatenate(off_cols) if off_cols else np.empty(0, dtype=np.int32))
        self.off_vals = (np.concatenate(off_vals) if off_vals
                         else np.empty(0, dtype=values.dtype))
        self.off_rowptr = off_rowptr
        self.diag = diag
        self.inv_diag = np.where(diag != 0.0, 1.0 / np.where(diag == 0.0, 1.0, diag), 0.0)
        self.precision = precision_of_dtype(values.dtype)

    # ------------------------------------------------------------------ #
    @property
    def nrows(self) -> int:
        return self.matrix.nrows

    @property
    def nlevels(self) -> int:
        return len(self.levels)

    def astype(self, precision: Precision | str) -> "TriangularFactor":
        """Re-cast the factor values (and diagonal) to ``precision``."""
        p = as_precision(precision)
        out = object.__new__(TriangularFactor)
        out.matrix = self.matrix.astype(p)
        out.lower = self.lower
        out.unit_diagonal = self.unit_diagonal
        out.levels = self.levels
        out.off_cols = self.off_cols
        out.off_vals = self.off_vals.astype(p.dtype)
        out.off_rowptr = self.off_rowptr
        out.diag = p.dtype.type(1.0) * self.diag.astype(p.dtype).astype(np.float64)
        out.inv_diag = self.inv_diag.astype(p.dtype).astype(np.float64)
        out.precision = p
        return out

    # ------------------------------------------------------------------ #
    def solve(self, b: np.ndarray, out_precision: Precision | str | None = None,
              record: bool = True) -> np.ndarray:
        """Solve ``T x = b`` by level-scheduled substitution."""
        b = np.asarray(b)
        vec_prec = precision_of_dtype(b.dtype)
        compute = promote(self.precision, vec_prec)
        out_prec = as_precision(out_precision) if out_precision is not None else vec_prec

        x = np.zeros(self.nrows, dtype=compute.dtype)
        b_c = b if b.dtype == compute.dtype else b.astype(compute.dtype)
        off_vals = (self.off_vals if self.off_vals.dtype == compute.dtype
                    else self.off_vals.astype(compute.dtype))
        inv_diag = self.inv_diag.astype(compute.dtype)

        rowptr = self.off_rowptr
        cols = self.off_cols
        for rows in self.levels:
            starts = rowptr[rows]
            stops = rowptr[rows + 1]
            counts = stops - starts
            total = int(counts.sum())
            if total:
                # Gather the off-diagonal entries of every row in this level.
                gather_idx = np.repeat(starts, counts) + _ramp(counts)
                prods = off_vals[gather_idx] * x[cols[gather_idx]]
                sums = _segment_sum(prods, counts)
            else:
                sums = np.zeros(rows.size, dtype=compute.dtype)
            x[rows] = ((b_c[rows] - sums) * inv_diag[rows]).astype(compute.dtype)

        result = x.astype(out_prec.dtype, copy=False)
        if record:
            nnz = self.off_vals.size + (0 if self.unit_diagonal else self.nrows)
            record_kernel("trsv")
            record_bytes(self.precision, nnz * self.precision.bytes,
                         index_bytes=self.off_cols.size * BYTES_PER_INDEX)
            record_bytes(vec_prec, self.nrows * vec_prec.bytes)
            record_bytes(out_prec, self.nrows * out_prec.bytes)
            record_flops(compute, 2 * self.off_vals.size + 2 * self.nrows)
        return result


def _ramp(counts: np.ndarray) -> np.ndarray:
    """[0..c0-1, 0..c1-1, ...] for segment gathers."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    starts = ends - counts
    idx = np.arange(total, dtype=np.int64)
    return idx - np.repeat(starts, counts)


def _segment_sum(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Sum ``values`` over consecutive segments of the given lengths.

    ``reduceat`` is evaluated only at the starts of non-empty segments, which
    keeps the result correct when empty segments are interleaved or trailing.
    """
    out = np.zeros(counts.size, dtype=values.dtype)
    nonempty = counts > 0
    if np.any(nonempty):
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        out[nonempty] = np.add.reduceat(values, offsets[nonempty])
    return out


def solve_lower(matrix: CSRMatrix, b: np.ndarray, unit_diagonal: bool = False,
                record: bool = True) -> np.ndarray:
    """One-shot forward substitution (builds the level schedule each call)."""
    return TriangularFactor(matrix, lower=True, unit_diagonal=unit_diagonal).solve(b, record=record)


def solve_upper(matrix: CSRMatrix, b: np.ndarray, unit_diagonal: bool = False,
                record: bool = True) -> np.ndarray:
    """One-shot backward substitution (builds the level schedule each call)."""
    return TriangularFactor(matrix, lower=False, unit_diagonal=unit_diagonal).solve(b, record=record)

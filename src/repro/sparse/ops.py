"""Matrix-level operations: diagonal scaling, splitting, norms, symmetry.

The paper applies symmetric diagonal scaling to every test matrix before
solving ("we applied diagonal scaling to all matrices"), and both
preconditioners scale the diagonal by a problem-dependent factor (αILU /
αAINV) during construction only.  Those transformations live here.
"""

from __future__ import annotations

import numpy as np

from ..precision import Precision
from .csr import CSRMatrix

__all__ = [
    "extract_diagonal",
    "diagonal_scaling",
    "apply_diagonal_scaling",
    "scale_diagonal_entries",
    "split_triangular",
    "max_abs",
    "frobenius_norm",
    "residual_norm",
]


def extract_diagonal(matrix: CSRMatrix) -> np.ndarray:
    """Main diagonal of ``matrix`` as a dense fp64 vector (vectorized)."""
    n = min(matrix.shape)
    rows = np.repeat(np.arange(matrix.nrows, dtype=np.int64), np.diff(matrix.indptr))
    mask = (matrix.indices == rows) & (rows < n)
    diag = np.zeros(n, dtype=np.float64)
    diag[rows[mask]] = matrix.values[mask].astype(np.float64)
    return diag


def diagonal_scaling(matrix: CSRMatrix) -> tuple[CSRMatrix, np.ndarray]:
    """Symmetric diagonal (Jacobi) scaling: returns ``D^{-1/2} A D^{-1/2}`` and the
    scaling vector ``d = diag(A)``.

    Rows whose diagonal is zero or negative are scaled by ``1/sqrt(|d|)`` (or 1
    when the diagonal is exactly zero) so the transformation stays well defined
    for indefinite test matrices.
    """
    diag = extract_diagonal(matrix)
    safe = np.where(diag != 0.0, np.abs(diag), 1.0)
    scale = 1.0 / np.sqrt(safe)
    scaled = apply_diagonal_scaling(matrix, scale, scale)
    return scaled, diag


def apply_diagonal_scaling(matrix: CSRMatrix, row_scale: np.ndarray,
                           col_scale: np.ndarray) -> CSRMatrix:
    """Return ``diag(row_scale) @ A @ diag(col_scale)`` as a new CSR matrix."""
    row_scale = np.asarray(row_scale, dtype=np.float64)
    col_scale = np.asarray(col_scale, dtype=np.float64)
    rows = np.repeat(np.arange(matrix.nrows, dtype=np.int64), np.diff(matrix.indptr))
    values = matrix.values.astype(np.float64) * row_scale[rows] * col_scale[matrix.indices]
    return CSRMatrix(values.astype(matrix.values.dtype), matrix.indices.copy(),
                     matrix.indptr.copy(), matrix.shape)


def scale_diagonal_entries(matrix: CSRMatrix, alpha: float) -> CSRMatrix:
    """Return a copy of ``matrix`` with its diagonal entries multiplied by ``alpha``.

    This is the αILU / αAINV stabilization: the scaled matrix is only used to
    *construct* the preconditioner; the solver still iterates on the original.
    """
    rows = np.repeat(np.arange(matrix.nrows, dtype=np.int64), np.diff(matrix.indptr))
    values = matrix.values.astype(np.float64).copy()
    on_diag = matrix.indices == rows
    values[on_diag] *= float(alpha)
    return CSRMatrix(values.astype(matrix.values.dtype), matrix.indices.copy(),
                     matrix.indptr.copy(), matrix.shape)


def split_triangular(matrix: CSRMatrix) -> tuple[CSRMatrix, np.ndarray, CSRMatrix]:
    """Split A into (strictly lower L, diagonal d, strictly upper U) in CSR form."""
    n = matrix.nrows
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(matrix.indptr))
    cols = matrix.indices
    vals = matrix.values.astype(np.float64)

    diag = extract_diagonal(matrix)

    lower_mask = cols < rows
    upper_mask = cols > rows

    def _build(mask: np.ndarray) -> CSRMatrix:
        sel_rows = rows[mask]
        sel_cols = cols[mask]
        sel_vals = vals[mask]
        indptr = np.zeros(n + 1, dtype=np.int32)
        np.add.at(indptr, sel_rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(sel_vals.astype(matrix.values.dtype), sel_cols.astype(np.int32),
                         indptr, matrix.shape)

    return _build(lower_mask), diag, _build(upper_mask)


def max_abs(matrix: CSRMatrix) -> float:
    """Largest absolute value among the stored entries."""
    if matrix.nnz == 0:
        return 0.0
    return float(np.max(np.abs(matrix.values.astype(np.float64))))


def frobenius_norm(matrix: CSRMatrix) -> float:
    if matrix.nnz == 0:
        return 0.0
    vals = matrix.values.astype(np.float64)
    return float(np.sqrt(np.dot(vals, vals)))


def residual_norm(matrix, x: np.ndarray, b: np.ndarray) -> float:
    """||b - A x||_2 evaluated in fp64 regardless of storage precision.

    This is the solver-independent "true residual" used for convergence checks
    in the experiments (the paper checks convergence only in the fp64 outermost
    level, which amounts to the same thing).  ``matrix`` may be a
    :class:`CSRMatrix` or any :class:`~repro.operators.LinearOperator`.
    """
    x64 = np.asarray(x, dtype=np.float64)
    b64 = np.asarray(b, dtype=np.float64)
    a64 = matrix if matrix.precision == Precision.FP64 else matrix.astype(Precision.FP64)
    r = b64 - a64.apply(x64, record=False)
    return float(np.linalg.norm(r))

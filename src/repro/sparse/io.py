"""Matrix Market (.mtx) reader / writer.

The paper's test set is drawn from the SuiteSparse collection, which is
distributed in Matrix Market format.  The reproduction uses synthetic
surrogates by default (no network), but this module lets a user drop in the
real files when they have them, so the harness can run on the paper's exact
matrices as well.
"""

from __future__ import annotations

import gzip
from pathlib import Path

import numpy as np

from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]


def _open(path: Path, mode: str):
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_matrix_market(path: str | Path) -> CSRMatrix:
    """Read a (possibly gzipped) Matrix Market coordinate file into CSR.

    Supports ``real``/``integer``/``pattern`` fields and ``general``/
    ``symmetric``/``skew-symmetric`` symmetry qualifiers, which covers every
    matrix the paper uses.
    """
    path = Path(path)
    with _open(path, "r") as fh:
        header = fh.readline().strip().split()
        if len(header) < 5 or header[0] != "%%MatrixMarket":
            raise ValueError(f"not a MatrixMarket file: {path}")
        _, obj, fmt, field, symmetry = [token.lower() for token in header[:5]]
        if obj != "matrix" or fmt != "coordinate":
            raise ValueError("only coordinate-format matrices are supported")
        if field not in ("real", "integer", "pattern"):
            raise ValueError(f"unsupported field type: {field}")
        if symmetry not in ("general", "symmetric", "skew-symmetric"):
            raise ValueError(f"unsupported symmetry: {symmetry}")

        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        nrows, ncols, nnz = (int(tok) for tok in line.split())

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        pattern = field == "pattern"
        for k in range(nnz):
            parts = fh.readline().split()
            rows[k] = int(parts[0]) - 1
            cols[k] = int(parts[1]) - 1
            vals[k] = 1.0 if pattern else float(parts[2])

    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        extra_rows = cols[off]
        extra_cols = rows[off]
        extra_vals = vals[off] if symmetry == "symmetric" else -vals[off]
        rows = np.concatenate([rows, extra_rows])
        cols = np.concatenate([cols, extra_cols])
        vals = np.concatenate([vals, extra_vals])

    coo = COOMatrix(rows.astype(np.int32), cols.astype(np.int32), vals, (nrows, ncols))
    return coo.to_csr()


def write_matrix_market(matrix: CSRMatrix, path: str | Path, comment: str = "") -> None:
    """Write a CSR matrix to a Matrix Market coordinate file (general, real)."""
    path = Path(path)
    coo = matrix.to_coo()
    with _open(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        fh.write(f"{matrix.nrows} {matrix.ncols} {coo.nnz}\n")
        for r, c, v in zip(coo.rows, coo.cols, coo.values):
            fh.write(f"{int(r) + 1} {int(c) + 1} {float(v):.17g}\n")

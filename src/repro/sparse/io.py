"""Matrix Market (.mtx) reader / writer.

The paper's test set is drawn from the SuiteSparse collection, which is
distributed in Matrix Market format.  The reproduction uses synthetic
surrogates by default (no network), but this module lets a user drop in the
real files when they have them, so the harness can run on the paper's exact
matrices as well.
"""

from __future__ import annotations

import gzip
from pathlib import Path

import numpy as np

from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]


def _open(path: Path, mode: str):
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_matrix_market(path: str | Path) -> CSRMatrix:
    """Read a (possibly gzipped) Matrix Market coordinate file into CSR.

    Supports ``real``/``integer``/``pattern`` fields and ``general``/
    ``symmetric``/``skew-symmetric`` symmetry qualifiers, which covers every
    matrix the paper uses.
    """
    path = Path(path)
    with _open(path, "r") as fh:
        header = fh.readline().strip().split()
        if len(header) < 5 or header[0] != "%%MatrixMarket":
            raise ValueError(f"not a MatrixMarket file: {path}")
        _, obj, fmt, field, symmetry = [token.lower() for token in header[:5]]
        if obj != "matrix" or fmt != "coordinate":
            raise ValueError("only coordinate-format matrices are supported")
        if field not in ("real", "integer", "pattern"):
            raise ValueError(f"unsupported field type: {field}")
        if symmetry not in ("general", "symmetric", "skew-symmetric"):
            raise ValueError(f"unsupported symmetry: {symmetry}")

        # size line: the format allows blank and comment lines between the
        # header and the sizes (and inside the data block below)
        while True:
            line = fh.readline()
            if not line:
                raise ValueError(f"truncated MatrixMarket file (no size line): {path}")
            stripped = line.strip()
            if stripped and not stripped.startswith("%"):
                break
        try:
            nrows, ncols, nnz = (int(tok) for tok in stripped.split())
        except ValueError:
            raise ValueError(f"malformed MatrixMarket size line: {stripped!r}") from None

        pattern = field == "pattern"
        width = 2 if pattern else 3
        if nnz == 0:
            data = np.empty((0, width), dtype=np.float64)
        else:
            # one vectorized pass over the data block; loadtxt skips blank
            # lines natively and comments="%" covers embedded comment lines
            try:
                data = np.loadtxt(fh, dtype=np.float64, comments="%", ndmin=2)
            except ValueError as exc:
                raise ValueError(f"malformed MatrixMarket data in {path}: {exc}") from None
        if data.size and data.shape[1] < width:
            raise ValueError(
                f"MatrixMarket data rows have {data.shape[1]} columns; "
                f"expected {width} for field type {field!r}")
        if data.shape[0] != nnz:
            raise ValueError(
                f"truncated MatrixMarket file {path}: size line promises "
                f"{nnz} entries, data block has {data.shape[0]}")
        rows = data[:, 0].astype(np.int64) - 1
        cols = data[:, 1].astype(np.int64) - 1
        vals = np.ones(nnz, dtype=np.float64) if pattern else data[:, 2].copy()

    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        extra_rows = cols[off]
        extra_cols = rows[off]
        extra_vals = vals[off] if symmetry == "symmetric" else -vals[off]
        rows = np.concatenate([rows, extra_rows])
        cols = np.concatenate([cols, extra_cols])
        vals = np.concatenate([vals, extra_vals])

    # duplicate coordinate entries are summed per the MatrixMarket spec
    # (COOMatrix.to_csr's assembly convention is exactly that)
    coo = COOMatrix(rows.astype(np.int32), cols.astype(np.int32), vals, (nrows, ncols))
    return coo.to_csr()


def write_matrix_market(matrix: CSRMatrix, path: str | Path, comment: str = "") -> None:
    """Write a CSR matrix to a Matrix Market coordinate file (general, real)."""
    path = Path(path)
    coo = matrix.to_coo()
    with _open(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        fh.write(f"{matrix.nrows} {matrix.ncols} {coo.nnz}\n")
        if coo.nnz:
            table = np.column_stack([coo.rows.astype(np.int64) + 1,
                                     coo.cols.astype(np.int64) + 1,
                                     coo.values.astype(np.float64)])
            np.savetxt(fh, table, fmt="%d %d %.17g")

"""Sliced ELLPACK sparse format.

The paper's GPU experiments store matrices in sliced ELLPACK (Monakov et al.,
2010) with a chunk (slice) size of 32: rows are grouped into chunks, each chunk
is padded to the width of its longest row, and values are laid out
column-major within the chunk so that consecutive threads read consecutive
addresses.  Here the format matters because its padding changes the memory
traffic, which is what the GPU machine model consumes.

The matvec kernel dispatches through the active :mod:`repro.backends` engine;
the ``fast`` backend attaches a row-major gather plan and scratch buffers to
the matrix (``_rm_plan`` / ``_scratch``) on first use.
"""

from __future__ import annotations

import numpy as np

from ..backends import get_backend
from ..backends.workspace import ScratchOwner, ThreadLocalWorkspace
from ..precision import BYTES_PER_INDEX, Precision, as_precision, precision_of_dtype

__all__ = ["SlicedEllMatrix", "chunk_widths", "padded_entry_count"]


def chunk_widths(row_nnz: np.ndarray, chunk_size: int) -> np.ndarray:
    """Per-chunk padded width (the longest row of each ``chunk_size`` slice).

    The single source of the sliced-ELLPACK padding rule: every chunk —
    including a partial trailing one — stores ``width * chunk_size`` entries.
    Shared by :class:`SlicedEllMatrix` and the format auto-selection cost
    estimate so the two can never diverge.
    """
    nrows = int(row_nnz.size)
    nchunks = (nrows + chunk_size - 1) // chunk_size
    if not nchunks:
        return np.zeros(0, dtype=np.int32)
    starts = np.arange(nchunks, dtype=np.int64) * chunk_size
    return np.maximum.reduceat(row_nnz, starts).astype(np.int32)


def padded_entry_count(row_nnz: np.ndarray, chunk_size: int) -> int:
    """Stored (padded) entries of the sliced-ELL layout for these row lengths."""
    widths = chunk_widths(np.asarray(row_nnz, dtype=np.int64), chunk_size)
    return int(widths.astype(np.int64).sum()) * int(chunk_size)


class SlicedEllMatrix(ScratchOwner):
    """Sparse matrix in sliced-ELLPACK layout.

    Parameters
    ----------
    csr:
        Source :class:`~repro.sparse.csr.CSRMatrix`.
    chunk_size:
        Number of rows per slice (the paper uses 32).
    """

    __slots__ = ("shape", "chunk_size", "chunk_widths", "chunk_offsets",
                 "values", "indices", "_source_nnz", "_rm_plan", "_rm_vals",
                 "_scratch", "_par")

    def __init__(self, csr, chunk_size: int = 32) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        nrows, ncols = csr.shape
        self.shape = (nrows, ncols)
        self.chunk_size = int(chunk_size)
        self._source_nnz = csr.nnz
        self._rm_plan = None
        self._rm_vals: dict = {}
        self._scratch = None
        self._par = None          # repro.par.ParState, attached on first use

        row_nnz = np.diff(csr.indptr).astype(np.int64)
        self.chunk_widths = chunk_widths(row_nnz, chunk_size)
        nchunks = self.chunk_widths.size

        offsets = np.zeros(nchunks + 1, dtype=np.int64)
        np.cumsum(self.chunk_widths.astype(np.int64) * chunk_size, out=offsets[1:])
        self.chunk_offsets = offsets

        total = int(offsets[-1])
        values = np.zeros(total, dtype=csr.values.dtype)
        indices = np.zeros(total, dtype=np.int32)

        # Column-major layout within each chunk: element (row r, slot j) of
        # chunk c lives at offset[c] + j*chunk_size + (r - c*chunk_size).
        # Scatter all CSR entries to their slots in one vectorized pass;
        # padding slots keep value 0 and column 0 (harmless: 0 * x[0]).
        if csr.nnz:
            rows_all = np.repeat(np.arange(nrows, dtype=np.int64), row_nnz)
            k_within = (np.arange(csr.nnz, dtype=np.int64)
                        - np.repeat(csr.indptr[:-1].astype(np.int64), row_nnz))
            chunk_all = rows_all // chunk_size
            slots = (offsets[chunk_all] + k_within * chunk_size
                     + (rows_all - chunk_all * chunk_size))
            values[slots] = csr.values
            indices[slots] = csr.indices
        self.values = values
        self.indices = indices

    # ------------------------------------------------------------------ #
    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of *stored* (padded) entries."""
        return int(self.values.size)

    @property
    def source_nnz(self) -> int:
        """Number of structural nonzeros of the source matrix."""
        return self._source_nnz

    @property
    def padding_ratio(self) -> float:
        """stored entries / structural nonzeros (>= 1)."""
        return self.nnz / max(1, self._source_nnz)

    @property
    def nnz_per_row(self) -> float:
        """Stored (padded) entries per row — what an ELL apply streams, the
        honest ``cA`` input for this layout."""
        return self.nnz / max(1, self.nrows)

    @property
    def precision(self) -> Precision:
        return precision_of_dtype(self.values.dtype)

    def memory_bytes(self) -> int:
        return (self.values.size * self.precision.bytes
                + self.indices.size * BYTES_PER_INDEX
                + self.chunk_offsets.size * 8)

    def astype(self, precision: Precision | str) -> "SlicedEllMatrix":
        p = as_precision(precision)
        out = object.__new__(SlicedEllMatrix)
        out.shape = self.shape
        out.chunk_size = self.chunk_size
        out.chunk_widths = self.chunk_widths
        out.chunk_offsets = self.chunk_offsets
        out.values = self.values.astype(p.dtype)
        out.indices = self.indices
        out._source_nnz = self._source_nnz
        out._rm_plan = self._rm_plan       # layout-only; shared across dtypes
        out._rm_vals = {}                  # value-dependent; per instance
        out._scratch = None
        out._par = None
        return out

    # ------------------------------------------------------------------ #
    def matvec(self, x: np.ndarray, out_precision: Precision | str | None = None,
               record: bool = True) -> np.ndarray:
        """y = A @ x using the sliced-ELLPACK layout.

        Traffic accounting includes the padded entries — the whole point of
        modelling this format for the GPU experiments.
        """
        x = np.asarray(x)
        if x.shape != (self.ncols,):
            raise ValueError("dimension mismatch in sliced-ELLPACK matvec")
        return get_backend().spmv_ell(self, x, out_precision=out_precision,
                                      record=record)

    def matmat(self, x: np.ndarray, out_precision: Precision | str | None = None,
               record: bool = True) -> np.ndarray:
        """Batched product ``A @ X`` for ``X`` of shape ``(ncols, k)``."""
        x = np.asarray(x)
        if x.ndim != 2 or x.shape[0] != self.ncols:
            raise ValueError("dimension mismatch in sliced-ELLPACK matmat")
        return get_backend().spmm_ell(self, x, out_precision=out_precision,
                                      record=record)

    # operator-contract aliases (see CSRMatrix.apply)
    def apply(self, x: np.ndarray, out_precision: Precision | str | None = None,
              record: bool = True) -> np.ndarray:
        return self.matvec(x, out_precision=out_precision, record=record)

    def apply_batch(self, x: np.ndarray, out_precision: Precision | str | None = None,
                    record: bool = True) -> np.ndarray:
        return self.matmat(x, out_precision=out_precision, record=record)

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        return self.matmat(x) if x.ndim == 2 else self.matvec(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SlicedEllMatrix(shape={self.shape}, chunk_size={self.chunk_size}, "
                f"padding_ratio={self.padding_ratio:.2f}, precision={self.precision.label})")

"""Sliced ELLPACK sparse format.

The paper's GPU experiments store matrices in sliced ELLPACK (Monakov et al.,
2010) with a chunk (slice) size of 32: rows are grouped into chunks, each chunk
is padded to the width of its longest row, and values are laid out
column-major within the chunk so that consecutive threads read consecutive
addresses.  Here the format matters because its padding changes the memory
traffic, which is what the GPU machine model consumes.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import record_bytes, record_flops, record_kernel
from ..precision import BYTES_PER_INDEX, Precision, as_precision, precision_of_dtype, promote

__all__ = ["SlicedEllMatrix"]


class SlicedEllMatrix:
    """Sparse matrix in sliced-ELLPACK layout.

    Parameters
    ----------
    csr:
        Source :class:`~repro.sparse.csr.CSRMatrix`.
    chunk_size:
        Number of rows per slice (the paper uses 32).
    """

    __slots__ = ("shape", "chunk_size", "chunk_widths", "chunk_offsets",
                 "values", "indices", "_source_nnz")

    def __init__(self, csr, chunk_size: int = 32) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        nrows, ncols = csr.shape
        self.shape = (nrows, ncols)
        self.chunk_size = int(chunk_size)
        self._source_nnz = csr.nnz

        row_nnz = np.diff(csr.indptr)
        nchunks = (nrows + chunk_size - 1) // chunk_size

        chunk_widths = np.zeros(nchunks, dtype=np.int32)
        for c in range(nchunks):
            lo = c * chunk_size
            hi = min(lo + chunk_size, nrows)
            chunk_widths[c] = int(row_nnz[lo:hi].max()) if hi > lo else 0
        self.chunk_widths = chunk_widths

        offsets = np.zeros(nchunks + 1, dtype=np.int64)
        np.cumsum(chunk_widths.astype(np.int64) * chunk_size, out=offsets[1:])
        self.chunk_offsets = offsets

        total = int(offsets[-1])
        values = np.zeros(total, dtype=csr.values.dtype)
        indices = np.zeros(total, dtype=np.int32)

        # Column-major layout within each chunk: element (row r, slot j) of
        # chunk c lives at offset[c] + j*chunk_size + (r - c*chunk_size).
        for c in range(nchunks):
            lo = c * chunk_size
            hi = min(lo + chunk_size, nrows)
            width = chunk_widths[c]
            base = offsets[c]
            for local, i in enumerate(range(lo, hi)):
                a, b = csr.indptr[i], csr.indptr[i + 1]
                k = b - a
                slots = base + np.arange(k, dtype=np.int64) * chunk_size + local
                values[slots] = csr.values[a:b]
                indices[slots] = csr.indices[a:b]
                # padding slots keep value 0 and column 0 (harmless: 0 * x[0])
        self.values = values
        self.indices = indices

    # ------------------------------------------------------------------ #
    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of *stored* (padded) entries."""
        return int(self.values.size)

    @property
    def source_nnz(self) -> int:
        """Number of structural nonzeros of the source matrix."""
        return self._source_nnz

    @property
    def padding_ratio(self) -> float:
        """stored entries / structural nonzeros (>= 1)."""
        return self.nnz / max(1, self._source_nnz)

    @property
    def precision(self) -> Precision:
        return precision_of_dtype(self.values.dtype)

    def memory_bytes(self) -> int:
        return (self.values.size * self.precision.bytes
                + self.indices.size * BYTES_PER_INDEX
                + self.chunk_offsets.size * 8)

    def astype(self, precision: Precision | str) -> "SlicedEllMatrix":
        p = as_precision(precision)
        out = object.__new__(SlicedEllMatrix)
        out.shape = self.shape
        out.chunk_size = self.chunk_size
        out.chunk_widths = self.chunk_widths
        out.chunk_offsets = self.chunk_offsets
        out.values = self.values.astype(p.dtype)
        out.indices = self.indices
        out._source_nnz = self._source_nnz
        return out

    # ------------------------------------------------------------------ #
    def matvec(self, x: np.ndarray, out_precision: Precision | str | None = None,
               record: bool = True) -> np.ndarray:
        """y = A @ x using the sliced-ELLPACK layout.

        Traffic accounting includes the padded entries — the whole point of
        modelling this format for the GPU experiments.
        """
        x = np.asarray(x)
        if x.shape != (self.ncols,):
            raise ValueError("dimension mismatch in sliced-ELLPACK matvec")
        mat_prec = self.precision
        vec_prec = precision_of_dtype(x.dtype)
        compute = promote(mat_prec, vec_prec)
        out_prec = as_precision(out_precision) if out_precision is not None else vec_prec

        vals = self.values if self.values.dtype == compute.dtype else self.values.astype(compute.dtype)
        x_c = x if x.dtype == compute.dtype else x.astype(compute.dtype)

        y = np.zeros(self.nrows, dtype=compute.dtype)
        nchunks = self.chunk_widths.size
        cs = self.chunk_size
        for c in range(nchunks):
            lo = c * cs
            hi = min(lo + cs, self.nrows)
            rows_in_chunk = hi - lo
            width = int(self.chunk_widths[c])
            if width == 0:
                continue
            base = int(self.chunk_offsets[c])
            block_vals = vals[base:base + width * cs].reshape(width, cs)[:, :rows_in_chunk]
            block_cols = self.indices[base:base + width * cs].reshape(width, cs)[:, :rows_in_chunk]
            y[lo:hi] = (block_vals * x_c[block_cols]).sum(axis=0, dtype=compute.dtype)
        y = y.astype(out_prec.dtype, copy=False)

        if record:
            stored = self.nnz
            record_kernel("spmv")
            record_bytes(mat_prec, stored * mat_prec.bytes,
                         index_bytes=stored * BYTES_PER_INDEX)
            record_bytes(vec_prec, self.nrows * vec_prec.bytes)
            record_bytes(out_prec, self.nrows * out_prec.bytes)
            record_flops(compute, 2 * stored)
        return y

    __matmul__ = matvec

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SlicedEllMatrix(shape={self.shape}, chunk_size={self.chunk_size}, "
                f"padding_ratio={self.padding_ratio:.2f}, precision={self.precision.label})")

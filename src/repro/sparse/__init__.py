"""Sparse-matrix substrate: storage formats, SpMV, triangular solves, vector kernels."""

from .coo import COOMatrix
from .csr import CSRMatrix, spmv_csr
from .ell import SlicedEllMatrix
from .blocking import BlockPartition, partition_rows
from .triangular import (
    TriangularFactor,
    compute_levels,
    fuse_block_diagonal,
    solve_lower,
    solve_upper,
)
from .ops import (
    apply_diagonal_scaling,
    diagonal_scaling,
    extract_diagonal,
    frobenius_norm,
    max_abs,
    residual_norm,
    scale_diagonal_entries,
    split_triangular,
)
from .io import read_matrix_market, write_matrix_market
from . import vectorops

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "spmv_csr",
    "SlicedEllMatrix",
    "BlockPartition",
    "partition_rows",
    "TriangularFactor",
    "compute_levels",
    "fuse_block_diagonal",
    "solve_lower",
    "solve_upper",
    "apply_diagonal_scaling",
    "diagonal_scaling",
    "extract_diagonal",
    "frobenius_norm",
    "max_abs",
    "residual_norm",
    "scale_diagonal_entries",
    "split_triangular",
    "read_matrix_market",
    "write_matrix_market",
    "vectorops",
]

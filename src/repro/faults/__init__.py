"""Deterministic fault injection for robustness testing.

The guards and the recovery ladder exist to survive numerical corruption and
infrastructure failures — this module *manufactures* those failures on
demand, deterministically, so the survival machinery can be tested end to
end instead of waiting for a real fp16 overflow:

* **Kernel corruption** — a seeded :class:`FaultPlan` interposes a proxy
  between the solvers and the active :class:`~repro.backends.KernelBackend`
  (via the ``repro.backends`` wrapper hook) and poisons kernel outputs with
  NaN/Inf at deterministic ``(site, call-count)`` coordinates.
* **Worker failures** — :func:`maybe_fail_worker` raises
  :class:`InjectedFault` inside dispatcher workers at seeded call counts,
  exercising the retry/backoff path.
* **Latency** — :func:`maybe_delay` sleeps a configured amount at seeded
  call counts, exercising deadlines.
* **Network faults** — :func:`maybe_net` tells a transport what to do with
  the message it is about to send: deliver, ``drop`` it silently, ``dup``
  it (send twice), or ``disconnect`` the link abruptly, plus a per-message
  injected delay drawn from ``net_delay_ms``.  The remote shard tier
  (:mod:`repro.serve.remote`) consults it on every frame, so partitions,
  lost replies, and duplicated deliveries replay exactly from a seed.

Determinism: every decision is a pure function of ``(seed, site,
call-count)`` — the per-site call counter plus a ``Philox``-style seed
sequence over ``(seed, crc32(site), count)`` — so a failing hammer run
replays exactly from its seed, across processes.

Zero cost when idle: with no active plan the backends hook is uninstalled
(one ``is None`` check in ``get_backend``) and the dispatcher helpers
return after one global read.  Activation is explicit: the
:func:`inject` context manager, or the ``REPRO_FAULTS`` environment
variable (``seed=7,rate=0.02,sites=spmv+trsv,kinds=nan``) parsed by
:func:`install_from_env` at package import.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..backends import _set_backend_wrapper

__all__ = [
    "FaultPlan",
    "FaultRecord",
    "InjectedFault",
    "active_plan",
    "inject",
    "install_plan",
    "install_from_env",
    "maybe_delay",
    "maybe_fail_worker",
    "maybe_hang",
    "maybe_kill_process",
    "maybe_net",
]

#: kernel-method name -> fault site label
_KERNEL_SITES = {
    "spmv_csr": "spmv",
    "spmm_csr": "spmv",
    "spmv_ell": "spmv",
    "spmm_ell": "spmv",
    "apply_stencil": "spmv",
    "apply_stencil_batch": "spmv",
    "spmv_axpy": "spmv",
    "spmm_axpy": "spmv",
    "trsv": "trsv",
    "trsm": "trsv",
}

#: the active plan (process-global: dispatcher workers are other threads)
_PLAN: "FaultPlan | None" = None
_LOCK = threading.Lock()


class InjectedFault(RuntimeError):
    """An infrastructure failure manufactured by the fault plan."""

    def __init__(self, message: str, site: str, call: int) -> None:
        super().__init__(message)
        self.site = site
        self.call = call


@dataclass
class FaultRecord:
    """One fault as fired (the plan's audit log for test assertions)."""

    site: str
    call: int
    kind: str

    def summary(self) -> dict:
        return {"site": self.site, "call": self.call, "kind": self.kind}


class FaultPlan:
    """Seeded, deterministic fault schedule.

    Parameters
    ----------
    seed:
        Root seed; two plans with the same seed and parameters fire
        identical faults at identical call counts.
    rate:
        Per-call probability of corrupting a kernel output at an enabled
        site (deterministic given the seed).
    sites:
        Kernel sites eligible for corruption (``"spmv"``, ``"trsv"``,
        ``"orthogonalize"``).
    kinds:
        Corruption payloads drawn per fault: ``"nan"`` and/or ``"inf"``.
    worker_rate:
        Per-call probability that :func:`maybe_fail_worker` raises.
    kill_rate:
        Per-call probability that :func:`maybe_kill_process` hard-exits the
        calling process (``os._exit``) — worker-death injection for the
        process tier, where a "worker failure" must be a real process exit,
        not a catchable exception.
    latency, latency_rate:
        :func:`maybe_delay` sleeps ``latency`` seconds with probability
        ``latency_rate`` per call.
    hang_rate, hang_ms:
        :func:`maybe_hang` wedges the calling worker for ``hang_ms``
        milliseconds with probability ``hang_rate`` per call — unlike
        latency, a hang also suppresses the worker's heartbeat (via the
        ``wedge`` hook), modeling a whole-process stall that the ProcPool
        watchdog must classify as :class:`~repro.par.procpool.WorkerHung`.
    drop_rate, dup_rate, disconnect_rate, net_delay_ms:
        Network-message faults consulted by :func:`maybe_net` per frame:
        probability the message is silently dropped, delivered twice, or
        the link is torn down mid-send, plus a per-message delay drawn
        uniformly from ``[0, net_delay_ms)`` milliseconds.  At most one of
        drop/dup/disconnect fires per message (disconnect wins over drop
        over dup); the delay composes with any of them.
    max_faults:
        Hard cap on the number of kernel corruptions (``None`` = no cap);
        worker failures, latency, and network faults are not counted
        against it.
    """

    def __init__(self, seed: int = 0, rate: float = 0.01,
                 sites: tuple[str, ...] = ("spmv", "trsv"),
                 kinds: tuple[str, ...] = ("nan", "inf"),
                 worker_rate: float = 0.0, latency: float = 0.0,
                 latency_rate: float = 0.0, kill_rate: float = 0.0,
                 hang_rate: float = 0.0, hang_ms: float = 0.0,
                 drop_rate: float = 0.0, dup_rate: float = 0.0,
                 disconnect_rate: float = 0.0, net_delay_ms: float = 0.0,
                 max_faults: int | None = None) -> None:
        self.seed = int(seed)
        self.rate = float(rate)
        self.sites = tuple(sites)
        self.kinds = tuple(kinds) or ("nan",)
        self.worker_rate = float(worker_rate)
        self.latency = float(latency)
        self.latency_rate = float(latency_rate)
        self.kill_rate = float(kill_rate)
        self.hang_rate = float(hang_rate)
        self.hang_ms = float(hang_ms)
        self.drop_rate = float(drop_rate)
        self.dup_rate = float(dup_rate)
        self.disconnect_rate = float(disconnect_rate)
        self.net_delay_ms = float(net_delay_ms)
        self.max_faults = max_faults
        self.records: list[FaultRecord] = []
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    # -------------------------------------------------------------- #
    # Deterministic decisions
    # -------------------------------------------------------------- #
    def _next_call(self, site: str) -> int:
        with self._lock:
            call = self._counts.get(site, 0)
            self._counts[site] = call + 1
        return call

    def _rolls(self, site: str, call: int, n: int = 2) -> np.ndarray:
        # a fresh Philox stream per (seed, site, call): replayable across
        # threads and processes regardless of interleaving
        rng = np.random.Generator(np.random.Philox(
            key=self.seed, counter=[zlib.crc32(site.encode()), call, 0, 0]))
        return rng.random(n)

    def fires(self, site: str) -> str | None:
        """Corruption kind for this call at ``site``, or ``None``."""
        if site not in self.sites or self.rate <= 0.0:
            return None
        call = self._next_call(site)
        if self.max_faults is not None and len(self.records) >= self.max_faults:
            return None
        r_fire, r_kind = self._rolls(site, call)
        if r_fire >= self.rate:
            return None
        kind = self.kinds[int(r_kind * len(self.kinds)) % len(self.kinds)]
        with self._lock:
            self.records.append(FaultRecord(site=site, call=call, kind=kind))
        return kind

    def worker_fires(self, site: str = "dispatcher.worker") -> int | None:
        """Call index when a worker failure fires this call, else ``None``."""
        if self.worker_rate <= 0.0:
            return None
        call = self._next_call(site)
        if self._rolls(site, call, 1)[0] < self.worker_rate:
            with self._lock:
                self.records.append(FaultRecord(site=site, call=call,
                                                kind="worker"))
            return call
        return None

    def kill_fires(self, site: str = "gateway.worker") -> int | None:
        """Call index when a process kill fires this call, else ``None``."""
        if self.kill_rate <= 0.0:
            return None
        call = self._next_call(site)
        if self._rolls(site, call, 1)[0] < self.kill_rate:
            with self._lock:
                self.records.append(FaultRecord(site=site, call=call,
                                                kind="kill"))
            return call
        return None

    def hang_fires(self, site: str = "gateway.worker") -> float | None:
        """Hang duration (seconds) when a wedge fires this call, else ``None``."""
        if self.hang_rate <= 0.0 or self.hang_ms <= 0.0:
            return None
        call = self._next_call(site + ".hang")
        if self._rolls(site + ".hang", call, 1)[0] < self.hang_rate:
            with self._lock:
                self.records.append(FaultRecord(site=site, call=call,
                                                kind="hang"))
            return self.hang_ms / 1e3
        return None

    def net_fires(self, site: str = "net.link") -> tuple[str | None, float]:
        """Network-fault decision for the message about to cross ``site``.

        Returns ``(event, delay_seconds)`` where ``event`` is one of
        ``"drop"``, ``"dup"``, ``"disconnect"`` or ``None`` (deliver
        normally).  Deterministic per ``(seed, site, call-count)`` like
        every other decision; fired events land in :attr:`records`.
        """
        if (self.drop_rate <= 0.0 and self.dup_rate <= 0.0
                and self.disconnect_rate <= 0.0 and self.net_delay_ms <= 0.0):
            return None, 0.0
        call = self._next_call(site)
        r_disc, r_drop, r_dup, r_delay = self._rolls(site, call, 4)
        delay = (r_delay * self.net_delay_ms / 1e3
                 if self.net_delay_ms > 0.0 else 0.0)
        event = None
        if self.disconnect_rate > 0.0 and r_disc < self.disconnect_rate:
            event = "disconnect"
        elif self.drop_rate > 0.0 and r_drop < self.drop_rate:
            event = "drop"
        elif self.dup_rate > 0.0 and r_dup < self.dup_rate:
            event = "dup"
        if event is not None:
            with self._lock:
                self.records.append(FaultRecord(site=site, call=call,
                                                kind=event))
        return event, delay

    def delay_fires(self, site: str = "dispatcher.latency") -> float | None:
        """Sleep duration for this call, or ``None``."""
        if self.latency_rate <= 0.0 or self.latency <= 0.0:
            return None
        call = self._next_call(site)
        if self._rolls(site, call, 1)[0] < self.latency_rate:
            return self.latency
        return None

    # -------------------------------------------------------------- #
    # Payload application
    # -------------------------------------------------------------- #
    @staticmethod
    def _payload(kind: str) -> float:
        return float("nan") if kind == "nan" else float("inf")

    def corrupt(self, out: np.ndarray, site: str, kind: str) -> np.ndarray:
        """Poison one deterministic entry of ``out`` in place."""
        flat = out.reshape(-1)
        if flat.size == 0:
            return out
        idx = zlib.crc32(f"{site}:{len(self.records)}".encode()) % flat.size
        flat[idx] = self._payload(kind)
        return out

    def spec(self) -> str:
        """The plan as a ``REPRO_FAULTS``-format string.

        Round-trips through :func:`install_from_env`: the gateway ships the
        active plan to spawned workers this way, so both sides replay the
        same seeded schedule (call counters start fresh in each process —
        per-process determinism, as with any multi-process ``REPRO_FAULTS``).
        """
        parts = [f"seed={self.seed}", f"rate={self.rate}",
                 "sites=" + "+".join(self.sites),
                 "kinds=" + "+".join(self.kinds)]
        if self.worker_rate:
            parts.append(f"worker_rate={self.worker_rate}")
        if self.latency:
            parts.append(f"latency={self.latency}")
        if self.latency_rate:
            parts.append(f"latency_rate={self.latency_rate}")
        if self.kill_rate:
            parts.append(f"kill_rate={self.kill_rate}")
        if self.hang_rate:
            parts.append(f"hang_rate={self.hang_rate}")
        if self.hang_ms:
            parts.append(f"hang_ms={self.hang_ms}")
        if self.drop_rate:
            parts.append(f"drop_rate={self.drop_rate}")
        if self.dup_rate:
            parts.append(f"dup_rate={self.dup_rate}")
        if self.disconnect_rate:
            parts.append(f"disconnect_rate={self.disconnect_rate}")
        if self.net_delay_ms:
            parts.append(f"net_delay_ms={self.net_delay_ms}")
        if self.max_faults is not None:
            parts.append(f"max={self.max_faults}")
        return ",".join(parts)

    def summary(self) -> dict:
        return {
            "seed": self.seed,
            "faults": len(self.records),
            "by_site": {s: sum(1 for r in self.records if r.site == s)
                        for s in sorted({r.site for r in self.records})},
        }


class FaultyBackend:
    """Proxy interposed between the solvers and a real kernel backend.

    Reads the *process-global* active plan on every call, so proxies cached
    inside compiled solve plans pass straight through once the fault session
    ends — a plan compiled during :func:`inject` is permanently safe.
    """

    def __init__(self, inner) -> None:
        # bypass __setattr__-free plain attribute; __getattr__ handles the rest
        object.__setattr__(self, "_inner", inner)

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultyBackend over {self._inner!r}>"

    def _maybe_corrupt(self, out: np.ndarray, site: str) -> np.ndarray:
        plan = _PLAN
        if plan is None:
            return out
        kind = plan.fires(site)
        if kind is None:
            return out
        return plan.corrupt(out, site, kind)

    def orthogonalize(self, basis, j, w, vec_prec, scratch=None, record=True):
        h_col, w_orth, h_norm = self._inner.orthogonalize(
            basis, j, w, vec_prec, scratch=scratch, record=record)
        plan = _PLAN
        if plan is not None:
            kind = plan.fires("orthogonalize")
            if kind is not None:
                h_norm = plan._payload(kind)
                h_col[j + 1] = h_norm
        return h_col, w_orth, h_norm

    def orthonormalize(self, basis, j, w, vec_prec, scratch=None, record=True):
        plan = _PLAN
        if plan is None:
            return self._inner.orthonormalize(basis, j, w, vec_prec,
                                              scratch=scratch, record=record)
        # route through the (wrapped) orthogonalize so the corruption lands
        # before the normalization decision, like a real overflow would
        h_col, w_orth, h_norm = self.orthogonalize(basis, j, w, vec_prec,
                                                   scratch=scratch, record=record)
        normalized = h_norm != 0.0 and np.isfinite(h_norm)
        if normalized:
            from ..sparse import vectorops as vo

            basis[j + 1] = vo.scal(1.0 / h_norm, w_orth, record=record)
        return h_col, h_norm, normalized


def _wrapped_kernel(method_name: str, site: str):
    def kernel(self, *args, **kwargs):
        out = getattr(self._inner, method_name)(*args, **kwargs)
        return self._maybe_corrupt(out, site)

    kernel.__name__ = method_name
    return kernel


for _name, _site in _KERNEL_SITES.items():
    setattr(FaultyBackend, _name, _wrapped_kernel(_name, _site))
del _name, _site


# ------------------------------------------------------------------ #
# Activation
# ------------------------------------------------------------------ #
def active_plan() -> FaultPlan | None:
    """The currently installed fault plan, or ``None``."""
    return _PLAN


def install_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` process-wide (``None`` deactivates); returns the old one."""
    global _PLAN
    with _LOCK:
        previous = _PLAN
        _PLAN = plan
        _set_backend_wrapper(FaultyBackend if plan is not None else None)
    return previous


@contextmanager
def inject(plan: FaultPlan):
    """Scoped fault session: install ``plan``, yield it, restore on exit."""
    previous = install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous)


def maybe_fail_worker(site: str = "dispatcher.worker") -> None:
    """Raise :class:`InjectedFault` when the active plan schedules one here."""
    plan = _PLAN
    if plan is None:
        return
    call = plan.worker_fires(site)
    if call is not None:
        raise InjectedFault(f"injected worker failure at {site} (call {call})",
                            site=site, call=call)


def maybe_kill_process(site: str = "gateway.worker") -> None:
    """Hard-exit the calling process when the active plan schedules a kill.

    ``os._exit`` (no cleanup, no exception) — the point is to present the
    gateway with a *real* worker death: a closed queue and a dead pid, not a
    pickled traceback.  No-op without an active plan or with ``kill_rate=0``.
    """
    plan = _PLAN
    if plan is None:
        return
    if plan.kill_fires(site) is not None:
        os._exit(86)


def maybe_hang(site: str = "gateway.worker", wedge=None) -> float:
    """Wedge the caller when the active plan schedules a hang at this call.

    Models a whole-process stall (a C-level deadlock, a GIL-holding loop):
    ``wedge(duration)``, when given, is invoked *before* the sleep so the
    worker's heartbeat thread stops ticking for the duration — a plain
    latency injection would keep heartbeating and must NOT be classified as
    a hang by the watchdog.  Returns the seconds slept (0.0 when idle).
    """
    plan = _PLAN
    if plan is None:
        return 0.0
    duration = plan.hang_fires(site)
    if duration is None:
        return 0.0
    if wedge is not None:
        wedge(duration)
    time.sleep(duration)
    return duration


def maybe_delay(site: str = "dispatcher.latency") -> None:
    """Sleep when the active plan schedules latency at this call."""
    plan = _PLAN
    if plan is None:
        return
    duration = plan.delay_fires(site)
    if duration is not None:
        time.sleep(duration)


def maybe_net(site: str = "net.link") -> tuple[str | None, float]:
    """Network-fault decision for the frame about to cross ``site``.

    ``(event, delay_seconds)`` — ``event`` is ``"drop"``, ``"dup"``,
    ``"disconnect"``, or ``None``; the transport owns applying it (skip the
    send, send twice, tear the socket down).  ``(None, 0.0)`` when idle.
    """
    plan = _PLAN
    if plan is None:
        return None, 0.0
    return plan.net_fires(site)


def install_from_env(spec: str | None = None) -> FaultPlan | None:
    """Parse ``REPRO_FAULTS`` (or ``spec``) and install the described plan.

    Format: comma-separated ``key=value`` pairs — ``seed``, ``rate``,
    ``sites`` (``+``-separated), ``kinds`` (``+``-separated),
    ``worker_rate``, ``latency``, ``latency_rate``, ``kill_rate``,
    ``hang_rate``, ``hang_ms``, ``drop_rate``, ``dup_rate``,
    ``disconnect_rate``, ``net_delay_ms``, ``max`` — e.g.
    ``REPRO_FAULTS="seed=7,rate=0.02,sites=spmv+trsv,kinds=nan"``.
    A bare truthy value (``"1"``) installs the defaults.
    """
    spec = (os.environ.get("REPRO_FAULTS", "") if spec is None else spec).strip()
    if not spec or spec.lower() in ("0", "off", "false", "no"):
        return None
    kwargs: dict = {}
    if spec.lower() not in ("1", "on", "true", "yes"):
        for pair in spec.split(","):
            key, _, value = pair.partition("=")
            key = key.strip().lower()
            value = value.strip()
            if key in ("seed",):
                kwargs["seed"] = int(value)
            elif key in ("rate", "worker_rate", "latency", "latency_rate",
                         "kill_rate", "hang_rate", "hang_ms", "drop_rate",
                         "dup_rate", "disconnect_rate", "net_delay_ms"):
                kwargs[key] = float(value)
            elif key == "sites":
                kwargs["sites"] = tuple(value.split("+"))
            elif key == "kinds":
                kwargs["kinds"] = tuple(value.split("+"))
            elif key in ("max", "max_faults"):
                kwargs["max_faults"] = int(value)
            else:
                raise ValueError(f"unknown REPRO_FAULTS key {key!r}")
    plan = FaultPlan(**kwargs)
    install_plan(plan)
    return plan


# env activation at import: `import repro.faults` is the opt-in
install_from_env()

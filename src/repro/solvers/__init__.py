"""Iterative solvers: FGMRES, Richardson, CG, BiCGStab, and nested composition."""

from .base import (
    BatchSolveResult,
    ConvergenceHistory,
    InnerSolver,
    SolveResult,
    count_primary_applications,
    reset_primary_counter,
)
from .guards import (
    InvalidInput,
    SolveBreakdown,
    SolveEvent,
    SolveStagnation,
    StagnationWindow,
    classify_breakdown,
    guards_enabled,
    set_guards_enabled,
    use_guards,
    validate_rhs,
)
from .richardson import RichardsonLevel, richardson_solve
from .fgmres import FGMRESLevel, OuterFGMRES, fgmres_cycle, fgmres_cycle_batch
from .gmres import RestartedFGMRES
from .cg import ConjugateGradient
from .bicgstab import BiCGStab
from .nested import LevelSpec, NestedSolverBuilder, build_nested_solver, tuple_notation

__all__ = [
    "BatchSolveResult",
    "ConvergenceHistory",
    "InvalidInput",
    "SolveBreakdown",
    "SolveEvent",
    "SolveStagnation",
    "StagnationWindow",
    "classify_breakdown",
    "guards_enabled",
    "set_guards_enabled",
    "use_guards",
    "validate_rhs",
    "InnerSolver",
    "SolveResult",
    "count_primary_applications",
    "reset_primary_counter",
    "RichardsonLevel",
    "richardson_solve",
    "FGMRESLevel",
    "OuterFGMRES",
    "fgmres_cycle",
    "fgmres_cycle_batch",
    "RestartedFGMRES",
    "ConjugateGradient",
    "BiCGStab",
    "LevelSpec",
    "NestedSolverBuilder",
    "build_nested_solver",
    "tuple_notation",
]

"""Flexible GMRES (FGMRES): the inner-level building block and the outermost solver.

The paper's nested solvers are built from FGMRES cycles (Saad 1993) using
classical Gram-Schmidt orthogonalization and Givens rotations for the QR
factorization of the Hessenberg matrix, exactly as described in Section 4.2.
Flexibility means the preconditioning step may change from iteration to
iteration — which is what allows a nonlinear inner solver (another FGMRES or
the adaptive Richardson) to act as the preconditioner.

Two classes share the cycle implementation:

* :class:`FGMRESLevel` — an inner level: runs exactly ``m`` iterations per
  invocation with a zero initial guess and no convergence check, returning the
  correction ``z ≈ A^{-1} v``.
* :class:`OuterFGMRES` — the outermost level (``F^{m1}``): fp64, convergence
  checked against the true relative residual, restarted (the whole nested
  solver re-executed) when the cycle is exhausted.
"""

from __future__ import annotations

import time

import numpy as np

from ..backends import Workspace, get_backend
from ..backends.workspace import ThreadLocalWorkspace
from ..operators import as_operator
from ..perf.counters import counters_enabled, record_bytes, record_flops, record_kernel
from ..plans import plan_for, plans_enabled
from ..precision import LevelPrecision, Precision
from ..sparse import residual_norm
from ..sparse import vectorops as vo
from .base import (
    BatchSolveResult,
    ConvergenceHistory,
    InnerSolver,
    SolveResult,
    count_primary_applications,
)
from .guards import SolveEvent, check_finite, guards_enabled

__all__ = ["FGMRESLevel", "OuterFGMRES", "fgmres_cycle", "fgmres_cycle_batch"]


def _apply_child(child, v: np.ndarray) -> np.ndarray:
    """Apply the preconditioning step of a level (inner solver, M, or nothing).

    With no child the identity correction is returned as-is; the cycle copies
    it into the correction arena, so no defensive copy is needed here.
    """
    if child is None:
        return v
    return child.apply(v)


def _apply_child_batch(child, v: np.ndarray) -> np.ndarray:
    """Batched preconditioning step: ``v`` has one residual per column.

    Inner solvers and preconditioners both expose ``apply_batch`` (lockstep
    or column-loop, depending on the level); ``None`` is the identity.
    """
    if child is None:
        return v
    return child.apply_batch(v)


def _back_substitute(hessenberg: np.ndarray, g: np.ndarray, k: int) -> np.ndarray:
    """Solve the reduced system ``R y = g`` of a completed cycle (in fp64)."""
    r_mat = hessenberg[:k, :k].astype(np.float64)
    g_vec = g[:k].astype(np.float64)
    y = np.zeros(k, dtype=np.float64)
    for i in range(k - 1, -1, -1):
        s = g_vec[i] - np.dot(r_mat[i, i + 1:k], y[i + 1:k])
        diag = r_mat[i, i]
        y[i] = s / diag if diag != 0.0 else 0.0
    return y


def fgmres_cycle(matrix, rhs: np.ndarray, child, m: int, vec_prec: Precision,
                 rel_tol: float | None = None, collect_residuals: list | None = None,
                 workspace: Workspace | None = None, plan=None):
    """One FGMRES(m) cycle with zero initial guess.

    Parameters
    ----------
    matrix:
        The coefficient operator — anything satisfying the
        :class:`~repro.operators.LinearOperator` contract (an assembled
        matrix, a matrix-free stencil, a composite), stored at the level's
        matrix precision.  Only ``apply``/``apply_batch`` are used.
    rhs:
        Right-hand side ``v`` of the correction equation ``A z = v`` (already in
        the level's vector precision).
    child:
        The preconditioning step (inner solver / primary preconditioner /
        ``None`` for unpreconditioned GMRES).
    m:
        Maximum number of iterations for this cycle.
    vec_prec:
        Vector/scalar storage precision of this level.
    rel_tol:
        If given, the cycle stops early once the GMRES residual estimate drops
        below ``rel_tol * ||rhs||`` (used only by the outermost level).
    collect_residuals:
        Optional list receiving the per-iteration residual estimates.
    workspace:
        Optional :class:`~repro.backends.Workspace` owning the Krylov-basis and
        correction-vector storage; solver levels pass their per-level arena so
        repeated cycles reuse the same buffers instead of reallocating.
    plan:
        Optional compiled :class:`~repro.plans.SolvePlan` for ``matrix`` at
        ``vec_prec``; when given, operator products run through the plan's
        pre-bound kernel instead of the per-call operator dispatch.

    Returns
    -------
    (z, iterations, estimated_residual):
        ``z`` is the correction in the level's vector precision.
    """
    backend = get_backend()
    dtype = vec_prec.dtype
    n = rhs.size
    guarded = guards_enabled()
    beta = vo.nrm2(rhs)
    if beta == 0.0 or not np.isfinite(beta):
        if guarded and not np.isfinite(beta):
            # a NaN/Inf residual norm means the incoming residual is already
            # corrupted — the legacy path returns a zero correction and lets
            # the outer level loop on garbage
            check_finite(beta, "fgmres.beta")
        return np.zeros(n, dtype=dtype), 0, 0.0

    ws = workspace if workspace is not None else Workspace()
    # Krylov basis V and per-iteration corrections Z live in the level's arena
    # (rows are vectors); both persist across cycles of the same level.  The
    # arenas are sized for m iterations but allocated untouched (np.empty), so
    # resident memory grows with the iterations actually run, as the old
    # per-iteration lists did — only address space is reserved up front.
    basis = ws.get("krylov_basis", (m + 1, n), dtype)
    z_vectors = ws.get("krylov_corrections", (m, n), dtype)
    basis[0] = vo.scal(1.0 / beta, rhs)
    # Hessenberg in the level's scalar precision; Givens rotations and the
    # reduced RHS g likewise (the paper keeps these in fp32 for inner levels).
    # All four live in the level's arena — a warm cycle allocates nothing.
    hessenberg = ws.get("fgmres_hessenberg", (m + 1, m), dtype, zero=True)
    cs = ws.get("fgmres_cs", m, dtype, zero=True)
    sn = ws.get("fgmres_sn", m, dtype, zero=True)
    g = ws.get("fgmres_g", m + 1, dtype, zero=True)
    g[0] = dtype.type(beta)

    # Inner levels run the full m iterations with no early stop, so the
    # normalization of the next basis vector is unconditional (short of
    # breakdown) and fuses into the orthogonalize kernel.
    fused_normalize = rel_tol is None

    iterations = 0
    estimated = beta
    for j in range(m):
        zj = _apply_child(child, basis[j])
        zj = vo.cast_vector(zj, vec_prec)
        z_vectors[j] = zj
        w = (plan.apply(zj) if plan is not None
             else matrix.apply(zj, out_precision=vec_prec))

        # classical Gram-Schmidt against basis[:j+1] (backend kernel; the fast
        # engine runs it as BLAS-2, the reference as per-column BLAS-1 loops),
        # fused with the normalization of basis[j+1] on always-continue steps
        normalized = False
        if fused_normalize and j + 1 < m:
            h_col, h_norm, normalized = backend.orthonormalize(
                basis, j, w, vec_prec, scratch=ws)
        else:
            h_col, w, h_norm = backend.orthogonalize(basis, j, w, vec_prec,
                                                     scratch=ws)
        if guarded and not np.isfinite(h_norm):
            # hard breakdown: the new basis vector's norm is NaN/Inf, so the
            # operator product or the Gram-Schmidt sweep produced non-finite
            # values — the whole recurrence from here on is garbage
            check_finite(float(h_norm), "fgmres.hessenberg", iteration=j)

        # apply the previous Givens rotations to the new column
        for i in range(j):
            temp = cs[i] * h_col[i] + sn[i] * h_col[i + 1]
            h_col[i + 1] = -sn[i] * h_col[i] + cs[i] * h_col[i + 1]
            h_col[i] = temp
        # new rotation annihilating h_col[j+1]
        denom = np.sqrt(np.float64(h_col[j]) ** 2 + np.float64(h_col[j + 1]) ** 2)
        if guarded and not np.isfinite(denom):
            # NaN Hessenberg entries slip past the h_norm check when the
            # corruption is confined to the projection coefficients; the
            # legacy path silently zeroes the rotation and reports a bogus
            # (often exactly-zero) residual estimate
            check_finite(float(denom), "fgmres.givens", iteration=j)
        if denom == 0.0 or not np.isfinite(denom):
            cs_j, sn_j = 1.0, 0.0
        else:
            cs_j = float(h_col[j]) / denom
            sn_j = float(h_col[j + 1]) / denom
        cs[j] = dtype.type(cs_j)
        sn[j] = dtype.type(sn_j)
        h_col[j] = dtype.type(cs_j * float(h_col[j]) + sn_j * float(h_col[j + 1]))
        h_col[j + 1] = dtype.type(0.0)

        g[j + 1] = dtype.type(-sn_j * float(g[j]))
        g[j] = dtype.type(cs_j * float(g[j]))

        hessenberg[: j + 2, j] = h_col
        iterations = j + 1
        estimated = abs(float(g[j + 1]))
        if collect_residuals is not None:
            collect_residuals.append(estimated)

        lucky_breakdown = h_norm == 0.0 or not np.isfinite(h_norm)
        if lucky_breakdown:
            break
        if rel_tol is not None and estimated < rel_tol * beta:
            break
        if j + 1 < m and not normalized:
            basis[j + 1] = vo.scal(1.0 / h_norm, w)

    # back substitution R y = g (in fp64 for robustness; y is tiny)
    k = iterations
    if k == 0:
        return np.zeros(n, dtype=dtype), 0, float(estimated)
    y = _back_substitute(hessenberg, g, k)

    z = backend.combine(z_vectors, y, k, vec_prec)
    return z, iterations, float(estimated)


def _record_batched_gram_schmidt(p: Precision, n: int, k: int, ncols: int) -> None:
    """Counter parity with ``k`` single-column Gram-Schmidt steps."""
    if not counters_enabled():
        return
    record_kernel("dot", k * ncols)
    record_bytes(p, 2 * k * ncols * n * p.bytes)
    record_flops(p, 2 * k * ncols * n)
    record_kernel("axpy", k * ncols)
    record_bytes(p, 3 * k * ncols * n * p.bytes)
    record_flops(p, 2 * k * ncols * n)
    record_kernel("norm", k)
    record_bytes(p, k * n * p.bytes)
    record_flops(p, 2 * k * n)


def fgmres_cycle_batch(matrix, rhs: np.ndarray, child, m: int, vec_prec: Precision,
                       rel_tol: np.ndarray | None = None,
                       workspace: Workspace | None = None, plan=None):
    """One lockstep FGMRES(m) cycle over ``k`` right-hand sides (columns of ``rhs``).

    Every column carries its own Krylov recurrence — basis, Hessenberg
    column, Givens rotations, reduced RHS — but the columns advance through
    the iterations together, so the hot operations run batched: the child is
    applied through ``apply_batch`` (trsm-backed preconditioners, lockstep
    inner levels), the operator through SpMM, and classical Gram-Schmidt as
    one stacked matmul over all active columns.

    Parameters
    ----------
    rhs:
        ``(n, k)`` block in the level's vector precision, one RHS per column.
    rel_tol:
        Optional per-column early-stop thresholds: column ``i`` deflates —
        stops iterating and is finalized — once its residual estimate drops
        below ``rel_tol[i] * ||rhs[:, i]||`` (used by the outermost level).
        ``None`` runs every column for the full ``m`` iterations, which is
        exactly ``k`` independent sequential cycles in lockstep.
    workspace:
        Optional arena owning the ``(k, m+1, n)`` Krylov-basis block.

    Returns
    -------
    (Z, iterations, estimates):
        ``Z`` is ``(n, k)`` in the level's vector precision; ``iterations``
        and ``estimates`` are per-column arrays.
    """
    backend = get_backend()
    dtype = vec_prec.dtype
    n, k = rhs.shape
    guarded = guards_enabled()

    z_out = np.zeros((n, k), dtype=dtype)
    iterations = np.zeros(k, dtype=np.int64)
    estimates = np.zeros(k, dtype=np.float64)

    # per-column beta, computed as the sequential cycle does (dot in the
    # operand precision, square root in fp64)
    dots = np.einsum("nk,nk->k", rhs, rhs)
    beta = np.sqrt(dots.astype(np.float64))
    if counters_enabled():
        record_kernel("norm", k)
        record_bytes(vec_prec, k * n * vec_prec.bytes)
        record_flops(vec_prec, 2 * k * n)

    if guarded and not np.all(np.isfinite(beta)):
        bad = np.flatnonzero(~np.isfinite(beta))
        check_finite(float(beta[bad[0]]), "fgmres.beta", columns=bad.tolist())
    alive = np.isfinite(beta) & (beta > 0.0)
    estimates[:] = np.where(alive, beta, 0.0)
    col_at = np.nonzero(alive)[0]        # position -> original column index
    ka = col_at.size
    if ka == 0:
        return z_out, iterations, estimates

    ws = workspace if workspace is not None else Workspace()
    # Krylov basis and correction blocks: one (m+1, n) / (m, n) arena row per
    # column, reused across cycles like the single-RHS arenas.  The arenas are
    # capacity-keyed (get_rows), so cycles with fewer active columns — after
    # deflation or restarts — reuse the same storage.  Deflation compacts the
    # active columns into the leading rows so the hot loop always works on
    # contiguous prefixes (views, no per-iteration gathers).
    basis = ws.get_rows("krylov_basis_batch", k, (m + 1, n), dtype)
    z_vectors = ws.get_rows("krylov_corrections_batch", k, (m, n), dtype)
    # Per-cycle recurrence state lives in the arena too (zero-filled to the
    # semantics of the old fresh np.zeros allocations), as does the Hessenberg
    # column assembled inside the Arnoldi loop — a warm cycle allocates no
    # per-iteration arrays.
    hessenberg = ws.get_rows("fgmres_hessenberg_batch", k, (m + 1, m), dtype)
    cs = ws.get_rows("fgmres_cs_batch", k, (m,), dtype)
    sn = ws.get_rows("fgmres_sn_batch", k, (m,), dtype)
    g = ws.get_rows("fgmres_g_batch", k, (m + 1,), dtype)
    h_col_arena = ws.get_rows("fgmres_hcol_batch", k, (m + 2,), dtype)
    for state in (hessenberg, cs, sn, g):
        state.fill(0)

    inv_beta = (1.0 / beta[col_at]).astype(dtype)
    basis[:ka, 0, :] = rhs[:, col_at].T * inv_beta[:, None]
    g[:ka, 0] = beta[col_at].astype(dtype)
    if counters_enabled():
        record_kernel("scal", ka)
        record_bytes(vec_prec, 2 * ka * n * vec_prec.bytes)
        record_flops(vec_prec, ka * n)

    def finalize(pos: int, kiter: int) -> None:
        """Back-substitute and combine one column's solution (at deflation
        or cycle end)."""
        orig = col_at[pos]
        if kiter == 0:
            return
        y = _back_substitute(hessenberg[pos], g[pos], kiter)
        z_out[:, orig] = backend.combine(z_vectors[pos], y, kiter, vec_prec)

    for j in range(m):
        # preconditioning step + operator product, batched over active columns
        try:
            zj = _apply_child_batch(child, np.ascontiguousarray(basis[:ka, j, :].T))
        except SolveEvent as event:
            # inner levels see only the compacted active columns — remap
            # their positions onto this cycle's rhs columns
            if event.columns is not None:
                event.columns = [int(col_at[c]) for c in event.columns
                                 if c < ka]
            raise
        zj = vo.cast_block(zj, vec_prec)
        z_vectors[:ka, j, :] = zj.T
        w = (plan.apply_batch(zj) if plan is not None
             else matrix.apply_batch(zj, out_precision=vec_prec))
        w = np.ascontiguousarray(w.T)                      # (ka, n)

        # classical Gram-Schmidt for all columns in one stacked matmul
        v_act = basis[:ka, :j + 1, :]
        h = np.matmul(v_act, w[:, :, None])[..., 0]        # (ka, j+1)
        w -= np.matmul(h[:, None, :], v_act)[:, 0, :]
        w_dots = np.einsum("kn,kn->k", w, w)
        h_norm = np.sqrt(w_dots.astype(np.float64))
        _record_batched_gram_schmidt(vec_prec, n, ka, j + 1)
        if guarded and not np.all(np.isfinite(h_norm)):
            bad = np.flatnonzero(~np.isfinite(h_norm))
            check_finite(float(h_norm[bad[0]]), "fgmres.hessenberg",
                         iteration=j, columns=col_at[bad].tolist())

        h_col = h_col_arena[:ka, :j + 2]
        h_col[:, :j + 1] = h.astype(dtype, copy=False)
        h_col[:, j + 1] = h_norm.astype(dtype)

        # previously accumulated Givens rotations, vectorized over columns
        for i in range(j):
            ci = cs[:ka, i]
            si = sn[:ka, i]
            temp = ci * h_col[:, i] + si * h_col[:, i + 1]
            h_col[:, i + 1] = -si * h_col[:, i] + ci * h_col[:, i + 1]
            h_col[:, i] = temp
        # new rotation annihilating h_col[:, j+1]
        hj = h_col[:, j].astype(np.float64)
        hj1 = h_col[:, j + 1].astype(np.float64)
        denom = np.sqrt(hj ** 2 + hj1 ** 2)
        if guarded and not np.all(np.isfinite(denom)):
            bad = np.flatnonzero(~np.isfinite(denom))
            check_finite(float(denom[bad[0]]), "fgmres.givens",
                         iteration=j, columns=col_at[bad].tolist())
        ok = (denom != 0.0) & np.isfinite(denom)
        safe = np.where(ok, denom, 1.0)
        cs_j = np.where(ok, hj / safe, 1.0)
        sn_j = np.where(ok, hj1 / safe, 0.0)
        cs[:ka, j] = cs_j.astype(dtype)
        sn[:ka, j] = sn_j.astype(dtype)
        h_col[:, j] = (cs_j * hj + sn_j * hj1).astype(dtype)
        h_col[:, j + 1] = dtype.type(0.0)

        gj = g[:ka, j].astype(np.float64)
        g[:ka, j + 1] = (-sn_j * gj).astype(dtype)
        g[:ka, j] = (cs_j * gj).astype(dtype)
        hessenberg[:ka, :j + 2, j] = h_col

        act_cols = col_at[:ka]
        iterations[act_cols] = j + 1
        est = np.abs(g[:ka, j + 1].astype(np.float64))
        estimates[act_cols] = est

        lucky_breakdown = (h_norm == 0.0) | ~np.isfinite(h_norm)
        stop = lucky_breakdown.copy()
        if rel_tol is not None:
            stop |= est < rel_tol[act_cols] * beta[act_cols]
        if j + 1 == m:
            stop[:] = True

        cont = np.nonzero(~stop)[0]
        if cont.size and j + 1 < m:
            # like vo.scal: the reciprocal is rounded to the level dtype and
            # the multiply runs in that dtype
            inv_norm = (1.0 / h_norm[cont]).astype(dtype)
            basis[cont, j + 1, :] = w[cont] * inv_norm[:, None]
            if counters_enabled():
                record_kernel("scal", cont.size)
                record_bytes(vec_prec, 2 * cont.size * n * vec_prec.bytes)
                record_flops(vec_prec, cont.size * n)

        stopped = np.nonzero(stop)[0]
        if stopped.size:
            for pos in stopped:
                finalize(int(pos), j + 1)
            if cont.size == 0:
                return z_out, iterations, estimates
            # deflation: compact the surviving columns into the leading rows
            for arr in (basis, z_vectors, hessenberg, cs, sn, g):
                arr[:cont.size] = arr[cont]
            col_at = col_at[cont]
            ka = cont.size

    return z_out, iterations, estimates


class FGMRESLevel(InnerSolver):
    """An inner FGMRES level: ``m`` iterations per invocation, no convergence check."""

    def __init__(self, matrix, child, m: int,
                 precisions: LevelPrecision | None = None) -> None:
        if m < 1:
            raise ValueError("FGMRES level requires m >= 1")
        self.matrix = as_operator(matrix)
        self.child = child
        self.m = int(m)
        self.precisions = precisions or LevelPrecision(
            matrix=Precision.FP32, vector=Precision.FP32
        )
        # per-thread so concurrent apply()/solve() on a shared solver stays
        # reentrant (as the pre-workspace code was)
        self._workspace = ThreadLocalWorkspace()
        self._plans: dict[str, object] = {}

    @property
    def primary_preconditioner(self):
        child = self.child
        while child is not None and not hasattr(child, "num_applications"):
            child = getattr(child, "child", None) or getattr(child, "preconditioner", None)
        return child

    @property
    def depth_label(self) -> str:
        return f"F{self.m}"

    def _plan(self):
        """The compiled plan for this level on the active backend (or None)."""
        if not plans_enabled():
            return None
        backend = get_backend()
        plan = self._plans.get(backend.name)
        if plan is None:
            plan = self._plans[backend.name] = plan_for(
                self.matrix, self.precisions.vector, backend)
        return plan

    def apply(self, v: np.ndarray) -> np.ndarray:
        vec_prec = self.precisions.vector
        v_level = vo.cast_vector(np.asarray(v), vec_prec)
        z, _, _ = fgmres_cycle(self.matrix, v_level, self.child, self.m, vec_prec,
                               workspace=self._workspace.workspace,
                               plan=self._plan())
        return z

    def apply_batch(self, v: np.ndarray) -> np.ndarray:
        # An inner level runs exactly m iterations per invocation with no
        # convergence check, so the lockstep batched cycle is column-for-column
        # the same recurrence as m sequential applies.
        vec_prec = self.precisions.vector
        v_level = vo.cast_block(np.asarray(v), vec_prec)
        z, _, _ = fgmres_cycle_batch(self.matrix, v_level, self.child, self.m,
                                     vec_prec, workspace=self._workspace.workspace,
                                     plan=self._plan())
        return z


class OuterFGMRES:
    """The outermost FGMRES level: fp64, convergence checking, restarting.

    Convergence is declared when the fp64 true relative residual
    ``||b − A x||/||b||`` drops below ``tol``; if the cycle of ``m`` iterations
    is exhausted the entire nested solver is re-executed from the current
    iterate ("in the manner of the restarting technique"), up to
    ``max_restarts`` additional times.
    """

    def __init__(self, matrix, child, m: int = 100, tol: float = 1e-8,
                 max_restarts: int = 2,
                 precisions: LevelPrecision | None = None, name: str = "") -> None:
        self.matrix = as_operator(matrix)
        self.child = child
        self.m = int(m)
        self.tol = float(tol)
        self.max_restarts = int(max_restarts)
        self.precisions = precisions or LevelPrecision(
            matrix=Precision.FP64, vector=Precision.FP64
        )
        self.name = name or f"(F{m}, ...)"
        self._workspace = ThreadLocalWorkspace()
        self._plans: dict[str, tuple] = {}

    @property
    def primary_preconditioner(self):
        child = self.child
        while child is not None and not hasattr(child, "num_applications"):
            child = getattr(child, "child", None) or getattr(child, "preconditioner", None)
        return child

    @property
    def depth_label(self) -> str:
        return f"F{self.m}"

    def _plan_pair(self, mat64):
        """``(cycle plan, fp64 residual plan)`` on the active backend, or
        ``(None, None)`` when the plan layer is disabled."""
        if not plans_enabled():
            return None, None
        backend = get_backend()
        pair = self._plans.get(backend.name)
        if pair is None:
            plan = plan_for(self.matrix, self.precisions.vector, backend)
            plan64 = (plan if mat64 is self.matrix
                      and self.precisions.vector == Precision.FP64
                      else plan_for(mat64, Precision.FP64, backend))
            pair = self._plans[backend.name] = (plan, plan64)
        return pair

    # ------------------------------------------------------------------ #
    def solve(self, b: np.ndarray, x0: np.ndarray | None = None,
              stagnation=None) -> SolveResult:
        """Run the outer iteration to convergence (or restart exhaustion).

        ``stagnation`` optionally arms a
        :class:`~repro.solvers.guards.StagnationWindow`: the true relative
        residual of every outer cycle is fed to it and a
        :class:`~repro.solvers.guards.SolveStagnation` is raised once the
        windowed progress stalls.  Unarmed (the default), the solver keeps
        its legacy behaviour of exhausting the restart budget.
        """
        start_time = time.perf_counter()
        vec_prec = self.precisions.vector
        b64 = np.asarray(b, dtype=np.float64)
        norm_b = float(np.linalg.norm(b64))
        if norm_b == 0.0:
            norm_b = 1.0

        x = (np.zeros_like(b64) if x0 is None
             else np.asarray(x0, dtype=np.float64).copy())
        history = ConvergenceHistory()
        primary = self.primary_preconditioner
        start_applications = count_primary_applications(primary) if primary is not None else 0

        total_iterations = 0
        restarts = 0
        converged = False
        mat64 = (self.matrix if self.matrix.precision == Precision.FP64
                 else self.matrix.astype(Precision.FP64))
        plan, plan64 = self._plan_pair(mat64)
        relres = residual_norm(self.matrix, x, b64) / norm_b
        if guards_enabled() and not np.isfinite(relres):
            # corrupted initial residual (e.g. a poisoned matvec): raise now
            # instead of iterating on garbage for the whole restart budget
            check_finite(float(relres), "outer.relres", iterate=x.copy())
        history.append(relres)
        if relres < self.tol:
            converged = True

        while not converged and restarts <= self.max_restarts:
            if not x.any():
                r = b64.copy()
            elif plan64 is not None:
                r = plan64.residual(b64, x, record=False)
            else:
                r = b64 - mat64.apply(x, record=False)
            r_level = vo.cast_vector(r, vec_prec)
            cycle_residuals: list[float] = []
            try:
                z, iters, _ = fgmres_cycle(
                    self.matrix, r_level, self.child, self.m, vec_prec,
                    rel_tol=self.tol * norm_b / max(float(np.linalg.norm(r)), 1e-300),
                    collect_residuals=cycle_residuals,
                    workspace=self._workspace.workspace,
                    plan=plan,
                )
            except SolveEvent as event:
                # enrich with the last finite iterate so the recovery ladder
                # can restart from it instead of discarding the progress
                if event.iterate is None:
                    event.iterate = x.copy()
                raise
            x_prev = x
            x = x + z.astype(np.float64)
            total_iterations += iters

            # record the outer-iteration residual estimates scaled to ||b||
            r_norm = float(np.linalg.norm(r))
            for est in cycle_residuals:
                history.append(est * r_norm / (float(np.linalg.norm(r_level)) or 1.0) / norm_b)

            relres = residual_norm(self.matrix, x, b64) / norm_b
            if guards_enabled() and not np.isfinite(relres):
                # the cycle's scalar recurrence stayed finite but the
                # combined correction didn't (e.g. an fp16 overflow in the
                # basis combination) — restartable from the previous iterate
                check_finite(float(relres), "outer.relres", iterate=x_prev.copy())
            if relres < self.tol:
                converged = True
                break
            if stagnation is not None:
                stagnation.check(relres, "outer.stagnation", iterate=x.copy())
            restarts += 1

        history.append(relres)
        applications = (count_primary_applications(primary) - start_applications
                        if primary is not None else 0)
        return SolveResult(
            x=x,
            converged=converged,
            iterations=total_iterations,
            preconditioner_applications=applications,
            relative_residual=relres,
            history=history,
            restarts=restarts,
            solver_name=self.name,
            wall_time=time.perf_counter() - start_time,
        )

    # ------------------------------------------------------------------ #
    def solve_batch(self, b: np.ndarray,
                    x0: np.ndarray | None = None) -> BatchSolveResult:
        """Solve ``A X = B`` for ``k`` right-hand sides against one setup.

        ``b`` is ``(n, k)`` (one RHS per column) or a sequence of ``k``
        vectors.  All columns share the matrix, the preconditioner setup and
        the level workspaces; each cycle advances every still-unconverged
        column in lockstep (:func:`fgmres_cycle_batch`), so the hot kernels
        run as SpMM / batched triangular solves.  Convergence is tracked per
        column — a column deflates out of the batch as soon as its true
        relative residual meets ``tol``, and restarts re-enter only the
        columns that still need work.
        """
        start_time = time.perf_counter()
        vec_prec = self.precisions.vector
        b_block = np.asarray(b, dtype=np.float64)
        if b_block.ndim == 1:
            b_block = b_block[:, None]
        elif b_block.ndim != 2:
            raise ValueError(f"solve_batch expects B of shape (n, k); got {b_block.shape}")
        if b_block.shape[0] != self.matrix.ncols:
            hint = (" (one right-hand side per COLUMN — did you pass (k, n)?)"
                    if b_block.shape[1] == self.matrix.ncols else "")
            raise ValueError(f"solve_batch got B of shape {b_block.shape} for a "
                             f"{self.matrix.shape} matrix{hint}")
        n, k = b_block.shape

        norm_b = np.linalg.norm(b_block, axis=0)
        norm_b = np.where(norm_b == 0.0, 1.0, norm_b)
        if x0 is None:
            x = np.zeros((n, k), dtype=np.float64)
        else:
            x = np.array(x0, dtype=np.float64)
            if x.ndim == 1 and k == 1:
                x = x[:, None]
            if x.shape != (n, k):
                raise ValueError(f"x0 has shape {np.shape(x0)}; expected ({n}, {k}) "
                                 "(one initial guess per COLUMN, matching B)")
        primary = self.primary_preconditioner
        start_applications = (count_primary_applications(primary)
                              if primary is not None else 0)
        mat64 = (self.matrix if self.matrix.precision == Precision.FP64
                 else self.matrix.astype(Precision.FP64))
        plan, plan64 = self._plan_pair(mat64)

        def true_relres(cols: np.ndarray) -> np.ndarray:
            if plan64 is not None:
                r = plan64.residual_batch(b_block[:, cols], x[:, cols],
                                          record=False)
            else:
                r = b_block[:, cols] - mat64.apply_batch(x[:, cols], record=False)
            return np.linalg.norm(r, axis=0) / norm_b[cols]

        histories = [ConvergenceHistory() for _ in range(k)]
        total_iterations = np.zeros(k, dtype=np.int64)
        restarts = np.zeros(k, dtype=np.int64)
        converged = np.zeros(k, dtype=bool)
        final_relres = true_relres(np.arange(k))
        if guards_enabled() and not np.all(np.isfinite(final_relres)):
            bad = np.flatnonzero(~np.isfinite(final_relres))
            check_finite(float(final_relres[bad[0]]), "outer.relres",
                         iterate=x.copy(), columns=[int(c) for c in bad])
        for i in range(k):
            histories[i].append(final_relres[i])
        converged[:] = final_relres < self.tol
        active = [i for i in range(k) if not converged[i]]

        while active:
            act = np.array(active, dtype=np.int64)
            if not x[:, act].any():
                r = b_block[:, act].copy()
            elif plan64 is not None:
                r = plan64.residual_batch(b_block[:, act], x[:, act],
                                          record=False)
            else:
                r = b_block[:, act] - mat64.apply_batch(x[:, act], record=False)
            r_norm = np.linalg.norm(r, axis=0)
            r_level = vo.cast_block(r, vec_prec)
            rel_tol = self.tol * norm_b[act] / np.maximum(r_norm, 1e-300)

            try:
                z, iters, _ = fgmres_cycle_batch(
                    self.matrix, r_level, self.child, self.m, vec_prec,
                    rel_tol=rel_tol, workspace=self._workspace.workspace,
                    plan=plan,
                )
            except SolveEvent as event:
                # map cycle-local column positions back to the caller's
                # columns and attach the pre-cycle iterate block, so the
                # recovery layer can re-solve only the poisoned columns
                if event.columns is not None:
                    event.columns = [int(act[c]) for c in event.columns]
                if event.iterate is None:
                    event.iterate = x.copy()
                raise
            x[:, act] += z.astype(np.float64)
            total_iterations[act] += iters

            relres_act = true_relres(act)
            if guards_enabled() and not np.all(np.isfinite(relres_act)):
                bad = np.flatnonzero(~np.isfinite(relres_act))
                check_finite(float(relres_act[bad[0]]), "outer.relres",
                             iterate=x.copy(),
                             columns=[int(act[c]) for c in bad])
            final_relres[act] = relres_act
            next_active = []
            for pos, i in enumerate(act):
                histories[i].append(relres_act[pos])
                if relres_act[pos] < self.tol:
                    converged[i] = True
                else:
                    # count like the sequential solve: the increment lands even
                    # on the final failed cycle, so restarts agree across APIs
                    restarts[i] += 1
                    if restarts[i] <= self.max_restarts:
                        next_active.append(int(i))
                    # else: restart budget exhausted; the column leaves unconverged
            active = next_active

        wall_time = time.perf_counter() - start_time
        applications = ((count_primary_applications(primary) - start_applications)
                        if primary is not None else 0)
        # lockstep batches cannot attribute applications per column; split the
        # exact batch total evenly (remainder to the leading columns)
        share, extra = divmod(applications, k)
        results = [
            SolveResult(
                x=x[:, i].copy(),
                converged=bool(converged[i]),
                iterations=int(total_iterations[i]),
                preconditioner_applications=share + (1 if i < extra else 0),
                relative_residual=float(final_relres[i]),
                history=histories[i],
                restarts=int(restarts[i]),
                solver_name=self.name,
                wall_time=wall_time / k,
            )
            for i in range(k)
        ]
        return BatchSolveResult(x=x, results=results, wall_time=wall_time)

"""Flexible GMRES (FGMRES): the inner-level building block and the outermost solver.

The paper's nested solvers are built from FGMRES cycles (Saad 1993) using
classical Gram-Schmidt orthogonalization and Givens rotations for the QR
factorization of the Hessenberg matrix, exactly as described in Section 4.2.
Flexibility means the preconditioning step may change from iteration to
iteration — which is what allows a nonlinear inner solver (another FGMRES or
the adaptive Richardson) to act as the preconditioner.

Two classes share the cycle implementation:

* :class:`FGMRESLevel` — an inner level: runs exactly ``m`` iterations per
  invocation with a zero initial guess and no convergence check, returning the
  correction ``z ≈ A^{-1} v``.
* :class:`OuterFGMRES` — the outermost level (``F^{m1}``): fp64, convergence
  checked against the true relative residual, restarted (the whole nested
  solver re-executed) when the cycle is exhausted.
"""

from __future__ import annotations

import time

import numpy as np

from ..backends import Workspace, get_backend
from ..backends.workspace import ThreadLocalWorkspace
from ..precision import LevelPrecision, Precision
from ..sparse import residual_norm
from ..sparse import vectorops as vo
from .base import ConvergenceHistory, InnerSolver, SolveResult, count_primary_applications

__all__ = ["FGMRESLevel", "OuterFGMRES", "fgmres_cycle"]


def _apply_child(child, v: np.ndarray) -> np.ndarray:
    """Apply the preconditioning step of a level (inner solver, M, or nothing).

    With no child the identity correction is returned as-is; the cycle copies
    it into the correction arena, so no defensive copy is needed here.
    """
    if child is None:
        return v
    return child.apply(v)


def fgmres_cycle(matrix, rhs: np.ndarray, child, m: int, vec_prec: Precision,
                 rel_tol: float | None = None, collect_residuals: list | None = None,
                 workspace: Workspace | None = None):
    """One FGMRES(m) cycle with zero initial guess.

    Parameters
    ----------
    matrix:
        Operator providing ``matvec`` (stored at the level's matrix precision).
    rhs:
        Right-hand side ``v`` of the correction equation ``A z = v`` (already in
        the level's vector precision).
    child:
        The preconditioning step (inner solver / primary preconditioner /
        ``None`` for unpreconditioned GMRES).
    m:
        Maximum number of iterations for this cycle.
    vec_prec:
        Vector/scalar storage precision of this level.
    rel_tol:
        If given, the cycle stops early once the GMRES residual estimate drops
        below ``rel_tol * ||rhs||`` (used only by the outermost level).
    collect_residuals:
        Optional list receiving the per-iteration residual estimates.
    workspace:
        Optional :class:`~repro.backends.Workspace` owning the Krylov-basis and
        correction-vector storage; solver levels pass their per-level arena so
        repeated cycles reuse the same buffers instead of reallocating.

    Returns
    -------
    (z, iterations, estimated_residual):
        ``z`` is the correction in the level's vector precision.
    """
    backend = get_backend()
    dtype = vec_prec.dtype
    n = rhs.size
    beta = vo.nrm2(rhs)
    if beta == 0.0 or not np.isfinite(beta):
        return np.zeros(n, dtype=dtype), 0, 0.0

    ws = workspace if workspace is not None else Workspace()
    # Krylov basis V and per-iteration corrections Z live in the level's arena
    # (rows are vectors); both persist across cycles of the same level.  The
    # arenas are sized for m iterations but allocated untouched (np.empty), so
    # resident memory grows with the iterations actually run, as the old
    # per-iteration lists did — only address space is reserved up front.
    basis = ws.get("krylov_basis", (m + 1, n), dtype)
    z_vectors = ws.get("krylov_corrections", (m, n), dtype)
    basis[0] = vo.scal(1.0 / beta, rhs)
    # Hessenberg in the level's scalar precision; Givens rotations and the
    # reduced RHS g likewise (the paper keeps these in fp32 for inner levels).
    hessenberg = np.zeros((m + 1, m), dtype=dtype)
    cs = np.zeros(m, dtype=dtype)
    sn = np.zeros(m, dtype=dtype)
    g = np.zeros(m + 1, dtype=dtype)
    g[0] = dtype.type(beta)

    iterations = 0
    estimated = beta
    for j in range(m):
        zj = _apply_child(child, basis[j])
        zj = vo.cast_vector(zj, vec_prec)
        z_vectors[j] = zj
        w = matrix.matvec(zj, out_precision=vec_prec)

        # classical Gram-Schmidt against basis[:j+1] (backend kernel; the fast
        # engine runs it as BLAS-2, the reference as per-column BLAS-1 loops)
        h_col, w, h_norm = backend.orthogonalize(basis, j, w, vec_prec, scratch=ws)

        # apply the previous Givens rotations to the new column
        for i in range(j):
            temp = cs[i] * h_col[i] + sn[i] * h_col[i + 1]
            h_col[i + 1] = -sn[i] * h_col[i] + cs[i] * h_col[i + 1]
            h_col[i] = temp
        # new rotation annihilating h_col[j+1]
        denom = np.sqrt(np.float64(h_col[j]) ** 2 + np.float64(h_col[j + 1]) ** 2)
        if denom == 0.0 or not np.isfinite(denom):
            cs_j, sn_j = 1.0, 0.0
        else:
            cs_j = float(h_col[j]) / denom
            sn_j = float(h_col[j + 1]) / denom
        cs[j] = dtype.type(cs_j)
        sn[j] = dtype.type(sn_j)
        h_col[j] = dtype.type(cs_j * float(h_col[j]) + sn_j * float(h_col[j + 1]))
        h_col[j + 1] = dtype.type(0.0)

        g[j + 1] = dtype.type(-sn_j * float(g[j]))
        g[j] = dtype.type(cs_j * float(g[j]))

        hessenberg[: j + 2, j] = h_col
        iterations = j + 1
        estimated = abs(float(g[j + 1]))
        if collect_residuals is not None:
            collect_residuals.append(estimated)

        lucky_breakdown = h_norm == 0.0 or not np.isfinite(h_norm)
        if lucky_breakdown:
            break
        if rel_tol is not None and estimated < rel_tol * beta:
            break
        if j + 1 < m:
            basis[j + 1] = vo.scal(1.0 / h_norm, w)

    # back substitution R y = g (in fp64 for robustness; y is tiny)
    k = iterations
    if k == 0:
        return np.zeros(n, dtype=dtype), 0, float(estimated)
    r_mat = hessenberg[:k, :k].astype(np.float64)
    g_vec = g[:k].astype(np.float64)
    y = np.zeros(k, dtype=np.float64)
    for i in range(k - 1, -1, -1):
        s = g_vec[i] - np.dot(r_mat[i, i + 1:k], y[i + 1:k])
        diag = r_mat[i, i]
        y[i] = s / diag if diag != 0.0 else 0.0

    z = backend.combine(z_vectors, y, k, vec_prec)
    return z, iterations, float(estimated)


class FGMRESLevel(InnerSolver):
    """An inner FGMRES level: ``m`` iterations per invocation, no convergence check."""

    def __init__(self, matrix, child, m: int,
                 precisions: LevelPrecision | None = None) -> None:
        if m < 1:
            raise ValueError("FGMRES level requires m >= 1")
        self.matrix = matrix
        self.child = child
        self.m = int(m)
        self.precisions = precisions or LevelPrecision(
            matrix=Precision.FP32, vector=Precision.FP32
        )
        # per-thread so concurrent apply()/solve() on a shared solver stays
        # reentrant (as the pre-workspace code was)
        self._workspace = ThreadLocalWorkspace()

    @property
    def primary_preconditioner(self):
        child = self.child
        while child is not None and not hasattr(child, "num_applications"):
            child = getattr(child, "child", None) or getattr(child, "preconditioner", None)
        return child

    @property
    def depth_label(self) -> str:
        return f"F{self.m}"

    def apply(self, v: np.ndarray) -> np.ndarray:
        vec_prec = self.precisions.vector
        v_level = vo.cast_vector(np.asarray(v), vec_prec)
        z, _, _ = fgmres_cycle(self.matrix, v_level, self.child, self.m, vec_prec,
                               workspace=self._workspace.workspace)
        return z


class OuterFGMRES:
    """The outermost FGMRES level: fp64, convergence checking, restarting.

    Convergence is declared when the fp64 true relative residual
    ``||b − A x||/||b||`` drops below ``tol``; if the cycle of ``m`` iterations
    is exhausted the entire nested solver is re-executed from the current
    iterate ("in the manner of the restarting technique"), up to
    ``max_restarts`` additional times.
    """

    def __init__(self, matrix, child, m: int = 100, tol: float = 1e-8,
                 max_restarts: int = 2,
                 precisions: LevelPrecision | None = None, name: str = "") -> None:
        self.matrix = matrix
        self.child = child
        self.m = int(m)
        self.tol = float(tol)
        self.max_restarts = int(max_restarts)
        self.precisions = precisions or LevelPrecision(
            matrix=Precision.FP64, vector=Precision.FP64
        )
        self.name = name or f"(F{m}, ...)"
        self._workspace = ThreadLocalWorkspace()

    @property
    def primary_preconditioner(self):
        child = self.child
        while child is not None and not hasattr(child, "num_applications"):
            child = getattr(child, "child", None) or getattr(child, "preconditioner", None)
        return child

    @property
    def depth_label(self) -> str:
        return f"F{self.m}"

    # ------------------------------------------------------------------ #
    def solve(self, b: np.ndarray, x0: np.ndarray | None = None) -> SolveResult:
        start_time = time.perf_counter()
        vec_prec = self.precisions.vector
        b64 = np.asarray(b, dtype=np.float64)
        norm_b = float(np.linalg.norm(b64))
        if norm_b == 0.0:
            norm_b = 1.0

        x = (np.zeros_like(b64) if x0 is None
             else np.asarray(x0, dtype=np.float64).copy())
        history = ConvergenceHistory()
        primary = self.primary_preconditioner
        start_applications = count_primary_applications(primary) if primary is not None else 0

        total_iterations = 0
        restarts = 0
        converged = False
        relres = residual_norm(self.matrix, x, b64) / norm_b
        history.append(relres)
        if relres < self.tol:
            converged = True

        while not converged and restarts <= self.max_restarts:
            r = b64 - self.matrix.astype(Precision.FP64).matvec(x, record=False) \
                if x.any() else b64.copy()
            r_level = vo.cast_vector(r, vec_prec)
            cycle_residuals: list[float] = []
            z, iters, _ = fgmres_cycle(
                self.matrix, r_level, self.child, self.m, vec_prec,
                rel_tol=self.tol * norm_b / max(float(np.linalg.norm(r)), 1e-300),
                collect_residuals=cycle_residuals,
                workspace=self._workspace.workspace,
            )
            x = x + z.astype(np.float64)
            total_iterations += iters

            # record the outer-iteration residual estimates scaled to ||b||
            r_norm = float(np.linalg.norm(r))
            for est in cycle_residuals:
                history.append(est * r_norm / (float(np.linalg.norm(r_level)) or 1.0) / norm_b)

            relres = residual_norm(self.matrix, x, b64) / norm_b
            if relres < self.tol:
                converged = True
                break
            restarts += 1

        history.append(relres)
        applications = (count_primary_applications(primary) - start_applications
                        if primary is not None else 0)
        return SolveResult(
            x=x,
            converged=converged,
            iterations=total_iterations,
            preconditioner_applications=applications,
            relative_residual=relres,
            history=history,
            restarts=restarts,
            solver_name=self.name,
            wall_time=time.perf_counter() - start_time,
        )

"""Richardson iteration with adaptive weight updating (Algorithm 1 of the paper).

The innermost level of F3R is a preconditioned Richardson solver:

    z_k = z_{k-1} + ω M (v − A z_{k-1}),   k = 1..m4,  z_0 = 0.

Because Richardson is a stationary method its convergence hinges on the weight
ω.  The paper's Algorithm 1 keeps one weight ω_k per inner iteration, shared
**globally across all invocations** of the Richardson level, and refreshes the
weights every ``c`` invocations using the locally optimal value

    ω'_k = (r_{k-1}, A M r_{k-1}) / (A M r_{k-1}, A M r_{k-1}),

blended by a cumulative average (Eq. 5).  On refresh invocations ω'_k itself is
used for the update (it minimizes that step's residual); on the other
invocations the blended ω_k is used and no extra SpMV/dots are needed.

Precision: the Richardson recurrence runs entirely in the level's precision
(fp16 in F3R) but the ω'_k computation is carried out in fp32, exactly as
stated in Section 4.3 of the paper.
"""

from __future__ import annotations

import numpy as np

from ..backends import get_backend
from ..backends.workspace import ThreadLocalWorkspace
from ..operators import as_operator
from ..perf.counters import counters_enabled, record_bytes, record_flops, record_kernel
from ..plans import plan_for, plans_enabled
from ..precision import (
    LevelPrecision,
    Precision,
    as_precision,
    precision_of_dtype,
    promote,
)
from ..sparse import vectorops as vo
from .base import InnerSolver
from .guards import check_finite, guards_enabled

__all__ = ["RichardsonLevel", "richardson_solve"]


class RichardsonLevel(InnerSolver):
    """The paper's Algorithm 1 as a reusable inner-solver level.

    Parameters
    ----------
    matrix:
        Coefficient operator (any :class:`~repro.operators.LinearOperator`
        or a raw :class:`~repro.sparse.CSRMatrix`) stored at the level's
        matrix precision (fp16 in F3R's default configuration); only
        ``apply``/``apply_batch`` are used.
    preconditioner:
        The primary preconditioner ``M`` (values typically stored in fp16).
    m:
        Number of Richardson iterations per invocation (``m4``; default 2).
    cycle:
        Weight-refresh period ``c`` (default 64).  Ignored when ``adaptive`` is
        ``False``.
    adaptive:
        If ``False``, the fixed ``weight`` is used for every iteration and no
        ω' computations are performed (the "static" strategy of Fig. 6).
    weight:
        Initial / fixed weight (the paper initializes the adaptive weights to 1).
    precisions:
        :class:`LevelPrecision` for the level (vectors fp16 by default).
    weight_precision:
        Precision of the ω' computation (fp32 per the paper).
    """

    def __init__(self, matrix, preconditioner, m: int = 2, cycle: int = 64,
                 adaptive: bool = True, weight: float = 1.0,
                 precisions: LevelPrecision | None = None,
                 weight_precision: Precision | str = Precision.FP32) -> None:
        if m < 1:
            raise ValueError("Richardson requires at least one iteration per invocation")
        if cycle < 1:
            raise ValueError("the weight-update cycle c must be >= 1")
        self.matrix = as_operator(matrix)
        self.preconditioner = preconditioner
        self.m = int(m)
        self.cycle = int(cycle)
        self.adaptive = bool(adaptive)
        self.precisions = precisions or LevelPrecision(
            matrix=Precision.FP16, vector=Precision.FP16, preconditioner=Precision.FP16
        )
        self.weight_precision = as_precision(weight_precision)

        # Global state retained across invocations (Algorithm 1's globals).
        self.weights = np.full(self.m, float(weight), dtype=np.float64)
        self.call_count = 0          # cntr in Algorithm 1 (number of completed calls)
        self.update_count = 0        # l in Eq. (5)
        self.weight_history: list[np.ndarray] = []
        # compiled plans (per backend) and fused-sweep scratch (per thread)
        self._plans: dict[str, tuple] = {}
        self._workspace = ThreadLocalWorkspace()

    # ------------------------------------------------------------------ #
    @property
    def primary_preconditioner(self):
        return self.preconditioner

    @property
    def depth_label(self) -> str:
        return f"R{self.m}"

    def reset_state(self) -> None:
        """Forget the adapted weights (used between independent experiments)."""
        self.weights.fill(1.0)
        self.call_count = 0
        self.update_count = 0
        self.weight_history.clear()

    def _level_plans(self):
        """``(level plan, weight-precision plan)`` on the active backend,
        or ``(None, None)`` when the plan layer is disabled."""
        if not plans_enabled():
            return None, None
        backend = get_backend()
        pair = self._plans.get(backend.name)
        if pair is None:
            plan = plan_for(self.matrix, self.precisions.vector, backend)
            plan_wp = plan_for(self.matrix, self.weight_precision, backend)
            pair = self._plans[backend.name] = (plan, plan_wp)
        return pair

    # ------------------------------------------------------------------ #
    def apply(self, v: np.ndarray) -> np.ndarray:
        vec_prec = self.precisions.vector
        wp = self.weight_precision
        cntr = self.call_count + 1          # 1-based call index, as in Algorithm 1
        refresh = self.adaptive and (cntr % self.cycle == 0)
        plan, plan_wp = self._level_plans()
        backend = get_backend() if plan is not None else None
        ws = self._workspace.workspace if plan is not None else None

        v_level = vo.cast_vector(np.asarray(v), vec_prec)
        z = vo.vzeros(v_level.size, vec_prec)
        r = v_level                          # r_0 = v because z_0 = 0

        for k in range(self.m):
            if k > 0:
                # fused sweep: the next residual runs as one plan kernel
                # (one-pass spmv_axpy on CSR, staged combine elsewhere)
                if plan is not None:
                    r = plan.residual(v_level, z)
                else:
                    az = self.matrix.apply(z, out_precision=vec_prec)
                    r = vo.axpy(-1.0, az, v_level, out_precision=vec_prec)

            mr = self.preconditioner.apply(r)
            mr = vo.cast_vector(mr, vec_prec)

            if refresh:
                # ω'_k computed in fp32: one extra SpMV and two reductions.
                mr32 = vo.cast_vector(mr, wp)
                amr = (plan_wp.apply(mr32) if plan_wp is not None
                       else self.matrix.apply(mr32, out_precision=wp))
                r32 = vo.cast_vector(r, wp)
                denom = vo.dot(amr, amr)
                numer = vo.dot(r32, amr)
                if guards_enabled() and not (np.isfinite(denom) and np.isfinite(numer)):
                    # a NaN weight numerator/denominator poisons the globally
                    # shared weights for every later invocation — fail here,
                    # at the two scalars the refresh computes anyway
                    check_finite(float(denom if not np.isfinite(denom) else numer),
                                 "richardson.weight", iteration=k)
                omega = numer / denom if denom > 0.0 else self.weights[k]
                l = cntr // self.cycle
                self.weights[k] = (l * self.weights[k] + omega) / (l + 1)
            else:
                omega = float(self.weights[k])
            # the weighted half of the sweep: x += ω·M⁻¹r (staged fp16 on
            # the fast engine; bit-identical to the unfused axpy)
            if plan is not None:
                z = backend.weighted_update(z, mr, omega, vec_prec, scratch=ws)
            else:
                z = vo.axpy(omega, mr, z, out_precision=vec_prec)

        if refresh:
            self.update_count += 1
            self.weight_history.append(self.weights.copy())
        self.call_count = cntr
        return z

    # ------------------------------------------------------------------ #
    def apply_batch(self, v: np.ndarray) -> np.ndarray:
        """Lockstep Richardson sweep over ``k`` residual columns.

        The recurrence is identical to ``k`` sequential :meth:`apply` calls
        with the current weights — the matvec runs as SpMM and ``M`` through
        its batched application.  The batched invocation counts as ``k``
        calls of Algorithm 1's global counter; when the counter window
        crosses a refresh boundary, ω'_k is computed per column (one batched
        SpMM + column-wise reductions in fp32) and the globally shared weight
        is blended with the batch mean — the batch analogue of Eq. (5)'s
        cumulative average.
        """
        v = np.asarray(v)
        if v.ndim != 2:
            raise ValueError(f"apply_batch expects V of shape (n, k); got {v.shape}")
        k = v.shape[1]
        vec_prec = self.precisions.vector
        wp = self.weight_precision
        cntr_end = self.call_count + k
        refresh = self.adaptive and (self.call_count // self.cycle) != (cntr_end // self.cycle)
        plan, plan_wp = self._level_plans()

        v_level = vo.cast_block(v, vec_prec)
        z = np.zeros(v_level.shape, dtype=vec_prec.dtype)
        r = v_level

        for step in range(self.m):
            if step > 0:
                if plan is not None:
                    r = plan.residual_batch(v_level, z)
                else:
                    az = self.matrix.apply_batch(z, out_precision=vec_prec)
                    r = self._batched_axpy(-1.0, az, v_level, vec_prec)

            mr = self.preconditioner.apply_batch(r)
            mr = vo.cast_block(mr, vec_prec)

            if refresh:
                mr32 = vo.cast_block(mr, wp)
                amr = (plan_wp.apply_batch(mr32) if plan_wp is not None
                       else self.matrix.apply_batch(mr32, out_precision=wp))
                r32 = vo.cast_block(r, wp)
                denom = np.einsum("nk,nk->k", amr, amr).astype(np.float64)
                numer = np.einsum("nk,nk->k", r32, amr).astype(np.float64)
                if guards_enabled() and not (np.all(np.isfinite(denom))
                                             and np.all(np.isfinite(numer))):
                    bad = np.flatnonzero(~(np.isfinite(denom) & np.isfinite(numer)))
                    check_finite(float(denom[bad[0]] if not np.isfinite(denom[bad[0]])
                                       else numer[bad[0]]),
                                 "richardson.weight", iteration=step,
                                 columns=bad.tolist())
                if counters_enabled():
                    record_kernel("dot", 2 * k)
                    record_bytes(wp, 4 * k * amr.shape[0] * wp.bytes)
                    record_flops(wp, 4 * k * amr.shape[0])
                omega = np.where(denom > 0.0, numer / np.where(denom > 0.0, denom, 1.0),
                                 self.weights[step])
                z = self._batched_weighted_update(omega, mr, z, vec_prec)
                l = cntr_end // self.cycle
                self.weights[step] = (l * self.weights[step] + float(omega.mean())) / (l + 1)
            else:
                z = self._batched_weighted_update(
                    np.full(k, self.weights[step]), mr, z, vec_prec)

        if refresh:
            self.update_count += 1
            self.weight_history.append(self.weights.copy())
        self.call_count = cntr_end
        return z

    @staticmethod
    def _batched_axpy(alpha: float, x: np.ndarray, y: np.ndarray,
                      out_precision: Precision) -> np.ndarray:
        """``alpha * X + Y`` column-wise with the axpy promotion/recording rules."""
        px = precision_of_dtype(x.dtype)
        py = precision_of_dtype(y.dtype)
        compute = promote(px, py)
        out = as_precision(out_precision)
        result = (compute.dtype.type(alpha) * x.astype(compute.dtype, copy=False)
                  + y.astype(compute.dtype, copy=False)).astype(out.dtype, copy=False)
        if counters_enabled():
            k, n = x.shape[1], x.shape[0]
            record_kernel("axpy", k)
            record_bytes(px, k * n * px.bytes)
            record_bytes(py, k * n * py.bytes)
            record_bytes(out, k * n * out.bytes)
            record_flops(compute, 2 * k * n)
        return result

    def _batched_weighted_update(self, omega: np.ndarray, mr: np.ndarray,
                                 z: np.ndarray, vec_prec: Precision) -> np.ndarray:
        """``z + omega_j * mr_j`` per column, arithmetic in the level dtype."""
        dtype = vec_prec.dtype
        result = (omega.astype(dtype)[None, :] * mr + z).astype(dtype, copy=False)
        if counters_enabled():
            k, n = mr.shape[1], mr.shape[0]
            record_kernel("axpy", k)
            record_bytes(vec_prec, 3 * k * n * vec_prec.bytes)
            record_flops(vec_prec, 2 * k * n)
        return result


def richardson_solve(matrix, b, preconditioner, m: int, weight: float = 1.0,
                     precision: Precision | str = Precision.FP64) -> np.ndarray:
    """Plain fixed-weight preconditioned Richardson: m steps from a zero guess.

    A convenience wrapper used by tests and the cost-model validation; the
    solver levels use :class:`RichardsonLevel`.
    """
    level = RichardsonLevel(
        matrix, preconditioner, m=m, adaptive=False, weight=weight,
        precisions=LevelPrecision(matrix=precision, vector=precision,
                                  preconditioner=precision),
    )
    return level.apply(np.asarray(b))

"""Richardson iteration with adaptive weight updating (Algorithm 1 of the paper).

The innermost level of F3R is a preconditioned Richardson solver:

    z_k = z_{k-1} + ω M (v − A z_{k-1}),   k = 1..m4,  z_0 = 0.

Because Richardson is a stationary method its convergence hinges on the weight
ω.  The paper's Algorithm 1 keeps one weight ω_k per inner iteration, shared
**globally across all invocations** of the Richardson level, and refreshes the
weights every ``c`` invocations using the locally optimal value

    ω'_k = (r_{k-1}, A M r_{k-1}) / (A M r_{k-1}, A M r_{k-1}),

blended by a cumulative average (Eq. 5).  On refresh invocations ω'_k itself is
used for the update (it minimizes that step's residual); on the other
invocations the blended ω_k is used and no extra SpMV/dots are needed.

Precision: the Richardson recurrence runs entirely in the level's precision
(fp16 in F3R) but the ω'_k computation is carried out in fp32, exactly as
stated in Section 4.3 of the paper.
"""

from __future__ import annotations

import numpy as np

from ..precision import LevelPrecision, Precision, as_precision
from ..sparse import vectorops as vo
from .base import InnerSolver

__all__ = ["RichardsonLevel", "richardson_solve"]


class RichardsonLevel(InnerSolver):
    """The paper's Algorithm 1 as a reusable inner-solver level.

    Parameters
    ----------
    matrix:
        Coefficient matrix stored at the level's matrix precision (fp16 in
        F3R's default configuration).
    preconditioner:
        The primary preconditioner ``M`` (values typically stored in fp16).
    m:
        Number of Richardson iterations per invocation (``m4``; default 2).
    cycle:
        Weight-refresh period ``c`` (default 64).  Ignored when ``adaptive`` is
        ``False``.
    adaptive:
        If ``False``, the fixed ``weight`` is used for every iteration and no
        ω' computations are performed (the "static" strategy of Fig. 6).
    weight:
        Initial / fixed weight (the paper initializes the adaptive weights to 1).
    precisions:
        :class:`LevelPrecision` for the level (vectors fp16 by default).
    weight_precision:
        Precision of the ω' computation (fp32 per the paper).
    """

    def __init__(self, matrix, preconditioner, m: int = 2, cycle: int = 64,
                 adaptive: bool = True, weight: float = 1.0,
                 precisions: LevelPrecision | None = None,
                 weight_precision: Precision | str = Precision.FP32) -> None:
        if m < 1:
            raise ValueError("Richardson requires at least one iteration per invocation")
        if cycle < 1:
            raise ValueError("the weight-update cycle c must be >= 1")
        self.matrix = matrix
        self.preconditioner = preconditioner
        self.m = int(m)
        self.cycle = int(cycle)
        self.adaptive = bool(adaptive)
        self.precisions = precisions or LevelPrecision(
            matrix=Precision.FP16, vector=Precision.FP16, preconditioner=Precision.FP16
        )
        self.weight_precision = as_precision(weight_precision)

        # Global state retained across invocations (Algorithm 1's globals).
        self.weights = np.full(self.m, float(weight), dtype=np.float64)
        self.call_count = 0          # cntr in Algorithm 1 (number of completed calls)
        self.update_count = 0        # l in Eq. (5)
        self.weight_history: list[np.ndarray] = []

    # ------------------------------------------------------------------ #
    @property
    def primary_preconditioner(self):
        return self.preconditioner

    @property
    def depth_label(self) -> str:
        return f"R{self.m}"

    def reset_state(self) -> None:
        """Forget the adapted weights (used between independent experiments)."""
        self.weights.fill(1.0)
        self.call_count = 0
        self.update_count = 0
        self.weight_history.clear()

    # ------------------------------------------------------------------ #
    def apply(self, v: np.ndarray) -> np.ndarray:
        vec_prec = self.precisions.vector
        wp = self.weight_precision
        cntr = self.call_count + 1          # 1-based call index, as in Algorithm 1
        refresh = self.adaptive and (cntr % self.cycle == 0)

        v_level = vo.cast_vector(np.asarray(v), vec_prec)
        z = vo.vzeros(v_level.size, vec_prec)
        r = v_level                          # r_0 = v because z_0 = 0

        for k in range(self.m):
            if k > 0:
                az = self.matrix.matvec(z, out_precision=vec_prec)
                r = vo.axpy(-1.0, az, v_level, out_precision=vec_prec)

            mr = self.preconditioner.apply(r)
            mr = vo.cast_vector(mr, vec_prec)

            if refresh:
                # ω'_k computed in fp32: one extra SpMV and two reductions.
                mr32 = vo.cast_vector(mr, wp)
                amr = self.matrix.matvec(mr32, out_precision=wp)
                r32 = vo.cast_vector(r, wp)
                denom = vo.dot(amr, amr)
                numer = vo.dot(r32, amr)
                omega_prime = numer / denom if denom > 0.0 else self.weights[k]
                z = vo.axpy(omega_prime, mr, z, out_precision=vec_prec)
                l = cntr // self.cycle
                self.weights[k] = (l * self.weights[k] + omega_prime) / (l + 1)
            else:
                z = vo.axpy(float(self.weights[k]), mr, z, out_precision=vec_prec)

        if refresh:
            self.update_count += 1
            self.weight_history.append(self.weights.copy())
        self.call_count = cntr
        return z


def richardson_solve(matrix, b, preconditioner, m: int, weight: float = 1.0,
                     precision: Precision | str = Precision.FP64) -> np.ndarray:
    """Plain fixed-weight preconditioned Richardson: m steps from a zero guess.

    A convenience wrapper used by tests and the cost-model validation; the
    solver levels use :class:`RichardsonLevel`.
    """
    level = RichardsonLevel(
        matrix, preconditioner, m=m, adaptive=False, weight=weight,
        precisions=LevelPrecision(matrix=precision, vector=precision,
                                  preconditioner=precision),
    )
    return level.apply(np.asarray(b))

"""Preconditioned Conjugate Gradient (CG).

One of the paper's three conventional baselines (the de-facto standard for
symmetric positive definite systems).  The solver itself runs in fp64; the
preconditioner's *storage* precision is varied (fp64/fp32/fp16) to produce the
fp64-CG / fp32-CG / fp16-CG variants of Figures 1-2, exactly as in the paper
("fp64-based solvers, varying the precision of the preconditioner storage").
"""

from __future__ import annotations

import time

import numpy as np

from ..operators import as_operator
from ..plans import plan_for, plans_enabled
from ..precision import Precision
from ..sparse import residual_norm
from ..sparse import vectorops as vo
from .base import ConvergenceHistory, SolveResult, count_primary_applications
from .guards import check_finite, guards_enabled

__all__ = ["ConjugateGradient"]


class ConjugateGradient:
    """Preconditioned CG in fp64 with an arbitrary-storage-precision preconditioner."""

    def __init__(self, matrix, preconditioner=None, tol: float = 1e-8,
                 max_iterations: int = 10_000, name: str = "CG") -> None:
        self.matrix = as_operator(matrix)
        self.preconditioner = preconditioner
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.name = name

    @property
    def primary_preconditioner(self):
        return self.preconditioner

    def solve(self, b: np.ndarray, x0: np.ndarray | None = None) -> SolveResult:
        start_time = time.perf_counter()
        b64 = np.asarray(b, dtype=np.float64)
        n = b64.size
        norm_b = float(np.linalg.norm(b64)) or 1.0
        x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()

        history = ConvergenceHistory()
        primary = self.preconditioner
        start_apps = count_primary_applications(primary) if primary is not None else 0

        a64 = self.matrix
        # the compiled plan pre-binds the fp64 apply kernel; the unplanned
        # operator path is identical minus the per-call dispatch
        plan = plan_for(a64, Precision.FP64) if plans_enabled() else None
        apply64 = (plan.apply if plan is not None
                   else lambda v: a64.apply(v, out_precision=Precision.FP64))
        r = b64 - apply64(x) if x.any() else b64.copy()
        z = (self.preconditioner.apply(r).astype(np.float64)
             if self.preconditioner is not None else r.copy())
        p = z.copy()
        rz = vo.dot(r, z)

        converged = False
        iterations = 0
        relres = float(np.linalg.norm(r)) / norm_b
        history.append(relres)

        for k in range(self.max_iterations):
            ap = apply64(p)
            pap = vo.dot(p, ap)
            if guards_enabled() and not np.isfinite(pap):
                # distinguish corruption (NaN/Inf: hard breakdown) from a
                # genuine loss of positive definiteness (pap <= 0: the
                # method's own graceful exit, kept below)
                check_finite(float(pap), "cg.pap", iteration=k,
                             iterate=x.copy())
            if pap <= 0.0 or not np.isfinite(pap):
                break  # loss of positive definiteness (or breakdown)
            alpha = rz / pap
            x_prev = x
            x = vo.axpy(alpha, p, x)
            r = vo.axpy(-alpha, ap, r)
            iterations = k + 1

            relres = vo.nrm2(r) / norm_b
            if guards_enabled() and not np.isfinite(relres):
                check_finite(float(relres), "cg.relres", iteration=k,
                             iterate=x_prev.copy())
            history.append(relres)
            if relres < self.tol:
                converged = True
                break

            z = (self.preconditioner.apply(r).astype(np.float64)
                 if self.preconditioner is not None else r)
            rz_new = vo.dot(r, z)
            beta = rz_new / rz if rz != 0.0 else 0.0
            p = vo.xpby(z, beta, p)
            rz = rz_new

        final_relres = residual_norm(self.matrix, x, b64) / norm_b
        converged = converged and final_relres < self.tol * 10.0
        applications = (count_primary_applications(primary) - start_apps
                        if primary is not None else 0)
        return SolveResult(
            x=x, converged=converged, iterations=iterations,
            preconditioner_applications=applications,
            relative_residual=final_relres, history=history,
            solver_name=self.name, wall_time=time.perf_counter() - start_time,
        )

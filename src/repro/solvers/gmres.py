"""Restarted FGMRES(m) — the paper's GMRES-family baseline.

The paper compares F3R against restarted FGMRES with a restart cycle of 64
("FGMRES(64)"), again in fp64 with the preconditioner storage precision varied.
Restarting discards the Krylov subspace at every cycle boundary, which is
exactly what F3R's nesting is designed to improve on: the paper attributes
F3R's up-to-69× advantage over fp16-FGMRES(64) to the reduced Arnoldi cost of
short nested cycles.
"""

from __future__ import annotations

from ..precision import LevelPrecision, Precision
from .base import SolveResult
from .fgmres import OuterFGMRES

__all__ = ["RestartedFGMRES"]


class RestartedFGMRES:
    """fp64 FGMRES(m) with restarting, preconditioned by the primary M directly."""

    def __init__(self, matrix, preconditioner=None, restart: int = 64,
                 tol: float = 1e-8, max_iterations: int = 19_200,
                 name: str | None = None) -> None:
        self.matrix = matrix
        self.preconditioner = preconditioner
        self.restart = int(restart)
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.name = name or f"FGMRES({restart})"
        max_restarts = max(0, (self.max_iterations + self.restart - 1) // self.restart - 1)
        self._outer = OuterFGMRES(
            matrix, preconditioner, m=self.restart, tol=self.tol,
            max_restarts=max_restarts,
            precisions=LevelPrecision(matrix=Precision.FP64, vector=Precision.FP64),
            name=self.name,
        )

    @property
    def primary_preconditioner(self):
        return self.preconditioner

    def solve(self, b, x0=None) -> SolveResult:
        result = self._outer.solve(b, x0=x0)
        result.solver_name = self.name
        return result

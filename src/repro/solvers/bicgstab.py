"""Preconditioned BiCGStab.

The paper's baseline for non-symmetric systems.  As with CG, the iteration
runs in fp64 while the preconditioner storage precision is varied to obtain
fp64-/fp32-/fp16-BiCGStab.  Each iteration applies the primary preconditioner
twice (once per half-step), which is why the paper counts *preconditioning
steps* rather than iterations when comparing convergence speed.
"""

from __future__ import annotations

import time

import numpy as np

from ..operators import as_operator
from ..plans import plan_for, plans_enabled
from ..precision import Precision
from ..sparse import residual_norm
from ..sparse import vectorops as vo
from .base import ConvergenceHistory, SolveResult, count_primary_applications
from .guards import check_finite, guards_enabled

__all__ = ["BiCGStab"]


class BiCGStab:
    """Right-preconditioned BiCGStab in fp64."""

    def __init__(self, matrix, preconditioner=None, tol: float = 1e-8,
                 max_iterations: int = 10_000, name: str = "BiCGStab") -> None:
        self.matrix = as_operator(matrix)
        self.preconditioner = preconditioner
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.name = name

    @property
    def primary_preconditioner(self):
        return self.preconditioner

    def _precondition(self, v: np.ndarray) -> np.ndarray:
        if self.preconditioner is None:
            return v
        return self.preconditioner.apply(v).astype(np.float64)

    def solve(self, b: np.ndarray, x0: np.ndarray | None = None) -> SolveResult:
        start_time = time.perf_counter()
        b64 = np.asarray(b, dtype=np.float64)
        n = b64.size
        norm_b = float(np.linalg.norm(b64)) or 1.0
        x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()

        history = ConvergenceHistory()
        primary = self.preconditioner
        start_apps = count_primary_applications(primary) if primary is not None else 0

        a64 = self.matrix
        # pre-bound fp64 apply kernel (identical semantics, no dispatch)
        plan = plan_for(a64, Precision.FP64) if plans_enabled() else None
        apply64 = (plan.apply if plan is not None
                   else lambda w: a64.apply(w, out_precision=Precision.FP64))
        r = b64 - apply64(x) if x.any() else b64.copy()
        r_hat = r.copy()
        rho_prev = alpha = omega = 1.0
        v = np.zeros(n)
        p = np.zeros(n)

        converged = False
        iterations = 0
        relres = float(np.linalg.norm(r)) / norm_b
        history.append(relres)

        for k in range(self.max_iterations):
            rho = vo.dot(r_hat, r)
            if guards_enabled() and not np.isfinite(rho):
                # NaN/Inf rho is corruption; rho == 0 stays the method's own
                # serious-breakdown exit below
                check_finite(float(rho), "bicgstab.rho", iteration=k,
                             iterate=x.copy())
            if rho == 0.0 or not np.isfinite(rho):
                break  # serious breakdown
            if k == 0:
                p = r.copy()
            else:
                beta = (rho / rho_prev) * (alpha / omega) if rho_prev != 0.0 and omega != 0.0 else 0.0
                p = vo.xpby(r, beta, vo.axpy(-omega, v, p))
            phat = self._precondition(p)
            v = apply64(phat)
            rhat_v = vo.dot(r_hat, v)
            if guards_enabled() and not np.isfinite(rhat_v):
                check_finite(float(rhat_v), "bicgstab.rhat_v", iteration=k,
                             iterate=x.copy())
            if rhat_v == 0.0 or not np.isfinite(rhat_v):
                break
            alpha = rho / rhat_v
            s = vo.axpy(-alpha, v, r)
            iterations = k + 1

            if vo.nrm2(s) / norm_b < self.tol:
                x = vo.axpy(alpha, phat, x)
                relres = vo.nrm2(s) / norm_b
                history.append(relres)
                converged = True
                break

            shat = self._precondition(s)
            t = apply64(shat)
            tt = vo.dot(t, t)
            omega = vo.dot(t, s) / tt if tt != 0.0 else 0.0
            x = vo.axpy(alpha, phat, vo.axpy(omega, shat, x))
            r = vo.axpy(-omega, t, s)
            rho_prev = rho

            relres = vo.nrm2(r) / norm_b
            if guards_enabled() and not np.isfinite(relres):
                check_finite(float(relres), "bicgstab.relres", iteration=k,
                             iterate=x.copy())
            history.append(relres)
            if relres < self.tol:
                converged = True
                break
            if omega == 0.0:
                break  # stagnation

        final_relres = residual_norm(self.matrix, x, b64) / norm_b
        converged = converged and final_relres < self.tol * 10.0
        applications = (count_primary_applications(primary) - start_apps
                        if primary is not None else 0)
        return SolveResult(
            x=x, converged=converged, iterations=iterations,
            preconditioner_applications=applications,
            relative_residual=final_relres, history=history,
            solver_name=self.name, wall_time=time.perf_counter() - start_time,
        )

"""Common solver infrastructure: results, histories, and the inner-solver interface.

Terminology follows the paper's Section 3: a nested solver is a tuple
``(S1, S2, ..., SD, M)`` where each inner solver acts as a flexible
preconditioner for its parent.  Anything that can appear on the right of a
level — an inner solver or the primary preconditioner ``M`` — exposes
``apply(v) ≈ A^{-1} v`` (approximate solve with zero initial guess), so the
levels compose uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..precond.base import Preconditioner

__all__ = [
    "InnerSolver",
    "ApplyTarget",
    "BatchSolveResult",
    "ConvergenceHistory",
    "SolveResult",
    "count_primary_applications",
    "reset_primary_counter",
]

#: Anything usable as the preconditioning step of a level.
ApplyTarget = "InnerSolver | Preconditioner"


class InnerSolver(abc.ABC):
    """An inner solver: approximately solves ``A z = v`` starting from zero.

    Inner solvers are stateful objects (the adaptive Richardson weights persist
    across invocations), so one instance is created per nested-solver level and
    reused for the whole outer iteration.
    """

    @abc.abstractmethod
    def apply(self, v: np.ndarray) -> np.ndarray:
        """Return an approximate solution of ``A z = v`` (zero initial guess)."""

    def apply_batch(self, v: np.ndarray) -> np.ndarray:
        """Approximately solve ``A Z = V`` for ``V`` of shape ``(n, k)``.

        The default loops :meth:`apply` column by column; levels whose
        per-invocation work is identical for every column (fixed iteration
        counts, no convergence check) override it with a lockstep batched
        recurrence so the hot kernels run as SpMM / trsm.
        """
        cols = [self.apply(np.ascontiguousarray(v[:, j])) for j in range(v.shape[1])]
        return np.stack(cols, axis=1)

    @property
    @abc.abstractmethod
    def depth_label(self) -> str:
        """Short description used in tuple notation, e.g. ``"F8"`` or ``"R2"``."""

    def describe(self) -> str:
        return self.depth_label


@dataclass
class ConvergenceHistory:
    """Per-outer-iteration record of the relative residual norm."""

    relative_residuals: list[float] = field(default_factory=list)

    def append(self, relres: float) -> None:
        self.relative_residuals.append(float(relres))

    def __len__(self) -> int:
        return len(self.relative_residuals)

    @property
    def final(self) -> float:
        return self.relative_residuals[-1] if self.relative_residuals else float("nan")

    def iterations_to(self, tol: float) -> int | None:
        """First (1-based) iteration index at which the residual drops below ``tol``."""
        for i, r in enumerate(self.relative_residuals, start=1):
            if r < tol:
                return i
        return None

    def is_monotonic(self, slack: float = 1.0 + 1e-12) -> bool:
        """True when the residual never increases by more than ``slack`` per step."""
        r = self.relative_residuals
        return all(r[i + 1] <= r[i] * slack for i in range(len(r) - 1))


@dataclass
class SolveResult:
    """Outcome of a linear solve.

    Attributes
    ----------
    x:
        Approximate solution (fp64).
    converged:
        Whether the relative-residual criterion was met.
    iterations:
        Number of outermost iterations performed (across restarts).
    preconditioner_applications:
        Number of invocations of the primary preconditioner ``M`` — the
        paper's Table 3 metric.
    relative_residual:
        Final true relative residual ``||b − A x|| / ||b||`` in fp64.
    history:
        Per-outer-iteration residual history.
    restarts:
        Number of times the whole solver was re-executed.
    solver_name:
        Human-readable label of the configuration.
    wall_time:
        Wall-clock seconds spent inside ``solve`` (emulation time; see
        :mod:`repro.perf` for modeled hardware time).
    recovery:
        :class:`~repro.core.recovery.SolveReport` when the recovery ladder
        intervened (breakdown restart, precision escalation, preconditioner
        rebuild); ``None`` for a clean first-attempt solve.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    preconditioner_applications: int
    relative_residual: float
    history: ConvergenceHistory = field(default_factory=ConvergenceHistory)
    restarts: int = 0
    solver_name: str = ""
    wall_time: float = 0.0
    recovery: object | None = None

    def summary(self) -> dict:
        out = {
            "solver": self.solver_name,
            "converged": self.converged,
            "iterations": self.iterations,
            "preconditioner_applications": self.preconditioner_applications,
            "relative_residual": self.relative_residual,
            "restarts": self.restarts,
            "wall_time": self.wall_time,
        }
        if self.recovery is not None:
            out["recovery"] = self.recovery.summary()
        return out


@dataclass
class BatchSolveResult:
    """Outcome of a batched multi-RHS solve (:meth:`OuterFGMRES.solve_batch`).

    Attributes
    ----------
    x:
        Solution block of shape ``(n, k)``, one column per right-hand side.
    results:
        Per-column :class:`SolveResult` entries.  Because the columns run in
        lockstep against one factorization, per-column
        ``preconditioner_applications`` and ``wall_time`` are the batch totals
        divided evenly across columns (columns that deflate early did less
        work than their share says; the batch total is exact).
    wall_time:
        Wall-clock seconds of the whole batched solve.
    """

    x: np.ndarray
    results: list[SolveResult]
    wall_time: float = 0.0

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, i: int) -> SolveResult:
        return self.results[i]

    def __iter__(self):
        return iter(self.results)

    @property
    def converged(self) -> np.ndarray:
        return np.array([r.converged for r in self.results], dtype=bool)

    @property
    def all_converged(self) -> bool:
        return all(r.converged for r in self.results)

    @property
    def iterations(self) -> np.ndarray:
        return np.array([r.iterations for r in self.results], dtype=np.int64)

    @property
    def relative_residuals(self) -> np.ndarray:
        return np.array([r.relative_residual for r in self.results])

    def summary(self) -> dict:
        return {
            "k": len(self.results),
            "all_converged": self.all_converged,
            "iterations": self.iterations.tolist(),
            "relative_residuals": self.relative_residuals.tolist(),
            "wall_time": self.wall_time,
        }


def count_primary_applications(target) -> int:
    """Number of primary-preconditioner applications recorded by ``target``.

    Works for a bare :class:`Preconditioner` and for inner solvers that expose
    their primary preconditioner via a ``primary_preconditioner`` attribute.
    """
    if isinstance(target, Preconditioner):
        return target.num_applications
    primary = getattr(target, "primary_preconditioner", None)
    if primary is not None:
        return primary.num_applications
    return 0


def reset_primary_counter(target) -> None:
    """Reset the application counter of the primary preconditioner under ``target``."""
    if isinstance(target, Preconditioner):
        target.reset_counter()
        return
    primary = getattr(target, "primary_preconditioner", None)
    if primary is not None:
        primary.reset_counter()

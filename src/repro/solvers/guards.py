"""Solver guards: breakdown and stagnation detection for the iteration hot loops.

Low-precision iterative solvers fail in characteristic ways that plain
convergence checking never surfaces: an fp16 underflow chain turns a residual
norm into NaN and the solver keeps multiplying garbage; a (near-)singular
ILU(0) pivot makes a preconditioned direction non-finite; restarted cycles
stop making progress while burning their full iteration budget.  The guards
in this module turn those silent failures into *structured events* that the
recovery layer (:mod:`repro.core.recovery`) can act on:

* :class:`SolveBreakdown` — a non-finite quantity appeared in the recurrence
  (``kind="hard"``), or the Krylov basis closed exactly (``kind="happy"``,
  never raised — a happy breakdown means the cycle solved the system).
* :class:`SolveStagnation` — the windowed relative-residual progress over the
  last ``window`` outer cycles fell below ``min_drop`` (the solver is looping
  without converging).

Design constraints, in order:

1. **Zero distortion** — guard checks only inspect *scalars the solvers
   already compute* (residual norms, Hessenberg entries, rotation
   denominators).  When no event fires, the guarded path is bit-identical to
   the unguarded one: no extra kernel calls, no reordered arithmetic.
2. **Kill switch** — ``REPRO_GUARDS=0`` (or :func:`set_guards_enabled`)
   restores today's silent behaviour exactly; every hook collapses to the
   pre-guard code path.
3. **Cheap** — each check is a handful of Python float comparisons per
   *cycle*, not per element; warm-solve overhead stays under the <2% budget
   measured by ``make bench-solves-smoke``.

Breakdown classification (``classify_breakdown``) follows the standard
Krylov taxonomy: a *happy* breakdown is an exactly-zero next-basis norm with
finite arithmetic (the Krylov space is invariant — the cycle's answer is
exact); a *hard* breakdown is any non-finite norm or entry (the recurrence
is corrupted and nothing downstream can be trusted).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SolveEvent",
    "SolveBreakdown",
    "SolveStagnation",
    "InvalidInput",
    "StagnationWindow",
    "classify_breakdown",
    "guards_enabled",
    "set_guards_enabled",
    "use_guards",
    "check_finite",
]

_ENABLED = os.environ.get("REPRO_GUARDS", "1").strip().lower() not in (
    "0", "off", "false", "no")


def guards_enabled() -> bool:
    """Whether solver guards raise structured events (``REPRO_GUARDS``)."""
    return _ENABLED


def set_guards_enabled(enabled: bool) -> bool:
    """Enable/disable solver guards (process-wide); returns the old state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def use_guards(enabled: bool = True):
    """Scoped guard toggle (parity tests compare both paths)."""
    previous = set_guards_enabled(enabled)
    try:
        yield
    finally:
        set_guards_enabled(previous)


# ---------------------------------------------------------------------- #
# Structured events
# ---------------------------------------------------------------------- #
class SolveEvent(RuntimeError):
    """Base class for structured solver events.

    Attributes
    ----------
    site:
        Dotted label of the check that fired, e.g. ``"fgmres.beta"`` or
        ``"richardson.weight"`` — stable strings the recovery layer and the
        fault-injection tests key on.
    iteration:
        Iteration index within the cycle when the event fired (or ``None``).
    value:
        The offending scalar (NaN/Inf for breakdowns, the windowed progress
        ratio for stagnation).
    iterate:
        The last finite outer iterate known when the event fired (fp64), or
        ``None``.  The recovery ladder restarts from it instead of discarding
        the progress made before the corruption.
    columns:
        For batched cycles: the original column indices whose recurrences are
        affected (``None`` for single-RHS solves or when unattributable).
    """

    def __init__(self, message: str, site: str, iteration: int | None = None,
                 value: float | None = None, iterate: np.ndarray | None = None,
                 columns: list[int] | None = None) -> None:
        super().__init__(message)
        self.site = site
        self.iteration = iteration
        self.value = value
        self.iterate = iterate
        self.columns = columns

    def describe(self) -> dict:
        return {
            "event": type(self).__name__,
            "site": self.site,
            "iteration": self.iteration,
            "value": self.value,
            "columns": self.columns,
            "message": str(self),
        }


class SolveBreakdown(SolveEvent):
    """A non-finite quantity corrupted the Krylov recurrence (``kind="hard"``).

    ``kind="happy"`` instances exist only as classification results — the
    solvers handle a happy breakdown by finalizing early, never by raising.
    """

    def __init__(self, message: str, site: str, kind: str = "hard",
                 **kwargs) -> None:
        super().__init__(message, site, **kwargs)
        self.kind = kind

    def describe(self) -> dict:
        out = super().describe()
        out["kind"] = self.kind
        return out


class SolveStagnation(SolveEvent):
    """Windowed relative-residual progress stalled across outer cycles."""

    def __init__(self, message: str, site: str, window: int = 0,
                 progress: float | None = None, **kwargs) -> None:
        super().__init__(message, site, **kwargs)
        self.window = window
        self.progress = progress

    def describe(self) -> dict:
        out = super().describe()
        out["window"] = self.window
        out["progress"] = self.progress
        return out


class InvalidInput(ValueError):
    """Structured rejection at the solver/dispatcher boundary.

    Raised *before* any setup work is spent when a right-hand side contains
    non-finite entries or a batch is shape-mismatched; carries the boundary
    (``site``) and the offending detail so serving layers can report it.
    """

    def __init__(self, message: str, site: str, detail: dict | None = None) -> None:
        super().__init__(message)
        self.site = site
        self.detail = detail or {}


# ---------------------------------------------------------------------- #
# Classification and checks
# ---------------------------------------------------------------------- #
def classify_breakdown(h_norm: float) -> str | None:
    """Classify a next-basis-vector norm: ``"happy"``, ``"hard"``, or ``None``.

    A zero norm with finite arithmetic means the Krylov space became
    invariant — the cycle's reduced solve is exact (*happy*).  A non-finite
    norm means the recurrence itself is corrupted (*hard*).  Anything else
    is a normal continuing iteration.
    """
    if not np.isfinite(h_norm):
        return "hard"
    if h_norm == 0.0:
        return "happy"
    return None


def check_finite(value: float, site: str, iteration: int | None = None,
                 iterate: np.ndarray | None = None,
                 columns: list[int] | None = None) -> float:
    """Raise :class:`SolveBreakdown` if ``value`` is NaN/Inf (guards on only).

    Returns the value unchanged so call sites can wrap expressions in place.
    The caller is responsible for gating on :func:`guards_enabled` when the
    check itself must vanish from the hot path.
    """
    if not np.isfinite(value):
        raise SolveBreakdown(
            f"non-finite value at {site}"
            + (f" (iteration {iteration})" if iteration is not None else "")
            + f": {value!r}",
            site=site, kind="hard", iteration=iteration, value=float(value),
            iterate=iterate, columns=columns,
        )
    return value


@dataclass
class StagnationWindow:
    """Windowed relative-residual progress monitor for outer cycles.

    Feed it the true relative residual after each outer cycle
    (:meth:`update`); it reports stagnation once the window is full and the
    newest residual failed to drop below ``(1 - min_drop) ×`` the oldest —
    i.e. less than ``min_drop`` relative progress over the last ``window``
    cycles.  ``min_drop`` defaults to 10%: a healthy restarted Krylov solve
    gains far more than that per cycle, while a NaN-free-but-stalled fp16
    solve oscillates within a few ULPs.

    The monitor is armed explicitly (the recovery layer passes one into the
    outer solve); a bare :class:`~repro.solvers.OuterFGMRES` never checks
    stagnation, so direct solver use keeps today's exhaust-the-restarts
    behaviour.
    """

    window: int = 3
    min_drop: float = 0.10
    residuals: list[float] = field(default_factory=list)

    def update(self, relres: float) -> bool:
        """Record one outer-cycle residual; return True when stalled."""
        self.residuals.append(float(relres))
        if len(self.residuals) <= self.window:
            return False
        del self.residuals[:-(self.window + 1)]
        oldest, newest = self.residuals[0], self.residuals[-1]
        if not np.isfinite(newest):
            return True
        return newest >= oldest * (1.0 - self.min_drop)

    @property
    def progress(self) -> float | None:
        """Relative drop achieved over the current window (None until full)."""
        if len(self.residuals) <= self.window:
            return None
        oldest, newest = self.residuals[0], self.residuals[-1]
        if oldest == 0.0:
            return 1.0
        return 1.0 - newest / oldest

    def check(self, relres: float, site: str,
              iterate: np.ndarray | None = None) -> None:
        """:meth:`update`, raising :class:`SolveStagnation` when stalled."""
        if self.update(relres):
            raise SolveStagnation(
                f"relative residual stalled at {relres:.3e} over the last "
                f"{self.window} cycles at {site} "
                f"(progress {self.progress if self.progress is not None else float('nan'):.3%}"
                f" < {self.min_drop:.0%})",
                site=site, window=self.window, progress=self.progress,
                value=float(relres), iterate=iterate,
            )


def validate_rhs(b: np.ndarray, site: str, expected_rows: int | None = None) -> None:
    """Boundary validation: reject non-finite or mis-shaped right-hand sides.

    Cheap relative to any setup work (one vectorized pass over ``b``), and
    always on — a NaN RHS is an input error, not a solver event, so the
    ``REPRO_GUARDS`` kill switch does not disable it.
    """
    if expected_rows is not None and b.shape[0] != expected_rows:
        raise InvalidInput(
            f"rhs has {b.shape[0]} rows; expected {expected_rows} at {site}",
            site=site, detail={"shape": tuple(b.shape), "expected_rows": expected_rows},
        )
    if not np.all(np.isfinite(b)):
        bad = int(np.flatnonzero(~np.isfinite(b).reshape(b.shape[0], -1).all(axis=1))[0])
        raise InvalidInput(
            f"rhs contains non-finite entries (first bad row {bad}) at {site}",
            site=site, detail={"first_bad_row": bad},
        )


__all__.append("validate_rhs")

"""Nested-Krylov composition: build a solver from the paper's tuple notation.

A nested solver ``(S1, S2, ..., SD, M)`` is described by a list of
:class:`LevelSpec` entries — one per solver level, outermost first — plus the
primary preconditioner ``M``.  The builder wires each level to the next one as
its flexible preconditioner, gives each level a matrix cast to that level's
storage precision (sharing casts between levels that use the same precision),
and returns the outermost solver.

This is the machinery shared by F3R, the F2/F3/F4 variants of Table 4, and any
user-defined configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..operators import LinearOperator, as_operator
from ..precision import LevelPrecision, Precision, as_precision
from .fgmres import FGMRESLevel, OuterFGMRES
from .richardson import RichardsonLevel

__all__ = ["LevelSpec", "NestedSolverBuilder", "build_nested_solver", "tuple_notation"]


@dataclass(frozen=True)
class LevelSpec:
    """Description of one level of a nested solver.

    Parameters
    ----------
    method:
        ``"fgmres"`` or ``"richardson"``.
    iterations:
        Iterations per invocation of this level (``m_d``).
    precisions:
        Matrix / vector / preconditioner precisions of this level (a row of
        Table 1 or Table 4).
    richardson_options:
        Extra keyword arguments forwarded to :class:`RichardsonLevel`
        (``cycle``, ``adaptive``, ``weight``).
    """

    method: str
    iterations: int
    precisions: LevelPrecision
    richardson_options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.method not in ("fgmres", "richardson"):
            raise ValueError(f"unknown level method {self.method!r}")
        if self.iterations < 1:
            raise ValueError("each level needs at least one iteration")

    @property
    def label(self) -> str:
        prefix = "F" if self.method == "fgmres" else "R"
        return f"{prefix}{self.iterations}"


class NestedSolverBuilder:
    """Builds an :class:`OuterFGMRES`-rooted nested solver from level specs."""

    def __init__(self, matrix, primary_preconditioner,
                 tol: float = 1e-8, max_restarts: int = 2, name: str = "") -> None:
        matrix = as_operator(matrix)
        if matrix.precision != Precision.FP64:
            matrix = matrix.astype(Precision.FP64)
        self.matrix = matrix
        self.primary_preconditioner = primary_preconditioner
        self.tol = float(tol)
        self.max_restarts = int(max_restarts)
        self.name = name
        # one operator per precision, shared by every level that uses it
        self._matrix_cache: dict[Precision, LinearOperator] = {Precision.FP64: matrix}

    def _matrix_for(self, precision: Precision | str) -> LinearOperator:
        p = as_precision(precision)
        if p not in self._matrix_cache:
            self._matrix_cache[p] = self.matrix.astype(p)
        return self._matrix_cache[p]

    def build(self, levels: list[LevelSpec]) -> OuterFGMRES:
        if not levels:
            raise ValueError("a nested solver needs at least one level")
        if levels[0].method != "fgmres":
            raise ValueError("the outermost level must be FGMRES (it checks convergence)")

        # Cast the primary preconditioner to the precision of the level that
        # applies it (the innermost level).
        innermost = levels[-1]
        m_precision = innermost.precisions.preconditioner or Precision.FP64
        primary = self.primary_preconditioner
        if primary is not None and primary.precision != m_precision:
            primary = primary.astype(m_precision)
        self.effective_preconditioner = primary

        # Build from the innermost level outwards.
        child = primary
        for spec in reversed(levels[1:]):
            level_matrix = self._matrix_for(spec.precisions.matrix)
            if spec.method == "richardson":
                child = RichardsonLevel(
                    level_matrix, child, m=spec.iterations,
                    precisions=spec.precisions, **spec.richardson_options,
                )
            else:
                child = FGMRESLevel(level_matrix, child, m=spec.iterations,
                                    precisions=spec.precisions)

        outer_spec = levels[0]
        outer = OuterFGMRES(
            self._matrix_for(outer_spec.precisions.matrix), child,
            m=outer_spec.iterations, tol=self.tol, max_restarts=self.max_restarts,
            precisions=outer_spec.precisions,
            name=self.name or tuple_notation(levels),
        )
        return outer


def build_nested_solver(matrix, primary_preconditioner,
                        levels: list[LevelSpec], tol: float = 1e-8,
                        max_restarts: int = 2, name: str = "") -> OuterFGMRES:
    """Convenience wrapper around :class:`NestedSolverBuilder`.

    ``matrix`` may be an assembled :class:`~repro.sparse.CSRMatrix` or any
    :class:`~repro.operators.LinearOperator` (e.g. a matrix-free stencil).
    """
    builder = NestedSolverBuilder(matrix, primary_preconditioner, tol=tol,
                                  max_restarts=max_restarts, name=name)
    return builder.build(levels)


def tuple_notation(levels: list[LevelSpec], preconditioner_symbol: str = "M") -> str:
    """Render the paper's tuple notation, e.g. ``(F100, F8, F4, R2, M)``."""
    parts = [spec.label for spec in levels]
    parts.append(preconditioner_symbol)
    return "(" + ", ".join(parts) + ")"

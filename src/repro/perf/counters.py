"""Memory-traffic and operation counters.

The paper's Figures 1 and 2 report wall-clock speedups on bandwidth-bound
kernels.  In this reproduction the low-precision arithmetic is *emulated*, so
wall-clock time in Python cannot show the effect of halving the data size.
Instead, every kernel (SpMV, triangular solve, dot, axpy, ...) reports the
bytes it reads and writes, broken down by precision, into the counters defined
here; :mod:`repro.perf.machine` then converts that traffic into modeled time.

This mirrors the paper's own methodology: its Section 4.1 cost model (Eqs. 1-3)
is itself a pure memory-traffic model, and the experimental speedups track it.

Counters are hierarchical: a context-manager stack lets an experiment scope a
fresh counter around a solve while the kernels simply call the module-level
``record_*`` functions.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..precision import Precision, as_precision

__all__ = [
    "TrafficCounter",
    "counting",
    "counters_disabled",
    "counters_enabled",
    "current_counter",
    "record_bytes",
    "record_flops",
    "record_kernel",
    "reset_global_counter",
    "set_counters_enabled",
    "global_counter",
]


@dataclass
class TrafficCounter:
    """Accumulates bytes moved, flops and kernel invocations.

    Attributes
    ----------
    bytes_by_precision:
        Total bytes read + written, keyed by value precision.  Index traffic
        (int32 column indices / row pointers) is tracked separately under
        ``index_bytes`` because it is precision-independent.
    flops_by_precision:
        Floating-point operations, keyed by the compute precision.
    kernel_calls:
        Number of invocations per kernel name (``"spmv"``, ``"dot"``, ...).
    """

    bytes_by_precision: dict[Precision, int] = field(default_factory=dict)
    index_bytes: int = 0
    flops_by_precision: dict[Precision, int] = field(default_factory=dict)
    kernel_calls: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def add_bytes(self, precision: Precision, nbytes: int) -> None:
        p = as_precision(precision)
        self.bytes_by_precision[p] = self.bytes_by_precision.get(p, 0) + int(nbytes)

    def add_index_bytes(self, nbytes: int) -> None:
        self.index_bytes += int(nbytes)

    def add_flops(self, precision: Precision, nflops: int) -> None:
        p = as_precision(precision)
        self.flops_by_precision[p] = self.flops_by_precision.get(p, 0) + int(nflops)

    def add_call(self, kernel: str, count: int = 1) -> None:
        self.kernel_calls[kernel] = self.kernel_calls.get(kernel, 0) + count

    # ------------------------------------------------------------------ #
    @property
    def total_value_bytes(self) -> int:
        return sum(self.bytes_by_precision.values())

    @property
    def total_bytes(self) -> int:
        return self.total_value_bytes + self.index_bytes

    @property
    def total_flops(self) -> int:
        return sum(self.flops_by_precision.values())

    def bytes_for(self, precision: Precision | str) -> int:
        return self.bytes_by_precision.get(as_precision(precision), 0)

    def calls_for(self, kernel: str) -> int:
        return self.kernel_calls.get(kernel, 0)

    def low_precision_fraction(self) -> float:
        """Fraction of value traffic carried in fp16 — the paper's notion of
        "frequency of fp16 computations"."""
        total = self.total_value_bytes
        if total == 0:
            return 0.0
        return self.bytes_for(Precision.FP16) / total

    # ------------------------------------------------------------------ #
    def merge(self, other: "TrafficCounter") -> None:
        """Accumulate another counter into this one (used by the stack)."""
        for p, b in other.bytes_by_precision.items():
            self.add_bytes(p, b)
        self.index_bytes += other.index_bytes
        for p, f in other.flops_by_precision.items():
            self.add_flops(p, f)
        for k, c in other.kernel_calls.items():
            self.add_call(k, c)

    def copy(self) -> "TrafficCounter":
        out = TrafficCounter()
        out.merge(self)
        return out

    def reset(self) -> None:
        self.bytes_by_precision.clear()
        self.flops_by_precision.clear()
        self.kernel_calls.clear()
        self.index_bytes = 0

    def summary(self) -> dict:
        """Plain-dict summary convenient for reports and JSON dumps."""
        return {
            "bytes": {p.label: b for p, b in sorted(self.bytes_by_precision.items(), key=lambda kv: kv[0].label)},
            "index_bytes": self.index_bytes,
            "total_bytes": self.total_bytes,
            "flops": {p.label: f for p, f in sorted(self.flops_by_precision.items(), key=lambda kv: kv[0].label)},
            "kernel_calls": dict(sorted(self.kernel_calls.items())),
            "fp16_fraction": self.low_precision_fraction(),
        }


# Recording is on by default (the emulation methodology depends on it) but a
# production solve that only wants the answer can turn it off entirely: every
# ``record_*`` call then returns after a single boolean test, and the backends
# additionally skip the byte/flop bookkeeping arithmetic.  Set the environment
# variable ``REPRO_COUNTERS=0`` (or ``off``/``false``) to start disabled.
# The flag is thread-local, like the counter stack, so disabling recording in
# one thread never perturbs another thread's scoped measurements.
_DEFAULT_ENABLED = os.environ.get("REPRO_COUNTERS", "1").lower() not in (
    "0", "off", "false", "no")


class _CounterStack(threading.local):
    """Thread-local stack of active counters plus an always-on global counter."""

    def __init__(self) -> None:
        self.stack: list[TrafficCounter] = []
        self.global_counter = TrafficCounter()
        self.enabled: bool = _DEFAULT_ENABLED


_STACK = _CounterStack()


def counters_enabled() -> bool:
    """Whether traffic recording is active in this thread."""
    return _STACK.enabled


def set_counters_enabled(enabled: bool) -> bool:
    """Enable/disable traffic recording in this thread; returns the previous state."""
    previous = _STACK.enabled
    _STACK.enabled = bool(enabled)
    return previous


@contextmanager
def counters_disabled():
    """Scope with traffic recording switched off (zero instrumentation tax)."""
    previous = set_counters_enabled(False)
    try:
        yield
    finally:
        set_counters_enabled(previous)


def global_counter() -> TrafficCounter:
    """The process-wide counter that accumulates all traffic ever recorded."""
    return _STACK.global_counter


def reset_global_counter() -> None:
    _STACK.global_counter.reset()


def current_counter() -> TrafficCounter | None:
    """The innermost scoped counter, or ``None`` outside any ``counting()`` block."""
    return _STACK.stack[-1] if _STACK.stack else None


@contextmanager
def counting(counter: TrafficCounter | None = None):
    """Scope a counter: traffic recorded inside the block accumulates into it.

    Nested blocks all receive the traffic (a kernel inside two nested blocks
    contributes to both), which lets an experiment wrap a whole solve while a
    solver wraps just its preconditioner application.

    An explicit ``counting()`` scope expresses measurement intent, so it
    re-enables recording even when counters are globally disabled
    (``REPRO_COUNTERS=0`` / :func:`set_counters_enabled`); a nested
    :func:`counters_disabled` still wins inside the block.
    """
    counter = counter if counter is not None else TrafficCounter()
    previous_enabled = set_counters_enabled(True)
    _STACK.stack.append(counter)
    try:
        yield counter
    finally:
        _STACK.stack.pop()
        set_counters_enabled(previous_enabled)


def record_bytes(precision: Precision | str, nbytes: int, index_bytes: int = 0) -> None:
    """Record ``nbytes`` of value traffic in ``precision`` (+ optional index bytes)."""
    if not _STACK.enabled:
        return
    p = as_precision(precision)
    for counter in _STACK.stack:
        counter.add_bytes(p, nbytes)
        if index_bytes:
            counter.add_index_bytes(index_bytes)
    _STACK.global_counter.add_bytes(p, nbytes)
    if index_bytes:
        _STACK.global_counter.add_index_bytes(index_bytes)


def record_flops(precision: Precision | str, nflops: int) -> None:
    if not _STACK.enabled:
        return
    p = as_precision(precision)
    for counter in _STACK.stack:
        counter.add_flops(p, nflops)
    _STACK.global_counter.add_flops(p, nflops)


def record_kernel(kernel: str, count: int = 1) -> None:
    if not _STACK.enabled:
        return
    for counter in _STACK.stack:
        counter.add_call(kernel, count)
    _STACK.global_counter.add_call(kernel, count)

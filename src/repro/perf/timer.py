"""Wall-clock timing helpers.

Wall-clock time of the emulated solvers is recorded for completeness (and used
by the pytest-benchmark harness), but the reproduction's Figure 1/2 speedups
come from the machine model in :mod:`repro.perf.machine`, because Python-level
fp16 emulation is slower — not faster — than fp64.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Timer", "StageTimer", "timed"]


@dataclass
class Timer:
    """A simple accumulating stopwatch."""

    elapsed: float = 0.0
    _start: float | None = None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("timer already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer not running")
        delta = time.perf_counter() - self._start
        self.elapsed += delta
        self._start = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    @property
    def running(self) -> bool:
        return self._start is not None


@dataclass
class StageTimer:
    """Accumulates elapsed time per named stage (spmv, precond, orthogonalize, ...)."""

    stages: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.stages[name] = self.stages.get(name, 0.0) + time.perf_counter() - start

    def total(self) -> float:
        return sum(self.stages.values())

    def fraction(self, name: str) -> float:
        total = self.total()
        return self.stages.get(name, 0.0) / total if total > 0 else 0.0


@contextmanager
def timed():
    """``with timed() as t: ...; t.elapsed`` — one-shot scope timer."""
    timer = Timer()
    timer.start()
    try:
        yield timer
    finally:
        if timer.running:
            timer.stop()

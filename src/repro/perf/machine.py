"""Machine performance models for converting memory traffic into modeled time.

The paper evaluates on two testbeds:

* **CPU node** — Camphor 3 at Kyoto University: two Intel Sapphire Rapids CPUs
  (2 × 56 cores), block-Jacobi ILU(0)/IC(0) preconditioning, CSR SpMV.
* **GPU node** — Gardenia: one NVIDIA A100, SD-AINV preconditioning, sliced
  ELLPACK SpMV.

Sparse iterative kernels are memory-bandwidth bound on both (the paper's own
premise), so modeled execution time is

    time = value_bytes / stream_bandwidth
         + index_bytes / stream_bandwidth
         + kernel_calls * kernel_launch_latency
         + reduction_calls * reduction_latency

The two latency terms capture the paper's observed second-order effects: on the
GPU, kernel-launch overhead and reduction (dot/norm) latency damp the benefit
of cutting traffic (Sec. 5.2 reports smaller precision speedups on the GPU,
1.55× vs 1.87× on CPU); on the CPU, OpenMP barrier costs play the same role at
a smaller magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..precision import Precision
from .counters import TrafficCounter

__all__ = ["MachineModel", "CPU_NODE", "GPU_NODE", "CPU_NODE_FULL", "GPU_NODE_FULL",
           "modeled_time"]

#: kernels that end in a global reduction (latency-sensitive on GPUs)
_REDUCTION_KERNELS = ("dot", "norm")


@dataclass(frozen=True)
class MachineModel:
    """A simple roofline-style machine model.

    Parameters
    ----------
    name:
        Human-readable label used in reports.
    stream_bandwidth:
        Sustainable memory bandwidth in bytes/second for streaming kernels.
    kernel_latency:
        Fixed overhead per kernel invocation (launch / fork-join barrier), in
        seconds.
    reduction_latency:
        Additional fixed overhead for kernels ending in a global reduction
        (dot products, norms), in seconds.
    flop_rate:
        Peak effective flop/s per precision; only matters for the rare
        compute-bound corner (dense Hessenberg updates at large restart
        lengths).  Keys absent from the dict fall back to fp64's rate.
    """

    name: str
    stream_bandwidth: float
    kernel_latency: float = 0.0
    reduction_latency: float = 0.0
    flop_rate: dict[Precision, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def time_for(self, counter: TrafficCounter) -> float:
        """Modeled execution time (seconds) for the traffic in ``counter``."""
        traffic_time = (counter.total_value_bytes + counter.index_bytes) / self.stream_bandwidth

        compute_time = 0.0
        default_rate = self.flop_rate.get(Precision.FP64, 0.0)
        for precision, flops in counter.flops_by_precision.items():
            rate = self.flop_rate.get(precision, default_rate)
            if rate > 0:
                compute_time += flops / rate

        launch_time = 0.0
        reduction_time = 0.0
        for kernel, calls in counter.kernel_calls.items():
            launch_time += calls * self.kernel_latency
            if any(kernel.startswith(prefix) for prefix in _REDUCTION_KERNELS):
                reduction_time += calls * self.reduction_latency

        # Bandwidth-bound kernels overlap compute with traffic; take the max of
        # the two rather than their sum, then add the latency terms.
        return max(traffic_time, compute_time) + launch_time + reduction_time

    def bandwidth_gbs(self) -> float:
        return self.stream_bandwidth / 1e9


#: CPU node model: 2 × Sapphire Rapids, ~300 GB/s sustained STREAM per socket.
#: The default presets are pure bandwidth rooflines (zero latency) because the
#: paper's problems are large enough that per-kernel launch/barrier costs are
#: negligible; the reproduction's surrogates are much smaller, so charging
#: realistic latencies against them would swamp the traffic term they stand in
#: for.  The ``*_FULL`` presets keep the latency terms for ablation studies of
#: exactly that effect (Section 5.2's discussion of moderated GPU speedups).
CPU_NODE = MachineModel(
    name="cpu-node (2x Sapphire Rapids, roofline)",
    stream_bandwidth=600e9,
    flop_rate={
        Precision.FP64: 3.0e12,
        Precision.FP32: 6.0e12,
        Precision.FP16: 12.0e12,
    },
)

#: GPU node model: one A100 (HBM2e ~1.6 TB/s, ~1.4 TB/s sustained).
GPU_NODE = MachineModel(
    name="gpu-node (1x A100, roofline)",
    stream_bandwidth=1400e9,
    flop_rate={
        Precision.FP64: 9.7e12,
        Precision.FP32: 19.5e12,
        Precision.FP16: 78e12,
    },
)

#: Latency-bearing variants: OpenMP fork/join barriers on the CPU node; kernel
#: launch and device-wide reduction latencies on the GPU node.  The GPU's
#: latencies are relatively larger, which is one of the reasons the paper's
#: Fig. 2 speedups from reduced precision are more moderate than Fig. 1's.
CPU_NODE_FULL = MachineModel(
    name="cpu-node (2x Sapphire Rapids, with latency)",
    stream_bandwidth=600e9,
    kernel_latency=4e-6,
    reduction_latency=6e-6,
    flop_rate=CPU_NODE.flop_rate,
)

GPU_NODE_FULL = MachineModel(
    name="gpu-node (1x A100, with latency)",
    stream_bandwidth=1400e9,
    kernel_latency=8e-6,
    reduction_latency=18e-6,
    flop_rate=GPU_NODE.flop_rate,
)


def modeled_time(counter: TrafficCounter, machine: MachineModel = CPU_NODE) -> float:
    """Convenience wrapper: modeled seconds for ``counter`` on ``machine``."""
    return machine.time_for(counter)

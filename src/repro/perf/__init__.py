"""Performance accounting: traffic counters, machine models, timers.

See DESIGN.md §5: convergence results are measured by actually running the
emulated-precision solvers, while execution-time results (Figures 1-2) are
derived from memory-traffic counts through a bandwidth/latency machine model,
matching the paper's own premise that the kernels are memory-bound.
"""

from .counters import (
    TrafficCounter,
    counting,
    counters_disabled,
    counters_enabled,
    current_counter,
    global_counter,
    record_bytes,
    record_flops,
    record_kernel,
    reset_global_counter,
    set_counters_enabled,
)
from .machine import (
    CPU_NODE,
    CPU_NODE_FULL,
    GPU_NODE,
    GPU_NODE_FULL,
    MachineModel,
    modeled_time,
)
from .timer import StageTimer, Timer, timed

__all__ = [
    "TrafficCounter",
    "counting",
    "counters_disabled",
    "counters_enabled",
    "set_counters_enabled",
    "current_counter",
    "global_counter",
    "record_bytes",
    "record_flops",
    "record_kernel",
    "reset_global_counter",
    "MachineModel",
    "CPU_NODE",
    "GPU_NODE",
    "CPU_NODE_FULL",
    "GPU_NODE_FULL",
    "modeled_time",
    "Timer",
    "StageTimer",
    "timed",
]

"""Reusable scratch-array arena for the kernel engine.

The hot paths of the solver stack (FGMRES cycles, Richardson sweeps, SpMV)
used to reallocate every intermediate array on every call: the Krylov basis,
the per-iteration correction vectors, the ``values * x[indices]`` product
array of each SpMV.  A :class:`Workspace` is a small arena that hands out the
same buffer for the same ``(name, shape, dtype)`` request, so a solver level
or a matrix can reuse its scratch storage across thousands of invocations.

Ownership conventions:

* Each FGMRES level owns one workspace (the Krylov basis is per-level state).
* Each sparse matrix / triangular factor owns one workspace for its SpMV /
  substitution scratch, created lazily on the first fast-backend call.
* Buffers returned by :meth:`get` are *transient*: they are valid until the
  next ``get`` with the same key.  Kernels must never return an arena buffer
  to a caller — results are always freshly allocated.
* :meth:`cast` caches a dtype-converted copy of a source array; it assumes the
  source is immutable after construction (true for all matrix values in this
  codebase — ``CSRMatrix`` sorts in the constructor and never mutates after).
* A single :class:`Workspace` is not thread-safe.  Objects that own scratch
  state (matrices, triangular factors, FGMRES levels) therefore hold a
  :class:`ThreadLocalWorkspace`, giving each thread its own arena so sharing
  one matrix or solver across worker threads stays safe (as it was before the
  kernel engine existed).  Note that some solver levels carry *algorithmic*
  shared state regardless (the adaptive Richardson weights are global across
  invocations by design) — the arenas don't change that.
* Partition workers (:mod:`repro.par`) never borrow a caller's arena: each
  pool worker draws slab temporaries from its own thread's arena
  (:func:`repro.par.kernels.slab_workspace`), and caller buffers reach
  workers only as read-only inputs or disjoint output spans while the
  caller blocks in the join.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["ScratchOwner", "ThreadLocalWorkspace", "Workspace",
           "arena_alloc_count"]

#: process-wide count of fresh arena arrays ever created (all workspaces);
#: the allocation-regression tests assert it stays flat across warm
#: steady-state iterations.  Lock-guarded: workspaces are per-thread but the
#: counter is shared, and dispatcher workers warm their arenas concurrently.
_TOTAL_ALLOCS = 0
_ALLOC_LOCK = threading.Lock()


def arena_alloc_count() -> int:
    """Total arena-array creations across every workspace in the process."""
    return _TOTAL_ALLOCS


def _count_alloc() -> None:
    global _TOTAL_ALLOCS
    with _ALLOC_LOCK:
        _TOTAL_ALLOCS += 1


class Workspace:
    """Arena of reusable scratch arrays keyed by ``(name, shape, dtype)``."""

    __slots__ = ("_buffers", "_casts", "_memos", "_rows", "alloc_count")

    def __init__(self) -> None:
        self._buffers: dict = {}
        self._casts: dict = {}
        self._memos: dict = {}
        self._rows: dict = {}
        #: fresh arena arrays created so far — a *stable* count after warm-up
        #: is what the allocation-regression tests assert (see
        #: ``tests/test_plans_alloc.py``)
        self.alloc_count: int = 0

    def get(self, name: str, shape, dtype, zero: bool = False) -> np.ndarray:
        """Return a reusable buffer; contents are arbitrary unless ``zero``."""
        if not isinstance(shape, (tuple, list)):
            shape = (shape,)
        # Key fast path: the hottest call sites request the same
        # (shape, dtype) under one name on every iteration, so the canonical
        # key — tuple of ints plus an np.dtype — is memoized per name instead
        # of being rebuilt each call.  Memo keys are plain name strings; the
        # other users of ``_memos`` (gather plans, scipy handles) key on
        # tuples, so the namespaces cannot collide.
        memo = self._memos.get(name)
        if memo is not None and memo[0] == shape and memo[1] == dtype:
            key = memo[2]
        else:
            key = (name, tuple(int(s) for s in shape), np.dtype(dtype))
            self._memos[name] = (shape, dtype, key)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.zeros(key[1], dtype=key[2]) if zero else np.empty(key[1], dtype=key[2])
            self._buffers[key] = buf
            self.alloc_count += 1
            _count_alloc()
        elif zero:
            buf.fill(0)
        return buf

    def get_rows(self, name: str, nrows: int, tail_shape, dtype) -> np.ndarray:
        """A ``(nrows, *tail_shape)`` view of a buffer keyed by tail shape only.

        Unlike :meth:`get`, the leading dimension is *capacity*, not identity:
        requests with a smaller ``nrows`` reuse (a slice of) the same buffer,
        and a larger request grows it in place of the old one.  Used by the
        batched Krylov arenas, where deflation/restarts shrink the active
        column count — keying on the full shape would retain one arena per
        distinct count.
        """
        key = (name, tuple(int(s) for s in tail_shape), np.dtype(dtype))
        buf = self._rows.get(key)
        if buf is None or buf.shape[0] < nrows:
            buf = np.empty((int(nrows),) + key[1], dtype=key[2])
            self._rows[key] = buf
            self.alloc_count += 1
            _count_alloc()
        return buf[:nrows]

    def cast(self, name: str, array: np.ndarray, dtype) -> np.ndarray:
        """A cached copy of ``array`` converted to ``dtype``.

        The source must not be mutated after the first call; the cache is
        keyed by name and target dtype only.
        """
        dt = np.dtype(dtype)
        if array.dtype == dt:
            return array
        key = (name, dt)
        cached = self._casts.get(key)
        if cached is None or cached.shape != array.shape:
            cached = array.astype(dt)
            self._casts[key] = cached
            self.alloc_count += 1
            _count_alloc()
        return cached

    def memo(self, key, factory):
        """Compute-once cache for derived arrays (gather plans, permutations).

        Keys must be tuples (or anything that is not a plain string): string
        keys are reserved for :meth:`get`'s per-name key memo.
        """
        value = self._memos.get(key)
        if value is None:
            value = factory()
            self._memos[key] = value
            self.alloc_count += 1
            _count_alloc()
        return value

    def nbytes(self) -> int:
        """Total bytes currently held by the arena (buffers + cast caches)."""
        total = sum(b.nbytes for b in self._buffers.values())
        total += sum(b.nbytes for b in self._rows.values())
        total += sum(c.nbytes for c in self._casts.values())
        total += sum(m.nbytes for m in self._memos.values() if hasattr(m, "nbytes"))
        return total

    def clear(self) -> None:
        self._buffers.clear()
        self._rows.clear()
        self._casts.clear()
        self._memos.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Workspace(buffers={len(self._buffers)}, casts={len(self._casts)}, "
                f"nbytes={self.nbytes()})")


class ScratchOwner:
    """Mixin for objects owning lazily created per-thread scratch arenas.

    Subclasses must declare a ``_scratch`` attribute (or slot) initialized to
    ``None``; :meth:`scratch` attaches a :class:`ThreadLocalWorkspace` on
    first use so the pattern (and any future change to it) lives in one place.
    """

    __slots__ = ()

    def scratch(self) -> Workspace:
        """The calling thread's scratch workspace for this object."""
        tls = self._scratch
        if tls is None:
            tls = self._scratch = ThreadLocalWorkspace()
        return tls.workspace


class ThreadLocalWorkspace(threading.local):
    """One :class:`Workspace` per accessing thread (see module docstring)."""

    def __init__(self) -> None:
        self.workspace = Workspace()

    def __reduce__(self):
        # Scratch contents are re-derivable caches; pickling/deepcopying an
        # object that lazily attached one must not fail on the thread-local —
        # reconstruct as a fresh, empty arena.
        return (ThreadLocalWorkspace, ())

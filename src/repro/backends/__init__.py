"""Pluggable compute-backend layer for the hot kernels.

Every hot path of the solver stack (SpMV, triangular solves, FGMRES
orthogonalization, ILU(0) construction) dispatches through the *active*
:class:`~repro.backends.base.KernelBackend`:

* ``"reference"`` — the original emulation-faithful NumPy kernels; the
  correctness oracle.
* ``"fast"`` — fully vectorized kernels with workspace reuse and batched
  counter recording; the default.

Selection, in precedence order:

1. ``with use_backend("reference"): ...`` — scoped override.
2. ``set_backend("fast")`` — override for the calling thread.  Selection is
   thread-local: worker threads start from the env/default selection, so set
   the backend inside each worker (or via ``REPRO_BACKEND``) when
   parallelizing solves.
3. The ``REPRO_BACKEND`` environment variable at import time.
4. The built-in default (``"fast"``).

Backend implementations are imported lazily so this module stays cheap to
import and free of circular imports with :mod:`repro.sparse`.  Third-party
backends (e.g. a CuPy/GPU engine) can be added at runtime with
:func:`register_backend`.
"""

from __future__ import annotations

import importlib
import os
import threading
from contextlib import contextmanager

from .base import KernelBackend
from .workspace import Workspace

__all__ = [
    "KernelBackend",
    "Workspace",
    "DEFAULT_BACKEND",
    "active_backend",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
]

#: name -> instantiated backend (filled lazily)
_INSTANCES: dict[str, KernelBackend] = {}

#: name -> "module:ClassName" spec or callable factory
_FACTORIES: dict[str, object] = {
    "reference": "repro.backends.reference:ReferenceBackend",
    "fast": "repro.backends.fast:FastBackend",
}

# empty/whitespace REPRO_BACKEND means "unset": fall back to the default
DEFAULT_BACKEND = os.environ.get("REPRO_BACKEND", "").strip().lower() or "fast"
if DEFAULT_BACKEND not in _FACTORIES:
    # fail fast at import instead of deep inside the first kernel call;
    # third-party backends registered at runtime cannot be the env default —
    # select those with set_backend()/use_backend() after registering.
    raise ValueError(
        f"REPRO_BACKEND={DEFAULT_BACKEND!r} is not a registered kernel backend; "
        f"choose from {', '.join(sorted(_FACTORIES))}")


class _ActiveState(threading.local):
    def __init__(self) -> None:
        self.name: str | None = None


_ACTIVE = _ActiveState()

#: when set (by :mod:`repro.faults`), every ``get_backend`` result passes
#: through this callable — the only hot-path cost when no fault session is
#: active is the ``is None`` check below.
_WRAPPER = None


def _set_backend_wrapper(wrapper) -> None:
    """Install/remove the backend proxy hook (``None`` removes it).

    Internal: used by :mod:`repro.faults` to interpose deterministic fault
    injection between the solvers and the kernel engines without the kernels
    knowing about it.
    """
    global _WRAPPER
    _WRAPPER = wrapper


def register_backend(name: str, factory) -> None:
    """Register a backend under ``name``.

    ``factory`` is either a zero-argument callable returning a
    :class:`KernelBackend` or a ``"module:ClassName"`` import spec.
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("backend name must be non-empty")
    _FACTORIES[key] = factory
    _INSTANCES.pop(key, None)


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends."""
    return tuple(sorted(_FACTORIES))


def get_backend(name: str | None = None) -> KernelBackend:
    """The backend registered under ``name`` (default: the active backend)."""
    if name is None:
        name = _ACTIVE.name or DEFAULT_BACKEND
    key = name.strip().lower()
    instance = _INSTANCES.get(key)
    if instance is None:
        factory = _FACTORIES.get(key)
        if factory is None:
            raise ValueError(
                f"unknown kernel backend {name!r}; available: {', '.join(available_backends())}")
        if isinstance(factory, str):
            module_name, _, class_name = factory.partition(":")
            factory = getattr(importlib.import_module(module_name), class_name)
        instance = factory()
        _INSTANCES[key] = instance
    if _WRAPPER is not None:
        return _WRAPPER(instance)
    return instance


def active_backend() -> KernelBackend:
    """The backend hot kernels currently dispatch to."""
    return get_backend()


def set_backend(name: str) -> KernelBackend:
    """Select the active backend for this thread; returns the instance."""
    key = name.strip().lower()
    backend = get_backend(key)
    # store the registry key, not backend.name: a third-party class that
    # forgets to override `name` must not silently activate a different engine
    _ACTIVE.name = key
    return backend


@contextmanager
def use_backend(name: str):
    """Scoped backend override (restores the previous selection on exit)."""
    previous = _ACTIVE.name
    backend = set_backend(name)
    try:
        yield backend
    finally:
        _ACTIVE.name = previous

"""Kernel-engine backend interface.

Every hot kernel of the reproduction — CSR/sliced-ELLPACK SpMV, the
level-scheduled triangular solve, FGMRES classical Gram-Schmidt, the Krylov
solution combination, and the ILU(0) factorization — dispatches through a
:class:`KernelBackend`.  Two implementations ship with the package:

* ``reference`` (:mod:`repro.backends.reference`): the original
  emulation-faithful NumPy code, kept verbatim as the correctness oracle.
* ``fast`` (:mod:`repro.backends.fast`): fully vectorized kernels with
  preallocated workspace buffers and batched counter recording.

Both backends must preserve two contracts:

1. **Precision-emulation semantics** — arithmetic runs in the promotion of the
   operand precisions and results are rounded to the requested output
   precision.  Backends may differ in summation *order* (BLAS-2 vs per-column
   loops), so results agree to the tolerance of the compute precision, not
   bitwise.
2. **Counter totals** — the bytes / flops / kernel-call totals recorded for a
   given logical operation are identical across backends; the ``fast`` backend
   merely batches them into fewer ``record_*`` calls.  The batched multi-RHS
   kernels (``spmm_csr``, ``spmm_ell``, ``trsm``) record exactly what ``k``
   single-RHS calls would — per-column counter parity — so traffic-model
   results are independent of whether solves were batched.

To add a third backend (e.g. a CuPy/GPU one), subclass :class:`KernelBackend`,
implement the abstract kernels, and register a factory with
:func:`repro.backends.register_backend`; see the README for a walkthrough.
"""

from __future__ import annotations

import abc

import numpy as np

from ..perf.counters import counters_enabled, record_bytes, record_flops, record_kernel
from ..precision import BYTES_PER_INDEX, Precision, as_precision, precision_of_dtype, promote

__all__ = ["KernelBackend", "ilu0_setup", "row_segment_sums", "segment_ramp",
           "spmv_setup", "split_lower_upper"]


def row_segment_sums(products: np.ndarray, indptr: np.ndarray,
                     out: np.ndarray) -> np.ndarray:
    """``out[i] = sum(products[indptr[i]:indptr[i+1]])``, robust to empty segments.

    ``reduceat`` is evaluated only at the starts of non-empty segments: the
    reduction from one non-empty segment's start to the next automatically
    skips interleaved empty segments because those contribute no elements.
    Shared by both backends so the summation semantics stay identical.

    ``products`` may be 2-D (one column per right-hand side); the reduction
    then runs along axis 0 and ``out`` must have the matching column count.
    """
    out.fill(0)
    if products.size:
        counts = np.diff(indptr)
        nonempty = counts > 0
        starts = indptr[:-1][nonempty]
        if starts.size:
            out[nonempty] = np.add.reduceat(products, starts)
    return out


def ilu0_setup(matrix, alpha: float, breakdown_shift: float):
    """Shared ILU(0) preamble: validation, αILU scaling, fp64 copy, shift.

    The breakdown-shift policy is load-bearing for the cross-backend
    factor-equivalence contract, so it lives here rather than per engine.
    Returns ``(n, indptr, indices, values, shift)`` with ``values`` a mutable
    fp64 copy the elimination works in.
    """
    from ..sparse.ops import scale_diagonal_entries

    if matrix.nrows != matrix.ncols:
        raise ValueError("ILU(0) requires a square matrix")
    work_matrix = scale_diagonal_entries(matrix, alpha) if alpha != 1.0 else matrix

    n = work_matrix.nrows
    values = work_matrix.values.astype(np.float64).copy()
    max_abs = float(np.max(np.abs(values))) if values.size else 1.0
    shift = breakdown_shift * max(max_abs, 1.0)
    return n, work_matrix.indptr, work_matrix.indices, values, shift


def segment_ramp(counts: np.ndarray) -> np.ndarray:
    """``[0..c0-1, 0..c1-1, ...]`` for segment gathers (shared by both engines)."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    starts = ends - counts
    idx = np.arange(total, dtype=np.int64)
    return idx - np.repeat(starts, counts)


def spmv_setup(values_dtype, x_dtype, out_precision):
    """Resolve (matrix, vector, compute, output) precisions for a matvec."""
    mat_prec = precision_of_dtype(values_dtype)
    vec_prec = precision_of_dtype(x_dtype)
    compute = promote(mat_prec, vec_prec)
    out_prec = as_precision(out_precision) if out_precision is not None else vec_prec
    return mat_prec, vec_prec, compute, out_prec


def split_lower_upper(values: np.ndarray, indices: np.ndarray, indptr: np.ndarray,
                      n: int):
    """Split factored ILU(0) values into (strictly-lower L, diag+upper U) CSR parts.

    Returns ``(L, U)`` as :class:`~repro.sparse.csr.CSRMatrix` instances; shared
    by both backends so the factor layout is identical regardless of engine.
    """
    from ..sparse.csr import CSRMatrix

    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    lower_mask = indices < rows
    upper_mask = ~lower_mask

    def _build(mask: np.ndarray) -> CSRMatrix:
        sel_rows = rows[mask]
        sel_cols = indices[mask]
        sel_vals = values[mask]
        new_indptr = np.zeros(n + 1, dtype=np.int32)
        np.add.at(new_indptr, sel_rows + 1, 1)
        np.cumsum(new_indptr, out=new_indptr)
        return CSRMatrix(sel_vals, sel_cols.astype(np.int32), new_indptr, (n, n))

    return _build(lower_mask), _build(upper_mask)


class KernelBackend(abc.ABC):
    """Abstract compute engine for the solver stack's hot kernels."""

    #: Registry name of the backend (set by subclasses).
    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # Sparse matrix-vector products
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def spmv_csr(self, values: np.ndarray, indices: np.ndarray, indptr: np.ndarray,
                 x: np.ndarray, out_precision=None, record: bool = True,
                 scratch=None, par=None) -> np.ndarray:
        """``y = A @ x`` for CSR arrays; ``scratch`` is the matrix's workspace.

        ``par`` is the matrix's :class:`repro.par.ParState` (cached
        partitions + autotuned thread verdicts); backends that execute
        thread-parallel slabs use it, others ignore it.  A parallel
        execution must be bit-identical to the backend's serial one.
        """

    @abc.abstractmethod
    def spmv_ell(self, ell, x: np.ndarray, out_precision=None,
                 record: bool = True) -> np.ndarray:
        """``y = A @ x`` for a :class:`~repro.sparse.ell.SlicedEllMatrix`."""

    # ------------------------------------------------------------------ #
    # Batched (multi-RHS) sparse products
    #
    # The default implementations loop column by column over the single-RHS
    # kernels and are therefore the batched *oracle*: a backend override must
    # produce the same per-column results (up to summation-order tolerance)
    # and record identical counter totals — one logical SpMV/trsv per column.
    # ------------------------------------------------------------------ #
    def spmm_csr(self, values: np.ndarray, indices: np.ndarray, indptr: np.ndarray,
                 x: np.ndarray, out_precision=None, record: bool = True,
                 scratch=None, par=None) -> np.ndarray:
        """``Y = A @ X`` for CSR arrays and ``X`` of shape ``(n, k)``."""
        cols = [self.spmv_csr(values, indices, indptr,
                              np.ascontiguousarray(x[:, j]),
                              out_precision=out_precision, record=record,
                              scratch=scratch, par=par)
                for j in range(x.shape[1])]
        return np.stack(cols, axis=1)

    def spmm_ell(self, ell, x: np.ndarray, out_precision=None,
                 record: bool = True) -> np.ndarray:
        """``Y = A @ X`` for a sliced-ELLPACK matrix and ``X`` of shape ``(n, k)``."""
        cols = [self.spmv_ell(ell, np.ascontiguousarray(x[:, j]),
                              out_precision=out_precision, record=record)
                for j in range(x.shape[1])]
        return np.stack(cols, axis=1)

    # ------------------------------------------------------------------ #
    # Matrix-free stencil applies
    #
    # The default single-RHS kernel is the loop-faithful oracle: it gathers
    # each offset's products into the exact per-row, column-ordered slots of
    # the assembled CSR product stream and reduces them with the same
    # ``row_segment_sums`` helper the CSR kernels use — so a stencil apply
    # on the oracle is bit-identical to the reference SpMV on the assembled
    # matrix.  The batched default loops columns over the single-RHS kernel
    # (the batched oracle); overrides must keep per-column counter parity.
    # ------------------------------------------------------------------ #
    def apply_stencil(self, op, x: np.ndarray, out_precision=None,
                      record: bool = True) -> np.ndarray:
        """``y = A @ x`` for a :class:`~repro.operators.StencilOperator`."""
        mat_prec, vec_prec, compute, out_prec = spmv_setup(op.values.dtype, x.dtype,
                                                           out_precision)
        cdtype = compute.dtype
        x_c = x if x.dtype == cdtype else x.astype(cdtype)
        vals_c = op.values.astype(cdtype, copy=False)
        indptr, entries = op.csr_gather_plan()
        products = np.empty(op.nnz, dtype=cdtype)
        for pos, positions, src in entries:
            products[positions] = vals_c[pos] * x_c[src]
        y = np.zeros(op.nrows, dtype=cdtype)
        row_segment_sums(products, indptr, y)
        y = y.astype(out_prec.dtype, copy=False)
        if record:
            self._record_stencil(mat_prec, vec_prec, out_prec, compute,
                                 op.nrows, op.nnz, op.npoints)
        return y

    def apply_stencil_batch(self, op, x: np.ndarray, out_precision=None,
                            record: bool = True) -> np.ndarray:
        """``Y = A @ X`` for a stencil operator and ``X`` of shape ``(n, k)``."""
        cols = [self.apply_stencil(op, np.ascontiguousarray(x[:, j]),
                                   out_precision=out_precision, record=record)
                for j in range(x.shape[1])]
        return np.stack(cols, axis=1)

    # ------------------------------------------------------------------ #
    # Assembled-format preference (AssembledOperator auto-selection hook)
    # ------------------------------------------------------------------ #
    def preferred_assembled_format(self, precision) -> str | None:
        """Storage format this backend wants for an assembled operator.

        Return ``"csr"`` / ``"ell"`` to pin a format, or ``None`` to let
        :class:`~repro.operators.AssembledOperator` decide from the cost
        model's traffic comparison.
        """
        return None

    # ------------------------------------------------------------------ #
    # Triangular substitution
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def trsv(self, factor, b: np.ndarray, out_precision=None,
             record: bool = True) -> np.ndarray:
        """Solve ``T x = b`` for a prepared :class:`TriangularFactor`."""

    def trsm(self, factor, b: np.ndarray, out_precision=None,
             record: bool = True) -> np.ndarray:
        """Solve ``T X = B`` for ``B`` of shape ``(n, k)`` (column-loop oracle)."""
        cols = [self.trsv(factor, np.ascontiguousarray(b[:, j]),
                          out_precision=out_precision, record=record)
                for j in range(b.shape[1])]
        return np.stack(cols, axis=1)

    # ------------------------------------------------------------------ #
    # Fused solve-plan kernels
    #
    # The hot loops of the compiled solve plans (:mod:`repro.plans`) call
    # these instead of kernel pairs.  Every default below *composes the
    # existing unfused kernels in exactly the order the solver loops used to
    # run them* — so the defaults are bit-identical to the unfused sequences
    # and record identical counter totals (the fused-vs-unfused parity
    # oracle).  A backend override may reorder/fuse the arithmetic (results
    # then agree to the compute-precision tolerance, like every other
    # vectorized kernel) but must keep the counter totals.
    # ------------------------------------------------------------------ #
    def spmv_axpy(self, values: np.ndarray, indices: np.ndarray, indptr: np.ndarray,
                  x: np.ndarray, y: np.ndarray, out_precision=None,
                  record: bool = True, scratch=None, par=None) -> np.ndarray:
        """Fused residual update ``r = y − A·x`` for CSR arrays.

        Semantics of the unfused pair: the product is rounded to
        ``out_precision`` first, then combined with ``y`` under the axpy
        promotion rules (``vo.axpy(-1.0, A@x, y)``).
        """
        ax = self.spmv_csr(values, indices, indptr, x, out_precision=out_precision,
                           record=record, scratch=scratch, par=par)
        return self.residual_update(y, ax, out_precision=out_precision,
                                    record=record, scratch=scratch)

    def spmm_axpy(self, values: np.ndarray, indices: np.ndarray, indptr: np.ndarray,
                  x: np.ndarray, y: np.ndarray, out_precision=None,
                  record: bool = True, scratch=None, par=None) -> np.ndarray:
        """Batched fused residual ``R = Y − A·X`` (column-loop oracle)."""
        cols = [self.spmv_axpy(values, indices, indptr,
                               np.ascontiguousarray(x[:, j]),
                               np.ascontiguousarray(y[:, j]),
                               out_precision=out_precision, record=record,
                               scratch=scratch, par=par)
                for j in range(x.shape[1])]
        return np.stack(cols, axis=1)

    def residual_update(self, v: np.ndarray, az: np.ndarray, out_precision=None,
                        record: bool = True, scratch=None) -> np.ndarray:
        """``r = v − az`` with the axpy promotion/rounding/recording rules.

        The residual-combine half of the fused sweep, usable with any
        operator storage (the plan composes ``apply`` + this for storages
        without a fully fused kernel).
        """
        from ..sparse import vectorops as vo

        return vo.axpy(-1.0, az, v, out_precision=out_precision, record=record)

    def residual_update_batch(self, v: np.ndarray, az: np.ndarray,
                              out_precision=None, record: bool = True,
                              scratch=None) -> np.ndarray:
        """``R = V − AZ`` column-wise (counter parity with ``k`` updates)."""
        from ..sparse import vectorops as vo

        return vo.axpy_block(-1.0, az, v, out_precision=out_precision, record=record)

    def weighted_update(self, z: np.ndarray, mr: np.ndarray, omega: float,
                        vec_prec: Precision, scratch=None,
                        record: bool = True) -> np.ndarray:
        """Richardson weighted update ``z + ω·mr`` in the level dtype.

        ``z`` is *consumed*: an override may update it in place and return
        it, so callers must use only the returned array.
        """
        from ..sparse import vectorops as vo

        return vo.axpy(omega, mr, z, out_precision=vec_prec, record=record)

    def orthonormalize(self, basis: np.ndarray, j: int, w: np.ndarray,
                       vec_prec: Precision, scratch=None, record: bool = True):
        """Fused CGS orthogonalize-normalize step.

        Orthogonalizes ``w`` against ``basis[:j+1]`` and — unless the step
        broke down — writes the normalized vector into ``basis[j+1]`` with
        the exact arithmetic of the unfused ``scal`` (reciprocal rounded to
        the level dtype, multiply in that dtype).  Returns
        ``(h_col, h_norm, normalized)``; ``w`` is consumed either way.
        Callers use it on iterations that always continue (inner levels /
        no early-stop), where the normalization is unconditional.
        """
        h_col, w, h_norm = self.orthogonalize(basis, j, w, vec_prec,
                                              scratch=scratch, record=record)
        normalized = h_norm != 0.0 and np.isfinite(h_norm)
        if normalized:
            from ..sparse import vectorops as vo

            basis[j + 1] = vo.scal(1.0 / h_norm, w, record=record)
        return h_col, h_norm, normalized

    # ------------------------------------------------------------------ #
    # FGMRES building blocks
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def orthogonalize(self, basis: np.ndarray, j: int, w: np.ndarray,
                      vec_prec: Precision, scratch=None, record: bool = True):
        """Classical Gram-Schmidt of ``w`` against ``basis[:j+1]`` (rows).

        Returns ``(h_col, w_orth, h_norm)`` where ``h_col`` has length
        ``j + 2`` with ``h_col[j+1] == h_norm`` in the level dtype.

        ``w`` is *consumed*: a backend may overwrite it in place (the fast
        engine does when given a scratch arena), so callers must pass a vector
        they no longer need — e.g. a fresh matvec result — and use only the
        returned ``w_orth``.
        """

    @abc.abstractmethod
    def combine(self, z_vectors: np.ndarray, y: np.ndarray, k: int,
                vec_prec: Precision, record: bool = True) -> np.ndarray:
        """``z = sum_i y[i] * z_vectors[i]`` over the first ``k`` rows."""

    # ------------------------------------------------------------------ #
    # Factorizations
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def ilu0_factor(self, matrix, alpha: float = 1.0,
                    breakdown_shift: float = 1e-12):
        """ILU(0) on the pattern of ``matrix``; returns ``(L, U)`` CSR factors."""

    # ------------------------------------------------------------------ #
    # Shared batched-recording helpers (identical totals on every backend)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _record_spmv(mat_prec, vec_prec, out_prec, compute, n: int, nnz: int,
                     index_bytes: int) -> None:
        record_kernel("spmv")
        record_bytes(mat_prec, nnz * mat_prec.bytes, index_bytes=index_bytes)
        record_bytes(vec_prec, n * vec_prec.bytes)
        record_bytes(out_prec, n * out_prec.bytes)
        record_flops(compute, 2 * nnz)

    @staticmethod
    def _record_trsv(factor, vec_prec, out_prec, compute) -> None:
        nnz = factor.off_vals.size + (0 if factor.unit_diagonal else factor.nrows)
        record_kernel("trsv")
        record_bytes(factor.precision, nnz * factor.precision.bytes,
                     index_bytes=factor.off_cols.size * BYTES_PER_INDEX)
        record_bytes(vec_prec, factor.nrows * vec_prec.bytes)
        record_bytes(out_prec, factor.nrows * out_prec.bytes)
        record_flops(compute, 2 * factor.off_vals.size + 2 * factor.nrows)

    @staticmethod
    def _record_stencil(mat_prec, vec_prec, out_prec, compute, n: int, nnz: int,
                        npoints: int, k: int = 1) -> None:
        """Traffic of ``k`` fused stencil applies (shared by every backend).

        A matrix-free apply reads the input vector and the ``npoints``-entry
        coefficient table and writes the output — no value or index streams,
        which is exactly the ``cA`` collapse the cost model predicts.  Flops
        match the assembled SpMV (one multiply-add per structural nonzero).
        """
        if not counters_enabled():
            return
        record_kernel("stencil", k)
        record_bytes(mat_prec, k * npoints * mat_prec.bytes)
        record_bytes(vec_prec, k * n * vec_prec.bytes)
        record_bytes(out_prec, k * n * out_prec.bytes)
        record_flops(compute, k * 2 * nnz)

    @staticmethod
    def _record_spmm(mat_prec, vec_prec, out_prec, compute, n: int, nnz: int,
                     index_bytes: int, k: int) -> None:
        """Batched equivalent of ``k`` SpMVs: per-column counter parity with
        the column-loop oracle (the traffic model counts logical per-column
        traffic; amortization shows up in wall-clock, not in the counters)."""
        record_kernel("spmv", k)
        record_bytes(mat_prec, k * nnz * mat_prec.bytes, index_bytes=k * index_bytes)
        record_bytes(vec_prec, k * n * vec_prec.bytes)
        record_bytes(out_prec, k * n * out_prec.bytes)
        record_flops(compute, k * 2 * nnz)

    @staticmethod
    def _record_trsm(factor, vec_prec, out_prec, compute, k: int) -> None:
        """Batched equivalent of ``k`` triangular solves (per-column parity)."""
        nnz = factor.off_vals.size + (0 if factor.unit_diagonal else factor.nrows)
        record_kernel("trsv", k)
        record_bytes(factor.precision, k * nnz * factor.precision.bytes,
                     index_bytes=k * factor.off_cols.size * BYTES_PER_INDEX)
        record_bytes(vec_prec, k * factor.nrows * vec_prec.bytes)
        record_bytes(out_prec, k * factor.nrows * out_prec.bytes)
        record_flops(compute, k * (2 * factor.off_vals.size + 2 * factor.nrows))

    @staticmethod
    def _record_axpy(px: Precision, py: Precision, out_prec: Precision,
                     compute: Precision, n: int, k: int = 1) -> None:
        """Traffic of ``k`` axpy-shaped updates (parity with ``vo.axpy``)."""
        if not counters_enabled():
            return
        record_kernel("axpy", k)
        record_bytes(px, k * n * px.bytes)
        record_bytes(py, k * n * py.bytes)
        record_bytes(out_prec, k * n * out_prec.bytes)
        record_flops(compute, 2 * k * n)

    @staticmethod
    def _record_scal(p: Precision, n: int) -> None:
        """Traffic of one scal (parity with ``vo.scal``)."""
        if not counters_enabled():
            return
        record_kernel("scal")
        record_bytes(p, 2 * n * p.bytes)
        record_flops(p, n)

    @staticmethod
    def _record_gram_schmidt(p: Precision, n: int, ncols: int) -> None:
        """Batched equivalent of ``ncols`` dots + ``ncols`` axpys + one norm."""
        if not counters_enabled():
            return
        record_kernel("dot", ncols)
        record_bytes(p, 2 * ncols * n * p.bytes)
        record_flops(p, 2 * ncols * n)
        record_kernel("axpy", ncols)
        record_bytes(p, 3 * ncols * n * p.bytes)
        record_flops(p, 2 * ncols * n)
        record_kernel("norm")
        record_bytes(p, n * p.bytes)
        record_flops(p, 2 * n)

    @staticmethod
    def _record_combine(p: Precision, n: int, k: int) -> None:
        """Batched equivalent of ``k`` axpys accumulating the solution."""
        if not counters_enabled():
            return
        record_kernel("axpy", k)
        record_bytes(p, 3 * k * n * p.bytes)
        record_flops(p, 2 * k * n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"

"""Fast backend: vectorized kernels with workspace reuse and batched counters.

Same precision-emulation semantics as the ``reference`` backend — arithmetic in
the promoted precision, results rounded to the requested output precision —
but with the remaining Python-level loops replaced by single vectorized
passes:

* **CSR SpMV** reuses a per-matrix gather/product buffer and a cached cast of
  the value array per compute dtype (one ``values.astype`` for the lifetime of
  the matrix instead of one per call).
* **Sliced-ELLPACK SpMV** precomputes, once per matrix, a permutation that
  lays the chunked column-major storage out row-major; every matvec is then a
  single gather-multiply-``reduceat`` over all chunks at once instead of a
  Python loop per chunk.
* **Triangular solve** precomputes the per-level gather indices/segment
  offsets once per factor (the reference rebuilds them per solve) and streams
  each level with three vectorized ops.
* **FGMRES classical Gram-Schmidt** becomes BLAS-2: ``h = V[:j+1] @ w`` and a
  rank-1-style update ``w -= h @ V[:j+1]`` on the 2-D Krylov-basis workspace,
  replacing ``2(j+1)`` Python-level BLAS-1 calls per iteration.
* **Krylov combination** ``z = y @ Z[:k]`` replaces the per-vector axpy loop.
* **ILU(0)** keeps the (inherently sequential) elimination order but works on
  compact row segments with ``searchsorted`` intersections instead of
  scattering into size-``n`` pattern/work arrays for every row.
* **Batched multi-RHS kernels** (``spmm_csr``, ``spmm_ell``, ``trsm``) stream
  the matrix / the level schedule once over all ``k`` right-hand sides —
  scipy's compiled CSR SpMM for fp32/fp64, gather-multiply-``reduceat`` on
  ``(segment, k)`` blocks otherwise — instead of looping the single-RHS
  kernels column by column as the base-class oracle does.

Counter totals (bytes, flops, kernel calls) are identical to the reference;
they are recorded in one batched call per logical group, and skipped entirely
when :func:`repro.perf.counters.counters_enabled` is off.

**Thread-parallel execution** (:mod:`repro.par`): the CSR/ELL products, the
fused residuals, the stencil sweeps and the within-level triangular solves
each carry a partitioned variant that fans nnz-balanced row slabs across
the worker pool — same sub-path family (scipy compiled / staged fp16 /
generic gather) and exactly the serial per-row arithmetic, so results are
bit-identical for every thread count.  Workspace discipline under
partitioning (the PR-5 thread-safety audit):

* a partition worker never touches the caller's arena — its temporaries
  come from a dedicated per-worker slab arena
  (:func:`repro.par.kernels.slab_workspace`);
* caller-arena buffers cross into workers only as *read-only* inputs
  (value casts, staged ``x32`` expansions) or as *disjoint output spans*
  (the separable sweep's ping-pong buffers), and the caller is blocked in
  ``run_tasks`` for the duration, so no concurrent mutation exists;
* per-object caches that workers read (``ell._rm_vals``, ``_fast_vals``,
  gather plans) are immutable-once-built derived data — a benign
  cross-thread build race at worst derives them twice;
* counters are recorded once, in the calling thread (they are
  thread-local), with the exact serial totals — counter parity under
  partitioning is structural.

``tests/test_parallel_threadsafety.py`` hammers one plan/solver/factor from
four threads (each fanning across the pool) and requires every concurrent
result to be bit-identical to serial.
"""

from __future__ import annotations

import numpy as np

from ..par import kernels as par_kernels
from ..par.partition import (
    MIN_LEVEL_ROWS,
    csr_partition,
    kernel_threads,
    level_partition,
    par_state,
    span_partition,
)
from ..par.pool import forced_threads
from ..perf.counters import counters_enabled
from ..precision import BYTES_PER_INDEX, Precision, as_precision, precision_of_dtype, promote
from . import halfvec
from .base import (
    KernelBackend,
    ilu0_setup,
    row_segment_sums,
    segment_ramp,
    split_lower_upper,
    spmv_setup,
)

try:  # pragma: no cover - scipy ships with the test environment
    import scipy.sparse as _scipy_sparse
except ImportError:  # pragma: no cover
    _scipy_sparse = None

try:  # pragma: no cover - private but stable; guarded with a compose fallback
    from scipy.sparse import _sparsetools as _scipy_sparsetools
except ImportError:  # pragma: no cover
    _scipy_sparsetools = None

__all__ = ["FastBackend"]

_HALF = halfvec.HALF
_STAGE = halfvec.STAGE

#: compute dtypes scipy's compiled CSR matvec handles natively without
#: changing the emulated accumulation precision (fp16 would be upcast)
_SCIPY_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def _build_ell_plan(ell) -> dict:
    """Row-major gather plan for a sliced-ELLPACK matrix.

    Maps every (row, slot) pair — including the zero padding — to its position
    in the chunked column-major storage, ordered row by row so a plain
    ``reduceat`` over ``rm_indptr`` produces the per-row sums.
    """
    n = ell.nrows
    cs = ell.chunk_size
    rows = np.arange(n, dtype=np.int64)
    chunk_of_row = rows // cs
    row_width = ell.chunk_widths.astype(np.int64)[chunk_of_row]
    rm_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(row_width, out=rm_indptr[1:])
    total = int(rm_indptr[-1])

    rows_rm = np.repeat(rows, row_width)
    slot_rm = np.arange(total, dtype=np.int64) - np.repeat(rm_indptr[:-1], row_width)
    chunk_rm = rows_rm // cs
    order = (ell.chunk_offsets[chunk_rm] + slot_rm * cs + (rows_rm - chunk_rm * cs))
    # column indices are layout-only, like the plan itself: share the
    # row-major copy across dtype casts and threads
    return {"order": order, "rm_indptr": rm_indptr, "cols_rm": ell.indices[order]}


def _build_trsv_plan(factor) -> list[tuple]:
    """Per-level gather indices and segment offsets, computed once per factor.

    Each entry is ``(rows, gather_idx, gather_cols, red_offsets, nonempty)``:
    ``red_offsets`` are the reduceat start positions of the *non-empty*
    segments only, and ``nonempty`` is ``None`` when every row of the level
    has dependencies (the common case), letting the solve skip the
    zero-fill/masked-assign path entirely.
    """
    rowptr = factor.off_rowptr
    cols = factor.off_cols
    plan = []
    for rows in factor.levels:
        starts = rowptr[rows]
        counts = rowptr[rows + 1] - starts
        total = int(counts.sum())
        if total:
            offsets = np.cumsum(counts) - counts
            gather_idx = np.repeat(starts, counts) + segment_ramp(counts)
            gather_cols = cols[gather_idx]
            nonempty = counts > 0
            if nonempty.all():
                plan.append((rows, gather_idx, gather_cols, offsets, None))
            else:
                plan.append((rows, gather_idx, gather_cols, offsets[nonempty],
                             nonempty))
        else:
            plan.append((rows, None, None, None, None))
    return plan


class FastBackend(KernelBackend):
    """Vectorized kernels with preallocated workspaces (the default engine)."""

    name = "fast"

    # ------------------------------------------------------------------ #
    def _csr_slabs(self, par, indptr, nt):
        """The matrix's nnz-balanced row slabs for ``nt`` threads (cached)."""
        return par.partition(("csr", nt), lambda: csr_partition(indptr, nt))

    def _spmv_csr_slabbed(self, values, indices, indptr, x_c, cdtype, n,
                          scratch, par, nt):
        """Thread-parallel CSR SpMV: same sub-path family as the serial
        kernel (scipy compiled / staged fp16 / generic gather), restricted
        per slab, so every output row is computed exactly as serially."""
        slabs = self._csr_slabs(par, indptr, nt)
        y = np.zeros(n, dtype=cdtype)
        if _scipy_sparse is not None and np.dtype(cdtype) in _SCIPY_DTYPES:
            vals_c = scratch.cast("csr_values", values, cdtype)
            par_kernels.csr_matvec_slabs(x_c.size, vals_c, indices, y, x_c, slabs)
        elif np.dtype(cdtype) == _HALF and halfvec.staged_half_enabled():
            vals32 = scratch.cast("csr_values_stage", values, _STAGE)
            x32 = halfvec.upcast(x_c, scratch.get("spmv_x32", x_c.size, _STAGE),
                                 scratch=scratch)
            par_kernels.spmv_csr_slabs(vals32, indices, x32, y, slabs,
                                       staged=True,
                                       round_into=halfvec.round_into)
        else:
            vals_c = scratch.cast("csr_values", values, cdtype)
            par_kernels.spmv_csr_slabs(vals_c, indices, x_c, y, slabs)
        return y

    def spmv_csr(self, values, indices, indptr, x, out_precision=None,
                 record=True, scratch=None, par=None):
        mat_prec, vec_prec, compute, out_prec = spmv_setup(values.dtype, x.dtype,
                                                           out_precision)
        cdtype = compute.dtype
        n = indptr.size - 1
        nnz = values.size
        x_c = x if x.dtype == cdtype else x.astype(cdtype)

        nt = (kernel_threads("spmv", nnz, par, rows=n)
              if par is not None and scratch is not None else 1)
        if (nt > 1 and np.dtype(cdtype) in _SCIPY_DTYPES
                and _scipy_sparsetools is None):
            nt = 1          # can't partition the compiled path; stay serial
        if nt > 1:
            y = self._spmv_csr_slabbed(values, indices, indptr, x_c, cdtype, n,
                                       scratch, par, nt)
            y = y.astype(out_prec.dtype, copy=False)
            if record and counters_enabled():
                self._record_spmv(mat_prec, vec_prec, out_prec, compute, n, nnz,
                                  nnz * BYTES_PER_INDEX + (n + 1) * BYTES_PER_INDEX)
            return y

        if (scratch is not None and _scipy_sparse is not None
                and np.dtype(cdtype) in _SCIPY_DTYPES):
            # scipy's compiled csr matvec: one fused pass, no product array.
            # Accumulation runs in the compute dtype exactly like the reference
            # (fused multiply-adds may differ in the last ulp).
            vals_c = scratch.cast("csr_values", values, cdtype)
            sp_mat = scratch.memo(
                ("scipy_csr", np.dtype(cdtype)),
                lambda: _scipy_sparse.csr_matrix((vals_c, indices, indptr),
                                                 shape=(n, x.size)))
            y = sp_mat @ x_c
        else:
            if (scratch is not None and np.dtype(cdtype) == _HALF
                    and halfvec.staged_half_enabled()):
                # fp16 products staged through fp32: gather+multiply run as
                # SIMD fp32 passes and each product is rounded to fp16 by the
                # same conversion the fp16 ufunc applies per element — the
                # product stream is bit-identical, and the row reduction
                # keeps the per-add fp16 rounding (reduceat on fp16).
                vals32 = scratch.cast("csr_values_stage", values, _STAGE)
                x32 = halfvec.upcast(x_c, scratch.get("spmv_x32", x_c.size, _STAGE),
                                      scratch=scratch)
                prods32 = scratch.get("spmv_prod32", nnz, _STAGE)
                np.take(x32, indices, out=prods32)
                np.multiply(prods32, vals32, out=prods32)
                prods = halfvec.round_into(prods32,
                                           scratch.get("spmv_prod", nnz, cdtype),
                                           scratch=scratch)
            elif scratch is not None:
                vals_c = scratch.cast("csr_values", values, cdtype)
                prods = scratch.get("spmv_prod", nnz, cdtype)
                np.take(x_c, indices, out=prods)
                np.multiply(prods, vals_c, out=prods)
            else:
                vals_c = values if values.dtype == cdtype else values.astype(cdtype)
                prods = vals_c * x_c[indices]
            y = np.zeros(n, dtype=cdtype)
            row_segment_sums(prods, indptr, y)
        y = y.astype(out_prec.dtype, copy=False)

        if record and counters_enabled():
            self._record_spmv(mat_prec, vec_prec, out_prec, compute, n, nnz,
                              nnz * BYTES_PER_INDEX + (n + 1) * BYTES_PER_INDEX)
        return y

    # ------------------------------------------------------------------ #
    def _spmm_csr_slabbed(self, values, indices, indptr, x_c, cdtype, n, k,
                          scratch, par, nt):
        """Thread-parallel CSR SpMM (slab analogue of the serial paths)."""
        slabs = self._csr_slabs(par, indptr, nt)
        y = np.zeros((n, k), dtype=cdtype)
        if _scipy_sparse is not None and np.dtype(cdtype) in _SCIPY_DTYPES:
            vals_c = scratch.cast("csr_values", values, cdtype)
            par_kernels.csr_matvecs_slabs(x_c.shape[0], k, vals_c, indices, y,
                                          np.ascontiguousarray(x_c), slabs)
        elif np.dtype(cdtype) == _HALF and halfvec.staged_half_enabled():
            vals32 = scratch.cast("csr_values_stage", values, _STAGE)
            x32 = halfvec.upcast(x_c, scratch.get("spmm_x32", x_c.shape, _STAGE))
            par_kernels.spmm_csr_slabs(vals32, indices, x32, y, slabs,
                                       staged=True,
                                       round_into=halfvec.round_into)
        else:
            vals_c = scratch.cast("csr_values", values, cdtype)
            par_kernels.spmm_csr_slabs(vals_c, indices, x_c, y, slabs)
        return y

    def spmm_csr(self, values, indices, indptr, x, out_precision=None,
                 record=True, scratch=None, par=None):
        mat_prec, vec_prec, compute, out_prec = spmv_setup(values.dtype, x.dtype,
                                                           out_precision)
        cdtype = compute.dtype
        n = indptr.size - 1
        nnz = values.size
        k = x.shape[1]
        x_c = x if x.dtype == cdtype else x.astype(cdtype)

        nt = (kernel_threads("spmm", nnz, par, rows=n)
              if par is not None and scratch is not None else 1)
        if (nt > 1 and np.dtype(cdtype) in _SCIPY_DTYPES
                and _scipy_sparsetools is None):
            nt = 1
        if nt > 1:
            y = self._spmm_csr_slabbed(values, indices, indptr, x_c, cdtype, n,
                                       k, scratch, par, nt)
            y = y.astype(out_prec.dtype, copy=False)
            if record and counters_enabled():
                self._record_spmm(mat_prec, vec_prec, out_prec, compute, n, nnz,
                                  nnz * BYTES_PER_INDEX + (n + 1) * BYTES_PER_INDEX, k)
            return y

        if (scratch is not None and _scipy_sparse is not None
                and np.dtype(cdtype) in _SCIPY_DTYPES):
            # BLAS-3 shape: scipy's compiled CSR SpMM streams the matrix once
            # over all k columns.
            vals_c = scratch.cast("csr_values", values, cdtype)
            sp_mat = scratch.memo(
                ("scipy_csr", np.dtype(cdtype)),
                lambda: _scipy_sparse.csr_matrix((vals_c, indices, indptr),
                                                 shape=(n, x.shape[0])))
            y = sp_mat @ np.ascontiguousarray(x_c)
        elif (scratch is not None and np.dtype(cdtype) == _HALF
                and halfvec.staged_half_enabled()):
            # staged fp16 product block (see spmv_csr): bit-identical fp16
            # products from one fp32 gather-multiply, fp16 row reduction —
            # arena-backed like the single-RHS path, with the subnormal-safe
            # rounding
            vals32 = scratch.cast("csr_values_stage", values, _STAGE)
            x32 = halfvec.upcast(x_c, scratch.get("spmm_x32", x_c.shape, _STAGE))
            prods32 = scratch.get("spmm_prod32", (nnz, k), _STAGE)
            np.take(x32, indices, axis=0, out=prods32)
            np.multiply(prods32, vals32[:, None], out=prods32)
            prods = halfvec.round_into(prods32,
                                       scratch.get("spmm_prod", (nnz, k), cdtype),
                                       scratch=scratch)
            y = np.zeros((n, k), dtype=cdtype)
            row_segment_sums(prods, indptr, y)
        else:
            vals_c = (scratch.cast("csr_values", values, cdtype)
                      if scratch is not None
                      else values if values.dtype == cdtype
                      else values.astype(cdtype))
            prods = x_c[indices, :] * vals_c[:, None]
            y = np.zeros((n, k), dtype=cdtype)
            row_segment_sums(prods, indptr, y)
        y = y.astype(out_prec.dtype, copy=False)

        if record and counters_enabled():
            self._record_spmm(mat_prec, vec_prec, out_prec, compute, n, nnz,
                              nnz * BYTES_PER_INDEX + (n + 1) * BYTES_PER_INDEX, k)
        return y

    # ------------------------------------------------------------------ #
    def spmv_ell(self, ell, x, out_precision=None, record=True):
        mat_prec, vec_prec, compute, out_prec = spmv_setup(ell.values.dtype, x.dtype,
                                                           out_precision)
        cdtype = compute.dtype
        plan = ell._rm_plan
        if plan is None:
            plan = _build_ell_plan(ell)
            ell._rm_plan = plan
        scratch = ell.scratch()

        order = plan["order"]
        rm_indptr = plan["rm_indptr"]
        cols_rm = plan["cols_rm"]
        # Row-major value copy (padding included), cached on the instance per
        # compute dtype; idempotent to rebuild, so a benign cross-thread race
        # at worst derives it twice.
        vals_rm = ell._rm_vals.get(cdtype)
        if vals_rm is None:
            vals_rm = ell.values[order].astype(cdtype, copy=False)
            ell._rm_vals[cdtype] = vals_rm

        x_c = x if x.dtype == cdtype else x.astype(cdtype)
        staged = np.dtype(cdtype) == _HALF and halfvec.staged_half_enabled()
        if staged:
            vals32 = ell._rm_vals.get(_STAGE)
            if vals32 is None:
                vals32 = vals_rm.astype(_STAGE)
                ell._rm_vals[_STAGE] = vals32

        st = par_state(ell)
        nt = kernel_threads("spmv", order.size, st, rows=ell.nrows)
        if nt > 1:
            # slabbed over the row-major entry stream: same gather-multiply
            # (-round)-reduceat recipe per output row as the serial pass
            slabs = st.partition(("ell", nt),
                                 lambda: csr_partition(rm_indptr, nt))
            y = np.zeros(ell.nrows, dtype=cdtype)
            if staged:
                x32 = halfvec.upcast(x_c,
                                     scratch.get("spmv_x32", x_c.size, _STAGE),
                                     scratch=scratch)
                par_kernels.spmv_ell_slabs(vals32, cols_rm, x32, y, slabs,
                                           staged=True,
                                           round_into=halfvec.round_into)
            else:
                par_kernels.spmv_ell_slabs(vals_rm, cols_rm, x_c, y, slabs)
        else:
            if staged:
                # staged fp16 products (see spmv_csr): fp32 gather-multiply
                # with a bit-identical fp16 rounding, fp16 row reduction
                x32 = halfvec.upcast(x_c,
                                     scratch.get("spmv_x32", x_c.size, _STAGE),
                                     scratch=scratch)
                prods32 = scratch.get("spmv_prod32", order.size, _STAGE)
                np.take(x32, cols_rm, out=prods32)
                np.multiply(prods32, vals32, out=prods32)
                prods = halfvec.round_into(
                    prods32, scratch.get("spmv_prod", order.size, cdtype),
                    scratch=scratch)
            else:
                prods = scratch.get("spmv_prod", order.size, cdtype)
                np.take(x_c, cols_rm, out=prods)
                np.multiply(prods, vals_rm, out=prods)
            y = np.zeros(ell.nrows, dtype=cdtype)
            row_segment_sums(prods, rm_indptr, y)
        y = y.astype(out_prec.dtype, copy=False)

        if record and counters_enabled():
            stored = ell.nnz
            self._record_spmv(mat_prec, vec_prec, out_prec, compute, ell.nrows,
                              stored, stored * BYTES_PER_INDEX)
        return y

    # ------------------------------------------------------------------ #
    def spmm_ell(self, ell, x, out_precision=None, record=True):
        mat_prec, vec_prec, compute, out_prec = spmv_setup(ell.values.dtype, x.dtype,
                                                           out_precision)
        cdtype = compute.dtype
        k = x.shape[1]
        plan = ell._rm_plan
        if plan is None:
            plan = _build_ell_plan(ell)
            ell._rm_plan = plan
        vals_rm = ell._rm_vals.get(cdtype)
        if vals_rm is None:
            vals_rm = ell.values[plan["order"]].astype(cdtype, copy=False)
            ell._rm_vals[cdtype] = vals_rm

        x_c = x if x.dtype == cdtype else x.astype(cdtype)
        st = par_state(ell)
        nt = kernel_threads("spmm", ell.values.size, st, rows=ell.nrows)
        if nt > 1:
            slabs = st.partition(("ell", nt),
                                 lambda: csr_partition(plan["rm_indptr"], nt))
            y = np.zeros((ell.nrows, k), dtype=cdtype)
            par_kernels.spmm_ell_slabs(vals_rm, plan["cols_rm"], x_c, y, slabs)
        else:
            prods = x_c[plan["cols_rm"], :] * vals_rm[:, None]
            y = np.zeros((ell.nrows, k), dtype=cdtype)
            row_segment_sums(prods, plan["rm_indptr"], y)
        y = y.astype(out_prec.dtype, copy=False)

        if record and counters_enabled():
            stored = ell.nnz
            self._record_spmm(mat_prec, vec_prec, out_prec, compute, ell.nrows,
                              stored, stored * BYTES_PER_INDEX, k)
        return y

    # ------------------------------------------------------------------ #
    # Matrix-free stencil applies.
    #
    # Two execution strategies, both fused (no value/index streams):
    #
    # * **Per-offset slab accumulation** (the general path): one in-place
    #   ``y[dst] += v * x[src]`` grid-slab update per stencil point, with
    #   subtract/add fast paths for ±1 coefficients and a workspace product
    #   buffer otherwise.  Slabs are visited in ascending linear-offset
    #   order (the oracle's column order), so results differ from the
    #   oracle only by its pairwise row reduction — within compute-precision
    #   tolerance, like the other reordering kernels.
    # * **Separable box sweep** (HPCG/HPGMP-class stencils, detected by
    #   ``op.box_separable()``): one 1-D convolution per axis executed as
    #   contiguous flat shifted adds with exact boundary-plane rewrites,
    #   then the diagonal correction.  Collapses the 27 slab passes of a
    #   27-point stencil into ~11 contiguous streams — this is the path
    #   that beats the assembled CSR SpMM at ≥ 64³ grid points.
    # ------------------------------------------------------------------ #
    def _conv_axis_taps(self, op, cur, nxt, axis, taps, kk, cdtype,
                        lo=0, hi=None):
        """The shifted-add tap passes of ``nxt = conv1d(cur)`` along ``axis``,
        restricted to the flat output range ``[lo, hi)``.

        Interior entries come from flat shifted adds (contiguous,
        bandwidth-bound).  Each output element receives its full tap
        sequence inside its owning range — in serial tap order — so any
        span decomposition of ``[0, n)`` produces bit-identical interiors;
        :meth:`_conv_axis_edges` then rewrites the wrap-contaminated edge
        planes exactly (serially, they are ``O(reach)`` planes).
        """
        n_flat = cur.size
        if hi is None:
            hi = n_flat
        stride = int(op.strides[axis]) * kk
        first = True
        for j, w in taps:
            off = j * stride
            glo = max(0, -off)
            ghi = n_flat - max(0, off)
            dlo = min(max(glo, lo), hi)
            dhi = max(min(ghi, hi), dlo)
            dst = nxt[dlo:dhi]
            src = cur[dlo + off:dhi + off]
            wc = cdtype.type(w)
            if first:
                np.multiply(src, wc, out=dst)
                if lo < dlo:
                    nxt[lo:dlo] = 0
                if dhi < hi:
                    nxt[dhi:hi] = 0
                first = False
            elif w == -1.0:
                np.subtract(dst, src, out=dst)
            elif w == 1.0:
                np.add(dst, src, out=dst)
            else:
                dst += wc * src

    def _conv_axis_edges(self, op, cur, nxt, axis, taps, kk, cdtype):
        """Rewrite the contaminated edge planes of the flat conv exactly."""
        dim = op.dims[axis]
        shape = op.dims + ((kk,) if kk > 1 else ())
        curg = cur.reshape(shape)
        nxtg = nxt.reshape(shape)
        # negative taps wrap into the low planes, positive taps into the high
        # ones; rewriting the union of both (an exact recomputation) is safe
        # even where the flat pass happened not to wrap
        reach = max(max(-j for j, _ in taps), max(j for j, _ in taps), 0)
        edge = sorted(set(range(min(reach, dim)))
                      | set(range(max(0, dim - reach), dim)))
        base = [slice(None)] * len(op.dims) + ([slice(None)] if kk > 1 else [])
        for c in edge:
            acc = None
            for j, w in taps:
                cc = c + j
                if cc < 0 or cc >= dim:
                    continue
                sidx = list(base)
                sidx[axis] = cc
                term = cdtype.type(w) * curg[tuple(sidx)]
                acc = term if acc is None else acc + term
            didx = list(base)
            didx[axis] = c
            nxtg[tuple(didx)] = 0 if acc is None else acc

    def _conv_axis_taps_staged(self, op, cur32, nxt32, axis, taps, kk, ws,
                               lo=0, hi=None):
        """Staged-fp16 variant of :meth:`_conv_axis_taps`.

        ``cur32``/``nxt32`` are fp32 arrays holding exactly
        fp16-representable values; every elementary operation runs as one
        SIMD fp32 pass and is immediately snapped back onto the fp16 grid
        with :func:`~repro.backends.halfvec.quantize32` — reproducing the
        direct ``np.float16`` ufunc chain bit for bit without ever touching
        the scalar half-conversion routines.  Sign flips and ``±1`` copies
        are exact and skip the redundant rounding.  The rounding chain is
        per-element, so the ``[lo, hi)`` restriction preserves bit-identity
        exactly as in the direct variant; ``ws`` is the executing thread's
        scratch arena (a partition worker passes its own).
        """
        n_flat = cur32.size
        if hi is None:
            hi = n_flat
        stride = int(op.strides[axis]) * kk
        first = True
        for j, w in taps:
            off = j * stride
            glo = max(0, -off)
            ghi = n_flat - max(0, off)
            dlo = min(max(glo, lo), hi)
            dhi = max(min(ghi, hi), dlo)
            dst = nxt32[dlo:dhi]
            src = cur32[dlo + off:dhi + off]
            w16 = np.float16(w)
            w32 = np.float32(w16)
            rounded = True
            if first:
                if w16 == 1.0:
                    np.copyto(dst, src)          # exact: no rounding needed
                elif w16 == -1.0:
                    np.negative(src, out=dst)    # sign flip is exact
                else:
                    np.multiply(src, w32, out=dst)
                    rounded = False
                if lo < dlo:
                    nxt32[lo:dlo] = 0
                if dhi < hi:
                    nxt32[dhi:hi] = 0
                first = False
            elif w16 == -1.0:
                np.subtract(dst, src, out=dst)
                rounded = False
            elif w16 == 1.0:
                np.add(dst, src, out=dst)
                rounded = False
            else:
                t = ws.get_rows("stencil_tap32_seg", dst.size, (), _STAGE)
                np.multiply(src, w32, out=t)
                halfvec.quantize32(t, scratch=ws)         # round the product
                np.add(dst, t, out=dst)
                rounded = False
            if not rounded:
                halfvec.quantize32(dst, scratch=ws)       # round to fp16 grid

    def _conv_axis_edges_staged(self, op, cur32, nxt32, axis, taps, kk, ws):
        """Exact edge-plane rewrite of the staged conv (same structure as the
        direct path, with the per-operation fp16 roundings made explicit)."""
        dim = op.dims[axis]
        shape = op.dims + ((kk,) if kk > 1 else ())
        curg = cur32.reshape(shape)
        nxtg = nxt32.reshape(shape)
        reach = max(max(-j for j, _ in taps), max(j for j, _ in taps), 0)
        edge = sorted(set(range(min(reach, dim)))
                      | set(range(max(0, dim - reach), dim)))
        base = [slice(None)] * len(op.dims) + ([slice(None)] if kk > 1 else [])
        for c in edge:
            acc = None
            for j, w in taps:
                cc = c + j
                if cc < 0 or cc >= dim:
                    continue
                sidx = list(base)
                sidx[axis] = cc
                w16 = np.float16(w)
                term = np.float32(w16) * curg[tuple(sidx)]
                if abs(w16) != 1.0:
                    term = halfvec.quantize32(np.ascontiguousarray(term))
                if acc is None:
                    acc = term
                else:
                    acc = halfvec.quantize32(acc + term)
            didx = list(base)
            didx[axis] = c
            nxtg[tuple(didx)] = 0 if acc is None else acc

    def _stencil_spans(self, op, kk, nt):
        """Flat-range spans for the separable sweep (grid-point aligned),
        cached on the operator's partition state."""
        st = par_state(op)
        spans = st.partition(("sep", kk, nt),
                             lambda: span_partition(op.nrows * kk, nt, align=kk))
        return spans if len(spans) > 1 else None

    def _apply_stencil_separable_staged(self, op, x_c, kk):
        """fp16 separable sweep on fp32-staged buffers (bit-identical)."""
        ws = op.scratch()
        sep = op.box_separable()
        alpha, taps = sep
        n_flat = op.nrows * kk
        nt = kernel_threads("stencil" if kk == 1 else "stencil_batch", n_flat,
                            par_state(op), rows=op.dims[0])
        spans = self._stencil_spans(op, kk, nt) if nt > 1 else None
        x32 = halfvec.upcast(x_c.reshape(-1),
                             ws.get("stencil_x32", n_flat, _STAGE), scratch=ws)
        buffers = (ws.get("stencil_sep_a32", n_flat, _STAGE),
                   ws.get("stencil_sep_b32", n_flat, _STAGE))
        cur = x32
        for axis, axis_taps in enumerate(taps):
            nxt = buffers[axis % 2]
            if spans is not None:
                # workers sweep disjoint flat ranges of nxt with their own
                # arenas; the per-element rounding chain is unchanged
                par_kernels.run_spans(
                    spans,
                    lambda lo, hi, c=cur, nx=nxt, a=axis, t=axis_taps:
                        self._conv_axis_taps_staged(
                            op, c, nx, a, t, kk, par_kernels.slab_workspace(),
                            lo=lo, hi=hi))
            else:
                self._conv_axis_taps_staged(op, cur, nxt, axis, axis_taps, kk, ws)
            self._conv_axis_edges_staged(op, cur, nxt, axis, axis_taps, kk, ws)
            cur = nxt
        # fresh fp16 output: y = alpha * x + chain, each op rounded; the
        # operands are already on the fp16 grid so the final store is exact
        y = np.empty(n_flat, dtype=_HALF)
        if alpha != 0.0:
            a32 = np.float32(np.float16(alpha))
            t32 = ws.get("stencil_tap32", n_flat, _STAGE)
            np.multiply(x32, a32, out=t32)
            halfvec.quantize32(t32, scratch=ws)           # round alpha·x
            np.add(t32, cur, out=t32)
            halfvec.round_into(t32, y, scratch=ws)        # round the sum
        else:
            np.copyto(y, cur, casting="unsafe")           # exact conversion
        return y

    def _apply_stencil_separable(self, op, x_c, cdtype, kk):
        """Separable sweep; returns the flat result or ``None`` if inapplicable."""
        sep = op.box_separable()
        if sep is None:
            return None
        if np.dtype(cdtype) == _HALF and halfvec.staged_half_enabled():
            return self._apply_stencil_separable_staged(op, x_c, kk)
        alpha, taps = sep
        ws = op.scratch()
        n_flat = op.nrows * kk
        nt = kernel_threads("stencil" if kk == 1 else "stencil_batch", n_flat,
                            par_state(op), rows=op.dims[0])
        spans = self._stencil_spans(op, kk, nt) if nt > 1 else None
        buffers = (ws.get("stencil_sep_a", n_flat, cdtype),
                   ws.get("stencil_sep_b", n_flat, cdtype))
        cur = x_c.reshape(-1)
        for axis, axis_taps in enumerate(taps):
            nxt = buffers[axis % 2]
            if spans is not None:
                par_kernels.run_spans(
                    spans,
                    lambda lo, hi, c=cur, nx=nxt, a=axis, t=axis_taps:
                        self._conv_axis_taps(op, c, nx, a, t, kk, cdtype,
                                             lo=lo, hi=hi))
            else:
                self._conv_axis_taps(op, cur, nxt, axis, axis_taps, kk, cdtype)
            self._conv_axis_edges(op, cur, nxt, axis, axis_taps, kk, cdtype)
            cur = nxt
        # fresh output (never an arena buffer): y = alpha * x + chain
        y = np.empty(n_flat, dtype=cdtype)
        if alpha != 0.0:
            np.multiply(x_c.reshape(-1), cdtype.type(alpha), out=y)
            np.add(y, cur, out=y)
        else:
            np.copyto(y, cur)
        return y

    def _stencil_slab_span(self, op, xg, yg, vals_c, cdtype, kk, tail, a0, b0):
        """One worker's outermost-axis plane range ``[a0, b0)`` of the
        per-offset slab accumulation: the serial offset loop with every
        destination slab clipped to the owned planes (and its source slab
        shifted identically), so each grid point accumulates its offsets in
        exactly the serial order."""
        ws = par_kernels.slab_workspace()
        for pos, dst, src in op.slice_plan():
            d0 = dst[0]
            lo0 = max(d0.start, a0)
            hi0 = min(d0.stop, b0)
            if lo0 >= hi0:
                continue
            shift = src[0].start - d0.start
            v = vals_c[pos]
            acc = yg[(slice(lo0, hi0),) + dst[1:] + tail]
            term = xg[(slice(lo0 + shift, hi0 + shift),) + src[1:] + tail]
            if v == -1.0:
                np.subtract(acc, term, out=acc)
            elif v == 1.0:
                np.add(acc, term, out=acc)
            else:
                tmp = ws.get_rows("par_stencil_prod", term.size, (),
                                  cdtype).reshape(term.shape)
                np.multiply(term, v, out=tmp)
                np.add(acc, tmp, out=acc)

    def _apply_stencil_slabs(self, op, x_c, cdtype, kk):
        """Per-offset slab accumulation (the general fused path)."""
        vals_c = op.values.astype(cdtype, copy=False)
        ws = op.scratch()
        y = np.zeros(op.nrows * kk, dtype=cdtype)
        tail = (slice(None),) if kk > 1 else ()
        shape = op.dims + ((kk,) if kk > 1 else ())
        xg = x_c.reshape(shape)
        yg = y.reshape(shape)
        st = par_state(op)
        nt = kernel_threads("stencil" if kk == 1 else "stencil_batch",
                            op.nrows * kk, st, rows=op.dims[0])
        if nt > 1:
            spans = st.partition(("slab0", nt),
                                 lambda: span_partition(op.dims[0], nt))
            if len(spans) > 1:
                par_kernels.run_spans(
                    spans,
                    lambda a0, b0: self._stencil_slab_span(
                        op, xg, yg, vals_c, cdtype, kk, tail, a0, b0))
                return y
        for pos, dst, src in op.slice_plan():
            v = vals_c[pos]
            acc = yg[dst + tail]
            term = xg[src + tail]
            if v == -1.0:
                np.subtract(acc, term, out=acc)
            elif v == 1.0:
                np.add(acc, term, out=acc)
            else:
                tmp = ws.get("stencil_prod", term.shape, cdtype)
                np.multiply(term, v, out=tmp)
                np.add(acc, tmp, out=acc)
        return y

    def apply_stencil(self, op, x, out_precision=None, record=True):
        mat_prec, vec_prec, compute, out_prec = spmv_setup(op.values.dtype, x.dtype,
                                                           out_precision)
        cdtype = compute.dtype
        x_c = np.ascontiguousarray(x, dtype=cdtype)
        y = self._apply_stencil_separable(op, x_c, cdtype, 1)
        if y is None:
            y = self._apply_stencil_slabs(op, x_c, cdtype, 1)
        y = y.astype(out_prec.dtype, copy=False)
        if record and counters_enabled():
            self._record_stencil(mat_prec, vec_prec, out_prec, compute,
                                 op.nrows, op.nnz, op.npoints)
        return y

    def apply_stencil_batch(self, op, x, out_precision=None, record=True):
        """Batched stencil apply: the ``k`` columns ride along as the
        fastest-varying axis of every slab/stream — the matrix-free analogue
        of SpMM — with per-column counter parity and bit-identity between a
        batched apply and ``k`` single applies."""
        mat_prec, vec_prec, compute, out_prec = spmv_setup(op.values.dtype, x.dtype,
                                                           out_precision)
        cdtype = compute.dtype
        k = x.shape[1]
        x_c = np.ascontiguousarray(x, dtype=cdtype)
        y = self._apply_stencil_separable(op, x_c, cdtype, k)
        if y is None:
            y = self._apply_stencil_slabs(op, x_c, cdtype, k)
        y = y.reshape(op.nrows, k).astype(out_prec.dtype, copy=False)
        if record and counters_enabled():
            self._record_stencil(mat_prec, vec_prec, out_prec, compute,
                                 op.nrows, op.nnz, op.npoints, k)
        return y

    # ------------------------------------------------------------------ #
    def preferred_assembled_format(self, precision):
        """Pin CSR when scipy's compiled matvec/SpMM handles the dtype —
        the fused CSR pass beats the ELL gather path regardless of padding."""
        return "csr" if np.dtype(precision.dtype) in _SCIPY_DTYPES else None

    # ------------------------------------------------------------------ #
    def _trsv_plan_and_vals(self, factor, cdtype):
        """Per-level gather plan + dtype-cast per-level values (cached).

        Off-diagonal values and the inverse diagonal are pre-gathered per
        level, cached per compute dtype on the factor (immutable derived
        data; a cross-thread race at worst rebuilds identical arrays).
        """
        plan = factor._fast_plan
        if plan is None:
            plan = _build_trsv_plan(factor)
            factor._fast_plan = plan
        cached = factor._fast_vals.get(cdtype)
        if cached is None:
            off_vals = (factor.off_vals if factor.off_vals.dtype == cdtype
                        else factor.off_vals.astype(cdtype))
            inv_diag = factor.inv_diag.astype(cdtype, copy=False)
            level_vals = [None if entry[1] is None else off_vals[entry[1]]
                          for entry in plan]
            level_inv = [inv_diag[entry[0]] for entry in plan]
            cached = (level_vals, level_inv)
            factor._fast_vals[cdtype] = cached
        return plan, cached[0], cached[1]

    def _trsv_par_levels(self, factor, plan, kernel):
        """Per-level chunk decompositions for a within-level parallel solve.

        ``None`` disables parallelism for this call; otherwise a list
        aligned with ``plan`` whose entries are either ``None`` (level runs
        the serial code — too narrow for a barrier) or the level's chunk
        list.  Wide levels are exactly the fused block-diagonal factors'
        regime: level ``i`` of every block merges into one schedule row,
        the thread-per-block analogue the paper executes.
        """
        st = par_state(factor)
        nt = kernel_threads(kernel, factor.off_vals.size, st,
                            rows=factor.nrows)
        if nt <= 1:
            return None
        min_rows = 1 if forced_threads() is not None else MIN_LEVEL_ROWS
        levels = st.partition(
            ("trsv", nt, min_rows),
            lambda: [None if entry[1] is None
                     else level_partition(factor.off_rowptr, entry[0], nt,
                                          min_rows)
                     for entry in plan])
        if all(chunks is None for chunks in levels):
            return None
        return levels

    def trsv(self, factor, b, out_precision=None, record=True):
        vec_prec = precision_of_dtype(b.dtype)
        compute = promote(factor.precision, vec_prec)
        out_prec = as_precision(out_precision) if out_precision is not None else vec_prec
        cdtype = compute.dtype

        plan, level_vals, level_inv = self._trsv_plan_and_vals(factor, cdtype)
        par_levels = self._trsv_par_levels(factor, plan, "trsv")

        x = np.zeros(factor.nrows, dtype=cdtype)
        b_c = b if b.dtype == cdtype else b.astype(cdtype)

        for i, ((rows, gather_idx, gather_cols, red_offsets, nonempty), lv,
                inv) in enumerate(zip(plan, level_vals, level_inv)):
            if par_levels is not None and par_levels[i] is not None:
                par_kernels.trsv_level_chunks(x, b_c, rows, gather_cols, lv,
                                              inv, par_levels[i])
                continue
            if gather_idx is None:
                x[rows] = b_c[rows] * inv
                continue
            prods = lv * x[gather_cols]
            if nonempty is None:
                sums = np.add.reduceat(prods, red_offsets)
            else:
                sums = np.zeros(rows.size, dtype=cdtype)
                sums[nonempty] = np.add.reduceat(prods, red_offsets)
            x[rows] = (b_c[rows] - sums) * inv

        result = x.astype(out_prec.dtype, copy=False)
        if record and counters_enabled():
            self._record_trsv(factor, vec_prec, out_prec, compute)
        return result

    # ------------------------------------------------------------------ #
    def trsm(self, factor, b, out_precision=None, record=True):
        vec_prec = precision_of_dtype(b.dtype)
        compute = promote(factor.precision, vec_prec)
        out_prec = as_precision(out_precision) if out_precision is not None else vec_prec
        cdtype = compute.dtype
        k = b.shape[1]

        plan, level_vals, level_inv = self._trsv_plan_and_vals(factor, cdtype)
        par_levels = self._trsv_par_levels(factor, plan, "trsm")

        # One level sweep serves all k columns: the per-level index arithmetic
        # and Python overhead are amortized k-fold, and the gather/multiply/
        # reduceat run on (segment, k) blocks instead of k separate vectors.
        x = np.zeros((factor.nrows, k), dtype=cdtype)
        b_c = b if b.dtype == cdtype else b.astype(cdtype)

        for i, ((rows, gather_idx, gather_cols, red_offsets, nonempty), lv,
                inv) in enumerate(zip(plan, level_vals, level_inv)):
            if par_levels is not None and par_levels[i] is not None:
                par_kernels.trsm_level_chunks(x, b_c, rows, gather_cols, lv,
                                              inv, par_levels[i])
                continue
            if gather_idx is None:
                x[rows] = b_c[rows] * inv[:, None]
                continue
            prods = x[gather_cols, :] * lv[:, None]
            if nonempty is None:
                sums = np.add.reduceat(prods, red_offsets)
            else:
                sums = np.zeros((rows.size, k), dtype=cdtype)
                sums[nonempty] = np.add.reduceat(prods, red_offsets)
            x[rows] = (b_c[rows] - sums) * inv[:, None]

        result = x.astype(out_prec.dtype, copy=False)
        if record and counters_enabled():
            self._record_trsm(factor, vec_prec, out_prec, compute, k)
        return result

    # ------------------------------------------------------------------ #
    def orthogonalize(self, basis, j, w, vec_prec: Precision, scratch=None,
                      record=True):
        dtype = vec_prec.dtype
        n = w.size
        v_rows = basis[:j + 1]
        h = v_rows @ w                       # (j+1,) dots, in the level dtype
        if scratch is not None:
            # w is consumed: the projection is subtracted in place
            tmp = scratch.get("gs_update", n, dtype)
            np.matmul(h, v_rows, out=tmp)
            np.subtract(w, tmp, out=w)
        else:
            w = w - h @ v_rows
        # norm computed as the reference does: dot in the operand precision,
        # square root in fp64
        h_norm = float(np.sqrt(np.float64(np.dot(w, w))))
        h_col = np.zeros(j + 2, dtype=dtype)
        h_col[:j + 1] = h.astype(dtype, copy=False)
        h_col[j + 1] = dtype.type(h_norm)
        if record:
            self._record_gram_schmidt(vec_prec, n, j + 1)
        return h_col, w, h_norm

    def combine(self, z_vectors, y, k, vec_prec: Precision, record=True):
        dtype = vec_prec.dtype
        n = z_vectors.shape[1]
        yk = y[:k].astype(dtype, copy=False)
        z = (yk @ z_vectors[:k]).astype(dtype, copy=False)
        if record:
            self._record_combine(vec_prec, n, k)
        return z

    # ------------------------------------------------------------------ #
    # Fused solve-plan kernels (vectorized overrides; identical counters)
    # ------------------------------------------------------------------ #
    def orthonormalize(self, basis, j, w, vec_prec: Precision, scratch=None,
                       record=True):
        h_col, w, h_norm = self.orthogonalize(basis, j, w, vec_prec,
                                              scratch=scratch, record=record)
        normalized = h_norm != 0.0 and np.isfinite(h_norm)
        if normalized:
            # the unfused scal's arithmetic (reciprocal rounded to the level
            # dtype, multiply in that dtype), written straight into the basis
            # arena — no fresh vector, no row copy
            dtype = vec_prec.dtype
            np.multiply(w, dtype.type(1.0 / h_norm), out=basis[j + 1])
            if record:
                self._record_scal(vec_prec, w.size)
        return h_col, h_norm, normalized

    def _residual_update_spans(self, v, az, cdtype, out_prec, staged, nt):
        """Thread-parallel elementwise residual: disjoint row spans, each
        computed with the serial recipe (direct subtract or the staged-fp16
        upcast-subtract-round chain on the worker's own arena)."""
        spans = span_partition(v.shape[0], nt)
        tail = v.shape[1:]
        if staged:
            r = np.empty(v.shape, dtype=_HALF)

            def task(lo, hi):
                ws = par_kernels.slab_workspace()
                v32 = halfvec.upcast(
                    v[lo:hi], ws.get_rows("par_resid_v32", hi - lo, tail, _STAGE))
                az32 = halfvec.upcast(
                    az[lo:hi], ws.get_rows("par_resid_az32", hi - lo, tail, _STAGE))
                halfvec.binop_round(np.subtract, v32, az32, out16=r[lo:hi],
                                    scratch=ws)
        else:
            v_c = v if v.dtype == cdtype else v.astype(cdtype)
            az_c = az if az.dtype == cdtype else az.astype(cdtype)
            r = np.empty(v.shape, dtype=cdtype)

            def task(lo, hi):
                np.subtract(v_c[lo:hi], az_c[lo:hi], out=r[lo:hi])

        par_kernels.run_spans(spans, task)
        return r.astype(out_prec.dtype, copy=False)

    def residual_update(self, v, az, out_precision=None, record=True,
                        scratch=None):
        pv = precision_of_dtype(v.dtype)
        paz = precision_of_dtype(az.dtype)
        compute = promote(pv, paz)
        out_prec = as_precision(out_precision) if out_precision is not None else pv
        cdtype = compute.dtype
        staged = (np.dtype(cdtype) == _HALF and halfvec.staged_half_enabled()
                  and out_prec.dtype == _HALF)
        nt = kernel_threads("axpy", v.size, None, rows=v.shape[0])
        if nt > 1:
            r = self._residual_update_spans(v, az, cdtype, out_prec, staged, nt)
        elif staged:
            # v − az == (−1)·az + v bitwise (negation is exact, addition is
            # commutative), staged through fp32
            if scratch is not None:
                v32 = halfvec.upcast(v, scratch.get("resid_v32", v.shape, _STAGE),
                                     scratch=scratch)
                az32 = halfvec.upcast(az, scratch.get("resid_az32", az.shape, _STAGE),
                                      scratch=scratch)
            else:
                v32, az32 = halfvec.upcast(v), halfvec.upcast(az)
            r = halfvec.binop_round(np.subtract, v32, az32, scratch=scratch)
        else:
            v_c = v if v.dtype == cdtype else v.astype(cdtype)
            az_c = az if az.dtype == cdtype else az.astype(cdtype)
            r = np.subtract(v_c, az_c).astype(out_prec.dtype, copy=False)
        if record:
            self._record_axpy(paz, pv, out_prec, compute, v.shape[0],
                              v.shape[1] if v.ndim == 2 else 1)
        return r

    def residual_update_batch(self, v, az, out_precision=None, record=True,
                              scratch=None):
        return self.residual_update(v, az, out_precision=out_precision,
                                    record=record, scratch=scratch)

    def weighted_update(self, z, mr, omega, vec_prec: Precision, scratch=None,
                        record=True):
        dtype = vec_prec.dtype
        pz = precision_of_dtype(z.dtype)
        pm = precision_of_dtype(mr.dtype)
        compute = promote(pz, pm)
        if (np.dtype(compute.dtype) == _HALF and halfvec.staged_half_enabled()
                and np.dtype(dtype) == _HALF):
            result = halfvec.staged_axpy(omega, mr, z, scratch=scratch)
        else:
            # in-place consume of z when dtypes line up (the documented
            # contract); same operation order as vo.axpy
            cdtype = compute.dtype
            alpha_c = cdtype.type(omega)
            if z.dtype == cdtype == np.dtype(dtype) and mr.dtype == cdtype:
                if scratch is not None:
                    t = scratch.get("wupd_t", mr.size, cdtype)
                    np.multiply(mr, alpha_c, out=t)
                else:
                    t = alpha_c * mr
                np.add(t, z, out=z)
                result = z
            else:
                mr_c = mr if mr.dtype == cdtype else mr.astype(cdtype)
                z_c = z if z.dtype == cdtype else z.astype(cdtype)
                result = (alpha_c * mr_c + z_c).astype(dtype, copy=False)
        if record:
            self._record_axpy(pm, pz, vec_prec, compute, mr.size)
        return result

    def spmv_axpy(self, values, indices, indptr, x, y, out_precision=None,
                  record=True, scratch=None, par=None):
        mat_prec, vec_prec, compute, out_prec = spmv_setup(values.dtype, x.dtype,
                                                           out_precision)
        cdtype = compute.dtype
        n = indptr.size - 1
        nnz = values.size
        fusable = (scratch is not None and _scipy_sparse is not None
                   and _scipy_sparsetools is not None
                   and np.dtype(cdtype) in _SCIPY_DTYPES
                   and out_prec.dtype == np.dtype(cdtype)
                   and y.dtype == np.dtype(cdtype)
                   and indptr.dtype == indices.dtype)
        if not fusable:
            # compose (the oracle order); both halves use their own fast
            # paths — including their partitioned variants
            ax = self.spmv_csr(values, indices, indptr, x,
                               out_precision=out_precision, record=record,
                               scratch=scratch, par=par)
            return self.residual_update(y, ax, out_precision=out_precision,
                                        record=record, scratch=scratch)
        # one pass: r starts as a copy of y and scipy's compiled matvec
        # accumulates (−A)·x into it — no intermediate product vector.
        # Negated values are exact, so each row contributes −Σ aᵢⱼxⱼ with the
        # usual reordering-tolerance agreement.
        vals_c = scratch.cast("csr_values", values, cdtype)
        neg_vals = scratch.memo(("csr_values_neg", np.dtype(cdtype)),
                                lambda: -vals_c)
        x_c = x if x.dtype == cdtype else x.astype(cdtype)
        r = y.astype(cdtype, order="C", copy=True)
        nt = kernel_threads("spmv", nnz, par, rows=n) if par is not None else 1
        if nt > 1:
            # same compiled accumulation per row slab (r rows are disjoint)
            par_kernels.csr_matvec_slabs(x.size, neg_vals, indices, r, x_c,
                                         self._csr_slabs(par, indptr, nt))
        else:
            _scipy_sparsetools.csr_matvec(n, x.size, indptr, indices, neg_vals,
                                          x_c, r)
        if record and counters_enabled():
            self._record_spmv(mat_prec, vec_prec, out_prec, compute, n, nnz,
                              nnz * BYTES_PER_INDEX + (n + 1) * BYTES_PER_INDEX)
            self._record_axpy(out_prec, precision_of_dtype(y.dtype), out_prec,
                              promote(out_prec, precision_of_dtype(y.dtype)), n)
        return r

    def spmm_axpy(self, values, indices, indptr, x, y, out_precision=None,
                  record=True, scratch=None, par=None):
        mat_prec, vec_prec, compute, out_prec = spmv_setup(values.dtype, x.dtype,
                                                           out_precision)
        cdtype = compute.dtype
        n = indptr.size - 1
        nnz = values.size
        k = x.shape[1]
        fusable = (scratch is not None and _scipy_sparse is not None
                   and _scipy_sparsetools is not None
                   and np.dtype(cdtype) in _SCIPY_DTYPES
                   and out_prec.dtype == np.dtype(cdtype)
                   and y.dtype == np.dtype(cdtype)
                   and indptr.dtype == indices.dtype)
        if not fusable:
            az = self.spmm_csr(values, indices, indptr, x,
                               out_precision=out_precision, record=record,
                               scratch=scratch, par=par)
            return self.residual_update_batch(y, az, out_precision=out_precision,
                                              record=record, scratch=scratch)
        vals_c = scratch.cast("csr_values", values, cdtype)
        neg_vals = scratch.memo(("csr_values_neg", np.dtype(cdtype)),
                                lambda: -vals_c)
        x_c = np.ascontiguousarray(x, dtype=cdtype)
        r = y.astype(cdtype, order="C", copy=True)
        nt = kernel_threads("spmm", nnz, par, rows=n) if par is not None else 1
        if nt > 1:
            par_kernels.csr_matvecs_slabs(x.shape[0], k, neg_vals, indices, r,
                                          x_c, self._csr_slabs(par, indptr, nt))
        else:
            _scipy_sparsetools.csr_matvecs(n, x.shape[0], k, indptr, indices,
                                           neg_vals, x_c.ravel(), r.ravel())
        if record and counters_enabled():
            self._record_spmm(mat_prec, vec_prec, out_prec, compute, n, nnz,
                              nnz * BYTES_PER_INDEX + (n + 1) * BYTES_PER_INDEX, k)
            py = precision_of_dtype(y.dtype)
            self._record_axpy(out_prec, py, out_prec, promote(out_prec, py), n, k)
        return r

    # ------------------------------------------------------------------ #
    def ilu0_factor(self, matrix, alpha: float = 1.0, breakdown_shift: float = 1e-12):
        n, indptr, indices, values, shift = ilu0_setup(matrix, alpha, breakdown_shift)
        if n == 0 or values.size == 0:
            return split_lower_upper(values, indices, indptr, n)
        from ..sparse.triangular import compute_levels

        levels = compute_levels(indices, indptr, lower=True)
        # Chain-structured patterns (levels ≈ rows) gain nothing from batching
        # rows — each vectorized pass would touch one row.  The row loop is
        # the faster shape there; both paths produce identical factors.
        if n < 256 or 4 * len(levels) > n:
            self._ilu0_eliminate_rows(n, indptr, indices, values, shift)
        else:
            self._ilu0_eliminate_levels(n, indptr, indices, values, shift, levels)
        return split_lower_upper(values, indices, indptr, n)

    def _ilu0_eliminate_levels(self, n, indptr, indices, values, shift, levels):
        """Level-scheduled IKJ elimination: one vectorized pass per
        (dependency level, elimination step) instead of a Python loop per row.

        Rows of one level are mutually independent (their lower-pattern
        dependencies all live in earlier levels), so their eliminations batch:
        step ``j`` divides every active row's ``j``-th lower entry by its
        (final) pivot and scatters the pivot row's strictly-upper segment into
        the row's own pattern — exactly the per-element arithmetic of the row
        loop, in the same ascending-``k`` order, writing disjoint positions.
        The factors are therefore bit-identical to the serial elimination.
        """
        indptr64 = indptr.astype(np.int64)
        cols64 = indices.astype(np.int64)
        row_counts = np.diff(indptr64)
        rows = np.repeat(np.arange(n, dtype=np.int64), row_counts)
        lower_mask = cols64 < rows
        nlower = np.bincount(rows[lower_mask], minlength=n)
        has_diag = np.zeros(n, dtype=bool)
        has_diag[rows[cols64 == rows]] = True
        # structural, so precomputable: first strictly-upper position of each
        # row (past its lower entries and stored diagonal, when present)
        upper_start = indptr64[:-1] + nlower + has_diag
        diag_value = np.zeros(n, dtype=np.float64)
        zero_pivot = shift if shift != 0.0 else 1.0

        for level_rows in levels:
            level_rows = level_rows.astype(np.int64)
            nl = nlower[level_rows]
            max_nl = int(nl.max()) if nl.size else 0
            if max_nl:
                # level-wide sorted key array (row ordinal ⊕ column) so one
                # searchsorted locates update targets across all rows at once
                lcounts = row_counts[level_rows]
                flat_pos = (np.repeat(indptr64[level_rows], lcounts)
                            + segment_ramp(lcounts))
                ords = np.arange(level_rows.size, dtype=np.int64)
                level_keys = np.repeat(ords * n, lcounts) + cols64[flat_pos]
                last = level_keys.size - 1
                for j in range(max_nl):
                    act = nl > j
                    pos_lik = indptr64[level_rows[act]] + j
                    k = cols64[pos_lik]
                    pivot = diag_value[k]
                    pivot = np.where(pivot == 0.0, zero_pivot, pivot)
                    lik = values[pos_lik] / pivot
                    values[pos_lik] = lik
                    ucnt = indptr64[k + 1] - upper_start[k]
                    if int(ucnt.sum()) == 0:
                        continue
                    gidx = np.repeat(upper_start[k], ucnt) + segment_ramp(ucnt)
                    qkeys = np.repeat(ords[act] * n, ucnt) + cols64[gidx]
                    pos = np.searchsorted(level_keys, qkeys)
                    np.minimum(pos, last, out=pos)
                    valid = level_keys[pos] == qkeys
                    if valid.any():
                        # targets are unique within a step (distinct columns
                        # per row, disjoint rows), so plain fancy-index
                        # subtraction applies each update exactly once
                        values[flat_pos[pos[valid]]] -= (
                            np.repeat(lik, ucnt)[valid] * values[gidx][valid])
            # finalize this level's pivots (dependents read them next level)
            dmask = has_diag[level_rows]
            drows = level_rows[dmask]
            if drows.size:
                dpos = indptr64[drows] + nlower[drows]
                dval = values[dpos]
                bad = (dval == 0.0) | (np.abs(dval) < shift)
                if bad.any():
                    dval = np.where(bad, np.where(dval >= 0.0, shift, -shift),
                                    dval)
                    values[dpos] = dval
                diag_value[drows] = dval
            if not dmask.all():
                diag_value[level_rows[~dmask]] = zero_pivot

    def _ilu0_eliminate_rows(self, n, indptr, indices, values, shift):
        diag_value = np.zeros(n, dtype=np.float64)
        upper_start = np.zeros(n, dtype=np.int64)

        for i in range(n):
            lo, hi = int(indptr[i]), int(indptr[i + 1])
            cols_i = indices[lo:hi]
            wrow = values[lo:hi]             # in-place row segment workspace
            nlower = int(np.searchsorted(cols_i, i))
            last = cols_i.size - 1

            for p in range(nlower):
                k = int(cols_i[p])
                pivot = diag_value[k]
                if pivot == 0.0:
                    pivot = shift if shift != 0.0 else 1.0
                lik = wrow[p] / pivot
                wrow[p] = lik
                # update row i against the strictly-upper segment of row k;
                # only columns present in row i's (sorted) pattern receive it
                ks, ke = int(upper_start[k]), int(indptr[k + 1])
                if ks < ke:
                    ucols = indices[ks:ke]
                    pos = np.searchsorted(cols_i, ucols)
                    np.minimum(pos, last, out=pos)
                    valid = cols_i[pos] == ucols
                    if valid.any():
                        wrow[pos[valid]] -= lik * values[ks:ke][valid]

            # pivot handling / upper-start bookkeeping (identical to reference)
            if nlower <= last and cols_i[nlower] == i:
                dval = wrow[nlower]
                if dval == 0.0 or abs(dval) < shift:
                    dval = shift if dval >= 0.0 else -shift
                    wrow[nlower] = dval
                diag_value[i] = dval
                upper_start[i] = lo + nlower + 1
            else:
                diag_value[i] = shift if shift != 0.0 else 1.0
                upper_start[i] = lo + nlower

"""Bit-faithful staged arithmetic for emulated fp16 vector kernels.

NumPy's ``float16`` ufunc loops are defined per element as *convert the
operands to float32, run the operation, round the result back to float16*
(``npy_half_to_float`` / ``npy_float_to_half``).  Two properties make them
slow on the solver's hot data:

* the loops are scalar (no SIMD), an order of magnitude behind float32, and
* the software float↔half conversions take a per-element slow path whenever
  a value lands in the **fp16 subnormal range** — which is most of a nested
  solver's inner residuals — costing 10-25x on top.

The helpers here run the exact same computation in bulk while never letting
a subnormal value near the scalar conversion routines:

* operands expand to float32 with an integer-decoded converter
  (:func:`upcast` — exact by construction, data-independent cost);
* each elementary operation runs as one vectorized float32 pass;
* the mandatory per-operation fp16 rounding is applied **in float32** by
  :func:`quantize32` — Veltkamp splitting rounds the significand to fp16's
  11 bits in the normal range, and the classic add-magic-subtract trick
  snaps the subnormal range onto its 2⁻²⁴ grid, both with hardware
  round-to-nearest-even;
* values are materialized as fp16 storage only at kernel boundaries
  (:func:`round_into`), where the conversion is exact — the fast path of
  numpy's converter.

One operation, one rounding: results are **bit-identical** to the direct
``np.float16`` ufunc chains (``tests/test_plans.py`` sweeps the
equivalence, including subnormals, overflow-to-inf and signed zeros).
Multi-term reductions (``reduceat`` row sums, dot products) round after
every accumulation step and cannot be staged; they keep the direct path.

``REPRO_STAGED_HALF=0`` disables the staged paths (the direct ufunc calls
are used instead) for debugging and benchmark comparisons.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "HALF",
    "STAGE",
    "staged_half_enabled",
    "set_staged_half",
    "upcast",
    "quantize32",
    "round_into",
    "binop_round",
    "scalar_mul_round",
    "staged_axpy",
]

#: the emulated storage dtype and its staging (compute) dtype
HALF = np.dtype(np.float16)
STAGE = np.dtype(np.float32)

_ENABLED = os.environ.get("REPRO_STAGED_HALF", "1").strip().lower() not in (
    "0", "off", "false", "no")

#: Veltkamp splitting constant 2**s + 1 with s = 13: splitting a 24-bit
#: significand at s leaves an 11-bit high part — exactly fp16 precision
_SPLIT = np.float32(2.0 ** 13 + 1.0)
#: magic constant whose float32 ulp is 2**-24, the fp16 subnormal unit:
#: (x + 0.75) - 0.75 rounds |x| < 2**-14 onto the subnormal grid (RNE)
_SUBMAGIC = np.float32(0.75)
_F16_MIN_NORMAL = np.float32(2.0 ** -14)
_F16_MAX = np.float32(65504.0)
_F16_SUB_UNIT = np.float32(2.0 ** -24)


def staged_half_enabled() -> bool:
    """Whether the staged fp16 fast paths are active."""
    return _ENABLED


def set_staged_half(enabled: bool) -> bool:
    """Enable/disable the staged paths (process-wide); returns the old state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def _buf(scratch, name: str, shape, dtype) -> np.ndarray:
    if scratch is None:
        return np.empty(shape, dtype=dtype)
    return scratch.get(name, shape, dtype)


# ---------------------------------------------------------------------- #
# fp16 -> fp32 expansion
# ---------------------------------------------------------------------- #
def upcast(x16: np.ndarray, out32: np.ndarray | None = None,
           scratch=None) -> np.ndarray:
    """Exact fp16 → fp32 expansion (into ``out32`` when given)."""
    if out32 is None:
        return x16.astype(STAGE)
    np.copyto(out32, x16, casting="unsafe")
    return out32


# ---------------------------------------------------------------------- #
# fp16 rounding applied in fp32 (the heart of the staged paths)
# ---------------------------------------------------------------------- #
def quantize32(x32: np.ndarray, scratch=None,
               out32: np.ndarray | None = None) -> np.ndarray:
    """Round every float32 value onto the fp16 grid, staying in float32.

    Bit-equivalent to ``x32.astype(float16).astype(float32)`` — including
    overflow to ±inf, ties-to-even and signed zeros — but built from plain
    float32 SIMD passes, so fp16-subnormal results cost nothing extra.
    The result holds exactly-representable fp16 values; converting it to
    fp16 storage afterwards is exact (numpy's fast conversion path).
    """
    if out32 is None:
        out32 = x32
    shape = x32.shape
    gamma = _buf(scratch, "q16_gamma", shape, STAGE)
    delta = _buf(scratch, "q16_delta", shape, STAGE)
    mask_a = _buf(scratch, "q16_mask_a", shape, np.bool_)
    mask_b = _buf(scratch, "q16_mask_b", shape, np.bool_)

    # Veltkamp: hi = fl(fl(c·x) + fl(x − fl(c·x))) is x rounded to 11 bits.
    # The split multiplicand is clamped to 2^16 first so c·x cannot overflow
    # for huge float32 inputs (anything clamped rounds to ±inf regardless,
    # and the clamp boundary 65536 itself lies beyond the fp16 maximum).
    clamped = np.clip(x32, np.float32(-65536.0), np.float32(65536.0), out=delta)
    np.multiply(clamped, _SPLIT, out=gamma)
    np.subtract(clamped, gamma, out=delta)
    np.add(gamma, delta, out=gamma)              # gamma = hi
    # values beyond the fp16 maximum round to ±inf (the 11-bit grid point
    # 65536 is not representable in fp16)
    np.greater(gamma, _F16_MAX, out=mask_a)
    np.copyto(gamma, np.float32(np.inf), where=mask_a)
    np.less(gamma, -_F16_MAX, out=mask_a)
    np.copyto(gamma, np.float32(-np.inf), where=mask_a)
    # subnormal grid: (x + 0.75) − 0.75 snaps onto multiples of 2⁻²⁴;
    # copysign repairs the −0 results
    np.add(x32, _SUBMAGIC, out=delta)
    np.subtract(delta, _SUBMAGIC, out=delta)
    np.copysign(delta, x32, out=delta)

    np.less(x32, _F16_MIN_NORMAL, out=mask_a)
    np.greater(x32, -_F16_MIN_NORMAL, out=mask_b)
    np.logical_and(mask_a, mask_b, out=mask_a)   # |x| < 2^-14 (False for NaN)
    np.isfinite(x32, out=mask_b)

    if out32 is not x32:
        np.copyto(out32, x32)                    # carries inf/NaN through
    np.copyto(out32, gamma, where=mask_b)
    np.copyto(out32, delta, where=mask_a)
    return out32


def round_into(x32: np.ndarray, out16: np.ndarray,
               scratch=None) -> np.ndarray:
    """Round an fp32 array to fp16 storage (numpy's float→half semantics).

    Quantizes on the fp32 side first so the final conversion is exact and
    never hits the scalar subnormal branch.
    """
    quantize32(x32, scratch=scratch)
    np.copyto(out16, x32, casting="unsafe")
    return out16


def binop_round(op, x32: np.ndarray, y32: np.ndarray,
                out16: np.ndarray | None = None, scratch=None) -> np.ndarray:
    """``round16(op(x, y))`` for fp32-staged operands.

    Bit-identical to ``op(x16, y16)`` on the fp16 originals — the ufunc's
    own per-element semantics are exactly this computation.
    """
    if out16 is None:
        out16 = np.empty(x32.shape, dtype=HALF)
    t = _buf(scratch, "half_binop_t", x32.shape, STAGE)
    op(x32, y32, out=t)
    return round_into(t, out16, scratch=scratch)


def scalar_mul_round(alpha, x32: np.ndarray, out16: np.ndarray | None = None,
                     scratch=None) -> np.ndarray:
    """``round16(alpha16 · x)``: the fp16 ``scal`` step, staged.

    ``alpha`` is rounded to fp16 first (matching
    ``np.float16(alpha) * x16``) and then expanded exactly to fp32 for the
    vectorized multiply.
    """
    if out16 is None:
        out16 = np.empty(x32.shape, dtype=HALF)
    t = _buf(scratch, "half_scal_t", x32.shape, STAGE)
    np.multiply(x32, np.float32(np.float16(alpha)), out=t)
    return round_into(t, out16, scratch=scratch)


def staged_axpy(alpha, x16: np.ndarray, y16: np.ndarray, scratch=None,
                out16: np.ndarray | None = None) -> np.ndarray:
    """``round16(round16(alpha16·x) + y)`` — the fp16 axpy, staged.

    Both intermediate roundings of the direct ufunc evaluation
    ``np.float16(alpha) * x16 + y16`` are preserved (the product is
    quantized onto the fp16 grid before the add), so the result is
    bit-identical.  ``scratch`` (a :class:`~repro.backends.Workspace`)
    hosts the fp32 staging buffers; without one, temporaries are allocated.
    """
    x32 = upcast(x16, _buf(scratch, "half_stage_x", x16.shape, STAGE),
                 scratch=scratch)
    t = _buf(scratch, "half_stage_t", x16.shape, STAGE)
    np.multiply(x32, np.float32(np.float16(alpha)), out=t)
    quantize32(t, scratch=scratch)               # round16(alpha·x), in fp32
    y32 = upcast(y16, x32, scratch=scratch)      # x32 is free again
    np.add(t, y32, out=t)
    if out16 is None:
        out16 = np.empty(x16.shape, dtype=HALF)
    return round_into(t, out16, scratch=scratch)

"""Reference backend: the original emulation-faithful NumPy kernels.

This backend preserves the seed implementation of every hot kernel exactly —
per-column Gram-Schmidt loops, per-chunk sliced-ELLPACK products, per-row
scatter/gather ILU(0) — and serves as the correctness oracle the ``fast``
backend is validated against (see ``tests/test_backends_equivalence.py``).
It records traffic at the same granularity the original code did: one
``record_*`` call per logical BLAS-1 operation.

The batched multi-RHS kernels (``spmm_csr``, ``spmm_ell``, ``trsm``) are
inherited from :class:`~repro.backends.base.KernelBackend` unchanged: on this
backend a batched call *is* the column-by-column loop over the single-RHS
oracle kernels, which is exactly what the batched-vs-looped equivalence tests
pin the ``fast`` engine against.  The matrix-free stencil kernels
(``apply_stencil``/``apply_stencil_batch``) are likewise inherited: the base
oracle materializes each offset's products in the assembled matrix's CSR
slot order and reduces them with the shared ``row_segment_sums`` helper, so
a stencil apply on this backend is bit-identical to the reference SpMV on
the assembled twin.
"""

from __future__ import annotations

import numpy as np

from ..precision import (
    BYTES_PER_INDEX,
    Precision,
    as_precision,
    precision_of_dtype,
    promote,
)
from ..sparse import vectorops as vo
from .base import (
    KernelBackend,
    ilu0_setup,
    row_segment_sums,
    segment_ramp,
    split_lower_upper,
    spmv_setup,
)

__all__ = ["ReferenceBackend"]


def _row_sums(products: np.ndarray, indptr: np.ndarray, out_dtype) -> np.ndarray:
    """Sum ``products`` over CSR row segments, robust to empty rows."""
    y = np.zeros(indptr.size - 1, dtype=products.dtype)
    row_segment_sums(products, indptr, y)
    return y.astype(out_dtype, copy=False)


def _segment_sum(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Sum ``values`` over consecutive segments of the given lengths."""
    indptr = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    out = np.zeros(counts.size, dtype=values.dtype)
    return row_segment_sums(values, indptr, out)


class ReferenceBackend(KernelBackend):
    """Emulation-faithful kernels (the seed implementation, unchanged)."""

    name = "reference"

    # ------------------------------------------------------------------ #
    def spmv_csr(self, values, indices, indptr, x, out_precision=None,
                 record=True, scratch=None, par=None):
        # ``par`` (partition state) is part of the contract surface but the
        # reference oracle always runs serially
        mat_prec, vec_prec, compute, out_prec = spmv_setup(values.dtype, x.dtype,
                                                           out_precision)
        vals_c = values if values.dtype == compute.dtype else values.astype(compute.dtype)
        x_c = x if x.dtype == compute.dtype else x.astype(compute.dtype)

        products = vals_c * x_c[indices]
        y = _row_sums(products, indptr, compute.dtype)
        y = y.astype(out_prec.dtype, copy=False)

        if record:
            n = indptr.size - 1
            nnz = values.size
            self._record_spmv(mat_prec, vec_prec, out_prec, compute, n, nnz,
                              nnz * BYTES_PER_INDEX + (n + 1) * BYTES_PER_INDEX)
        return y

    # ------------------------------------------------------------------ #
    def spmv_ell(self, ell, x, out_precision=None, record=True):
        mat_prec, vec_prec, compute, out_prec = spmv_setup(ell.values.dtype, x.dtype,
                                                           out_precision)
        vals = ell.values if ell.values.dtype == compute.dtype else ell.values.astype(compute.dtype)
        x_c = x if x.dtype == compute.dtype else x.astype(compute.dtype)

        y = np.zeros(ell.nrows, dtype=compute.dtype)
        nchunks = ell.chunk_widths.size
        cs = ell.chunk_size
        for c in range(nchunks):
            lo = c * cs
            hi = min(lo + cs, ell.nrows)
            rows_in_chunk = hi - lo
            width = int(ell.chunk_widths[c])
            if width == 0:
                continue
            base = int(ell.chunk_offsets[c])
            block_vals = vals[base:base + width * cs].reshape(width, cs)[:, :rows_in_chunk]
            block_cols = ell.indices[base:base + width * cs].reshape(width, cs)[:, :rows_in_chunk]
            y[lo:hi] = (block_vals * x_c[block_cols]).sum(axis=0, dtype=compute.dtype)
        y = y.astype(out_prec.dtype, copy=False)

        if record:
            stored = ell.nnz
            self._record_spmv(mat_prec, vec_prec, out_prec, compute, ell.nrows,
                              stored, stored * BYTES_PER_INDEX)
        return y

    # ------------------------------------------------------------------ #
    def trsv(self, factor, b, out_precision=None, record=True):
        vec_prec = precision_of_dtype(b.dtype)
        compute = promote(factor.precision, vec_prec)
        out_prec = as_precision(out_precision) if out_precision is not None else vec_prec

        x = np.zeros(factor.nrows, dtype=compute.dtype)
        b_c = b if b.dtype == compute.dtype else b.astype(compute.dtype)
        off_vals = (factor.off_vals if factor.off_vals.dtype == compute.dtype
                    else factor.off_vals.astype(compute.dtype))
        inv_diag = factor.inv_diag.astype(compute.dtype)

        rowptr = factor.off_rowptr
        cols = factor.off_cols
        for rows in factor.levels:
            starts = rowptr[rows]
            stops = rowptr[rows + 1]
            counts = stops - starts
            total = int(counts.sum())
            if total:
                gather_idx = np.repeat(starts, counts) + segment_ramp(counts)
                prods = off_vals[gather_idx] * x[cols[gather_idx]]
                sums = _segment_sum(prods, counts)
            else:
                sums = np.zeros(rows.size, dtype=compute.dtype)
            x[rows] = ((b_c[rows] - sums) * inv_diag[rows]).astype(compute.dtype)

        result = x.astype(out_prec.dtype, copy=False)
        if record:
            self._record_trsv(factor, vec_prec, out_prec, compute)
        return result

    # ------------------------------------------------------------------ #
    def orthogonalize(self, basis, j, w, vec_prec: Precision, scratch=None,
                      record=True):
        dtype = vec_prec.dtype
        h_col = np.zeros(j + 2, dtype=dtype)
        for i in range(j + 1):
            h_col[i] = dtype.type(vo.dot(basis[i], w, record=record))
        for i in range(j + 1):
            w = vo.axpy(-float(h_col[i]), basis[i], w, out_precision=vec_prec,
                        record=record)
        h_norm = vo.nrm2(w, record=record)
        h_col[j + 1] = dtype.type(h_norm)
        return h_col, w, h_norm

    def combine(self, z_vectors, y, k, vec_prec: Precision, record=True):
        n = z_vectors.shape[1]
        z = vo.vzeros(n, vec_prec)
        for i in range(k):
            z = vo.axpy(float(y[i]), z_vectors[i], z, out_precision=vec_prec,
                        record=record)
        return z

    # ------------------------------------------------------------------ #
    def ilu0_factor(self, matrix, alpha: float = 1.0, breakdown_shift: float = 1e-12):
        n, indptr, indices, values, shift = ilu0_setup(matrix, alpha, breakdown_shift)
        diag_value = np.zeros(n, dtype=np.float64)
        # positions of the first strictly-upper entry of each row (update loop)
        upper_start = np.zeros(n, dtype=np.int64)

        in_pattern = np.zeros(n, dtype=bool)
        work = np.zeros(n, dtype=np.float64)

        for i in range(n):
            lo, hi = int(indptr[i]), int(indptr[i + 1])
            cols_i = indices[lo:hi]
            # scatter row i
            in_pattern[cols_i] = True
            work[cols_i] = values[lo:hi]

            for pos in range(lo, hi):
                k = int(indices[pos])
                if k >= i:
                    break
                pivot = diag_value[k]
                if pivot == 0.0:
                    pivot = shift if shift != 0.0 else 1.0
                lik = work[k] / pivot
                work[k] = lik
                # update against the strictly-upper part of row k (ILU(0): only
                # positions already present in row i's pattern receive the update)
                ks, ke = int(upper_start[k]), int(indptr[k + 1])
                if ks < ke:
                    ucols = indices[ks:ke]
                    mask = in_pattern[ucols]
                    if np.any(mask):
                        target = ucols[mask]
                        work[target] -= lik * values[ks:ke][mask]

            # gather row i back and record its diagonal / upper start
            values[lo:hi] = work[cols_i]
            dpos = np.searchsorted(cols_i, i)
            if dpos < cols_i.size and cols_i[dpos] == i:
                dval = values[lo + dpos]
                if dval == 0.0 or abs(dval) < shift:
                    dval = shift if dval >= 0.0 else -shift
                    values[lo + dpos] = dval
                diag_value[i] = dval
                upper_start[i] = lo + dpos + 1
            else:
                # missing structural diagonal: treat as shift (rare, degenerate input)
                diag_value[i] = shift if shift != 0.0 else 1.0
                upper_start[i] = lo + np.searchsorted(cols_i, i)

            # clear scatter workspace
            in_pattern[cols_i] = False
            work[cols_i] = 0.0

        return split_lower_upper(values, indices, indptr, n)

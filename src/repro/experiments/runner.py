"""Experiment runner: execute solver configurations against problems and
collect the metrics the paper reports (preconditioner invocations, modeled
execution time, convergence flags).

Each run wraps the solve in a :class:`~repro.perf.TrafficCounter` scope so that
the machine models can convert the kernel-level byte counts into the modeled
times that stand in for the paper's wall-clock measurements (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import F3RConfig, build_f3r, build_variant
from ..perf import CPU_NODE, MachineModel, TrafficCounter, counting
from ..solvers import BiCGStab, ConjugateGradient, RestartedFGMRES
from .problems import Problem

__all__ = ["RunRecord", "run_solver", "run_f3r", "run_variant", "run_krylov_baseline",
           "speedup_table"]


@dataclass
class RunRecord:
    """Result of one (solver, problem) execution."""

    problem: str
    solver: str
    converged: bool
    outer_iterations: int
    preconditioner_applications: int
    relative_residual: float
    modeled_time: float
    wall_time: float
    fp16_traffic_fraction: float
    counter: TrafficCounter = field(repr=False, default_factory=TrafficCounter)

    def as_dict(self) -> dict:
        return {
            "problem": self.problem,
            "solver": self.solver,
            "converged": self.converged,
            "outer_iterations": self.outer_iterations,
            "preconditioner_applications": self.preconditioner_applications,
            "relative_residual": self.relative_residual,
            "modeled_time": self.modeled_time,
            "wall_time": self.wall_time,
            "fp16_traffic_fraction": self.fp16_traffic_fraction,
        }


def run_solver(problem: Problem, solver, solver_name: str,
               machine: MachineModel = CPU_NODE) -> RunRecord:
    """Run any object exposing ``solve(b)`` and collect traffic + metrics."""
    counter = TrafficCounter()
    with counting(counter):
        result = solver.solve(problem.rhs)
    return RunRecord(
        problem=problem.name,
        solver=solver_name,
        converged=result.converged,
        outer_iterations=result.iterations,
        preconditioner_applications=result.preconditioner_applications,
        relative_residual=result.relative_residual,
        modeled_time=machine.time_for(counter),
        wall_time=result.wall_time,
        fp16_traffic_fraction=counter.low_precision_fraction(),
        counter=counter,
    )


def run_f3r(problem: Problem, preconditioner, variant: str = "fp16",
            config: F3RConfig | None = None, machine: MachineModel = CPU_NODE,
            tol: float = 1e-8, max_restarts: int = 2) -> RunRecord:
    """Run one of the three F3R implementations (fp64-/fp32-/fp16-F3R)."""
    config = (config or F3RConfig()).with_params(variant=variant, tol=tol,
                                                 max_restarts=max_restarts)
    solver = build_f3r(problem.matrix, preconditioner, config)
    return run_solver(problem, solver, config.name, machine=machine)


def run_variant(problem: Problem, preconditioner, name: str,
                machine: MachineModel = CPU_NODE, tol: float = 1e-8) -> RunRecord:
    """Run one of the Table 4 nesting-depth variants (F2, fp16-F2, F3, fp16-F3, F4)."""
    solver = build_variant(name, problem.matrix, preconditioner, tol=tol)
    return run_solver(problem, solver, name, machine=machine)


def run_krylov_baseline(problem: Problem, preconditioner, method: str,
                        precond_precision: str = "fp64",
                        machine: MachineModel = CPU_NODE, tol: float = 1e-8,
                        max_iterations: int = 2000, restart: int = 64) -> RunRecord:
    """Run one of the conventional baselines: ``"cg"``, ``"bicgstab"``, ``"fgmres"``.

    ``precond_precision`` selects the storage precision of the preconditioner,
    producing the fp64-/fp32-/fp16-prefixed baselines of Figures 1-2.
    """
    m = preconditioner.astype(precond_precision)
    label_prefix = {"fp64": "fp64", "fp32": "fp32", "fp16": "fp16"}[str(precond_precision)]
    if method == "cg":
        solver = ConjugateGradient(problem.matrix, m, tol=tol, max_iterations=max_iterations)
        label = f"{label_prefix}-CG"
    elif method == "bicgstab":
        solver = BiCGStab(problem.matrix, m, tol=tol, max_iterations=max_iterations)
        label = f"{label_prefix}-BiCGStab"
    elif method == "fgmres":
        solver = RestartedFGMRES(problem.matrix, m, restart=restart, tol=tol,
                                 max_iterations=max_iterations)
        label = f"{label_prefix}-FGMRES({restart})"
    else:
        raise ValueError(f"unknown baseline method {method!r}")
    return run_solver(problem, solver, label, machine=machine)


def speedup_table(records: list[RunRecord], baseline_solver: str) -> list[dict]:
    """Per-problem speedup of every solver relative to ``baseline_solver``.

    Mirrors the presentation of Figures 1-2: modeled time of the baseline
    divided by modeled time of each solver (NaN when either failed).
    """
    by_problem: dict[str, dict[str, RunRecord]] = {}
    for record in records:
        by_problem.setdefault(record.problem, {})[record.solver] = record

    rows = []
    for problem, solvers in by_problem.items():
        base = solvers.get(baseline_solver)
        for name, record in solvers.items():
            if base is None or not base.converged or not record.converged \
                    or record.modeled_time <= 0.0:
                speedup = float("nan")
            else:
                speedup = base.modeled_time / record.modeled_time
            rows.append({
                "problem": problem,
                "solver": name,
                "speedup_vs_" + baseline_solver: speedup,
                "converged": record.converged,
                "modeled_time": record.modeled_time,
                "preconditioner_applications": record.preconditioner_applications,
            })
    return rows

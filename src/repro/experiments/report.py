"""Plain-text table / series formatting for the reproduced experiments.

The benchmark scripts print their results through these helpers so that each
table and figure of the paper has a recognizable textual counterpart (rows for
tables, per-problem series for the bar-chart figures).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "pivot", "geometric_mean"]


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None,
                 title: str = "", float_fmt: str = "{:.3g}") -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def fmt(value) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    table = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in table)) for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for line in table:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines)


def format_series(series: dict[str, dict[str, float]], title: str = "",
                  value_fmt: str = "{:.2f}") -> str:
    """Render figure-style data: ``{series_name: {x_label: value}}``."""
    lines = [title] if title else []
    x_labels: list[str] = []
    for values in series.values():
        for x in values:
            if x not in x_labels:
                x_labels.append(x)
    width = max((len(x) for x in x_labels), default=8)
    name_width = max((len(name) for name in series), default=8)
    header = " " * (name_width + 2) + "  ".join(x.ljust(width) for x in x_labels)
    lines.append(header)
    for name, values in series.items():
        cells = []
        for x in x_labels:
            v = values.get(x)
            cells.append(("-" if v is None or v != v else value_fmt.format(v)).ljust(width))
        lines.append(name.ljust(name_width + 2) + "  ".join(cells))
    return "\n".join(lines)


def pivot(rows: Iterable[dict], index: str, column: str, value: str) -> dict[str, dict[str, float]]:
    """Reshape row dicts into the ``{column_value: {index_value: value}}`` form
    expected by :func:`format_series`."""
    out: dict[str, dict[str, float]] = {}
    for row in rows:
        out.setdefault(str(row[column]), {})[str(row[index])] = row[value]
    return out


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean ignoring NaNs; NaN when nothing remains."""
    import math

    vals = [v for v in values if v == v and v > 0]
    if not vals:
        return float("nan")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))

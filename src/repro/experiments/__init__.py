"""Experiment harness: problem suites, runners, and report formatting."""

from .problems import SUITES, Problem, build_problem, suite
from .runner import (
    RunRecord,
    run_f3r,
    run_krylov_baseline,
    run_solver,
    run_variant,
    speedup_table,
)
from .report import format_series, format_table, geometric_mean, pivot

__all__ = [
    "SUITES",
    "Problem",
    "build_problem",
    "suite",
    "RunRecord",
    "run_f3r",
    "run_krylov_baseline",
    "run_solver",
    "run_variant",
    "speedup_table",
    "format_series",
    "format_table",
    "geometric_mean",
    "pivot",
]

"""Experiment problem suites.

A *problem* bundles a matrix (diagonally scaled, as in the paper), a random
right-hand side, and the primary preconditioners used by the CPU and GPU
experiment tracks.  Suites select subsets of the Table 2 registry so that the
full harness stays laptop-feasible:

* ``demo``     — three representative problems, used by examples and CI.
* ``cpu``      — the symmetric + non-symmetric CPU-track subset (Fig. 1 / Table 3).
* ``gpu``      — the GPU-track subset (Fig. 2) with SD-AINV preconditioning.
* ``parameter``— the small subset used for the Section 6 parameter studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..matgen import MATRIX_REGISTRY, get_matrix
from ..precond import make_primary_preconditioner
from ..precond.base import Preconditioner
from ..sparse import CSRMatrix, diagonal_scaling

__all__ = ["Problem", "build_problem", "suite", "SUITES"]

#: matrices per suite (chosen to cover every behaviour class of Table 2 while
#: keeping runtimes reasonable at reproduction scale)
SUITES: dict[str, list[str]] = {
    "demo": ["hpcg_7_7_7", "hpgmp_7_7_7", "G3_circuit"],
    "cpu-sym": ["hpcg_7_7_7", "hpcg_8_8_8", "G3_circuit", "ecology2", "thermal2",
                "Emilia_923", "Serena", "audikw_1"],
    "cpu-nonsym": ["hpgmp_7_7_7", "hpgmp_8_8_8", "atmosmodd", "atmosmodl",
                   "Transport", "tmt_unsym", "vas_stokes_1M", "ss"],
    "gpu-sym": ["hpcg_7_7_7", "G3_circuit", "ecology2", "Serena", "apache2"],
    "gpu-nonsym": ["hpgmp_7_7_7", "atmosmodd", "t2em", "vas_stokes_1M", "rajat31"],
    "parameter": ["hpcg_7_7_7", "hpgmp_7_7_7", "Emilia_923", "atmosmodd", "vas_stokes_1M"],
}
SUITES["cpu"] = SUITES["cpu-sym"] + SUITES["cpu-nonsym"]
SUITES["gpu"] = SUITES["gpu-sym"] + SUITES["gpu-nonsym"]


@dataclass
class Problem:
    """A ready-to-solve linear system with its paper metadata."""

    name: str
    matrix: CSRMatrix
    rhs: np.ndarray
    symmetric: bool
    alpha_ilu: float
    alpha_ainv: float
    scale: str

    def cpu_preconditioner(self, nblocks: int | None = None,
                           precision="fp64") -> Preconditioner:
        """Block-Jacobi ILU(0)/IC(0), the paper's CPU-node primary preconditioner."""
        if nblocks is None:
            nblocks = max(4, min(64, self.matrix.nrows // 256))
        kind = "block-ic0" if self.symmetric else "block-ilu0"
        return make_primary_preconditioner(
            self.matrix, kind=kind, nblocks=nblocks, alpha=self.alpha_ilu,
            precision=precision, symmetric=self.symmetric,
        )

    def gpu_preconditioner(self, precision="fp64", drop_tol: float = 0.0) -> Preconditioner:
        """SD-AINV, the paper's GPU-node primary preconditioner."""
        return make_primary_preconditioner(
            self.matrix, kind="sd-ainv", alpha=self.alpha_ainv, precision=precision,
            drop_tol=drop_tol, symmetric=self.symmetric,
        )

    @property
    def n(self) -> int:
        return self.matrix.nrows


def build_problem(name: str, scale: str = "tiny", seed: int = 0) -> Problem:
    """Build a problem from the Table 2 registry: generate, diagonally scale,
    and attach a uniform-random right-hand side in [0, 1) as the paper does."""
    spec = MATRIX_REGISTRY[name]
    matrix = get_matrix(name, scale=scale)
    matrix, _ = diagonal_scaling(matrix)
    rng = np.random.default_rng(seed + abs(hash(name)) % (2**16))
    rhs = rng.random(matrix.nrows)
    return Problem(
        name=name,
        matrix=matrix,
        rhs=rhs,
        symmetric=spec.symmetric,
        alpha_ilu=spec.alpha_ilu,
        alpha_ainv=spec.alpha_ainv,
        scale=scale,
    )


def suite(name: str, scale: str = "tiny", seed: int = 0) -> list[Problem]:
    """Build every problem of a named suite."""
    if name not in SUITES:
        raise KeyError(f"unknown suite {name!r}; known: {sorted(SUITES)}")
    return [build_problem(matrix_name, scale=scale, seed=seed) for matrix_name in SUITES[name]]

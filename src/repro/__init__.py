"""repro — reproduction of "A Nested Krylov Method Using Half-Precision Arithmetic".

The package implements the paper's F3R solver (nested FGMRES + Richardson with
an fp64 → fp32 → fp16 precision schedule and adaptive Richardson weights), the
substrates it depends on (mixed-precision sparse kernels, ILU(0)/IC(0),
block-Jacobi, SD-AINV, HPCG/HPGMP matrix generators), the conventional
baselines it is compared against (CG, BiCGStab, restarted FGMRES), and the
experiment harness that regenerates every table and figure of the paper.

Quickstart::

    import numpy as np
    from repro import F3RSolver, F3RConfig
    from repro.matgen import hpcg_matrix
    from repro.sparse import diagonal_scaling

    A, _ = diagonal_scaling(hpcg_matrix(16))
    b = np.random.default_rng(0).random(A.nrows)
    result = F3RSolver(A, preconditioner="auto", config=F3RConfig(variant="fp16")).solve(b)
    print(result.converged, result.preconditioner_applications)
"""

from .backends import (
    active_backend,
    available_backends,
    register_backend,
    set_backend,
    use_backend,
)
from .core import (
    F3RConfig,
    F3RSolver,
    RecoveryPolicy,
    SolveReport,
    build_f3r,
    build_variant,
    recovery_enabled,
    set_recovery_enabled,
    solve_f3r,
    tune_f3r,
    use_recovery,
)
from .operators import (
    AssembledOperator,
    LinearOperator,
    ScaledOperator,
    ShiftedOperator,
    StencilOperator,
    as_operator,
)
from .par import (
    configured_procs,
    configured_threads,
    pool_stats,
    set_procs,
    set_threads,
    use_procs,
    use_threads,
)
from .plans import (
    SolvePlan,
    plan_cache_stats,
    plan_for,
    plans_enabled,
    set_plans_enabled,
    use_plans,
)
from .precision import Precision
from .precond import make_primary_preconditioner
from .serve import (
    AdmissionRefused,
    BatchDispatcher,
    BrownoutConfig,
    BrownoutController,
    BrownoutTransition,
    CircuitOpen,
    ClusterConfig,
    ClusterGateway,
    DeadlineExceeded,
    DispatcherClosed,
    LoadShed,
    RemoteShard,
    ShardServer,
    ShardUnreachable,
    ShardedGateway,
    overload_enabled,
    render_metrics,
)
from .solvers import (
    BatchSolveResult,
    BiCGStab,
    ConjugateGradient,
    InvalidInput,
    LevelSpec,
    RestartedFGMRES,
    SolveBreakdown,
    SolveEvent,
    SolveResult,
    SolveStagnation,
    build_nested_solver,
    guards_enabled,
    set_guards_enabled,
    use_guards,
)
from .sparse import CSRMatrix

__version__ = "1.0.0"

# Opt-in fault injection: importing repro.faults installs the env-configured
# plan; without REPRO_FAULTS the subsystem is never imported from here.
if __import__("os").environ.get("REPRO_FAULTS", "").strip():
    from . import faults  # noqa: F401

__all__ = [
    "configured_procs",
    "configured_threads",
    "pool_stats",
    "set_procs",
    "set_threads",
    "use_procs",
    "use_threads",
    "F3RConfig",
    "F3RSolver",
    "build_f3r",
    "solve_f3r",
    "build_variant",
    "tune_f3r",
    "Precision",
    "make_primary_preconditioner",
    "BiCGStab",
    "ConjugateGradient",
    "RestartedFGMRES",
    "LevelSpec",
    "build_nested_solver",
    "SolveResult",
    "BatchSolveResult",
    "BatchDispatcher",
    "ShardedGateway",
    "ClusterGateway",
    "ClusterConfig",
    "RemoteShard",
    "ShardServer",
    "ShardUnreachable",
    "DispatcherClosed",
    "DeadlineExceeded",
    "AdmissionRefused",
    "LoadShed",
    "CircuitOpen",
    "BrownoutConfig",
    "BrownoutController",
    "BrownoutTransition",
    "overload_enabled",
    "render_metrics",
    "SolveEvent",
    "SolveBreakdown",
    "SolveStagnation",
    "InvalidInput",
    "guards_enabled",
    "set_guards_enabled",
    "use_guards",
    "RecoveryPolicy",
    "SolveReport",
    "recovery_enabled",
    "set_recovery_enabled",
    "use_recovery",
    "CSRMatrix",
    "LinearOperator",
    "AssembledOperator",
    "StencilOperator",
    "ShiftedOperator",
    "ScaledOperator",
    "as_operator",
    "active_backend",
    "available_backends",
    "register_backend",
    "set_backend",
    "use_backend",
    "__version__",
]

"""Partitioned executors for the thread-parallel kernels.

Each function here runs one slab/chunk decomposition of a hot kernel across
the worker pool (:func:`repro.par.pool.run_tasks`).  The determinism
contract every executor keeps:

* a worker computes its output rows with **exactly the serial kernel's
  arithmetic** — the same per-element products, the same per-row
  left-to-right ``reduceat`` reductions, the same staged-fp16 rounding
  chain — only restricted to a contiguous row range;
* workers write **disjoint output slices** (or disjoint scatter index sets
  for the triangular solves), so there are no cross-thread read-modify-write
  hazards and no accumulation-order ambiguity.

Together these make the partitioned result bit-identical to the serial one
for every thread count, which is what the ``REPRO_THREADS`` equivalence
sweep in ``tests/test_parallel.py`` pins.

Worker-side temporaries come from a module-level per-thread arena
(:func:`slab_workspace`) — pool workers are persistent, so the buffers warm
up once and are reused across calls; the buffers are capacity-grown
(:meth:`~repro.backends.workspace.Workspace.get_rows`), so varying slab
sizes re-slice one allocation instead of keying a new buffer per size.
Callers never see these arenas: shared inputs (value casts, the input
vector) are read-only inside workers, and results land in caller-allocated
fresh output arrays.

Counter recording stays entirely in the calling thread (counters are
thread-local): the fast backend records the same totals it records for the
serial kernel, so partitioning is invisible to the traffic model —
per-partition counter parity for free.
"""

from __future__ import annotations

import numpy as np

from ..backends.workspace import ThreadLocalWorkspace, Workspace
from .pool import run_tasks

try:  # pragma: no cover - scipy ships with the test environment
    from scipy.sparse import _sparsetools as _scipy_sparsetools
except ImportError:  # pragma: no cover
    _scipy_sparsetools = None

__all__ = [
    "slab_workspace",
    "run_spans",
    "spmv_csr_slabs",
    "spmm_csr_slabs",
    "csr_matvec_slabs",
    "csr_matvecs_slabs",
    "spmv_ell_slabs",
    "spmm_ell_slabs",
    "trsv_level_chunks",
    "trsm_level_chunks",
]

_SLAB_TLS = ThreadLocalWorkspace()


def slab_workspace() -> Workspace:
    """The calling thread's slab-scratch arena (one per pool worker)."""
    return _SLAB_TLS.workspace


def run_spans(spans, fn) -> None:
    """Run ``fn(lo, hi)`` for every span, one task per span."""
    run_tasks([(lambda lo=lo, hi=hi: fn(lo, hi)) for lo, hi in spans])


def _flat(ws: Workspace, name: str, size: int, dtype) -> np.ndarray:
    """A capacity-grown 1-D scratch vector (re-sliced across slab sizes)."""
    return ws.get_rows(name, int(size), (), dtype)


def _block(ws: Workspace, name: str, size: int, k: int, dtype) -> np.ndarray:
    """A capacity-grown ``(size, k)`` scratch block."""
    return ws.get_rows(name, int(size), (int(k),), dtype)


# ---------------------------------------------------------------------- #
# CSR / ELL sparse products (gather-multiply-reduceat recipe)
# ---------------------------------------------------------------------- #
def _segment_products_into(ws: Workspace, vals_seg, gather_idx, x_c, staged,
                           round_into) -> np.ndarray:
    """The slab's product stream, exactly as the serial kernel computes it.

    Direct mode: ``vals * x[idx]`` in the compute dtype.  Staged-fp16 mode
    (``staged`` true): one fp32 gather-multiply pass snapped back onto the
    fp16 grid — ``vals_seg``/``x_c`` are then the fp32-staged arrays and the
    returned products are fp16, matching the serial staged path bit for bit.
    """
    size = gather_idx.shape[0]
    if staged:
        prods32 = _flat(ws, "par_prod32", size, x_c.dtype)
        np.take(x_c, gather_idx, out=prods32)
        np.multiply(prods32, vals_seg, out=prods32)
        prods = _flat(ws, "par_prod16", size, np.float16)
        return round_into(prods32, prods, scratch=ws)
    prods = _flat(ws, "par_prod", size, x_c.dtype)
    np.take(x_c, gather_idx, out=prods)
    np.multiply(prods, vals_seg, out=prods)
    return prods


def spmv_csr_slabs(vals_c, indices, x_c, y, slabs, staged=False,
                   round_into=None) -> np.ndarray:
    """Partitioned gather-path CSR SpMV into caller-allocated ``y``."""
    from ..backends.base import row_segment_sums

    def task(r0, r1, s0, s1, local):
        ws = slab_workspace()
        prods = _segment_products_into(ws, vals_c[s0:s1], indices[s0:s1], x_c,
                                       staged, round_into)
        row_segment_sums(prods, local, y[r0:r1])

    run_tasks([(lambda s=s: task(*s)) for s in slabs])
    return y


def spmm_csr_slabs(vals_c, indices, x_c, y, slabs, staged=False,
                   round_into=None) -> np.ndarray:
    """Partitioned gather-path CSR SpMM (``x_c``/``y`` of shape ``(n, k)``)."""
    from ..backends.base import row_segment_sums

    k = x_c.shape[1]

    def task(r0, r1, s0, s1, local):
        ws = slab_workspace()
        idx = indices[s0:s1]
        vals_seg = vals_c[s0:s1]
        if staged:
            prods32 = _block(ws, "par_prod32_k", s1 - s0, k, x_c.dtype)
            np.take(x_c, idx, axis=0, out=prods32)
            np.multiply(prods32, vals_seg[:, None], out=prods32)
            prods = _block(ws, "par_prod16_k", s1 - s0, k, np.float16)
            round_into(prods32, prods, scratch=ws)
        else:
            prods = _block(ws, "par_prod_k", s1 - s0, k, x_c.dtype)
            np.take(x_c, idx, axis=0, out=prods)
            np.multiply(prods, vals_seg[:, None], out=prods)
        row_segment_sums(prods, local, y[r0:r1])

    run_tasks([(lambda s=s: task(*s)) for s in slabs])
    return y


def csr_matvec_slabs(ncols, vals, indices, y, x_c, slabs) -> np.ndarray:
    """Partitioned scipy compiled CSR matvec, accumulating into ``y`` rows.

    Matches the serial ``csr_matvec`` semantics (``y[i] += row · x``) per
    row; callers pre-fill ``y`` (zeros for a plain product, a copy of the
    combine operand for the fused residual).
    """

    def task(r0, r1, s0, s1, local):
        _scipy_sparsetools.csr_matvec(r1 - r0, ncols, local, indices[s0:s1],
                                      vals[s0:s1], x_c, y[r0:r1])

    run_tasks([(lambda s=s: task(*s)) for s in slabs])
    return y


def csr_matvecs_slabs(ncols, k, vals, indices, y, x_c, slabs) -> np.ndarray:
    """Partitioned scipy compiled CSR SpMM accumulation (C-ordered ``y``)."""
    x_flat = x_c.ravel()

    def task(r0, r1, s0, s1, local):
        _scipy_sparsetools.csr_matvecs(r1 - r0, ncols, k, local,
                                       indices[s0:s1], vals[s0:s1], x_flat,
                                       y[r0:r1].ravel())

    run_tasks([(lambda s=s: task(*s)) for s in slabs])
    return y


def spmv_ell_slabs(vals_rm, cols_rm, x_c, y, slabs, staged=False,
                   round_into=None) -> np.ndarray:
    """Partitioned row-major sliced-ELL SpMV (same recipe as the CSR path,
    over the row-major gather plan's entry stream)."""
    return spmv_csr_slabs(vals_rm, cols_rm, x_c, y, slabs, staged=staged,
                          round_into=round_into)


def spmm_ell_slabs(vals_rm, cols_rm, x_c, y, slabs) -> np.ndarray:
    """Partitioned row-major sliced-ELL SpMM."""
    return spmm_csr_slabs(vals_rm, cols_rm, x_c, y, slabs)


# ---------------------------------------------------------------------- #
# Within-level triangular substitution
# ---------------------------------------------------------------------- #
def trsv_level_chunks(x, b_c, rows, gather_cols, lv, inv, chunks) -> None:
    """One dependency level of a triangular solve, chunked across threads.

    ``x`` is the shared solution vector: workers read columns solved by
    *earlier* levels and scatter into this level's disjoint row sets —
    exactly the serial per-level update ``x[rows] = (b[rows] − Σ) · inv``
    restricted to each chunk.  The caller barriers between levels
    (``run_tasks`` joins), so no worker ever reads a row still being
    written.
    """

    def task(c0, c1, g0, g1, local_off, mask):
        rows_c = rows[c0:c1]
        ws = slab_workspace()
        sums = _flat(ws, "par_trsv_sums", c1 - c0, x.dtype)
        if g1 == g0:
            sums.fill(0)
        elif mask is None:
            np.add.reduceat(lv[g0:g1] * x[gather_cols[g0:g1]], local_off,
                            out=sums)
        else:
            sums.fill(0)
            sums[mask] = np.add.reduceat(lv[g0:g1] * x[gather_cols[g0:g1]],
                                         local_off)
        x[rows_c] = (b_c[rows_c] - sums) * inv[c0:c1]

    run_tasks([(lambda c=c: task(*c)) for c in chunks])


def trsm_level_chunks(x, b_c, rows, gather_cols, lv, inv, chunks) -> None:
    """Batched (multi-RHS) variant of :func:`trsv_level_chunks`."""
    k = x.shape[1]

    def task(c0, c1, g0, g1, local_off, mask):
        rows_c = rows[c0:c1]
        ws = slab_workspace()
        sums = _block(ws, "par_trsm_sums", c1 - c0, k, x.dtype)
        if g1 == g0:
            sums.fill(0)
        elif mask is None:
            np.add.reduceat(x[gather_cols[g0:g1], :] * lv[g0:g1, None],
                            local_off, out=sums)
        else:
            sums.fill(0)
            sums[mask] = np.add.reduceat(
                x[gather_cols[g0:g1], :] * lv[g0:g1, None], local_off)
        x[rows_c] = (b_c[rows_c] - sums) * inv[c0:c1, None]

    run_tasks([(lambda c=c: task(*c)) for c in chunks])

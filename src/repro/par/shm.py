"""Zero-copy shared-memory operator storage for the process-pool tier.

The process tier (:mod:`repro.par.procpool`, :class:`repro.serve.ShardedGateway`)
runs solves in worker *processes*.  Shipping a CSR matrix through a queue
would pickle its value and index arrays on every hop; instead the gateway
**publishes** each operator's defining arrays once into a
:class:`multiprocessing.shared_memory.SharedMemory` segment keyed by the
operator's fingerprint, and workers **attach** the segment on first use —
their numpy arrays are views straight into the shared pages, so the hot path
pays zero copy and zero pickling for operator storage.  Only the tiny
*descriptor* (segment name + array layout + reconstruction metadata) ever
crosses the queue, and only once per (worker, operator).

Three pieces live here:

* **Packing** — :func:`publish_arrays` lays named arrays out back to back
  (64-byte aligned) in one fresh segment and returns the
  :class:`ShmDescriptor`; :func:`attach_arrays` maps a descriptor back into
  read-only numpy views in any process.  Views are marked read-only: shared
  operator storage is immutable by contract (matrices already are — the
  backends cache derived copies per process instead of mutating).
* **Operator payloads** — :func:`operator_payload` /
  :func:`operator_from_payload` convert the publishable operator families
  (:class:`~repro.sparse.CSRMatrix`, :class:`~repro.operators.AssembledOperator`,
  :class:`~repro.operators.StencilOperator`) to and from named-array form,
  carrying the cached fingerprint so workers never re-hash the values.
* **The registry** — :class:`ShmRegistry` is the publisher-side bookkeeping:
  fingerprint-keyed, refcounted (each routed shard holds a reference),
  LRU-evicting past ``max_published`` (unlink on eviction), unlink-all on
  :meth:`~ShmRegistry.close`.  ``stats()`` reports segment count and bytes
  for the gateway's ``procs`` stats section.

Lifecycle notes: a POSIX shm segment persists until *unlinked*, independent
of the creating process's mmap — unlinking while workers are still attached
is safe (the memory is freed when the last attachment closes), which is why
eviction can unlink eagerly and let workers close on the evict message.
Attaching processes unregister the segment from their ``resource_tracker``
(attachers don't own it; without this, the first worker to exit would unlink
segments the gateway still serves — CPython < 3.13 has no ``track=False``).
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "ShmDescriptor",
    "ShmRegistry",
    "AttachedArrays",
    "publish_arrays",
    "attach_arrays",
    "operator_payload",
    "operator_from_payload",
    "segment_exists",
]

_ALIGN = 64
_PREFIX = "repro-shm"

#: segment names *created* by this process.  The resource tracker registers
#: a name on every open (create or attach); attachers must unregister (see
#: :func:`_untrack`), but the creator's single registration has to survive
#: same-process attaches (``segment_exists`` probes, local workers) or the
#: eventual ``unlink()`` double-unregisters and the tracker daemon logs a
#: KeyError at exit.
_OWNED: set[str] = set()

#: registry sequence numbers are process-global so two registries in one
#: process never mint the same segment name
_NEXT_SEQ = itertools.count(1)


def _inherited_tracker() -> bool:
    """Whether this process shares its parent's resource-tracker daemon.

    A process spawned by :mod:`multiprocessing` inherits the parent's
    tracker fd (set before any user code runs); a standalone process has no
    fd until its first registration.  Evaluated at import, before this
    module ever touches a segment — the basis for the :func:`_untrack`
    decision: with a *shared* daemon the publisher's registration already
    covers the segment and unregistering would orphan it; with a *private*
    daemon the attach-registration must be undone or this process's exit
    unlinks segments the publisher still serves (bpo-38119; CPython < 3.13
    has no ``track=False``).
    """
    try:
        from multiprocessing import resource_tracker

        return resource_tracker._resource_tracker._fd is not None
    except Exception:   # pragma: no cover - tracker internals vary
        return False


_SHARED_TRACKER = _inherited_tracker()


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


@dataclass(frozen=True)
class ShmDescriptor:
    """Everything a worker needs to map one published array set.

    Pickles in O(bytes of metadata) — the arrays themselves never travel.
    ``meta`` carries the operator-reconstruction recipe (kind, shape,
    fingerprint, format hints); ``layout`` is ``(name, dtype str, shape,
    offset)`` per array.
    """

    segment: str
    layout: tuple
    meta: dict
    nbytes: int


def publish_arrays(arrays: dict[str, np.ndarray], meta: dict,
                   name: str | None = None) -> tuple[ShmDescriptor, shared_memory.SharedMemory]:
    """Create a segment holding ``arrays``; returns (descriptor, open segment).

    The caller (the registry) keeps the returned ``SharedMemory`` open for
    the publication's lifetime and is responsible for ``unlink``.
    """
    layout = []
    offset = 0
    for key, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        offset = _aligned(offset)
        layout.append((key, str(arr.dtype), tuple(arr.shape), offset))
        offset += arr.nbytes
    total = max(1, offset)
    kwargs = {"create": True, "size": total}
    if name is not None:
        kwargs["name"] = name
    shm = shared_memory.SharedMemory(**kwargs)
    _OWNED.add(shm._name)
    for (key, dtype, shape, off), arr in zip(layout, arrays.values()):
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
        view[...] = arr
    descriptor = ShmDescriptor(segment=shm.name, layout=tuple(layout),
                               meta=dict(meta), nbytes=total)
    return descriptor, shm


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Unregister an *attached* segment from this process's resource tracker.

    Attachers don't own the segment; CPython < 3.13 registers it anyway and
    would unlink it when this process exits, yanking the pages out from
    under the publisher and its other workers.  A no-op when *this* process
    created the segment (the tracker cache is one set entry per name —
    unregistering here would orphan the creator's registration) and when
    the tracker daemon is shared with the publisher (spawned workers:
    the publisher's own registration is the same cache entry).
    """
    if _SHARED_TRACKER or shm._name in _OWNED:
        return
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:   # pragma: no cover - tracker internals vary
        pass


class AttachedArrays:
    """A worker-side attachment: read-only views plus the mapping handle.

    ``close()`` releases the views and the mapping; it is best-effort — if a
    consumer still holds a view (a cached plan that wasn't dropped), the
    mapping stays open and ``close`` reports ``False`` so the caller can
    retry after clearing its caches.  Never unlinks: attachments don't own
    the segment.
    """

    def __init__(self, descriptor: ShmDescriptor) -> None:
        self._shm = shared_memory.SharedMemory(name=descriptor.segment)
        _untrack(self._shm)
        self.descriptor = descriptor
        self.arrays: dict[str, np.ndarray] = {}
        for key, dtype, shape, offset in descriptor.layout:
            view = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf,
                              offset=offset)
            view.flags.writeable = False
            self.arrays[key] = view

    @property
    def nbytes(self) -> int:
        return self.descriptor.nbytes

    def close(self) -> bool:
        self.arrays = {}
        if self._shm is None:
            return True
        try:
            self._shm.close()
        except BufferError:
            # a numpy view is still exported somewhere; the caller clears
            # its operator/plan caches and retries
            return False
        self._shm = None
        return True


def attach_arrays(descriptor: ShmDescriptor) -> AttachedArrays:
    """Map a published descriptor into read-only numpy views."""
    return AttachedArrays(descriptor)


def segment_exists(name: str) -> bool:
    """Whether the named segment is still linked (tests: leak/eviction checks)."""
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    _untrack(shm)
    shm.close()
    return True


# ---------------------------------------------------------------------- #
# Operator <-> named-array payloads
# ---------------------------------------------------------------------- #
def operator_payload(operator) -> tuple[dict[str, np.ndarray], dict] | None:
    """``(arrays, meta)`` describing ``operator``, or ``None`` if the family
    has no zero-copy representation (composites fall back to in-process
    execution at the gateway).

    The fingerprint rides in ``meta`` so the reconstruction never re-hashes
    the value arrays, and — for dispatcher grouping — reconstructed and
    original operators key identically.
    """
    from ..operators.assembled import AssembledOperator
    from ..operators.stencil import StencilOperator
    from ..sparse.csr import CSRMatrix

    if isinstance(operator, AssembledOperator):
        csr = operator.csr
        arrays = {"values": csr.values, "indices": csr.indices,
                  "indptr": csr.indptr}
        meta = {"kind": "assembled", "shape": csr.shape,
                "format": operator.format, "chunk_size": operator.chunk_size,
                "fingerprint": operator.fingerprint()}
        return arrays, meta
    if isinstance(operator, CSRMatrix):
        arrays = {"values": operator.values, "indices": operator.indices,
                  "indptr": operator.indptr}
        meta = {"kind": "csr", "shape": operator.shape,
                "fingerprint": operator.fingerprint()}
        return arrays, meta
    if isinstance(operator, StencilOperator):
        # offsets/values are stored pre-sorted by linear offset; the
        # constructor's stable re-sort is the identity, so the rebuilt
        # operator is entry-for-entry the original
        arrays = {"offsets": operator.offsets, "values": operator.values}
        meta = {"kind": "stencil", "dims": operator.dims,
                "precision": operator.precision.label,
                "fingerprint": operator.fingerprint()}
        return arrays, meta
    return None


def operator_from_payload(arrays: dict[str, np.ndarray], meta: dict):
    """Rebuild the published operator from mapped views, zero-copy.

    CSR index/value views are already contiguous and correctly typed, so
    the constructors keep them as-is — the rebuilt operator's storage *is*
    the shared segment.  The cached fingerprint is pre-seeded.
    """
    kind = meta["kind"]
    if kind in ("csr", "assembled"):
        from ..sparse.csr import CSRMatrix

        csr = CSRMatrix(arrays["values"], arrays["indices"], arrays["indptr"],
                        tuple(meta["shape"]))
        csr._fingerprint = meta["fingerprint"]
        if kind == "csr":
            return csr
        from ..operators.assembled import AssembledOperator

        return AssembledOperator(csr, format=meta["format"],
                                 chunk_size=meta["chunk_size"])
    if kind == "stencil":
        from ..operators.stencil import StencilOperator

        op = StencilOperator(meta["dims"], arrays["offsets"], arrays["values"],
                             precision=meta["precision"])
        op._fingerprint = meta["fingerprint"]
        return op
    raise ValueError(f"unknown shared-operator kind {kind!r}")


# ---------------------------------------------------------------------- #
# Publisher-side registry
# ---------------------------------------------------------------------- #
@dataclass
class _Publication:
    descriptor: ShmDescriptor
    shm: shared_memory.SharedMemory
    refs: int = 0


class ShmRegistry:
    """Refcounted, LRU-bounded registry of published operator segments.

    One per gateway.  ``publish`` is idempotent per key (the operator
    fingerprint) and bumps the entry to MRU; ``acquire``/``release`` track
    live references (in-flight batches, shards holding the operator), and
    eviction only unlinks unreferenced entries.  ``close`` unlinks
    everything — after it, :func:`segment_exists` is ``False`` for every
    segment the registry ever created (the leak check in the tests).
    """

    def __init__(self, max_published: int = 64) -> None:
        if max_published < 1:
            raise ValueError("max_published must be >= 1")
        self.max_published = int(max_published)
        self._entries: OrderedDict[str, _Publication] = OrderedDict()
        self._lock = threading.Lock()
        self._published = 0
        self._evicted = 0

    def publish(self, key: str, arrays: dict[str, np.ndarray],
                meta: dict) -> ShmDescriptor:
        """Publish (or re-touch) the array set under ``key``; returns the
        descriptor.  Evicts LRU unreferenced entries past ``max_published``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                return entry.descriptor
            name = f"{_PREFIX}-{os.getpid()}-{next(_NEXT_SEQ)}-{key[:12]}"
        descriptor, shm = publish_arrays(arrays, meta, name=name)
        with self._lock:
            self._entries[key] = _Publication(descriptor, shm)
            self._published += 1
            evictable = [k for k, e in self._entries.items()
                         if e.refs <= 0 and k != key]
            doomed = []
            overflow = len(self._entries) - self.max_published
            for k in evictable[:max(0, overflow)]:
                doomed.append((k, self._entries.pop(k)))
                self._evicted += 1
        for _, entry in doomed:
            self._unlink(entry)
        return descriptor

    def descriptor(self, key: str) -> ShmDescriptor | None:
        with self._lock:
            entry = self._entries.get(key)
            return None if entry is None else entry.descriptor

    def acquire(self, key: str) -> None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry.refs += 1

    def release(self, key: str) -> None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry.refs = max(0, entry.refs - 1)

    def evict(self, key: str) -> ShmDescriptor | None:
        """Unlink ``key``'s segment now (regardless of LRU position); returns
        its descriptor so the caller can tell attached workers to close."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return None
            self._evicted += 1
        self._unlink(entry)
        return entry.descriptor

    @staticmethod
    def _unlink(entry: _Publication) -> None:
        name = entry.shm._name
        try:
            entry.shm.close()
            entry.shm.unlink()
        except FileNotFoundError:   # pragma: no cover - already gone
            pass
        _OWNED.discard(name)

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def segments(self) -> list[str]:
        with self._lock:
            return [e.descriptor.segment for e in self._entries.values()]

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "published": len(self._entries),
                "bytes": sum(e.descriptor.nbytes for e in self._entries.values()),
                "lifetime_published": self._published,
                "evicted": self._evicted,
            }

    def close(self) -> None:
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            self._unlink(entry)

"""Persistent worker pool and the shared thread budget.

The parallel execution layer runs the hot kernels wide across threads.  NumPy
releases the GIL inside its vectorized loops, so partitioned gathers,
multiplies and reductions genuinely overlap on multicore hardware; on a
single core the default ``REPRO_THREADS=1`` keeps every kernel on today's
serial path with zero overhead (one integer comparison per call).

Three pieces live here:

* **Thread configuration** — ``REPRO_THREADS`` (default ``1``; ``auto`` =
  the machine's core count) read at import time, overridable per process
  with :func:`set_threads` / scoped with :func:`use_threads`, and a
  thread-local :func:`force_threads` override that bypasses the size
  heuristics (tests and the autotuner use it to exercise partitioned
  kernels on small fixtures).
* **The pool** — a lazily created, persistent pool of daemon workers.
  :func:`run_tasks` executes a list of thunks with the *calling thread as
  worker zero* (task 0 runs inline, the rest on the pool), so one-task
  calls never pay a handoff and the caller's cache-warm slab stays local.
  Pool workers are marked: a kernel invoked *from* a worker always reports
  an effective thread count of 1, so parallel kernels can never nest.
* **The budget** — inter-request dispatcher workers and intra-kernel
  threads share one budget (the configured thread count).  Each concurrently
  executing batch registers as a *consumer* (:func:`pool_consumer`);
  :func:`effective_threads` divides the budget by the number of active
  consumers, which is the oversubscription guard: four dispatcher workers on
  an eight-thread budget each fan their kernels across two threads instead
  of 4 × 8.

Determinism is not this module's concern — the partitioned kernels compute
every output row exactly as the serial kernel does (see
:mod:`repro.par.kernels`) — but the pool keeps the *structural* guarantees
those kernels rely on: tasks never nest, exceptions propagate to the caller,
and a failed task never leaves the pool wedged.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager

__all__ = [
    "configured_threads",
    "effective_threads",
    "force_threads",
    "forced_threads",
    "parallel_enabled",
    "pool_consumer",
    "pool_stats",
    "run_tasks",
    "set_threads",
    "use_threads",
]


def _parse_threads(spec: str | int | None) -> int:
    """``REPRO_THREADS`` value → a positive thread count (``auto`` = cores)."""
    if spec is None:
        return 1
    if isinstance(spec, int):
        return max(1, spec)
    text = str(spec).strip().lower()
    if text in ("", "1"):
        return 1
    if text in ("auto", "all", "0"):
        return max(1, os.cpu_count() or 1)
    try:
        return max(1, int(text))
    except ValueError as exc:
        raise ValueError(f"REPRO_THREADS must be an integer or 'auto'; "
                         f"got {spec!r}") from exc


_CONFIGURED = _parse_threads(os.environ.get("REPRO_THREADS"))

_LOCK = threading.Lock()
_EXECUTOR: ThreadPoolExecutor | None = None
_EXECUTOR_SIZE = 0
_ACTIVE_CONSUMERS = 0
_PEAK_CONSUMERS = 0
_RUNS = 0
_TASKS = 0

#: set inside pool workers (and inline task execution) so kernels called from
#: a partition task never try to parallelize again
_TLS = threading.local()


def configured_threads() -> int:
    """The process-wide thread budget (``REPRO_THREADS`` / :func:`set_threads`)."""
    return _CONFIGURED


def set_threads(spec: str | int) -> int:
    """Set the thread budget (``'auto'`` = cores); returns the old budget."""
    global _CONFIGURED
    previous = _CONFIGURED
    _CONFIGURED = _parse_threads(spec)
    return previous


@contextmanager
def use_threads(spec: str | int):
    """Scoped thread-budget override (process-wide, like ``set_threads``)."""
    previous = set_threads(spec)
    try:
        yield
    finally:
        set_threads(previous)


def parallel_enabled() -> bool:
    """Whether any kernel could run wider than one thread right now."""
    return _CONFIGURED > 1


# ---------------------------------------------------------------------- #
# Thread-local force override (tests / the thread-count autotuner)
# ---------------------------------------------------------------------- #
def forced_threads() -> int | None:
    """The calling thread's forced thread count, or ``None``."""
    return getattr(_TLS, "forced", None)


@contextmanager
def force_threads(n: int):
    """Pin the effective thread count for this thread, bypassing the
    per-kernel size heuristics and autotuned verdicts (the partitioners
    still clamp to the available work, so tiny inputs stay correct)."""
    previous = getattr(_TLS, "forced", None)
    _TLS.forced = max(1, int(n))
    try:
        yield
    finally:
        _TLS.forced = previous


# ---------------------------------------------------------------------- #
# Budget sharing between dispatcher workers and intra-kernel threads
# ---------------------------------------------------------------------- #
@contextmanager
def pool_consumer():
    """Register the calling thread as one budget consumer for the scope.

    The :class:`~repro.serve.BatchDispatcher` wraps each batch execution in
    this: with ``c`` batches in flight on a budget of ``T`` threads, each
    batch's kernels fan across ``max(1, T // c)`` threads, so the two layers
    of parallelism never oversubscribe the machine.
    """
    global _ACTIVE_CONSUMERS, _PEAK_CONSUMERS
    with _LOCK:
        _ACTIVE_CONSUMERS += 1
        _PEAK_CONSUMERS = max(_PEAK_CONSUMERS, _ACTIVE_CONSUMERS)
    try:
        yield
    finally:
        with _LOCK:
            _ACTIVE_CONSUMERS -= 1


def active_consumers() -> int:
    """Number of currently registered budget consumers."""
    return _ACTIVE_CONSUMERS


def effective_threads() -> int:
    """Threads a kernel invoked *now*, on *this* thread, may fan across.

    The forced override wins; kernels running inside a pool worker get 1
    (no nesting); otherwise the configured budget divided by the number of
    active consumers (at least one share each).
    """
    forced = getattr(_TLS, "forced", None)
    if forced is not None:
        return forced
    if getattr(_TLS, "in_worker", False):
        return 1
    budget = _CONFIGURED
    if budget <= 1:
        return 1
    active = _ACTIVE_CONSUMERS
    return budget if active <= 1 else max(1, budget // active)


# ---------------------------------------------------------------------- #
# The persistent pool
# ---------------------------------------------------------------------- #
def _worker_init() -> None:
    _TLS.in_worker = True


def _ensure_executor_locked(nworkers: int) -> ThreadPoolExecutor:
    """The shared executor, grown (by replacement) to at least ``nworkers``.

    Caller holds ``_LOCK``.  Submission happens under the same lock
    acquisition (see :func:`run_tasks`), so no thread can submit to a
    retired executor; futures already submitted to one still complete on
    its threads (``shutdown(wait=False)`` only prevents new submissions).
    """
    global _EXECUTOR, _EXECUTOR_SIZE
    if _EXECUTOR is None or _EXECUTOR_SIZE < nworkers:
        if _EXECUTOR is not None:
            _EXECUTOR.shutdown(wait=False)
        _EXECUTOR = ThreadPoolExecutor(
            max_workers=nworkers, thread_name_prefix="repro-par",
            initializer=_worker_init)
        _EXECUTOR_SIZE = nworkers
    return _EXECUTOR


def run_tasks(tasks) -> None:
    """Execute every thunk in ``tasks``; the caller runs task 0 inline.

    Blocks until all tasks finish.  The first exception (pool tasks checked
    in order, then the inline task's) is re-raised in the caller.  Tasks
    must be independent — the partitioned kernels guarantee it by writing
    to disjoint output slices.
    """
    global _RUNS, _TASKS
    if not tasks:
        return
    if len(tasks) == 1:
        with _LOCK:
            _RUNS += 1
            _TASKS += 1
        tasks[0]()
        return
    with _LOCK:
        _RUNS += 1
        _TASKS += len(tasks)
        # submit under the lock: concurrent callers requesting a larger pool
        # replace the executor, and a retired executor rejects submissions
        executor = _ensure_executor_locked(len(tasks) - 1)
        futures: list[Future] = [executor.submit(task) for task in tasks[1:]]
    inline_exc: BaseException | None = None
    try:
        tasks[0]()
    except BaseException as exc:   # noqa: BLE001 - re-raised after the join
        inline_exc = exc
    # join everything before raising so no task still runs when the caller
    # resumes (the kernels reuse per-thread buffers across calls)
    pool_exc: BaseException | None = None
    for future in futures:
        exc = future.exception()
        if exc is not None and pool_exc is None:
            pool_exc = exc
    if pool_exc is not None:
        raise pool_exc
    if inline_exc is not None:
        raise inline_exc


def pool_stats() -> dict:
    """Budget, occupancy and lifetime counters (dispatcher stats surface
    these as the ``pool`` block)."""
    with _LOCK:
        return {
            "budget": _CONFIGURED,
            "active_consumers": _ACTIVE_CONSUMERS,
            "peak_consumers": _PEAK_CONSUMERS,
            "workers": _EXECUTOR_SIZE,
            "parallel_runs": _RUNS,
            "tasks_executed": _TASKS,
        }

"""Deterministic thread-parallel execution layer.

Runs the hot kernels — CSR/sliced-ELL SpMV/SpMM, the fused residual
updates, the matrix-free stencil sweeps, and the within-level triangular
substitutions — across a persistent worker pool with **bit-identical
results**: every partition computes its output rows with exactly the serial
kernel's arithmetic and writes to disjoint slices, so the ``REPRO_THREADS``
knob changes wall-clock, never a single bit of any result.

Layout:

* :mod:`repro.par.pool` — the worker pool, the ``REPRO_THREADS``
  configuration (default ``1`` = today's serial behavior; ``auto`` = the
  core count), and the shared budget that keeps dispatcher workers and
  intra-kernel threads from oversubscribing the machine.
* :mod:`repro.par.partition` — nnz-balanced row/slab partition plans,
  cached per storage object (:class:`ParState`), plus the per-kernel
  thread-count resolution (forced override → autotuned verdict → size
  heuristic).
* :mod:`repro.par.kernels` — the partitioned executors the ``fast``
  backend dispatches to.
* :mod:`repro.par.procpool` — the ``REPRO_PROCS`` process tier: persistent
  spawn-start workers executing whole batched solves past the GIL, fed by
  :class:`repro.serve.ShardedGateway`.
* :mod:`repro.par.shm` — zero-copy shared-memory operator storage for the
  process tier (publish once, attach-on-first-use, refcounted registry).

The :mod:`repro.plans` layer prebuilds partitions and autotunes
per-(fingerprint, kernel) thread counts at plan-compile time, so small
operators stay serial and the solve hot loop never partitions.
"""

from .partition import (
    MIN_WORK_PER_THREAD,
    ParState,
    balanced_boundaries,
    csr_partition,
    csr_slabs_from_boundaries,
    kernel_threads,
    level_partition,
    par_state,
    span_partition,
)
from .procpool import (
    ExpiredRequest,
    ProcPool,
    WorkerDied,
    WorkerError,
    WorkerHung,
    configured_procs,
    resolve_procs,
    set_procs,
    use_procs,
)
from .shm import (
    AttachedArrays,
    ShmDescriptor,
    ShmRegistry,
    attach_arrays,
    operator_from_payload,
    operator_payload,
    publish_arrays,
    segment_exists,
)
from .pool import (
    active_consumers,
    configured_threads,
    effective_threads,
    force_threads,
    forced_threads,
    parallel_enabled,
    pool_consumer,
    pool_stats,
    run_tasks,
    set_threads,
    use_threads,
)

__all__ = [
    "MIN_WORK_PER_THREAD",
    "AttachedArrays",
    "ExpiredRequest",
    "ParState",
    "ProcPool",
    "ShmDescriptor",
    "ShmRegistry",
    "WorkerDied",
    "WorkerError",
    "WorkerHung",
    "active_consumers",
    "attach_arrays",
    "balanced_boundaries",
    "configured_procs",
    "configured_threads",
    "csr_partition",
    "csr_slabs_from_boundaries",
    "effective_threads",
    "force_threads",
    "forced_threads",
    "kernel_threads",
    "level_partition",
    "operator_from_payload",
    "operator_payload",
    "par_state",
    "parallel_enabled",
    "pool_consumer",
    "pool_stats",
    "publish_arrays",
    "resolve_procs",
    "run_tasks",
    "segment_exists",
    "set_procs",
    "set_threads",
    "span_partition",
    "use_procs",
    "use_threads",
]

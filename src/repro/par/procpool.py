"""Persistent process-pool execution tier (``REPRO_PROCS``).

PR 5's thread pool runs the *kernels* wide, but every Python-level step —
level scheduling, plan dispatch, Givens rotations, the solver loop itself —
serializes on the GIL, capping useful Python work at roughly one core per
host.  This module runs whole batched solves in **worker processes**: each
worker imports the package fresh (spawn start method — no forked locks, no
inherited thread state), attaches operator storage zero-copy from
:mod:`repro.par.shm`, warms its preconditioner factors / level schedules /
partitions from the ``REPRO_ARTIFACTS`` store instead of refactorizing, and
then serves batches for the fingerprints routed to it.

Configuration mirrors ``REPRO_THREADS``: ``REPRO_PROCS`` (default ``1`` =
in-process execution, ``auto`` = the core count), overridable with
:func:`set_procs` / scoped with :func:`use_procs`.  The knob is read by
:class:`repro.serve.ShardedGateway`; this module never spawns unless a
gateway asks for more than one process.

Determinism is the PR 5 contract one level up: a worker executes exactly
the arithmetic the in-process dispatcher would — same operator bytes (the
shared segment), same batch composition (the gateway groups per fingerprint
before the queue hop), same solver construction — so results are
bit-identical for every ``REPRO_PROCS`` value.

Protocol (one queue hop per *batch*, never per request):

==========================  =============================================
to worker                   from worker
==========================  =============================================
``("solve", id, fp, setup,  ``("result", wid, id, [SolveResult |
rhs_block, deadlines,       ExpiredRequest...], stats-snapshot)`` or
degrade)``                  ``("error", wid, id, kind, type-name, message)``
``("evict", fp)``           —  (drops solver/plans, closes the mapping)
``("stats", token)``        ``("stats", wid, token, snapshot)``
``("stop",)``               ``("stopped", wid)`` then exit
—                           ``("hb", wid)``  (idle heartbeat tick)
==========================  =============================================

``setup`` travels only on a worker's first batch for a fingerprint
(attach-on-first-use): a :class:`~repro.par.shm.ShmDescriptor` for
publishable operators, or a one-time pickled operator for families with no
shared-memory form.  ``deadlines`` are per-request *wall-clock* absolutes
(``time.time()`` — monotonic clocks are not comparable across processes);
the worker checks them on dequeue and returns an :class:`ExpiredRequest`
marker instead of burning solve time on a request nobody is waiting for.
``degrade`` asks the worker to start the batch one precision tier lower
(the gateway's brownout policy; the recovery ladder re-escalates if the
cheap tier stagnates).

Worker death (injected via :func:`repro.faults.maybe_kill_process`, or
real) fails the in-flight batches with :class:`WorkerDied`; the gateway
respawns the slot and retries under its retry policy.  A worker that is
*alive but silent* — wedged in a C-level stall, injected via
:func:`repro.faults.maybe_hang` — is caught by the **watchdog**: every
worker heartbeats through the response queue (piggybacked on every reply,
plus idle ticks every ``heartbeat_interval``), and the collector classifies
a worker with work outstanding and no beat for ``hang_timeout`` seconds as
:class:`WorkerHung` (a :class:`WorkerDied` subtype, so the gateway's
respawn/retry path needs no new cases), SIGKILLs it, and fails its in-flight
batches.  Respawned workers do not reinstall a gateway-shipped fault plan —
a replacement worker models a repaired host (``REPRO_FAULTS`` in the
environment still applies everywhere); first-generation workers offset the
shipped plan's seed by their worker id so a fleet does not fire faults in
lockstep.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import threading
import time

import numpy as np
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "ExpiredRequest",
    "ProcPool",
    "WorkerDied",
    "WorkerError",
    "WorkerHung",
    "WorkerInit",
    "configured_procs",
    "resolve_procs",
    "set_procs",
    "use_procs",
]


def _parse_procs(spec: str | int | None) -> int:
    """``REPRO_PROCS`` value → a positive process count (``auto`` = cores)."""
    if spec is None:
        return 1
    if isinstance(spec, int):
        return max(1, spec)
    text = str(spec).strip().lower()
    if text in ("", "1"):
        return 1
    if text in ("auto", "all", "0"):
        return max(1, os.cpu_count() or 1)
    try:
        return max(1, int(text))
    except ValueError as exc:
        raise ValueError(f"REPRO_PROCS must be an integer or 'auto'; "
                         f"got {spec!r}") from exc


_CONFIGURED = _parse_procs(os.environ.get("REPRO_PROCS"))


def configured_procs() -> int:
    """The process-wide worker-process budget (``REPRO_PROCS`` / :func:`set_procs`)."""
    return _CONFIGURED


def set_procs(spec: str | int) -> int:
    """Set the process budget (``'auto'`` = cores); returns the old budget."""
    global _CONFIGURED
    previous = _CONFIGURED
    _CONFIGURED = _parse_procs(spec)
    return previous


@contextmanager
def use_procs(spec: str | int):
    """Scoped process-budget override (process-wide, like ``set_procs``)."""
    previous = set_procs(spec)
    try:
        yield
    finally:
        set_procs(previous)


def resolve_procs(procs: str | int | None) -> int:
    """An explicit request (int/'auto') or ``None`` → the configured budget."""
    return _CONFIGURED if procs is None else _parse_procs(procs)


class WorkerDied(RuntimeError):
    """A worker process exited while batches were in flight on it."""

    def __init__(self, worker_id: int, exitcode: int | None = None) -> None:
        super().__init__(f"worker {worker_id} died "
                         f"(exitcode={exitcode!r}) with batches in flight")
        self.worker_id = worker_id
        self.exitcode = exitcode


class WorkerHung(WorkerDied):
    """A worker stayed alive but heartbeat-silent past ``hang_timeout``.

    Raised by the watchdog after SIGKILLing the wedged process; subclassing
    :class:`WorkerDied` keeps the gateway's respawn/retry path unchanged.
    """

    def __init__(self, worker_id: int, silent_s: float) -> None:
        RuntimeError.__init__(
            self, f"worker {worker_id} hung: alive but heartbeat-silent for "
                  f"{silent_s:.2f}s with batches in flight (killed)")
        self.worker_id = worker_id
        self.exitcode = None
        self.silent_s = silent_s


@dataclass(frozen=True)
class ExpiredRequest:
    """Per-request marker in a result list: its deadline passed before the
    worker dequeued the batch, so no solve was attempted (picklable)."""

    overshoot_s: float


class WorkerError(RuntimeError):
    """An exception raised inside a worker, relayed by (type, message).

    ``kind`` distinguishes ``"setup"`` failures (solver construction — feeds
    the gateway's per-fingerprint circuit breaker) from ``"solve"`` failures
    (retryable like any died batch) and ``"stale"`` bookkeeping misses (the
    worker never received the fingerprint's setup because the batch carrying
    it died first — the caller forgets the fingerprint and retries, without
    charging the breaker).
    """

    def __init__(self, kind: str, type_name: str, message: str) -> None:
        super().__init__(f"worker {kind} error: {type_name}: {message}")
        self.kind = kind
        self.type_name = type_name


@dataclass(frozen=True)
class WorkerInit:
    """Everything a spawned worker needs that is not in the environment.

    Spawn inherits ``os.environ``, but process-wide *programmatic* overrides
    (``set_artifacts_dir``, ``set_threads``, an active :mod:`repro.faults`
    plan installed via ``inject()``) do not cross the spawn boundary — they
    are shipped explicitly so a worker behaves like the parent would.
    """

    config: object                      # F3RConfig (frozen dataclass)
    preconditioner: str | None = "auto"
    nblocks: int | None = None
    alpha: float = 1.0
    backend: str | None = None
    artifacts_dir: str | None = None
    threads: int = 1
    fault_spec: str | None = None


# ---------------------------------------------------------------------- #
# Worker process main
# ---------------------------------------------------------------------- #
def _worker_stats_snapshot(state: dict) -> dict:
    """Point-in-time worker counters shipped with every result message."""
    from ..cache import cold_start_stats
    from ..plans import plan_cache_stats

    artifacts = cold_start_stats()
    warm = {kind: counts.get("hits", 0)
            for kind, counts in artifacts.get("by_kind", {}).items()}
    return {
        "batches": state["batches"],
        "requests": state["requests"],
        "shm_attaches": state["shm_attaches"],
        "shm_bytes": state["shm_bytes"],
        "pickled_setups": state["pickled_setups"],
        "warm_from_artifacts": warm,
        "artifact_saved_ms": round(artifacts.get("saved_ms", 0.0), 3),
        "plan_cache": plan_cache_stats().get("cached", 0),
        "escalations": state["escalations"],
        "expired": state["expired"],
        "degraded_batches": state["degraded_batches"],
    }


def _worker_drop_fingerprint(state: dict, fp: str) -> None:
    """Release everything a fingerprint pinned: solver, plans, shm views."""
    import gc as _gc

    from ..plans import drop_plans_for

    state["solvers"].pop(fp, None)
    state["operators"].pop(fp, None)
    drop_plans_for(fp)
    attachment = state["attachments"].pop(fp, None)
    if attachment is not None:
        _gc.collect()
        if not attachment.close():
            # a view is still referenced somewhere; park it for the final
            # sweep at shutdown rather than leaking the mapping silently
            state["stubborn"].append(attachment)


class _Heartbeat:
    """Worker-side heartbeat: idle ticks on the response queue.

    A daemon thread puts ``("hb", wid)`` every ``interval`` seconds so the
    collector can tell *alive-but-wedged* from *alive-and-slow*.
    :meth:`wedge` suppresses ticks for a duration — the hang-injection hook
    models a whole-process stall (which would stop a real heartbeat thread
    too, since a C-level wedge holds the GIL).
    """

    def __init__(self, resp_q, worker_id: int, interval: float) -> None:
        self._q = resp_q
        self._wid = worker_id
        self._interval = interval
        self._wedged_until = 0.0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"repro-proc-{worker_id}-hb")

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def wedge(self, duration: float) -> None:
        self._wedged_until = max(self._wedged_until,
                                 time.monotonic() + float(duration))

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if time.monotonic() < self._wedged_until:
                continue
            try:
                self._q.put(("hb", self._wid))
            except (ValueError, OSError):   # pragma: no cover - teardown race
                return


def _worker_main(worker_id: int, init: WorkerInit, req_q, resp_q,
                 hb_interval: float = 1.0) -> None:
    """Entry point of one spawned worker (module-level for picklability)."""
    from .. import faults
    from ..cache import set_artifacts_dir
    from ..core import F3RSolver, degraded_variant
    from ..backends import use_backend
    from .pool import set_threads
    from .shm import attach_arrays, operator_from_payload

    set_threads(init.threads)
    if init.artifacts_dir is not None:
        set_artifacts_dir(init.artifacts_dir)
    if init.fault_spec:
        plan = faults.install_from_env(init.fault_spec)
        if plan is not None:
            # decorrelate the fleet: identical seeds would fire the same
            # fault at the same call index in every worker (lockstep), which
            # no real deployment does
            plan.seed += 7919 * worker_id

    heartbeat = None
    if hb_interval and hb_interval > 0:
        heartbeat = _Heartbeat(resp_q, worker_id, hb_interval)
        heartbeat.start()

    state = {
        "solvers": {}, "operators": {}, "attachments": {}, "stubborn": [],
        "batches": 0, "requests": 0, "shm_attaches": 0, "shm_bytes": 0,
        "pickled_setups": 0, "escalations": 0, "expired": 0,
        "degraded_batches": 0,
    }

    def build_solver(fp: str, setup) -> "F3RSolver":
        solver = state["solvers"].get(fp)
        if solver is not None:
            return solver
        if setup is None:
            raise KeyError(f"no setup shipped for unknown fingerprint {fp}")
        if "descriptor" in setup:
            attachment = attach_arrays(setup["descriptor"])
            state["attachments"][fp] = attachment
            state["shm_attaches"] += 1
            state["shm_bytes"] += attachment.nbytes
            operator = operator_from_payload(attachment.arrays,
                                             setup["descriptor"].meta)
        else:
            operator = pickle.loads(setup["pickle"])
            state["pickled_setups"] += 1
        state["operators"][fp] = operator
        solver = F3RSolver(operator, preconditioner=init.preconditioner or "auto",
                           config=init.config, nblocks=init.nblocks,
                           alpha=init.alpha)
        state["solvers"][fp] = solver
        return solver

    while True:
        message = req_q.get()
        op = message[0]
        if op == "stop":
            if heartbeat is not None:
                heartbeat.stop()
            for fp in list(state["attachments"]):
                _worker_drop_fingerprint(state, fp)
            resp_q.put(("stopped", worker_id))
            return
        if op == "evict":
            _worker_drop_fingerprint(state, message[1])
            continue
        if op == "stats":
            resp_q.put(("stats", worker_id, message[1],
                        _worker_stats_snapshot(state)))
            continue
        if op == "warm":
            _, batch_id, fp, setup = message
            try:
                build_solver(fp, setup)
            except BaseException as exc:   # noqa: BLE001 - relayed
                resp_q.put(("error", worker_id, batch_id, "setup",
                            type(exc).__name__, str(exc)))
            else:
                resp_q.put(("result", worker_id, batch_id, [],
                            _worker_stats_snapshot(state)))
            continue
        if op != "solve":      # pragma: no cover - protocol guard
            continue
        _, batch_id, fp, setup, rhs_block, deadlines, degrade = message
        # worker-side deadline enforcement: a batch that sat in the shard
        # queue past its requests' deadlines must not burn solve time —
        # wall-clock absolutes, because monotonic clocks are per-process
        now = time.time()
        slots: list = [None] * rhs_block.shape[1]
        live = []
        for i in range(rhs_block.shape[1]):
            wall = deadlines[i] if deadlines is not None else None
            if wall is not None and now > wall:
                slots[i] = ExpiredRequest(overshoot_s=now - wall)
                state["expired"] += 1
            else:
                live.append(i)
        if not live:
            resp_q.put(("result", worker_id, batch_id, slots,
                        _worker_stats_snapshot(state)))
            continue
        # injected process death: a FaultPlan shipped in WorkerInit (or from
        # REPRO_FAULTS) can hard-kill this worker here, before any work, so
        # the gateway's death-detection and retry path is exercised against
        # a real process exit rather than a raised exception
        faults.maybe_kill_process("gateway.worker")
        # injected hang: wedge the whole worker (heartbeat suppressed) so the
        # watchdog path is exercised; injected latency models a merely *slow*
        # worker, whose heartbeat keeps ticking and must NOT trip the watchdog
        faults.maybe_hang("gateway.worker",
                          wedge=heartbeat.wedge if heartbeat else None)
        faults.maybe_delay("gateway.latency")
        if setup is None and fp not in state["solvers"]:
            # the caller believed this worker knew the fingerprint but the
            # setup never arrived (a predecessor batch died with it): a
            # bookkeeping staleness, not a setup failure — the caller
            # forgets the fingerprint and the retry reships the setup
            resp_q.put(("error", worker_id, batch_id, "stale", "KeyError",
                        f"no setup shipped for unknown fingerprint {fp}"))
            continue
        try:
            solver = build_solver(fp, setup)
        except BaseException as exc:   # noqa: BLE001 - relayed to the gateway
            resp_q.put(("error", worker_id, batch_id, "setup",
                        type(exc).__name__, str(exc)))
            continue
        if degrade:
            lower = degraded_variant(init.config.variant)
            if lower is not None:
                solver = solver.degraded_sibling(lower)
                state["degraded_batches"] += 1
        block = (rhs_block if len(live) == rhs_block.shape[1]
                 else np.ascontiguousarray(rhs_block[:, live]))
        try:
            if init.backend is not None:
                with use_backend(init.backend):
                    batch = solver.solve_batch(block)
            else:
                batch = solver.solve_batch(block)
        except BaseException as exc:   # noqa: BLE001 - relayed to the gateway
            resp_q.put(("error", worker_id, batch_id, "solve",
                        type(exc).__name__, str(exc)))
            continue
        state["batches"] += 1
        state["requests"] += len(live)
        for i, result in zip(live, batch.results):
            slots[i] = result
            if result.recovery is not None:
                state["escalations"] += int(result.recovery.escalations)
        resp_q.put(("result", worker_id, batch_id, slots,
                    _worker_stats_snapshot(state)))


# ---------------------------------------------------------------------- #
# The pool
# ---------------------------------------------------------------------- #
@dataclass
class _Slot:
    process: object = None
    req_q: object = None
    generation: int = 0
    known: set = field(default_factory=set)
    outstanding: int = 0
    deaths: int = 0
    hangs: int = 0
    last_beat: float = 0.0
    heard: bool = False     # any message this generation (arms the watchdog)


class ProcPool:
    """``nprocs`` persistent spawn-start worker processes plus a collector.

    The gateway is the only intended caller: :meth:`submit_batch` performs
    the one queue hop per batch, resolving the returned future with
    ``(results, stats-snapshot)`` from the worker or failing it with
    :class:`WorkerDied` / :class:`WorkerError`.  Setup payloads are shipped
    once per (worker generation, fingerprint) via ``setup_factory`` —
    attach-on-first-use, so the hot path carries only the fingerprint.

    ``hang_timeout`` arms the watchdog: a worker with batches outstanding
    and no heartbeat for that many seconds is classified as
    :class:`WorkerHung`, SIGKILLed, and its in-flight batches failed (the
    caller's retry path re-routes them).  The tight timeout applies only
    once a worker generation has produced its first message — spawn +
    import can exceed it, and a still-starting worker is not hung; a
    never-heard generation is still classified after an additional
    ``_STARTUP_GRACE`` seconds, and a worker that *crashes* during startup
    is caught by death detection.
    ``heartbeat_interval`` is the worker's idle-tick period (default:
    ``min(1, hang_timeout / 4)``); ``hang_timeout=None`` disables the
    watchdog entirely.
    """

    _POLL = 0.05
    #: extra silence allowed before a never-heard worker generation is
    #: classified (spawn + package import can dwarf a tight hang_timeout)
    _STARTUP_GRACE = 20.0

    def __init__(self, nprocs: int, init: WorkerInit,
                 hang_timeout: float | None = 30.0,
                 heartbeat_interval: float | None = None) -> None:
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if hang_timeout is not None and hang_timeout <= 0:
            raise ValueError("hang_timeout must be > 0 (or None to disable)")
        self.init = init
        self.hang_timeout = hang_timeout
        if heartbeat_interval is None:
            heartbeat_interval = (min(1.0, hang_timeout / 4.0)
                                  if hang_timeout is not None else 1.0)
        self.heartbeat_interval = float(heartbeat_interval)
        self._ctx = mp.get_context("spawn")
        self._resp_q = self._ctx.Queue()
        self._slots = [_Slot() for _ in range(nprocs)]
        self._lock = threading.Lock()
        self._pending: dict[int, tuple[Future, int]] = {}   # batch_id -> (future, worker)
        self._next_batch = 0
        self._closed = False
        self.stats_snapshots: dict[int, dict] = {}
        self.deaths = 0
        self.hangs = 0
        for wid in range(nprocs):
            self._spawn(wid, fault_spec=init.fault_spec)
        self._collector = threading.Thread(target=self._collect,
                                           name="repro-procpool-collector",
                                           daemon=True)
        self._collector.start()

    # -------------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self._slots)

    def _spawn(self, worker_id: int, fault_spec: str | None) -> None:
        slot = self._slots[worker_id]
        init = self.init if fault_spec == self.init.fault_spec else \
            WorkerInit(**{**self.init.__dict__, "fault_spec": fault_spec})
        slot.req_q = self._ctx.Queue()
        slot.process = self._ctx.Process(
            target=_worker_main, args=(worker_id, init, slot.req_q,
                                       self._resp_q, self.heartbeat_interval),
            name=f"repro-proc-{worker_id}", daemon=True)
        slot.process.start()
        slot.known = set()
        slot.last_beat = time.monotonic()
        slot.heard = False

    def alive(self, worker_id: int) -> bool:
        process = self._slots[worker_id].process
        return process is not None and process.is_alive()

    def ensure_worker(self, worker_id: int) -> None:
        """Respawn a dead slot (fresh generation; no fault plan reinstalled)."""
        with self._lock:
            if self._closed or self.alive(worker_id):
                return
            slot = self._slots[worker_id]
            slot.generation += 1
            slot.deaths += 1
            self.deaths += 1
            self._spawn(worker_id, fault_spec=None)

    def outstanding(self, worker_id: int) -> int:
        return self._slots[worker_id].outstanding

    def queue_depths(self) -> dict[int, int]:
        return {wid: slot.outstanding for wid, slot in enumerate(self._slots)}

    # -------------------------------------------------------------- #
    def submit_batch(self, worker_id: int, fp: str, rhs_block,
                     setup_factory, deadlines=None,
                     degrade: bool = False) -> Future:
        """One queue hop: dispatch a whole batch to ``worker_id``.

        ``setup_factory()`` is invoked only when this worker generation has
        never seen ``fp`` — it returns the setup payload (descriptor or
        pickled operator) that rides along with the first batch.
        ``deadlines`` are optional per-request *wall-clock* absolutes the
        worker enforces on dequeue; ``degrade`` asks the worker to start
        this batch one precision tier lower (brownout).
        """
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("ProcPool is closed")
            slot = self._slots[worker_id]
            if slot.process is None or not slot.process.is_alive():
                raise WorkerDied(worker_id, getattr(slot.process, "exitcode", None))
            batch_id = self._next_batch
            self._next_batch += 1
            setup = None
            if fp not in slot.known:
                setup = setup_factory()
                slot.known.add(fp)
            self._pending[batch_id] = (future, worker_id)
            slot.outstanding += 1
            # enqueue under the lock: concurrent submitters (the gateway's
            # retry timers) must not slip a no-setup batch into the queue
            # ahead of the batch that carries the fingerprint's setup
            slot.req_q.put(("solve", batch_id, fp, setup, rhs_block,
                            deadlines, degrade))
        return future

    def submit_warm(self, worker_id: int, fp: str, setup_factory) -> Future:
        """Build the solver for ``fp`` on ``worker_id`` without solving.

        The gateway's prewarm path: the worker factorizes (or warms from the
        artifact store) before traffic arrives.  Resolves to ``([], stats)``.
        """
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("ProcPool is closed")
            slot = self._slots[worker_id]
            if slot.process is None or not slot.process.is_alive():
                raise WorkerDied(worker_id, getattr(slot.process, "exitcode", None))
            batch_id = self._next_batch
            self._next_batch += 1
            setup = None
            if fp not in slot.known:
                setup = setup_factory()
                slot.known.add(fp)
            self._pending[batch_id] = (future, worker_id)
            slot.outstanding += 1
            slot.req_q.put(("warm", batch_id, fp, setup))
        return future

    def forget(self, fp: str) -> None:
        """Drop ``fp`` from every slot's known set so the next batch reships
        its setup (recovery from a ``stale`` worker error — the setup-carrying
        batch died before the worker could build the solver)."""
        with self._lock:
            for slot in self._slots:
                slot.known.discard(fp)

    def evict(self, fp: str) -> None:
        """Tell every worker that attached ``fp`` to drop and close it."""
        with self._lock:
            targets = [slot for slot in self._slots if fp in slot.known]
            for slot in targets:
                slot.known.discard(fp)
        for slot in targets:
            if slot.process is not None and slot.process.is_alive():
                slot.req_q.put(("evict", fp))

    def request_stats(self, timeout: float = 5.0) -> dict[int, dict]:
        """Fresh stats snapshots from every live worker (blocking poll)."""
        token = f"stats-{time.monotonic_ns()}"
        expected = 0
        for slot in self._slots:
            if slot.process is not None and slot.process.is_alive():
                slot.req_q.put(("stats", token))
                expected += 1
        deadline = time.monotonic() + timeout
        while expected > 0 and time.monotonic() < deadline:
            with self._lock:
                got = sum(1 for snap in self.stats_snapshots.values()
                          if snap.get("__token__") == token)
            if got >= expected:
                break
            time.sleep(self._POLL)
        return dict(self.stats_snapshots)

    # -------------------------------------------------------------- #
    def _collect(self) -> None:
        """Collector thread: route responses, detect deaths, watch for hangs."""
        import queue as _queue

        while True:
            try:
                message = self._resp_q.get(timeout=self._POLL)
            except _queue.Empty:
                message = None
            except (EOFError, OSError):   # pragma: no cover - teardown race
                return
            if message is not None:
                # every message is a heartbeat: index 1 is the worker id for
                # all response types, including the dedicated ("hb", wid) tick
                wid = message[1]
                if 0 <= wid < len(self._slots):
                    self._slots[wid].last_beat = time.monotonic()
                    self._slots[wid].heard = True
                self._handle(message)
            dead = []
            hung = []
            now = time.monotonic()
            with self._lock:
                if self._closed and not self._pending:
                    return
                for batch_id, (future, wid) in list(self._pending.items()):
                    slot = self._slots[wid]
                    process = slot.process
                    if process is not None and not process.is_alive():
                        dead.append((batch_id, future, wid, process.exitcode))
                        del self._pending[batch_id]
                        slot.outstanding -= 1
                if self.hang_timeout is not None:
                    for wid, slot in enumerate(self._slots):
                        process = slot.process
                        if (slot.outstanding <= 0 or process is None
                                or not process.is_alive()):
                            continue
                        # the tight timeout applies only once this generation
                        # has produced any message: spawn + import can exceed
                        # it, and a still-starting worker is not hung.  A
                        # never-heard worker still gets classified after the
                        # startup grace, so a wedge before the first beat
                        # cannot strand its batches forever.
                        silent = now - slot.last_beat
                        limit = (self.hang_timeout if slot.heard
                                 else self.hang_timeout + self._STARTUP_GRACE)
                        if silent <= limit:
                            continue
                        # alive but heartbeat-silent past the timeout with
                        # work in flight: classify as hung, reap its batches
                        victims = [(bid, self._pending.pop(bid)[0])
                                   for bid in list(self._pending)
                                   if self._pending[bid][1] == wid]
                        slot.outstanding = 0
                        slot.hangs += 1
                        self.hangs += 1
                        slot.last_beat = now
                        hung.append((process, wid, silent,
                                     [f for _, f in victims]))
            for _, future, wid, exitcode in dead:
                future.set_exception(WorkerDied(wid, exitcode))
            for process, wid, silent, futures in hung:
                process.kill()          # SIGKILL: a wedged worker won't exit
                # reap before failing the futures so the respawn path
                # (ensure_worker, from the caller's retry) sees a dead slot
                process.join(timeout=2.0)
                for future in futures:
                    future.set_exception(WorkerHung(wid, silent))

    def _handle(self, message) -> None:
        op = message[0]
        if op == "result":
            _, wid, batch_id, results, snapshot = message
            with self._lock:
                self.stats_snapshots[wid] = snapshot
                entry = self._pending.pop(batch_id, None)
                if entry is not None:
                    self._slots[wid].outstanding -= 1
            if entry is not None:
                entry[0].set_result((results, snapshot))
        elif op == "error":
            _, wid, batch_id, kind, type_name, text = message
            with self._lock:
                entry = self._pending.pop(batch_id, None)
                if entry is not None:
                    self._slots[wid].outstanding -= 1
            if entry is not None:
                entry[0].set_exception(WorkerError(kind, type_name, text))
        elif op == "stats":
            _, wid, token, snapshot = message
            snapshot["__token__"] = token
            with self._lock:
                self.stats_snapshots[wid] = snapshot
        # "stopped" needs no action: close() joins the process

    # -------------------------------------------------------------- #
    def close(self, timeout: float = 10.0) -> None:
        """Stop every worker, join, and fail anything still pending."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
            for slot in self._slots:
                slot.outstanding = 0
        for future, wid in pending:
            if not future.done():
                future.set_exception(RuntimeError("ProcPool closed"))
        for slot in self._slots:
            if slot.process is not None and slot.process.is_alive():
                try:
                    slot.req_q.put(("stop",))
                except (ValueError, OSError):   # pragma: no cover
                    pass
        deadline = time.monotonic() + timeout
        for slot in self._slots:
            if slot.process is None:
                continue
            slot.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(timeout=1.0)
            slot.req_q.cancel_join_thread()
            slot.req_q.close()
        self._collector.join(timeout=2.0)
        self._resp_q.cancel_join_thread()
        self._resp_q.close()

"""Persistent process-pool execution tier (``REPRO_PROCS``).

PR 5's thread pool runs the *kernels* wide, but every Python-level step —
level scheduling, plan dispatch, Givens rotations, the solver loop itself —
serializes on the GIL, capping useful Python work at roughly one core per
host.  This module runs whole batched solves in **worker processes**: each
worker imports the package fresh (spawn start method — no forked locks, no
inherited thread state), attaches operator storage zero-copy from
:mod:`repro.par.shm`, warms its preconditioner factors / level schedules /
partitions from the ``REPRO_ARTIFACTS`` store instead of refactorizing, and
then serves batches for the fingerprints routed to it.

Configuration mirrors ``REPRO_THREADS``: ``REPRO_PROCS`` (default ``1`` =
in-process execution, ``auto`` = the core count), overridable with
:func:`set_procs` / scoped with :func:`use_procs`.  The knob is read by
:class:`repro.serve.ShardedGateway`; this module never spawns unless a
gateway asks for more than one process.

Determinism is the PR 5 contract one level up: a worker executes exactly
the arithmetic the in-process dispatcher would — same operator bytes (the
shared segment), same batch composition (the gateway groups per fingerprint
before the queue hop), same solver construction — so results are
bit-identical for every ``REPRO_PROCS`` value.

Protocol (one queue hop per *batch*, never per request):

==========================  =============================================
to worker                   from worker
==========================  =============================================
``("solve", id, fp,         ``("result", wid, id, [SolveResult...],
setup, rhs_block)``         stats-snapshot)`` or ``("error", wid, id,
                            kind, type-name, message)``
``("evict", fp)``           —  (drops solver/plans, closes the mapping)
``("stats", token)``        ``("stats", wid, token, snapshot)``
``("stop",)``               ``("stopped", wid)`` then exit
==========================  =============================================

``setup`` travels only on a worker's first batch for a fingerprint
(attach-on-first-use): a :class:`~repro.par.shm.ShmDescriptor` for
publishable operators, or a one-time pickled operator for families with no
shared-memory form.  Worker death (injected via :func:`repro.faults.
maybe_kill_process`, or real) fails the in-flight batches with
:class:`WorkerDied`; the gateway respawns the slot and retries under its
retry policy.  Respawned workers do not reinstall a gateway-shipped fault
plan — a replacement worker models a repaired host (``REPRO_FAULTS`` in the
environment still applies everywhere).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import threading
import time
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "ProcPool",
    "WorkerDied",
    "WorkerError",
    "WorkerInit",
    "configured_procs",
    "resolve_procs",
    "set_procs",
    "use_procs",
]


def _parse_procs(spec: str | int | None) -> int:
    """``REPRO_PROCS`` value → a positive process count (``auto`` = cores)."""
    if spec is None:
        return 1
    if isinstance(spec, int):
        return max(1, spec)
    text = str(spec).strip().lower()
    if text in ("", "1"):
        return 1
    if text in ("auto", "all", "0"):
        return max(1, os.cpu_count() or 1)
    try:
        return max(1, int(text))
    except ValueError as exc:
        raise ValueError(f"REPRO_PROCS must be an integer or 'auto'; "
                         f"got {spec!r}") from exc


_CONFIGURED = _parse_procs(os.environ.get("REPRO_PROCS"))


def configured_procs() -> int:
    """The process-wide worker-process budget (``REPRO_PROCS`` / :func:`set_procs`)."""
    return _CONFIGURED


def set_procs(spec: str | int) -> int:
    """Set the process budget (``'auto'`` = cores); returns the old budget."""
    global _CONFIGURED
    previous = _CONFIGURED
    _CONFIGURED = _parse_procs(spec)
    return previous


@contextmanager
def use_procs(spec: str | int):
    """Scoped process-budget override (process-wide, like ``set_procs``)."""
    previous = set_procs(spec)
    try:
        yield
    finally:
        set_procs(previous)


def resolve_procs(procs: str | int | None) -> int:
    """An explicit request (int/'auto') or ``None`` → the configured budget."""
    return _CONFIGURED if procs is None else _parse_procs(procs)


class WorkerDied(RuntimeError):
    """A worker process exited while batches were in flight on it."""

    def __init__(self, worker_id: int, exitcode: int | None = None) -> None:
        super().__init__(f"worker {worker_id} died "
                         f"(exitcode={exitcode!r}) with batches in flight")
        self.worker_id = worker_id
        self.exitcode = exitcode


class WorkerError(RuntimeError):
    """An exception raised inside a worker, relayed by (type, message).

    ``kind`` distinguishes ``"setup"`` failures (solver construction — feeds
    the gateway's per-fingerprint circuit breaker) from ``"solve"`` failures
    (retryable like any died batch).
    """

    def __init__(self, kind: str, type_name: str, message: str) -> None:
        super().__init__(f"worker {kind} error: {type_name}: {message}")
        self.kind = kind
        self.type_name = type_name


@dataclass(frozen=True)
class WorkerInit:
    """Everything a spawned worker needs that is not in the environment.

    Spawn inherits ``os.environ``, but process-wide *programmatic* overrides
    (``set_artifacts_dir``, ``set_threads``, an active :mod:`repro.faults`
    plan installed via ``inject()``) do not cross the spawn boundary — they
    are shipped explicitly so a worker behaves like the parent would.
    """

    config: object                      # F3RConfig (frozen dataclass)
    preconditioner: str | None = "auto"
    nblocks: int | None = None
    alpha: float = 1.0
    backend: str | None = None
    artifacts_dir: str | None = None
    threads: int = 1
    fault_spec: str | None = None


# ---------------------------------------------------------------------- #
# Worker process main
# ---------------------------------------------------------------------- #
def _worker_stats_snapshot(state: dict) -> dict:
    """Point-in-time worker counters shipped with every result message."""
    from ..cache import cold_start_stats
    from ..plans import plan_cache_stats

    artifacts = cold_start_stats()
    warm = {kind: counts.get("hits", 0)
            for kind, counts in artifacts.get("by_kind", {}).items()}
    return {
        "batches": state["batches"],
        "requests": state["requests"],
        "shm_attaches": state["shm_attaches"],
        "shm_bytes": state["shm_bytes"],
        "pickled_setups": state["pickled_setups"],
        "warm_from_artifacts": warm,
        "artifact_saved_ms": round(artifacts.get("saved_ms", 0.0), 3),
        "plan_cache": plan_cache_stats().get("cached", 0),
        "escalations": state["escalations"],
    }


def _worker_drop_fingerprint(state: dict, fp: str) -> None:
    """Release everything a fingerprint pinned: solver, plans, shm views."""
    import gc as _gc

    from ..plans import drop_plans_for

    state["solvers"].pop(fp, None)
    state["operators"].pop(fp, None)
    drop_plans_for(fp)
    attachment = state["attachments"].pop(fp, None)
    if attachment is not None:
        _gc.collect()
        if not attachment.close():
            # a view is still referenced somewhere; park it for the final
            # sweep at shutdown rather than leaking the mapping silently
            state["stubborn"].append(attachment)


def _worker_main(worker_id: int, init: WorkerInit, req_q, resp_q) -> None:
    """Entry point of one spawned worker (module-level for picklability)."""
    from .. import faults
    from ..cache import set_artifacts_dir
    from ..core import F3RSolver
    from ..backends import use_backend
    from .pool import set_threads
    from .shm import attach_arrays, operator_from_payload

    set_threads(init.threads)
    if init.artifacts_dir is not None:
        set_artifacts_dir(init.artifacts_dir)
    if init.fault_spec:
        faults.install_from_env(init.fault_spec)

    state = {
        "solvers": {}, "operators": {}, "attachments": {}, "stubborn": [],
        "batches": 0, "requests": 0, "shm_attaches": 0, "shm_bytes": 0,
        "pickled_setups": 0, "escalations": 0,
    }

    def build_solver(fp: str, setup) -> "F3RSolver":
        solver = state["solvers"].get(fp)
        if solver is not None:
            return solver
        if setup is None:
            raise KeyError(f"no setup shipped for unknown fingerprint {fp}")
        if "descriptor" in setup:
            attachment = attach_arrays(setup["descriptor"])
            state["attachments"][fp] = attachment
            state["shm_attaches"] += 1
            state["shm_bytes"] += attachment.nbytes
            operator = operator_from_payload(attachment.arrays,
                                             setup["descriptor"].meta)
        else:
            operator = pickle.loads(setup["pickle"])
            state["pickled_setups"] += 1
        state["operators"][fp] = operator
        solver = F3RSolver(operator, preconditioner=init.preconditioner or "auto",
                           config=init.config, nblocks=init.nblocks,
                           alpha=init.alpha)
        state["solvers"][fp] = solver
        return solver

    while True:
        message = req_q.get()
        op = message[0]
        if op == "stop":
            for fp in list(state["attachments"]):
                _worker_drop_fingerprint(state, fp)
            resp_q.put(("stopped", worker_id))
            return
        if op == "evict":
            _worker_drop_fingerprint(state, message[1])
            continue
        if op == "stats":
            resp_q.put(("stats", worker_id, message[1],
                        _worker_stats_snapshot(state)))
            continue
        if op == "warm":
            _, batch_id, fp, setup = message
            try:
                build_solver(fp, setup)
            except BaseException as exc:   # noqa: BLE001 - relayed
                resp_q.put(("error", worker_id, batch_id, "setup",
                            type(exc).__name__, str(exc)))
            else:
                resp_q.put(("result", worker_id, batch_id, [],
                            _worker_stats_snapshot(state)))
            continue
        if op != "solve":      # pragma: no cover - protocol guard
            continue
        _, batch_id, fp, setup, rhs_block = message
        # injected process death: a FaultPlan shipped in WorkerInit (or from
        # REPRO_FAULTS) can hard-kill this worker here, before any work, so
        # the gateway's death-detection and retry path is exercised against
        # a real process exit rather than a raised exception
        faults.maybe_kill_process("gateway.worker")
        try:
            solver = build_solver(fp, setup)
        except BaseException as exc:   # noqa: BLE001 - relayed to the gateway
            resp_q.put(("error", worker_id, batch_id, "setup",
                        type(exc).__name__, str(exc)))
            continue
        try:
            if init.backend is not None:
                with use_backend(init.backend):
                    batch = solver.solve_batch(rhs_block)
            else:
                batch = solver.solve_batch(rhs_block)
        except BaseException as exc:   # noqa: BLE001 - relayed to the gateway
            resp_q.put(("error", worker_id, batch_id, "solve",
                        type(exc).__name__, str(exc)))
            continue
        state["batches"] += 1
        state["requests"] += rhs_block.shape[1]
        for result in batch.results:
            if result.recovery is not None:
                state["escalations"] += int(result.recovery.escalations)
        resp_q.put(("result", worker_id, batch_id, list(batch.results),
                    _worker_stats_snapshot(state)))


# ---------------------------------------------------------------------- #
# The pool
# ---------------------------------------------------------------------- #
@dataclass
class _Slot:
    process: object = None
    req_q: object = None
    generation: int = 0
    known: set = field(default_factory=set)
    outstanding: int = 0
    deaths: int = 0


class ProcPool:
    """``nprocs`` persistent spawn-start worker processes plus a collector.

    The gateway is the only intended caller: :meth:`submit_batch` performs
    the one queue hop per batch, resolving the returned future with
    ``(results, stats-snapshot)`` from the worker or failing it with
    :class:`WorkerDied` / :class:`WorkerError`.  Setup payloads are shipped
    once per (worker generation, fingerprint) via ``setup_factory`` —
    attach-on-first-use, so the hot path carries only the fingerprint.
    """

    _POLL = 0.05

    def __init__(self, nprocs: int, init: WorkerInit) -> None:
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.init = init
        self._ctx = mp.get_context("spawn")
        self._resp_q = self._ctx.Queue()
        self._slots = [_Slot() for _ in range(nprocs)]
        self._lock = threading.Lock()
        self._pending: dict[int, tuple[Future, int]] = {}   # batch_id -> (future, worker)
        self._next_batch = 0
        self._closed = False
        self.stats_snapshots: dict[int, dict] = {}
        self.deaths = 0
        for wid in range(nprocs):
            self._spawn(wid, fault_spec=init.fault_spec)
        self._collector = threading.Thread(target=self._collect,
                                           name="repro-procpool-collector",
                                           daemon=True)
        self._collector.start()

    # -------------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self._slots)

    def _spawn(self, worker_id: int, fault_spec: str | None) -> None:
        slot = self._slots[worker_id]
        init = self.init if fault_spec == self.init.fault_spec else \
            WorkerInit(**{**self.init.__dict__, "fault_spec": fault_spec})
        slot.req_q = self._ctx.Queue()
        slot.process = self._ctx.Process(
            target=_worker_main, args=(worker_id, init, slot.req_q, self._resp_q),
            name=f"repro-proc-{worker_id}", daemon=True)
        slot.process.start()
        slot.known = set()

    def alive(self, worker_id: int) -> bool:
        process = self._slots[worker_id].process
        return process is not None and process.is_alive()

    def ensure_worker(self, worker_id: int) -> None:
        """Respawn a dead slot (fresh generation; no fault plan reinstalled)."""
        with self._lock:
            if self._closed or self.alive(worker_id):
                return
            slot = self._slots[worker_id]
            slot.generation += 1
            slot.deaths += 1
            self.deaths += 1
            self._spawn(worker_id, fault_spec=None)

    def outstanding(self, worker_id: int) -> int:
        return self._slots[worker_id].outstanding

    def queue_depths(self) -> dict[int, int]:
        return {wid: slot.outstanding for wid, slot in enumerate(self._slots)}

    # -------------------------------------------------------------- #
    def submit_batch(self, worker_id: int, fp: str, rhs_block,
                     setup_factory) -> Future:
        """One queue hop: dispatch a whole batch to ``worker_id``.

        ``setup_factory()`` is invoked only when this worker generation has
        never seen ``fp`` — it returns the setup payload (descriptor or
        pickled operator) that rides along with the first batch.
        """
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("ProcPool is closed")
            slot = self._slots[worker_id]
            if slot.process is None or not slot.process.is_alive():
                raise WorkerDied(worker_id, getattr(slot.process, "exitcode", None))
            batch_id = self._next_batch
            self._next_batch += 1
            setup = None
            if fp not in slot.known:
                setup = setup_factory()
                slot.known.add(fp)
            self._pending[batch_id] = (future, worker_id)
            slot.outstanding += 1
        slot.req_q.put(("solve", batch_id, fp, setup, rhs_block))
        return future

    def submit_warm(self, worker_id: int, fp: str, setup_factory) -> Future:
        """Build the solver for ``fp`` on ``worker_id`` without solving.

        The gateway's prewarm path: the worker factorizes (or warms from the
        artifact store) before traffic arrives.  Resolves to ``([], stats)``.
        """
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("ProcPool is closed")
            slot = self._slots[worker_id]
            if slot.process is None or not slot.process.is_alive():
                raise WorkerDied(worker_id, getattr(slot.process, "exitcode", None))
            batch_id = self._next_batch
            self._next_batch += 1
            setup = None
            if fp not in slot.known:
                setup = setup_factory()
                slot.known.add(fp)
            self._pending[batch_id] = (future, worker_id)
            slot.outstanding += 1
        slot.req_q.put(("warm", batch_id, fp, setup))
        return future

    def evict(self, fp: str) -> None:
        """Tell every worker that attached ``fp`` to drop and close it."""
        with self._lock:
            targets = [slot for slot in self._slots if fp in slot.known]
            for slot in targets:
                slot.known.discard(fp)
        for slot in targets:
            if slot.process is not None and slot.process.is_alive():
                slot.req_q.put(("evict", fp))

    def request_stats(self, timeout: float = 5.0) -> dict[int, dict]:
        """Fresh stats snapshots from every live worker (blocking poll)."""
        token = f"stats-{time.monotonic_ns()}"
        expected = 0
        for slot in self._slots:
            if slot.process is not None and slot.process.is_alive():
                slot.req_q.put(("stats", token))
                expected += 1
        deadline = time.monotonic() + timeout
        while expected > 0 and time.monotonic() < deadline:
            with self._lock:
                got = sum(1 for snap in self.stats_snapshots.values()
                          if snap.get("__token__") == token)
            if got >= expected:
                break
            time.sleep(self._POLL)
        return dict(self.stats_snapshots)

    # -------------------------------------------------------------- #
    def _collect(self) -> None:
        """Collector thread: route worker responses, detect worker deaths."""
        import queue as _queue

        while True:
            try:
                message = self._resp_q.get(timeout=self._POLL)
            except _queue.Empty:
                message = None
            except (EOFError, OSError):   # pragma: no cover - teardown race
                return
            if message is not None:
                self._handle(message)
            dead = []
            with self._lock:
                if self._closed and not self._pending:
                    return
                for batch_id, (future, wid) in list(self._pending.items()):
                    slot = self._slots[wid]
                    process = slot.process
                    if process is not None and not process.is_alive():
                        dead.append((batch_id, future, wid, process.exitcode))
                        del self._pending[batch_id]
                        slot.outstanding -= 1
            for _, future, wid, exitcode in dead:
                future.set_exception(WorkerDied(wid, exitcode))

    def _handle(self, message) -> None:
        op = message[0]
        if op == "result":
            _, wid, batch_id, results, snapshot = message
            with self._lock:
                self.stats_snapshots[wid] = snapshot
                entry = self._pending.pop(batch_id, None)
                if entry is not None:
                    self._slots[wid].outstanding -= 1
            if entry is not None:
                entry[0].set_result((results, snapshot))
        elif op == "error":
            _, wid, batch_id, kind, type_name, text = message
            with self._lock:
                entry = self._pending.pop(batch_id, None)
                if entry is not None:
                    self._slots[wid].outstanding -= 1
            if entry is not None:
                entry[0].set_exception(WorkerError(kind, type_name, text))
        elif op == "stats":
            _, wid, token, snapshot = message
            snapshot["__token__"] = token
            with self._lock:
                self.stats_snapshots[wid] = snapshot
        # "stopped" needs no action: close() joins the process

    # -------------------------------------------------------------- #
    def close(self, timeout: float = 10.0) -> None:
        """Stop every worker, join, and fail anything still pending."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
            for slot in self._slots:
                slot.outstanding = 0
        for future, wid in pending:
            if not future.done():
                future.set_exception(RuntimeError("ProcPool closed"))
        for slot in self._slots:
            if slot.process is not None and slot.process.is_alive():
                try:
                    slot.req_q.put(("stop",))
                except (ValueError, OSError):   # pragma: no cover
                    pass
        deadline = time.monotonic() + timeout
        for slot in self._slots:
            if slot.process is None:
                continue
            slot.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(timeout=1.0)
            slot.req_q.cancel_join_thread()
            slot.req_q.close()
        self._collector.join(timeout=2.0)
        self._resp_q.cancel_join_thread()
        self._resp_q.close()

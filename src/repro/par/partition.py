"""Work partitioning for the thread-parallel kernels.

Every parallel kernel splits its *output rows* into contiguous slabs and
hands each slab to one thread.  Because each output row is then computed by
exactly the arithmetic the serial kernel would use — the same gathered
products, reduced in the same order, written to a disjoint output slice —
the partitioned result is **bit-identical** to the serial one for any slab
count, which is the layer's determinism guarantee.

Balance comes from splitting on cumulative *work*, not row count: CSR/ELL
slabs take equal shares of stored entries (``nnz``-balanced via a
``searchsorted`` on the row pointer), triangular levels take equal shares of
their gathered dependencies, grids split on whole outermost-axis planes.

Partitions are pure layout, computed once and cached on a :class:`ParState`
attached to the storage object (matrix / factor / stencil operator), keyed
by slab count — the :class:`~repro.plans.SolvePlan` compile step prebuilds
them so the solve hot loop never partitions.  ``ParState`` also carries the
autotuned per-kernel thread verdicts (:mod:`repro.plans.autotune`).
"""

from __future__ import annotations

import threading

import numpy as np

from .pool import effective_threads, forced_threads

__all__ = [
    "MIN_LEVEL_ROWS",
    "MIN_WORK_PER_THREAD",
    "ParState",
    "par_state",
    "balanced_boundaries",
    "csr_partition",
    "csr_slabs_from_boundaries",
    "span_partition",
    "level_partition",
    "kernel_threads",
]

#: minimum work items (stored entries / vector elements / level gathers) one
#: extra thread must bring before the heuristic widens a kernel — small
#: operators stay serial unless an autotuned verdict or force says otherwise
MIN_WORK_PER_THREAD = {
    "spmv": 16_384,          # CSR/ELL stored entries
    "spmm": 8_192,           # stored entries (k columns amortize the split)
    "stencil": 16_384,       # grid points
    "stencil_batch": 8_192,
    "trsv": 4_096,           # per-level gathered dependencies
    "trsm": 2_048,
    "axpy": 65_536,          # vector elements (bandwidth-bound elementwise)
}

#: a triangular-solve dependency level narrower than twice this many rows is
#: not worth a barrier — it runs the serial per-level code (the forced
#: override drops the floor to 1 so tests can exercise tiny levels)
MIN_LEVEL_ROWS = 1_024


class ParState:
    """Per-storage parallel state: cached partitions + thread verdicts.

    One instance hangs off each storage object (``_par`` attribute).  The
    partition cache is layout-only; ``threads`` maps kernel names to
    autotuned thread counts (absent = use the size heuristic).
    """

    __slots__ = ("threads", "_parts", "_lock")

    def __init__(self) -> None:
        self.threads: dict[str, int] = {}
        self._parts: dict = {}
        self._lock = threading.Lock()

    def __reduce__(self):
        # partitions and verdicts are re-derivable caches (and the lock is
        # not picklable): a pickled/deepcopied owner restarts empty, like
        # its scratch arenas
        return (ParState, ())

    def partition(self, key, factory):
        """Build-once cache for a partition keyed by ``(kind, nparts, ...)``."""
        part = self._parts.get(key)
        if part is None:
            with self._lock:
                part = self._parts.get(key)
                if part is None:
                    part = factory()
                    self._parts[key] = part
        return part


_STATE_LOCK = threading.Lock()


def par_state(owner) -> ParState:
    """The owner's :class:`ParState`, attached on first use.

    Storage classes declare a ``_par`` slot/attribute initialized to
    ``None``; attachment is locked so concurrent first calls agree on one
    instance (the state carries autotune verdicts, which must not be lost
    to a benign race).
    """
    state = owner._par
    if state is None:
        with _STATE_LOCK:
            state = owner._par
            if state is None:
                state = owner._par = ParState()
    return state


# ---------------------------------------------------------------------- #
# Thread-count resolution
# ---------------------------------------------------------------------- #
def kernel_threads(kernel: str, work: int, state: ParState | None = None,
                   rows: int | None = None) -> int:
    """Threads this kernel invocation should fan across (1 = serial path).

    Resolution order: the thread-local force override (tests/autotuner);
    then the storage's autotuned verdict clamped to the current budget
    share; then the size heuristic — one thread per
    ``MIN_WORK_PER_THREAD[kernel]`` work items, clamped to the budget share.
    ``rows`` (when given) additionally caps the fan-out at one row per
    thread.
    """
    limit = effective_threads()
    if forced_threads() is None:
        if limit <= 1:
            return 1
        verdict = None if state is None else state.threads.get(kernel)
        if verdict is not None:
            limit = min(limit, verdict)
        else:
            limit = min(limit, max(1, work // MIN_WORK_PER_THREAD.get(kernel, 16_384)))
    if rows is not None:
        limit = min(limit, max(1, rows))
    return max(1, limit)


# ---------------------------------------------------------------------- #
# Partition builders
# ---------------------------------------------------------------------- #
def balanced_boundaries(cumulative: np.ndarray, nparts: int) -> np.ndarray:
    """Split ``n`` rows into ``<= nparts`` contiguous slabs of ~equal work.

    ``cumulative`` is a length ``n + 1`` nondecreasing work prefix (a CSR
    ``indptr`` is exactly this).  Returns strictly increasing boundaries
    ``[0, ..., n]``; degenerate targets (empty slabs) are merged away, so
    the result may have fewer parts than requested.
    """
    n = cumulative.shape[0] - 1
    nparts = max(1, min(int(nparts), n))
    if nparts == 1:
        return np.array([0, n], dtype=np.int64)
    total = int(cumulative[-1])
    targets = (np.arange(1, nparts, dtype=np.int64) * total) // nparts
    cuts = np.searchsorted(cumulative, targets, side="left")
    boundaries = np.unique(np.concatenate(([0], cuts, [n])))
    return boundaries.astype(np.int64)


def csr_partition(indptr: np.ndarray, nparts: int) -> list[tuple]:
    """nnz-balanced row slabs for CSR-shaped storage.

    Returns ``[(r0, r1, s0, s1, local_indptr), ...]`` where ``[r0, r1)`` is
    the slab's row range, ``[s0, s1)`` its stored-entry range and
    ``local_indptr`` the slab's row pointer rebased to its first entry (same
    dtype as ``indptr``, so the scipy compiled kernels accept it directly).
    """
    boundaries = balanced_boundaries(np.asarray(indptr, dtype=np.int64), nparts)
    return csr_slabs_from_boundaries(indptr, boundaries)


def csr_slabs_from_boundaries(indptr: np.ndarray,
                              boundaries: np.ndarray) -> list[tuple]:
    """Materialize :func:`csr_partition` slabs from precomputed boundaries.

    Split out so persisted partition plans (:mod:`repro.cache`) can rebuild
    the slab tuples from their compact on-disk form (the boundary array).
    """
    slabs = []
    for r0, r1 in zip(boundaries[:-1], boundaries[1:]):
        r0 = int(r0)
        r1 = int(r1)
        local = (indptr[r0:r1 + 1] - indptr[r0]).astype(indptr.dtype)
        slabs.append((r0, r1, int(indptr[r0]), int(indptr[r1]), local))
    return slabs


def span_partition(n: int, nparts: int, align: int = 1) -> list[tuple[int, int]]:
    """``<= nparts`` contiguous ``[lo, hi)`` spans covering ``[0, n)``.

    ``align`` forces boundaries onto multiples of it (grid-plane strides for
    the stencil sweeps); spans are as equal as alignment allows.
    """
    if n <= 0:
        return []
    units = (n + align - 1) // align
    nparts = max(1, min(int(nparts), units))
    edges = (np.arange(nparts + 1, dtype=np.int64) * units) // nparts
    spans = []
    for u0, u1 in zip(edges[:-1], edges[1:]):
        lo = int(u0) * align
        hi = min(int(u1) * align, n)
        if hi > lo:
            spans.append((lo, hi))
    return spans


def level_partition(rowptr: np.ndarray, rows: np.ndarray, nparts: int,
                    min_rows: int) -> list[tuple] | None:
    """Chunk one triangular-solve level into ``<= nparts`` row ranges.

    Returns ``None`` when the level is too small to split (the solve then
    runs the serial per-level code), else a list of
    ``(c0, c1, g0, g1, local_offsets, local_nonempty)`` chunks where
    ``[c0, c1)`` indexes the level's ``rows`` array, ``[g0, g1)`` its
    gathered-dependency span, ``local_offsets`` the chunk-rebased reduceat
    starts of its non-empty segments (``None`` for an all-diagonal chunk)
    and ``local_nonempty`` the per-row mask slice (``None`` when every row
    in the chunk has dependencies).
    """
    nrows = rows.shape[0]
    if nrows < 2 * min_rows or nparts <= 1:
        return None
    counts = (rowptr[rows + 1] - rowptr[rows]).astype(np.int64)
    cum = np.zeros(nrows + 1, dtype=np.int64)
    np.cumsum(counts, out=cum[1:])
    boundaries = balanced_boundaries(cum, min(nparts, max(1, nrows // min_rows)))
    if boundaries.shape[0] <= 2:
        return None
    chunks = []
    for c0, c1 in zip(boundaries[:-1], boundaries[1:]):
        c0 = int(c0)
        c1 = int(c1)
        g0 = int(cum[c0])
        g1 = int(cum[c1])
        if g1 == g0:
            chunks.append((c0, c1, g0, g1, None, None))
            continue
        chunk_counts = counts[c0:c1]
        mask = chunk_counts > 0
        local = np.cumsum(chunk_counts) - chunk_counts
        if mask.all():
            chunks.append((c0, c1, g0, g1, local, None))
        else:
            chunks.append((c0, c1, g0, g1, local[mask], mask))
    return chunks

"""SD-AINV: simplified (stabilized) sparse approximate-inverse preconditioner.

The paper's GPU experiments use SD-AINV (Suzuki, Fukaya, Iwashita 2022), a
simplified variant of the AINV factored-approximate-inverse preconditioner
(Benzi et al. 1996) whose application needs only **two SpMVs per
preconditioning step** — no triangular solves — which is why it suits GPUs.

Paper → reproduction substitution (recorded in DESIGN.md): the original
SD-AINV constructs its factors by a stabilized bi-conjugation sweep.  Here the
factors come from a first-order Neumann expansion on the sparsity pattern of
``A`` with optional drop tolerance:

    A = D_A + L + U  (diagonal / strictly lower / strictly upper)
    Z ≈ I − D_A^{-1} U        (unit upper triangular, pattern of U)
    W ≈ I − D_A^{-1} L^T      (unit upper triangular, pattern of L^T)
    M^{-1} ≈ Z D^{-1} W^T,  D = diag(W^T A Z)

For SPD matrices ``W = Z`` and the construction reduces to the classic
truncated AINV of a diagonally dominant matrix.  What matters for the
reproduction — an approximate inverse stored explicitly and applied through
two SpMVs, constructed in fp64 with αAINV diagonal scaling and then cast to
fp32/fp16 — is preserved exactly.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import record_bytes, record_flops, record_kernel
from ..precision import Precision, as_precision, precision_of_dtype, promote
from ..sparse import CSRMatrix, scale_diagonal_entries, split_triangular
from .base import Preconditioner

__all__ = ["SDAINVPreconditioner"]


def _drop_small(matrix: CSRMatrix, drop_tol: float) -> CSRMatrix:
    """Remove entries smaller than ``drop_tol`` times the row's max magnitude."""
    if drop_tol <= 0.0 or matrix.nnz == 0:
        return matrix
    n = matrix.nrows
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(matrix.indptr))
    vals = matrix.values.astype(np.float64)
    row_max = np.zeros(n, dtype=np.float64)
    np.maximum.at(row_max, rows, np.abs(vals))
    keep = np.abs(vals) >= drop_tol * np.maximum(row_max[rows], 1e-300)
    new_indptr = np.zeros(n + 1, dtype=np.int32)
    np.add.at(new_indptr, rows[keep] + 1, 1)
    np.cumsum(new_indptr, out=new_indptr)
    return CSRMatrix(vals[keep], matrix.indices[keep], new_indptr, matrix.shape)


def _add_identity(matrix: CSRMatrix) -> CSRMatrix:
    """Return I + matrix in CSR form (fp64)."""
    coo = matrix.to_coo()
    n = matrix.nrows
    rows = np.concatenate([coo.rows, np.arange(n, dtype=np.int32)])
    cols = np.concatenate([coo.cols, np.arange(n, dtype=np.int32)])
    vals = np.concatenate([coo.values, np.ones(n)])
    from ..sparse import COOMatrix

    return COOMatrix(rows, cols, vals, matrix.shape).to_csr()


class SDAINVPreconditioner(Preconditioner):
    """Simplified AINV preconditioner applied via two sparse matrix-vector products.

    Parameters
    ----------
    matrix:
        The (diagonally scaled) coefficient matrix.
    alpha:
        αAINV diagonal scaling applied during construction only (Table 2).
    drop_tol:
        Relative drop tolerance for the approximate-inverse factors.
    symmetric:
        If ``True`` (or detected), only one factor ``Z`` is stored and
        ``M^{-1} = Z D^{-1} Z^T``.
    """

    def __init__(self, matrix: CSRMatrix, alpha: float = 1.0, drop_tol: float = 0.0,
                 symmetric: bool | None = None,
                 precision: Precision | str = Precision.FP64) -> None:
        super().__init__(precision)
        if matrix.nrows != matrix.ncols:
            raise ValueError("SD-AINV requires a square matrix")
        self._n = matrix.nrows
        self.alpha = float(alpha)
        self.drop_tol = float(drop_tol)

        work = scale_diagonal_entries(matrix, alpha) if alpha != 1.0 else matrix
        lower, diag, upper = split_triangular(work)
        if symmetric is None:
            symmetric = matrix.is_symmetric(tol=1e-10)
        self.symmetric = bool(symmetric)

        inv_diag = np.where(diag != 0.0, 1.0 / np.where(diag == 0.0, 1.0, diag), 1.0)

        def _scaled_neumann(strict: CSRMatrix) -> CSRMatrix:
            scaled = CSRMatrix((-strict.values.astype(np.float64)
                                * inv_diag[np.repeat(np.arange(self._n), np.diff(strict.indptr))]),
                               strict.indices.copy(), strict.indptr.copy(), strict.shape)
            return _add_identity(_drop_small(scaled, drop_tol))

        z64 = _scaled_neumann(upper)
        self._z = z64.astype(self.precision)
        self._zt = z64.transpose().astype(self.precision)
        if self.symmetric:
            self._w = None
            self._wt = None
        else:
            w64 = _scaled_neumann(lower.transpose())
            self._w = w64.astype(self.precision)
            self._wt = w64.transpose().astype(self.precision)

        # Middle diagonal D: to first order in the Neumann expansion,
        # diag(W^T A Z) equals diag(A), so the scaled matrix's diagonal is used.
        self._inv_d64 = inv_diag
        self._inv_d = inv_diag.astype(self.precision.dtype)

    @classmethod
    def _from_parts(cls, z, zt, w, wt, inv_d64, symmetric, alpha, drop_tol, precision, n):
        obj = object.__new__(cls)
        Preconditioner.__init__(obj, precision)
        obj._n = n
        obj.alpha = alpha
        obj.drop_tol = drop_tol
        obj.symmetric = symmetric
        obj._z = z
        obj._zt = zt
        obj._w = w
        obj._wt = wt
        obj._inv_d64 = inv_d64
        obj._inv_d = inv_d64.astype(precision.dtype)
        return obj

    # ------------------------------------------------------------------ #
    def _apply(self, r: np.ndarray) -> np.ndarray:
        vec_prec = precision_of_dtype(r.dtype)
        compute = promote(self.precision, vec_prec)
        wt = self._zt if self.symmetric else self._wt
        t = wt.matvec(r)                       # first SpMV
        t = (t.astype(compute.dtype) * self._inv_d.astype(compute.dtype)).astype(r.dtype)
        record_kernel("precond_ainv_scale")
        record_bytes(self.precision, self._n * self.precision.bytes)
        record_flops(compute, self._n)
        z = self._z.matvec(t)                  # second SpMV
        return z.astype(r.dtype, copy=False)

    def astype(self, precision: Precision | str) -> "SDAINVPreconditioner":
        p = as_precision(precision)
        return SDAINVPreconditioner._from_parts(
            self._z.astype(p), self._zt.astype(p),
            None if self._w is None else self._w.astype(p),
            None if self._wt is None else self._wt.astype(p),
            self._inv_d64, self.symmetric, self.alpha, self.drop_tol, p, self._n,
        )

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n, self._n)

    def memory_bytes(self) -> int:
        total = self._z.nnz + (0 if self._w is None else self._w.nnz) + self._n
        return total * self.precision.bytes

"""Primary preconditioners: Jacobi, ILU(0)/IC(0), block-Jacobi, SD-AINV."""

from .base import IdentityPreconditioner, Preconditioner
from .jacobi import JacobiPreconditioner
from .ilu0 import IC0Preconditioner, ILU0Preconditioner, ilu0_factor
from .block_jacobi import BlockJacobiIC0, BlockJacobiILU0
from .ainv import SDAINVPreconditioner

__all__ = [
    "Preconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "ILU0Preconditioner",
    "IC0Preconditioner",
    "ilu0_factor",
    "BlockJacobiILU0",
    "BlockJacobiIC0",
    "SDAINVPreconditioner",
]


def make_primary_preconditioner(matrix, kind: str = "auto", nblocks: int | None = None,
                                alpha: float = 1.0, precision="fp64", drop_tol: float = 0.0,
                                symmetric: bool | None = None) -> Preconditioner:
    """Factory mirroring the paper's experimental setup.

    ``kind`` may be ``"block-ilu0"`` / ``"block-ic0"`` (CPU experiments),
    ``"ilu0"`` / ``"ic0"``, ``"sd-ainv"`` (GPU experiments), ``"jacobi"``,
    ``"identity"``, or ``"auto"`` which selects block-IC(0) for symmetric
    matrices and block-ILU(0) otherwise, as the paper does.

    ``matrix`` may be an assembled :class:`~repro.sparse.CSRMatrix` or any
    :class:`~repro.operators.LinearOperator`.  Operators that can produce
    entries (``assembled_entries()``: wrapped CSR, composites over assembled
    bases) keep the full selection; genuinely matrix-free operators expose
    no entries, so factorization-based kinds are rejected for them and
    ``"auto"`` falls back to Jacobi built from ``operator.diagonal()``.
    """
    from ..operators import LinearOperator

    if isinstance(matrix, LinearOperator):
        entries = matrix.assembled_entries()
        if entries is not None:
            matrix = entries
        else:
            if kind in ("auto", "jacobi"):
                return JacobiPreconditioner(matrix, precision=precision)
            if kind == "identity":
                return IdentityPreconditioner(matrix.nrows, precision=precision)
            raise ValueError(
                f"preconditioner kind {kind!r} needs assembled entries; a "
                f"matrix-free {type(matrix).__name__} supports only "
                "'auto' (-> jacobi), 'jacobi' or 'identity'")

    if symmetric is None and kind in ("auto",):
        symmetric = matrix.is_symmetric(tol=1e-10)
    if kind == "auto":
        kind = "block-ic0" if symmetric else "block-ilu0"

    if kind == "block-ilu0":
        return BlockJacobiILU0(matrix, nblocks=nblocks, alpha=alpha, precision=precision)
    if kind == "block-ic0":
        return BlockJacobiIC0(matrix, nblocks=nblocks, alpha=alpha, precision=precision)
    if kind == "ilu0":
        return ILU0Preconditioner(matrix, alpha=alpha, precision=precision)
    if kind == "ic0":
        return IC0Preconditioner(matrix, alpha=alpha, precision=precision)
    if kind == "sd-ainv":
        return SDAINVPreconditioner(matrix, alpha=alpha, drop_tol=drop_tol,
                                    symmetric=symmetric, precision=precision)
    if kind == "jacobi":
        return JacobiPreconditioner(matrix, precision=precision)
    if kind == "identity":
        return IdentityPreconditioner(matrix.nrows, precision=precision)
    raise ValueError(f"unknown preconditioner kind: {kind!r}")


__all__.append("make_primary_preconditioner")

"""Block-Jacobi ILU(0) / IC(0) preconditioner.

The paper's CPU experiments use block-Jacobi ILU(0) (IC(0) when the matrix is
symmetric) with one block per hardware thread (112 blocks on the 2 × 56-core
node) so that each block factorization and triangular solve is independent and
therefore thread-parallel.  Couplings between blocks are simply discarded.

The αILU stabilization — scaling the diagonal of ``A`` by a problem-dependent
factor during the factorization only — is applied per block.
"""

from __future__ import annotations

import numpy as np

from ..precision import Precision, as_precision
from ..sparse import BlockPartition, CSRMatrix, partition_rows
from .base import Preconditioner
from .ilu0 import IC0Preconditioner, ILU0Preconditioner

__all__ = ["BlockJacobiILU0", "BlockJacobiIC0"]


class _BlockJacobiBase(Preconditioner):
    """Shared machinery of the ILU(0)- and IC(0)-based block-Jacobi variants."""

    _block_factory: type[Preconditioner]

    def __init__(self, matrix: CSRMatrix, nblocks: int | None = None,
                 alpha: float = 1.0, precision: Precision | str = Precision.FP64,
                 partition: BlockPartition | None = None) -> None:
        super().__init__(precision)
        if matrix.nrows != matrix.ncols:
            raise ValueError("block-Jacobi requires a square matrix")
        self._n = matrix.nrows
        self.alpha = float(alpha)
        if partition is None:
            partition = partition_rows(matrix.nrows, nblocks=nblocks or 1)
        self.partition = partition
        self._blocks: list[Preconditioner] = []
        for start, stop in partition.blocks():
            block = matrix.extract_block(start, stop)
            self._blocks.append(
                self._block_factory(block, alpha=alpha, precision=self.precision)
            )

    @classmethod
    def _from_blocks(cls, blocks, partition, alpha, precision, n):
        obj = object.__new__(cls)
        Preconditioner.__init__(obj, precision)
        obj._n = n
        obj.alpha = alpha
        obj.partition = partition
        obj._blocks = blocks
        return obj

    # ------------------------------------------------------------------ #
    def _apply(self, r: np.ndarray) -> np.ndarray:
        z = np.empty(self._n, dtype=r.dtype)
        for block, (start, stop) in zip(self._blocks, self.partition.blocks()):
            # block preconditioners do their own traffic accounting; only the
            # outer object counts as "one invocation of the primary M"
            z[start:stop] = block._apply(r[start:stop])
        return z

    def astype(self, precision: Precision | str):
        p = as_precision(precision)
        blocks = [block.astype(p) for block in self._blocks]
        return type(self)._from_blocks(blocks, self.partition, self.alpha, p, self._n)

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n, self._n)

    @property
    def nblocks(self) -> int:
        return self.partition.nblocks

    def memory_bytes(self) -> int:
        return sum(block.memory_bytes() for block in self._blocks)


class BlockJacobiILU0(_BlockJacobiBase):
    """Block-Jacobi with an ILU(0) factorization of each diagonal block."""

    _block_factory = ILU0Preconditioner


class BlockJacobiIC0(_BlockJacobiBase):
    """Block-Jacobi with an IC(0)-style factorization of each diagonal block
    (for symmetric matrices; stores roughly half the values of ILU(0))."""

    _block_factory = IC0Preconditioner

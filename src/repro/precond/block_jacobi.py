"""Block-Jacobi ILU(0) / IC(0) preconditioner.

The paper's CPU experiments use block-Jacobi ILU(0) (IC(0) when the matrix is
symmetric) with one block per hardware thread (112 blocks on the 2 × 56-core
node) so that each block factorization and triangular solve is independent and
therefore thread-parallel.  Couplings between blocks are simply discarded.

The αILU stabilization — scaling the diagonal of ``A`` by a problem-dependent
factor during the factorization only — is applied per block.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import counters_enabled, record_kernel
from ..precision import Precision, as_precision
from ..sparse import BlockPartition, CSRMatrix, fuse_block_diagonal, partition_rows
from .base import Preconditioner
from .ilu0 import IC0Preconditioner, ILU0Preconditioner

__all__ = ["BlockJacobiILU0", "BlockJacobiIC0"]


class _BlockJacobiBase(Preconditioner):
    """Shared machinery of the ILU(0)- and IC(0)-based block-Jacobi variants."""

    _block_factory: type[Preconditioner]

    def __init__(self, matrix: CSRMatrix, nblocks: int | None = None,
                 alpha: float = 1.0, precision: Precision | str = Precision.FP64,
                 partition: BlockPartition | None = None) -> None:
        super().__init__(precision)
        if matrix.nrows != matrix.ncols:
            raise ValueError("block-Jacobi requires a square matrix")
        self._n = matrix.nrows
        self.alpha = float(alpha)
        if partition is None:
            partition = partition_rows(matrix.nrows, nblocks=nblocks or 1)
        self.partition = partition
        self._blocks: list[Preconditioner] = []
        self._fused = None
        for start, stop in partition.blocks():
            block = matrix.extract_block(start, stop)
            self._blocks.append(
                self._block_factory(block, alpha=alpha, precision=self.precision)
            )

    @classmethod
    def _from_blocks(cls, blocks, partition, alpha, precision, n):
        obj = object.__new__(cls)
        Preconditioner.__init__(obj, precision)
        obj._n = n
        obj.alpha = alpha
        obj.partition = partition
        obj._blocks = blocks
        obj._fused = None
        return obj

    # ------------------------------------------------------------------ #
    def _apply(self, r: np.ndarray) -> np.ndarray:
        from ..plans import plans_enabled

        if self.nblocks > 1 and plans_enabled():
            # Compiled-plan path: single-RHS application runs on the fused
            # block-diagonal factors too.  The blocks are independent, so the
            # merged level schedule executes the same per-level arithmetic as
            # the per-block loop — numerically identical — with one level
            # sweep across all blocks instead of a Python loop per block.
            return self._apply_fused_single(r, self._fused_parts())
        z = np.empty(self._n, dtype=r.dtype)
        for block, (start, stop) in zip(self._blocks, self.partition.blocks()):
            # block preconditioners do their own traffic accounting; only the
            # outer object counts as "one invocation of the primary M"
            z[start:stop] = block._apply(r[start:stop])
        return z

    def _apply_batch(self, r: np.ndarray) -> np.ndarray:
        # Batched application runs on *fused* block-diagonal factors: the
        # blocks are mutually independent, so their dependency-level schedules
        # merge (level i of every block solves together) and one level sweep
        # serves all blocks and all k columns.  This is the emulation analogue
        # of the paper's thread-per-block parallel execution — numerically
        # identical to the per-block loop, exactly.
        return self._apply_fused(r, self._fused_parts())

    def _fused_parts(self):
        """Fused block-diagonal factors, built lazily on the first batched
        application (idempotent: a concurrent duplicate build is identical)."""
        fused = self._fused
        if fused is None:
            fused = self._fused = self._build_fused()
        return fused

    def _record_fused_trsv_calls(self, k: int) -> None:
        """Kernel-count parity with the per-block loop: the fused solves
        record one trsv per column per stage; the loop records one per block.
        Byte/flop totals already match (the fused factor is the blocks'
        union), so only the call counts need topping up."""
        if counters_enabled() and self.nblocks > 1:
            record_kernel("trsv", 2 * (self.nblocks - 1) * k)

    def astype(self, precision: Precision | str):
        p = as_precision(precision)
        blocks = [block.astype(p) for block in self._blocks]
        return type(self)._from_blocks(blocks, self.partition, self.alpha, p, self._n)

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n, self._n)

    @property
    def nblocks(self) -> int:
        return self.partition.nblocks

    def memory_bytes(self) -> int:
        return sum(block.memory_bytes() for block in self._blocks)


class BlockJacobiILU0(_BlockJacobiBase):
    """Block-Jacobi with an ILU(0) factorization of each diagonal block."""

    _block_factory = ILU0Preconditioner

    def _build_fused(self):
        return (fuse_block_diagonal([b._lower for b in self._blocks]),
                fuse_block_diagonal([b._upper for b in self._blocks]))

    def _apply_fused(self, r: np.ndarray, fused) -> np.ndarray:
        lower, upper = fused
        y = lower.solve_batch(r)
        z = upper.solve_batch(y)
        self._record_fused_trsv_calls(r.shape[1])
        return z

    def _apply_fused_single(self, r: np.ndarray, fused) -> np.ndarray:
        lower, upper = fused
        z = upper.solve(lower.solve(r))
        self._record_fused_trsv_calls(1)
        return z


class BlockJacobiIC0(_BlockJacobiBase):
    """Block-Jacobi with an IC(0)-style factorization of each diagonal block
    (for symmetric matrices; stores roughly half the values of ILU(0))."""

    _block_factory = IC0Preconditioner

    def _build_fused(self):
        return (fuse_block_diagonal([b._lower for b in self._blocks]),
                fuse_block_diagonal([b._upper_t for b in self._blocks]),
                np.concatenate([b._inv_diag for b in self._blocks]))

    def _apply_fused(self, r: np.ndarray, fused) -> np.ndarray:
        lower, upper_t, inv_diag = fused
        vec_dtype = r.dtype
        y = lower.solve_batch(r)
        y = (y.astype(np.result_type(y.dtype, inv_diag.dtype))
             * inv_diag[:, None]).astype(vec_dtype, copy=False)
        z = upper_t.solve_batch(y)
        self._record_fused_trsv_calls(r.shape[1])
        return z

    def _apply_fused_single(self, r: np.ndarray, fused) -> np.ndarray:
        lower, upper_t, inv_diag = fused
        vec_dtype = r.dtype
        y = lower.solve(r)
        y = (y.astype(np.result_type(y.dtype, inv_diag.dtype))
             * inv_diag).astype(vec_dtype, copy=False)
        z = upper_t.solve(y)
        self._record_fused_trsv_calls(1)
        return z

"""ILU(0) and IC(0) incomplete factorizations.

The CPU experiments of the paper use block-Jacobi ILU(0) (IC(0) for symmetric
matrices) as the primary preconditioner ``M``, constructed in fp64 with the
diagonal of ``A`` scaled by a problem-dependent factor αILU during the
factorization only, then optionally cast to fp32/fp16 for storage.

The factorization keeps the sparsity pattern of ``A`` (zero fill-in) and uses
the standard IKJ ordering with a dense scatter workspace per row.  The
resulting unit-lower factor ``L`` and upper factor ``U`` are applied through
level-scheduled triangular solves (:class:`repro.sparse.TriangularFactor`).

For symmetric positive definite matrices ILU(0) satisfies ``U = D L^T`` on the
symmetric pattern, so IC(0) is realized by storing only ``L`` and ``D`` and
applying ``M^{-1} = L^{-T} D^{-1} L^{-1}`` — halving the stored values and
therefore the preconditioner's memory traffic, as in the paper.
"""

from __future__ import annotations

import numpy as np

from ..backends import get_backend
from ..precision import Precision, as_precision
from ..sparse import CSRMatrix, TriangularFactor
from .base import Preconditioner

__all__ = ["ilu0_factor", "ILU0Preconditioner", "IC0Preconditioner"]


def ilu0_factor(matrix: CSRMatrix, alpha: float = 1.0,
                breakdown_shift: float = 1e-12) -> tuple[CSRMatrix, CSRMatrix]:
    """Compute the ILU(0) factorization ``A ≈ L U`` on the pattern of ``A``.

    Parameters
    ----------
    matrix:
        Square CSR matrix.  The factorization always runs in fp64.
    alpha:
        αILU diagonal scaling applied to the matrix *during factorization only*
        (the paper's stabilization for block-Jacobi ILU(0)).
    breakdown_shift:
        If a pivot becomes zero (or loses its sign catastrophically) it is
        replaced by ``breakdown_shift * max|A|`` to avoid breakdown, following
        common practice for low-precision-adjacent incomplete factorizations.

    Returns
    -------
    (L, U):
        ``L`` is unit lower triangular (unit diagonal not stored); ``U`` is
        upper triangular including the diagonal.  Both are fp64 CSR matrices on
        subsets of A's pattern.  The elimination itself runs in the active
        kernel backend (IKJ scatter loops on ``reference``, compact row-segment
        updates on ``fast``); both produce the same factors.

    With ``REPRO_ARTIFACTS`` set, the factor arrays persist on disk keyed by
    ``(matrix fingerprint, alpha, breakdown_shift)`` — the key omits the
    backend because the backends' bit-identity contract (enforced by the
    equivalence suite) makes the factors backend-independent.  A warm cache
    skips the elimination entirely on process restart.
    """
    from ..cache import (artifact_key, artifacts_enabled, load_arrays,
                         store_arrays)

    if not artifacts_enabled():
        return get_backend().ilu0_factor(matrix, alpha=alpha,
                                         breakdown_shift=breakdown_shift)

    key = artifact_key("ilu0", matrix.fingerprint(), float(alpha),
                       float(breakdown_shift))
    cached = load_arrays("ilu0", key)
    if cached is not None:
        factors = _factors_from_arrays(cached, matrix.nrows)
        if factors is not None:
            return factors

    from time import perf_counter
    start = perf_counter()
    lower, upper = get_backend().ilu0_factor(matrix, alpha=alpha,
                                             breakdown_shift=breakdown_shift)
    cost_ms = (perf_counter() - start) * 1e3
    store_arrays("ilu0", key, {
        "l_values": lower.values, "l_indices": lower.indices,
        "l_indptr": lower.indptr,
        "u_values": upper.values, "u_indices": upper.indices,
        "u_indptr": upper.indptr,
    }, cost_ms=cost_ms)
    return lower, upper


def _factors_from_arrays(arrays: dict, n: int) -> tuple[CSRMatrix, CSRMatrix] | None:
    """Rebuild ``(L, U)`` from a cached payload; ``None`` if it is unusable."""
    try:
        lower = CSRMatrix(arrays["l_values"], arrays["l_indices"],
                          arrays["l_indptr"], (n, n))
        upper = CSRMatrix(arrays["u_values"], arrays["u_indices"],
                          arrays["u_indptr"], (n, n))
    except Exception:
        return None
    return lower, upper


class ILU0Preconditioner(Preconditioner):
    """ILU(0) preconditioner: ``M^{-1} r = U^{-1} (L^{-1} r)``.

    Construction is always in fp64; :meth:`astype` casts the stored factor
    values to fp32/fp16 afterwards, exactly mirroring the paper's procedure.
    """

    def __init__(self, matrix: CSRMatrix, alpha: float = 1.0,
                 precision: Precision | str = Precision.FP64) -> None:
        super().__init__(precision)
        self.alpha = float(alpha)
        self._n = matrix.nrows
        lower, upper = ilu0_factor(matrix, alpha=alpha)
        p = self.precision
        self._lower = TriangularFactor(lower.astype(p), lower=True, unit_diagonal=True)
        self._upper = TriangularFactor(upper.astype(p), lower=False, unit_diagonal=False)

    @classmethod
    def _from_factors(cls, lower: TriangularFactor, upper: TriangularFactor,
                      alpha: float, precision: Precision) -> "ILU0Preconditioner":
        obj = object.__new__(cls)
        Preconditioner.__init__(obj, precision)
        obj.alpha = alpha
        obj._n = lower.nrows
        obj._lower = lower
        obj._upper = upper
        return obj

    def _apply(self, r: np.ndarray) -> np.ndarray:
        y = self._lower.solve(r)
        return self._upper.solve(y)

    def _apply_batch(self, r: np.ndarray) -> np.ndarray:
        y = self._lower.solve_batch(r)
        return self._upper.solve_batch(y)

    def astype(self, precision: Precision | str) -> "ILU0Preconditioner":
        p = as_precision(precision)
        return ILU0Preconditioner._from_factors(
            self._lower.astype(p), self._upper.astype(p), self.alpha, p
        )

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n, self._n)

    def memory_bytes(self) -> int:
        nnz = self._lower.off_vals.size + self._upper.off_vals.size + self._n
        return nnz * self.precision.bytes


class IC0Preconditioner(Preconditioner):
    """IC(0)-style preconditioner for symmetric matrices.

    Uses the ILU(0) factors (for an SPD matrix, ``U = D L^T`` on the symmetric
    pattern) but stores only ``L`` and the pivot diagonal ``D``:
    ``M^{-1} r = L^{-T} D^{-1} L^{-1} r``.  Storage and memory traffic are
    therefore roughly half of ILU(0), matching the symmetric rows of the
    paper's experiments.
    """

    def __init__(self, matrix: CSRMatrix, alpha: float = 1.0,
                 precision: Precision | str = Precision.FP64) -> None:
        super().__init__(precision)
        self.alpha = float(alpha)
        self._n = matrix.nrows
        lower, upper = ilu0_factor(matrix, alpha=alpha)
        from ..sparse import extract_diagonal

        diag = extract_diagonal(upper)
        p = self.precision
        self._lower = TriangularFactor(lower.astype(p), lower=True, unit_diagonal=True)
        # L^T for the backward solve: transpose of the strictly-lower factor
        upper_t = lower.transpose()
        self._upper_t = TriangularFactor(upper_t.astype(p), lower=False, unit_diagonal=True)
        self._inv_diag64 = np.where(diag != 0.0, 1.0 / np.where(diag == 0.0, 1.0, diag), 0.0)
        self._inv_diag = self._inv_diag64.astype(p.dtype)

    @classmethod
    def _from_parts(cls, lower, upper_t, inv_diag64, alpha, precision) -> "IC0Preconditioner":
        obj = object.__new__(cls)
        Preconditioner.__init__(obj, precision)
        obj.alpha = alpha
        obj._n = lower.nrows
        obj._lower = lower
        obj._upper_t = upper_t
        obj._inv_diag64 = inv_diag64
        obj._inv_diag = inv_diag64.astype(precision.dtype)
        return obj

    def _apply(self, r: np.ndarray) -> np.ndarray:
        vec_dtype = r.dtype
        y = self._lower.solve(r)
        y = (y.astype(np.result_type(y.dtype, self._inv_diag.dtype))
             * self._inv_diag).astype(vec_dtype, copy=False)
        return self._upper_t.solve(y)

    def _apply_batch(self, r: np.ndarray) -> np.ndarray:
        vec_dtype = r.dtype
        y = self._lower.solve_batch(r)
        y = (y.astype(np.result_type(y.dtype, self._inv_diag.dtype))
             * self._inv_diag[:, None]).astype(vec_dtype, copy=False)
        return self._upper_t.solve_batch(y)

    def astype(self, precision: Precision | str) -> "IC0Preconditioner":
        p = as_precision(precision)
        return IC0Preconditioner._from_parts(
            self._lower.astype(p), self._upper_t.astype(p), self._inv_diag64, self.alpha, p
        )

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n, self._n)

    def memory_bytes(self) -> int:
        nnz = self._lower.off_vals.size + self._n
        return nnz * self.precision.bytes

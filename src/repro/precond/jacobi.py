"""Jacobi (diagonal) preconditioner.

Not used as the primary preconditioner in the paper's experiments (its
matrices are diagonally scaled, so Jacobi degenerates to the identity), but it
is the simplest preconditioner with nontrivial stored values and therefore the
reference case for precision-casting tests and the quickstart example.
"""

from __future__ import annotations

import numpy as np

from ..perf.counters import record_bytes, record_flops, record_kernel
from ..precision import Precision, as_precision, precision_of_dtype, promote
from ..sparse import extract_diagonal
from .base import Preconditioner

__all__ = ["JacobiPreconditioner"]


class JacobiPreconditioner(Preconditioner):
    """``M = diag(A)``; application is an element-wise multiply by 1/diag.

    ``matrix`` may be an assembled :class:`CSRMatrix` or any operator with a
    ``diagonal()`` method — this is the fallback primary preconditioner for
    matrix-free solves, where factorization-based preconditioners have no
    entries to work on.
    """

    def __init__(self, matrix, precision: Precision | str = Precision.FP64) -> None:
        super().__init__(precision)
        diag = np.asarray(matrix.diagonal() if hasattr(matrix, "diagonal")
                          else extract_diagonal(matrix), dtype=np.float64)
        if np.any(diag == 0.0):
            raise ValueError("Jacobi preconditioner requires a zero-free diagonal")
        self._n = matrix.nrows
        self.inv_diag = (1.0 / diag).astype(self.precision.dtype)

    @classmethod
    def _from_inv_diag(cls, inv_diag: np.ndarray, precision: Precision) -> "JacobiPreconditioner":
        obj = object.__new__(cls)
        Preconditioner.__init__(obj, precision)
        obj._n = inv_diag.size
        obj.inv_diag = inv_diag.astype(precision.dtype)
        return obj

    def _apply(self, r: np.ndarray) -> np.ndarray:
        vec_prec = precision_of_dtype(r.dtype)
        compute = promote(self.precision, vec_prec)
        z = (r.astype(compute.dtype) * self.inv_diag.astype(compute.dtype))
        record_kernel("precond_jacobi")
        record_bytes(self.precision, self._n * self.precision.bytes)
        record_bytes(vec_prec, 2 * self._n * vec_prec.bytes)
        record_flops(compute, self._n)
        return z.astype(vec_prec.dtype, copy=False)

    def _apply_batch(self, r: np.ndarray) -> np.ndarray:
        vec_prec = precision_of_dtype(r.dtype)
        compute = promote(self.precision, vec_prec)
        k = r.shape[1]
        z = (r.astype(compute.dtype) * self.inv_diag.astype(compute.dtype)[:, None])
        record_kernel("precond_jacobi", k)
        record_bytes(self.precision, k * self._n * self.precision.bytes)
        record_bytes(vec_prec, 2 * k * self._n * vec_prec.bytes)
        record_flops(compute, k * self._n)
        return z.astype(vec_prec.dtype, copy=False)

    def astype(self, precision: Precision | str) -> "JacobiPreconditioner":
        p = as_precision(precision)
        return JacobiPreconditioner._from_inv_diag(self.inv_diag, p)

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n, self._n)

    def memory_bytes(self) -> int:
        return self._n * self.precision.bytes

"""Jacobi (diagonal) preconditioner.

Not used as the primary preconditioner in the paper's experiments (its
matrices are diagonally scaled, so Jacobi degenerates to the identity), but it
is the simplest preconditioner with nontrivial stored values and therefore the
reference case for precision-casting tests and the quickstart example.
"""

from __future__ import annotations

import numpy as np

from ..backends import halfvec
from ..backends.workspace import ScratchOwner
from ..perf.counters import record_bytes, record_flops, record_kernel
from ..precision import Precision, as_precision, precision_of_dtype, promote
from ..sparse import extract_diagonal
from .base import Preconditioner

__all__ = ["JacobiPreconditioner"]


class JacobiPreconditioner(Preconditioner, ScratchOwner):
    """``M = diag(A)``; application is an element-wise multiply by 1/diag.

    ``matrix`` may be an assembled :class:`CSRMatrix` or any operator with a
    ``diagonal()`` method — this is the fallback primary preconditioner for
    matrix-free solves, where factorization-based preconditioners have no
    entries to work on.
    """

    def __init__(self, matrix, precision: Precision | str = Precision.FP64) -> None:
        super().__init__(precision)
        diag = np.asarray(matrix.diagonal() if hasattr(matrix, "diagonal")
                          else extract_diagonal(matrix), dtype=np.float64)
        if np.any(diag == 0.0):
            raise ValueError("Jacobi preconditioner requires a zero-free diagonal")
        self._n = matrix.nrows
        self.inv_diag = (1.0 / diag).astype(self.precision.dtype)
        self._inv_casts: dict = {}
        self._scratch = None

    @classmethod
    def _from_inv_diag(cls, inv_diag: np.ndarray, precision: Precision) -> "JacobiPreconditioner":
        obj = object.__new__(cls)
        Preconditioner.__init__(obj, precision)
        obj._n = inv_diag.size
        obj.inv_diag = inv_diag.astype(precision.dtype)
        obj._inv_casts = {}
        obj._scratch = None
        return obj

    def _cast_inv(self, dtype) -> np.ndarray:
        """``inv_diag`` in the compute dtype (cached — it never mutates)."""
        cached = self._inv_casts.get(dtype)
        if cached is None:
            cached = self._inv_casts[dtype] = self.inv_diag.astype(dtype, copy=False)
        return cached

    def _scaled(self, r: np.ndarray, compute) -> np.ndarray:
        """``r ∘ inv_diag`` in the compute dtype (vector or ``(n, k)`` block).

        The fp16 product is staged through fp32 — one SIMD multiply rounded
        by the same conversion the fp16 ufunc applies per element, so the
        result is bit-identical to the direct fp16 multiply.
        """
        cdtype = compute.dtype
        if np.dtype(cdtype) == halfvec.HALF and halfvec.staged_half_enabled():
            ws = self.scratch()
            inv32 = self._cast_inv(halfvec.STAGE)
            r32 = halfvec.upcast(r, ws.get("jacobi_r32", r.shape, halfvec.STAGE),
                                 scratch=ws)
            scale = inv32 if r.ndim == 1 else inv32[:, None]
            return halfvec.binop_round(np.multiply, r32, scale, scratch=ws)
        inv = self._cast_inv(cdtype)
        if r.ndim == 2:
            inv = inv[:, None]
        return r.astype(cdtype, copy=False) * inv

    def _apply(self, r: np.ndarray) -> np.ndarray:
        vec_prec = precision_of_dtype(r.dtype)
        compute = promote(self.precision, vec_prec)
        z = self._scaled(r, compute)
        record_kernel("precond_jacobi")
        record_bytes(self.precision, self._n * self.precision.bytes)
        record_bytes(vec_prec, 2 * self._n * vec_prec.bytes)
        record_flops(compute, self._n)
        return z.astype(vec_prec.dtype, copy=False)

    def _apply_batch(self, r: np.ndarray) -> np.ndarray:
        vec_prec = precision_of_dtype(r.dtype)
        compute = promote(self.precision, vec_prec)
        k = r.shape[1]
        z = self._scaled(r, compute)
        record_kernel("precond_jacobi", k)
        record_bytes(self.precision, k * self._n * self.precision.bytes)
        record_bytes(vec_prec, 2 * k * self._n * vec_prec.bytes)
        record_flops(compute, k * self._n)
        return z.astype(vec_prec.dtype, copy=False)

    def astype(self, precision: Precision | str) -> "JacobiPreconditioner":
        p = as_precision(precision)
        return JacobiPreconditioner._from_inv_diag(self.inv_diag, p)

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n, self._n)

    def memory_bytes(self) -> int:
        return self._n * self.precision.bytes

"""Preconditioner interface.

A preconditioner approximates ``M ≈ A`` and exposes ``apply(r) ≈ M^{-1} r``.
Two aspects matter for the reproduction:

* **Precision** — the paper constructs every preconditioner in fp64 and then
  casts its stored values to fp32 or fp16 (:meth:`Preconditioner.astype`), and
  the application kernels run in the stored precision.
* **Application counting** — the paper's Table 3 reports the number of
  invocations of the *primary* preconditioner ``M`` until convergence, which
  is the precision-independent measure of convergence speed for nested
  solvers.  Every ``apply`` increments :attr:`Preconditioner.num_applications`.
"""

from __future__ import annotations

import abc

import numpy as np

from ..precision import Precision, as_precision

__all__ = ["Preconditioner", "IdentityPreconditioner"]


class Preconditioner(abc.ABC):
    """Abstract base class for all primary preconditioners."""

    def __init__(self, precision: Precision | str = Precision.FP64) -> None:
        self.precision = as_precision(precision)
        self.num_applications = 0

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _apply(self, r: np.ndarray) -> np.ndarray:
        """Implementation hook: return ``M^{-1} r`` (no counting)."""

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Apply the preconditioner and count the invocation."""
        self.num_applications += 1
        return self._apply(np.asarray(r))

    def _apply_batch(self, r: np.ndarray) -> np.ndarray:
        """Implementation hook for ``M^{-1} R`` on ``R`` of shape ``(n, k)``.

        The default loops :meth:`_apply` column by column; subclasses whose
        kernels have a batched form (ILU(0) via trsm, Jacobi via broadcast)
        override it.
        """
        cols = [self._apply(np.ascontiguousarray(r[:, j])) for j in range(r.shape[1])]
        return np.stack(cols, axis=1)

    def apply_batch(self, r: np.ndarray) -> np.ndarray:
        """Apply the preconditioner to ``k`` residuals at once (one per column).

        Counts ``k`` invocations so the paper's Table 3 metric — primary
        preconditioner applications until convergence — is independent of
        whether solves were batched.
        """
        r = np.asarray(r)
        if r.ndim != 2:
            raise ValueError(f"apply_batch expects R of shape (n, k); got {r.shape}")
        self.num_applications += r.shape[1]
        return self._apply_batch(r)

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def astype(self, precision: Precision | str) -> "Preconditioner":
        """Return a copy whose stored values are cast to ``precision``.

        The copy shares structural arrays with the original (pattern, level
        schedules) but has its own application counter.
        """

    def reset_counter(self) -> None:
        self.num_applications = 0

    @property
    @abc.abstractmethod
    def shape(self) -> tuple[int, int]:
        """Dimensions of the operator the preconditioner approximates."""

    def memory_bytes(self) -> int:
        """Bytes occupied by the preconditioner's stored values (0 if unknown)."""
        return 0

    @property
    def name(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}(shape={self.shape}, precision={self.precision.label})"


class IdentityPreconditioner(Preconditioner):
    """The do-nothing preconditioner (``M = I``); useful as a baseline and in tests."""

    def __init__(self, n: int, precision: Precision | str = Precision.FP64) -> None:
        super().__init__(precision)
        self._n = int(n)

    def _apply(self, r: np.ndarray) -> np.ndarray:
        return r.astype(self.precision.dtype, copy=True)

    def _apply_batch(self, r: np.ndarray) -> np.ndarray:
        return r.astype(self.precision.dtype, copy=True)

    def astype(self, precision: Precision | str) -> "IdentityPreconditioner":
        return IdentityPreconditioner(self._n, precision)

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n, self._n)

"""Compiled solve plans: pre-bound kernels, measured autotuning, arenas.

The solver stack's steady-state loop used to pay pure overhead on every
iteration — operator dispatch, storage-format lookups, workspace-key
rebuilding, fresh temporaries.  This package compiles that work away once
per ``(operator fingerprint, backend, vector precision)``:

* :class:`SolvePlan` / :func:`plan_for` — the compiled plan and its
  fingerprint-keyed LRU cache (see :mod:`repro.plans.plan`);
* :mod:`repro.plans.autotune` — measured CSR-vs-sliced-ELL selection with
  in-process + optional on-disk (``REPRO_TUNE_CACHE``) verdict caching,
  falling back to the analytic cost model when disabled (``REPRO_TUNE=0``);
* ``REPRO_PLANS=0`` / :func:`use_plans` — kill switch restoring the legacy
  unplanned path (the baseline ``benchmarks/bench_solves.py`` compares
  against).

A future GPU backend compiles against exactly this surface: implement the
fused kernels (`spmv_axpy`, `residual_update`, `orthonormalize`,
`weighted_update`) and every plan-threaded solver level runs on it.
"""

from .autotune import (
    autotune_stats,
    clear_autotune_cache,
    measured_assembled_format,
    measurement_suppressed,
    set_measurement_suppressed,
    set_tuning_enabled,
    tuning_enabled,
)
from .plan import (
    SolvePlan,
    clear_plan_cache,
    compile_plan,
    drop_plans_for,
    plan_cache_stats,
    plan_for,
    plans_enabled,
    set_plans_enabled,
    use_plans,
)

__all__ = [
    "SolvePlan",
    "compile_plan",
    "plan_for",
    "plans_enabled",
    "set_plans_enabled",
    "use_plans",
    "plan_cache_stats",
    "clear_plan_cache",
    "drop_plans_for",
    "tuning_enabled",
    "set_tuning_enabled",
    "measured_assembled_format",
    "autotune_stats",
    "clear_autotune_cache",
    "measurement_suppressed",
    "set_measurement_suppressed",
]

"""Compiled solve plans: setup once, iterate free.

A :class:`SolvePlan` binds, once per ``(operator fingerprint, backend,
vector precision)``, everything the iteration hot loop used to re-derive on
every call:

* the **resolved storage and kernel** — the CSR arrays / sliced-ELL plan /
  matrix-free stencil the applies actually run on, chosen by the *measured*
  autotuner (:mod:`repro.plans.autotune`) with the analytic cost model as
  the fallback, and the backend kernel bound directly (no per-call operator
  dispatch, format lookup or argument validation);
* **fused kernels** — ``residual`` runs the one-pass ``spmv_axpy`` for CSR
  storage and the ``apply`` + ``residual_update`` pair elsewhere, with the
  exact unfused rounding/counter semantics;
* a **workspace arena** — per-thread scratch the staged fp16 paths and
  fused updates reuse, so steady-state iterations stop allocating.

Plans are immutable once compiled and safe to share across threads (all
mutable scratch is thread-local).  The module-level cache
(:func:`plan_for`) is keyed by content fingerprint, so repeated-fingerprint
traffic — the :class:`~repro.serve.BatchDispatcher`'s common case — skips
plan setup entirely, even across solver instances.

``REPRO_PLANS=0`` (or :func:`set_plans_enabled`) disables the layer; the
solver stack then runs its legacy unplanned path, which is what
``benchmarks/bench_solves.py`` measures the speedup against.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from contextlib import contextmanager

import numpy as np

from ..backends import get_backend
from ..backends.workspace import ThreadLocalWorkspace
from ..precision import Precision, as_precision

__all__ = [
    "SolvePlan",
    "compile_plan",
    "plan_for",
    "plans_enabled",
    "set_plans_enabled",
    "use_plans",
    "plan_cache_stats",
    "clear_plan_cache",
]

_ENABLED = os.environ.get("REPRO_PLANS", "1").strip().lower() not in (
    "0", "off", "false", "no")


def plans_enabled() -> bool:
    """Whether solvers compile and use solve plans."""
    return _ENABLED


def set_plans_enabled(enabled: bool) -> bool:
    """Enable/disable the plan layer (process-wide); returns the old state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def use_plans(enabled: bool = True):
    """Scoped plan-layer toggle (benchmarks compare both paths)."""
    previous = set_plans_enabled(enabled)
    try:
        yield
    finally:
        set_plans_enabled(previous)


def _storage_config(operator) -> tuple:
    """Storage-affecting operator config that the content hash does not cover.

    An ``AssembledOperator``'s fingerprint is its matrix's content hash —
    ``format=``/``chunk_size=`` pins change which storage (and therefore
    which counters and fp16 summation structure) a plan binds, so they must
    be part of the cache key.
    """
    fmt = getattr(operator, "format", None)
    chunk = getattr(operator, "chunk_size", None)
    return (fmt, int(chunk) if chunk is not None else None)


def _cached_csr_partition(matrix, nparts: int) -> list[tuple]:
    """``csr_partition`` with persisted boundaries (:mod:`repro.cache`).

    The slab tuples rebuild from the boundary array alone, so only the
    boundaries hit disk; an unusable payload falls back to recomputing the
    balance exactly as before.
    """
    from ..cache import (artifact_key, artifacts_enabled, load_arrays,
                         store_arrays)
    from ..par import balanced_boundaries, csr_slabs_from_boundaries

    if not artifacts_enabled():
        from ..par import csr_partition
        return csr_partition(matrix.indptr, nparts)

    key = artifact_key("partition", matrix.fingerprint(), "csr", int(nparts))
    cached = load_arrays("partition", key)
    if cached is not None:
        try:
            boundaries = np.ascontiguousarray(cached["boundaries"],
                                              dtype=np.int64)
            n = matrix.indptr.size - 1
            if (boundaries.ndim == 1 and boundaries.size >= 2
                    and boundaries[0] == 0 and boundaries[-1] == n
                    and np.all(np.diff(boundaries) > 0)):
                return csr_slabs_from_boundaries(matrix.indptr, boundaries)
        except Exception:
            pass

    from time import perf_counter
    start = perf_counter()
    boundaries = balanced_boundaries(
        np.asarray(matrix.indptr, dtype=np.int64), nparts)
    slabs = csr_slabs_from_boundaries(matrix.indptr, boundaries)
    cost_ms = (perf_counter() - start) * 1e3
    store_arrays("partition", key, {"boundaries": boundaries},
                 cost_ms=cost_ms)
    return slabs


class SolvePlan:
    """Pre-bound apply/residual kernels for one operator on one backend.

    Every method mirrors the semantics of the unplanned path exactly — the
    same backend kernels run on the same resolved storage with the same
    counter totals — minus the per-call dispatch, validation and format
    lookups.  ``record=False`` skips traffic recording (the outer solver's
    unrecorded true-residual refreshes).
    """

    __slots__ = ("operator", "vec_prec", "backend", "kind", "key", "par",
                 "threads", "_csr", "_ell", "_stencil", "_tls")

    def __init__(self, operator, vec_prec: Precision | str, backend=None) -> None:
        from ..operators.assembled import AssembledOperator
        from ..operators.stencil import StencilOperator
        from ..sparse.csr import CSRMatrix
        from ..sparse.ell import SlicedEllMatrix

        self.operator = operator
        self.vec_prec = as_precision(vec_prec)
        self.backend = backend if backend is not None else get_backend()
        self._csr = self._ell = self._stencil = None
        self._tls = ThreadLocalWorkspace()

        storage = operator
        if isinstance(operator, AssembledOperator):
            # resolves the format under *this* backend: measured verdict
            # first (repro.plans.autotune), analytic cost model otherwise
            storage = operator.storage_for(self.backend)
        if isinstance(storage, CSRMatrix):
            self.kind = "csr"
            self._csr = storage
        elif isinstance(storage, SlicedEllMatrix):
            self.kind = "ell"
            self._ell = storage
        elif isinstance(storage, StencilOperator):
            self.kind = "stencil"
            self._stencil = storage
        else:
            self.kind = "operator"
        fingerprint = getattr(operator, "fingerprint", None)
        self.key = (fingerprint() if fingerprint is not None else None,
                    _storage_config(operator), self.backend.name,
                    self.vec_prec.label)

        # Parallel execution state: the resolved storage's partition cache +
        # autotuned per-kernel thread verdicts.  When a thread budget is
        # configured (REPRO_THREADS > 1), plan compile measures the apply at
        # 1, 2, 4, … threads and pins the fastest count — so small operators
        # stay serial and the solve hot loop never partitions or re-decides.
        self.par = None
        self.threads = None
        storage_obj = self._csr or self._ell or self._stencil
        if storage_obj is not None:
            from ..par import configured_threads, par_state
            from .autotune import measured_plan_threads

            self.par = par_state(storage_obj)
            if configured_threads() > 1:
                self.threads = measured_plan_threads(self)
                if (self.threads is not None and self.threads > 1
                        and self._csr is not None):
                    # prebuild the slab partition a cache-hit verdict skips;
                    # with REPRO_ARTIFACTS set, persisted boundaries replace
                    # the balance computation across restarts
                    m = self._csr
                    self.par.partition(
                        ("csr", self.threads),
                        lambda: _cached_csr_partition(m, self.threads))

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, int]:
        return self.operator.shape

    def workspace(self):
        """The calling thread's plan-scoped scratch arena."""
        return self._tls.workspace

    # ------------------------------------------------------------------ #
    def apply(self, x: np.ndarray, record: bool = True) -> np.ndarray:
        """``y = A·x`` rounded to the plan's vector precision."""
        kind = self.kind
        if kind == "csr":
            m = self._csr
            return self.backend.spmv_csr(m.values, m.indices, m.indptr, x,
                                         out_precision=self.vec_prec,
                                         record=record, scratch=m.scratch(),
                                         par=self.par)
        if kind == "ell":
            return self.backend.spmv_ell(self._ell, x,
                                         out_precision=self.vec_prec,
                                         record=record)
        if kind == "stencil":
            return self.backend.apply_stencil(self._stencil, x,
                                              out_precision=self.vec_prec,
                                              record=record)
        return self.operator.apply(x, out_precision=self.vec_prec,
                                   record=record)

    def apply_batch(self, x: np.ndarray, record: bool = True) -> np.ndarray:
        """``Y = A·X`` for one RHS per column."""
        kind = self.kind
        if kind == "csr":
            m = self._csr
            return self.backend.spmm_csr(m.values, m.indices, m.indptr, x,
                                         out_precision=self.vec_prec,
                                         record=record, scratch=m.scratch(),
                                         par=self.par)
        if kind == "ell":
            return self.backend.spmm_ell(self._ell, x,
                                         out_precision=self.vec_prec,
                                         record=record)
        if kind == "stencil":
            return self.backend.apply_stencil_batch(self._stencil, x,
                                                    out_precision=self.vec_prec,
                                                    record=record)
        return self.operator.apply_batch(x, out_precision=self.vec_prec,
                                         record=record)

    # ------------------------------------------------------------------ #
    def residual(self, v: np.ndarray, x: np.ndarray,
                 record: bool = True) -> np.ndarray:
        """Fused residual update ``r = v − A·x``.

        CSR storage runs the one-pass ``spmv_axpy`` kernel; other storages
        compose the bound apply with the backend's ``residual_update`` —
        either way the rounding chain and counters match the unfused
        apply-then-axpy sequence.
        """
        if self.kind == "csr":
            m = self._csr
            return self.backend.spmv_axpy(m.values, m.indices, m.indptr, x, v,
                                          out_precision=self.vec_prec,
                                          record=record, scratch=m.scratch(),
                                          par=self.par)
        az = self.apply(x, record=record)
        return self.backend.residual_update(v, az, out_precision=self.vec_prec,
                                            record=record,
                                            scratch=self.workspace())

    def residual_batch(self, v: np.ndarray, x: np.ndarray,
                       record: bool = True) -> np.ndarray:
        """Batched fused residual ``R = V − A·X``."""
        if self.kind == "csr":
            m = self._csr
            return self.backend.spmm_axpy(m.values, m.indices, m.indptr, x, v,
                                          out_precision=self.vec_prec,
                                          record=record, scratch=m.scratch(),
                                          par=self.par)
        az = self.apply_batch(x, record=record)
        return self.backend.residual_update_batch(
            v, az, out_precision=self.vec_prec, record=record,
            scratch=self.workspace())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SolvePlan(kind={self.kind!r}, backend={self.backend.name!r}, "
                f"vec={self.vec_prec.label}, shape={self.shape})")


# ---------------------------------------------------------------------- #
# Module-level plan cache (fingerprint-keyed LRU)
# ---------------------------------------------------------------------- #
_CACHE_SIZE = max(1, int(os.environ.get("REPRO_PLAN_CACHE_SIZE", "64") or 64))
_CACHE_LOCK = threading.Lock()
_PLAN_CACHE: OrderedDict[tuple, SolvePlan] = OrderedDict()
_STATS = {"compiled": 0, "hits": 0, "misses": 0}


def compile_plan(operator, vec_prec: Precision | str, backend=None) -> SolvePlan:
    """Compile a fresh (uncached) plan; :func:`plan_for` is the cached entry."""
    plan = SolvePlan(operator, vec_prec, backend=backend)
    with _CACHE_LOCK:
        _STATS["compiled"] += 1
    return plan


def plan_for(operator, vec_prec: Precision | str, backend=None) -> SolvePlan:
    """The cached plan for ``(operator.fingerprint(), backend, vec_prec)``.

    Content-keyed: equal-valued operators held by different callers — and
    new solver instances for a previously seen matrix — share one compiled
    plan, including its autotuned format verdict.
    """
    backend = backend if backend is not None else get_backend()
    fingerprint = getattr(operator, "fingerprint", None)
    if fingerprint is None:
        # structural duck types without a content hash still get a plan —
        # callers (solver levels) cache it per instance instead
        return compile_plan(operator, vec_prec, backend=backend)
    key = (fingerprint(), _storage_config(operator), backend.name,
           as_precision(vec_prec).label)
    with _CACHE_LOCK:
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            _PLAN_CACHE.move_to_end(key)
            _STATS["hits"] += 1
            return plan
        _STATS["misses"] += 1
    plan = compile_plan(operator, vec_prec, backend=backend)
    with _CACHE_LOCK:
        _PLAN_CACHE[key] = plan
        _PLAN_CACHE.move_to_end(key)
        while len(_PLAN_CACHE) > _CACHE_SIZE:
            _PLAN_CACHE.popitem(last=False)
    return plan


def plan_cache_stats() -> dict:
    """Hit/miss/compile counters plus the current cache size."""
    with _CACHE_LOCK:
        return dict(_STATS, cached=len(_PLAN_CACHE))


def drop_plans_for(fingerprint: str) -> int:
    """Drop every cached plan compiled for one operator fingerprint.

    Compiled plans pre-bind the operator's storage arrays; when that storage
    is a shared-memory view (the process tier), the mapping cannot close
    while a cached plan pins it.  Eviction paths call this before releasing
    the segment.  Returns the number of plans dropped.
    """
    with _CACHE_LOCK:
        doomed = [key for key in _PLAN_CACHE if key[0] == fingerprint]
        for key in doomed:
            del _PLAN_CACHE[key]
    return len(doomed)


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the counters (tests)."""
    with _CACHE_LOCK:
        _PLAN_CACHE.clear()
        for k in _STATS:
            _STATS[k] = 0

"""Measured storage-format autotuning for compiled solve plans.

The cost model's analytic CSR-vs-sliced-ELL comparison (Section 4.1 traffic
constants) predicts which assembled layout moves fewer bytes — but bytes are
a proxy, and on an emulated software stack the gather patterns, padding and
kernel constants can flip the verdict.  This module *measures* instead: the
first plan compiled for a ``(matrix fingerprint, backend, precision)``
combination times a few warm-up applies of each candidate format and picks
the faster one.  The verdict is cached

* **in-process** — every later plan/solver for the same fingerprint reuses
  it instantly (the :class:`~repro.serve.BatchDispatcher`'s repeated-
  fingerprint traffic never re-measures), and
* **optionally on disk** — point ``REPRO_TUNE_CACHE`` at a JSON file and
  verdicts persist across processes (loaded lazily, written atomically).

``REPRO_TUNE=0`` disables measurement entirely; callers then fall back to
the analytic cost-model comparison, exactly as before this layer existed.
Measurement runs with counters disabled and ``record=False`` so tuning never
perturbs traffic accounting.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time

import numpy as np

from ..perf.counters import counters_disabled

__all__ = [
    "tuning_enabled",
    "set_tuning_enabled",
    "measurement_suppressed",
    "set_measurement_suppressed",
    "measured_assembled_format",
    "measured_plan_threads",
    "autotune_stats",
    "clear_autotune_cache",
]

_ENABLED = os.environ.get("REPRO_TUNE", "1").strip().lower() not in (
    "0", "off", "false", "no")

#: transient measurement pause (brownout): cached verdicts keep serving but
#: no new timing runs start while the serving tier is shedding load
_SUPPRESSED = False

#: matrices larger than this measure too slowly relative to their setup
#: budget; the analytic model handles them
_MAX_TUNE_NNZ = 50_000_000

#: below this the kernels finish in microseconds — timing is noise and the
#: format choice is irrelevant, so the analytic model decides
_MIN_TUNE_ROWS = 4096

#: timing repeats per candidate (after one warm-up apply)
_REPEATS = 3

_LOCK = threading.Lock()
_CACHE: dict[tuple, str] = {}
_DISK_LOADED = False
_STATS = {"measured": 0, "hits": 0, "disk_hits": 0,
          "thread_measured": 0, "thread_hits": 0}

#: plan kind → the kernel name a thread verdict is measured under (the
#: batched sibling inherits the verdict: more work per row, never less
#: parallel-friendly)
_THREAD_KERNELS = {"csr": ("spmv", "spmm"), "ell": ("spmv", "spmm"),
                   "stencil": ("stencil", "stencil_batch")}


def tuning_enabled() -> bool:
    """Whether measured format selection is active (``REPRO_TUNE``)."""
    return _ENABLED


def set_tuning_enabled(enabled: bool) -> bool:
    """Enable/disable measurement (process-wide); returns the old state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def measurement_suppressed() -> bool:
    """Whether measurement is transiently paused (serving-tier brownout)."""
    return _SUPPRESSED


def set_measurement_suppressed(suppressed: bool) -> bool:
    """Pause/resume new timing runs (process-wide); returns the old state.

    Unlike :func:`set_tuning_enabled` this is a *transient* signal — the
    :class:`~repro.serve.BrownoutController` raises it while the serving
    tier is under pressure so measurement never competes with paying
    traffic; cached verdicts keep being served either way.
    """
    global _SUPPRESSED
    previous = _SUPPRESSED
    _SUPPRESSED = bool(suppressed)
    return previous


def autotune_stats() -> dict:
    """Counters describing the tuner's cache behaviour (for tests/serving).

    ``thread_verdicts`` histograms the autotuned thread counts currently
    cached (``{"1": 3, "4": 2}`` = three operators pinned serial, two fanned
    to four threads) so parallel-placement regressions are observable from
    the dispatcher's stats.
    """
    with _LOCK:
        verdicts: dict[str, int] = {}
        formats = 0
        for key, choice in _CACHE.items():
            if "threads" in key:
                verdicts[choice] = verdicts.get(choice, 0) + 1
            else:
                formats += 1
        return dict(_STATS, cached=formats, thread_verdicts=verdicts,
                    suppressed=_SUPPRESSED)


def clear_autotune_cache() -> None:
    """Forget every in-process verdict (tests)."""
    global _DISK_LOADED
    with _LOCK:
        _CACHE.clear()
        _DISK_LOADED = False
        for k in _STATS:
            _STATS[k] = 0


def _cache_path() -> str | None:
    path = os.environ.get("REPRO_TUNE_CACHE", "").strip()
    if path:
        return path
    # generalized artifact store: verdicts ride along with the other
    # compiled artifacts when REPRO_ARTIFACTS is configured
    from ..cache import artifacts_dir

    base = artifacts_dir()
    if base is not None:
        return os.path.join(base, "autotune.json")
    return None


def _valid_entry(key: tuple, choice) -> bool:
    """Whether a (key, verdict) pair parsed from disk is structurally sane."""
    if not isinstance(choice, str):
        return False
    if "threads" in key:
        return choice.isdigit()
    return choice in ("csr", "ell")


def _load_disk_cache_locked() -> None:
    """Merge the on-disk verdicts into the in-process cache (best effort)."""
    global _DISK_LOADED
    if _DISK_LOADED:
        return
    _DISK_LOADED = True
    path = _cache_path()
    if path is None or not os.path.exists(path):
        return
    try:
        with open(path, encoding="utf-8") as fh:
            stored = json.load(fh)
        for key_str, choice in stored.items():
            key = tuple(key_str.split("|"))
            if _valid_entry(key, choice):
                _CACHE.setdefault(key, choice)
    except (OSError, ValueError, AttributeError):  # pragma: no cover - corrupt cache
        pass


def _store_disk_cache(snapshot: dict[tuple, str]) -> None:
    """Atomically merge the current verdicts into the disk cache.

    The on-disk payload is re-read and merged under the same atomic replace
    so two processes sharing a cache file append to, rather than clobber,
    each other's verdicts (the in-process snapshot wins per key).  A corrupt
    or foreign existing file contributes nothing and is overwritten.
    """
    path = _cache_path()
    if path is None:
        return
    payload: dict[str, str] = {}
    try:
        with open(path, encoding="utf-8") as fh:
            existing = json.load(fh)
        for key_str, choice in existing.items():
            if _valid_entry(tuple(key_str.split("|")), choice):
                payload[key_str] = choice
    except (OSError, ValueError, AttributeError):
        pass
    payload.update(("|".join(key), choice) for key, choice in snapshot.items())
    try:
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=0, sort_keys=True)
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - read-only cache dir etc.
        pass


def _time_apply(fn, repeats: int = _REPEATS) -> float:
    """Best-of-``repeats`` wall time of ``fn`` after one warm-up call."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measured_assembled_format(operator, backend) -> str | None:
    """Timed CSR-vs-sliced-ELL verdict for an ``AssembledOperator``.

    Returns ``"csr"`` / ``"ell"``, or ``None`` when measurement is disabled,
    the matrix is outside the tuning budget, or timing failed — the caller
    then falls back to the analytic cost model.
    """
    if not _ENABLED:
        return None
    csr = operator.csr
    if csr.nnz > _MAX_TUNE_NNZ or csr.nrows < _MIN_TUNE_ROWS:
        return None
    key = (csr.fingerprint(), backend.name, operator.precision.label,
           str(int(operator.chunk_size)))
    with _LOCK:
        _load_disk_cache_locked()
        cached = _CACHE.get(key)
        if cached is not None:
            _STATS["hits"] += 1
            return cached
    if _SUPPRESSED:
        # brownout: no new timing runs while serving is under pressure
        return None

    try:
        from ..sparse.ell import SlicedEllMatrix

        ell = operator._ell
        if ell is None:
            ell = SlicedEllMatrix(csr, chunk_size=operator.chunk_size)
        # deterministic probe in the matrix storage dtype (the level's apply
        # promotes vectors to at least this precision)
        x = (np.random.default_rng(csr.nrows)
             .uniform(-1.0, 1.0, csr.ncols).astype(operator.dtype))
        with counters_disabled():
            csr_s = _time_apply(lambda: backend.spmv_csr(
                csr.values, csr.indices, csr.indptr, x, record=False,
                scratch=csr.scratch()))
            ell_s = _time_apply(lambda: backend.spmv_ell(ell, x, record=False))
        choice = "ell" if ell_s < csr_s else "csr"
        if choice == "ell":
            operator._ell = ell          # keep the winner's storage warm
    except Exception:  # pragma: no cover - measurement must never break solves
        return None

    with _LOCK:
        _CACHE[key] = choice
        _STATS["measured"] += 1
        snapshot = dict(_CACHE)
    _store_disk_cache(snapshot)
    return choice


# ---------------------------------------------------------------------- #
# Per-(fingerprint, kernel) thread-count autotuning
# ---------------------------------------------------------------------- #
def _thread_candidates(budget: int) -> list[int]:
    """``[1, 2, 4, ...]`` powers of two up to and including the budget."""
    candidates = [1]
    t = 2
    while t < budget:
        candidates.append(t)
        t *= 2
    if budget > 1:
        candidates.append(budget)
    return candidates


def measured_plan_threads(plan) -> int | None:
    """Timed thread-count verdict for a compiled :class:`~repro.plans.SolvePlan`.

    Measures the plan's bound apply kernel at 1, 2, 4, … threads (up to the
    configured ``REPRO_THREADS`` budget) and records the fastest count on
    the storage's :class:`~repro.par.ParState` — the partitioned kernels
    then consult that verdict instead of the size heuristic, so *small
    operators stay serial* (a measured verdict of 1 pins them there) and
    large ones fan out exactly as wide as actually helps on this machine.
    The verdict is cached per ``(fingerprint, backend, precision, kernel,
    budget)`` in-process and, with ``REPRO_TUNE_CACHE``, on disk.

    Returns the verdict, or ``None`` when tuning is disabled, the budget is
    1, or the plan's storage kind has no parallel apply.
    """
    from ..par import configured_threads, force_threads
    from ..par.partition import par_state

    budget = configured_threads()
    kernels = _THREAD_KERNELS.get(plan.kind)
    if not _ENABLED or budget <= 1 or kernels is None:
        return None
    storage = plan._csr if plan.kind == "csr" else (
        plan._ell if plan.kind == "ell" else plan._stencil)
    nrows = plan.shape[0]
    state = par_state(storage)

    def adopt(verdict: int) -> int:
        for kernel in kernels:
            state.threads[kernel] = verdict
        return verdict

    if nrows < _MIN_TUNE_ROWS:
        # too small to time reliably — and too small to benefit: pin serial
        return adopt(1)

    fingerprint = getattr(plan.operator, "fingerprint", None)
    key = None
    if fingerprint is not None:
        key = (fingerprint(), plan.backend.name, plan.vec_prec.label,
               "threads", kernels[0], str(budget))
        with _LOCK:
            _load_disk_cache_locked()
            cached = _CACHE.get(key)
            if cached is not None:
                _STATS["thread_hits"] += 1
                return adopt(int(cached))
    if _SUPPRESSED:
        # brownout: no new timing runs while serving is under pressure
        return None

    try:
        x = (np.random.default_rng(nrows)
             .uniform(-1.0, 1.0, plan.shape[1]).astype(plan.vec_prec.dtype))
        timings = []
        with counters_disabled():
            for t in _thread_candidates(budget):
                with force_threads(t):
                    timings.append((_time_apply(
                        lambda: plan.apply(x, record=False)), t))
        # a wider fan-out must *clearly* beat serial — on a loaded or
        # undersized machine near-tied timings are noise, and adopting a
        # parallel verdict then taxes every future solve
        serial_s = timings[0][0]
        best_s, best = min(timings)
        if best > 1 and best_s > 0.95 * serial_s:
            best = 1
    except Exception:  # pragma: no cover - measurement must never break solves
        return None

    adopt(best)
    if key is not None:
        with _LOCK:
            _CACHE[key] = str(best)
            _STATS["thread_measured"] += 1
            snapshot = dict(_CACHE)
        _store_disk_cache(snapshot)
    return best

"""Measured storage-format autotuning for compiled solve plans.

The cost model's analytic CSR-vs-sliced-ELL comparison (Section 4.1 traffic
constants) predicts which assembled layout moves fewer bytes — but bytes are
a proxy, and on an emulated software stack the gather patterns, padding and
kernel constants can flip the verdict.  This module *measures* instead: the
first plan compiled for a ``(matrix fingerprint, backend, precision)``
combination times a few warm-up applies of each candidate format and picks
the faster one.  The verdict is cached

* **in-process** — every later plan/solver for the same fingerprint reuses
  it instantly (the :class:`~repro.serve.BatchDispatcher`'s repeated-
  fingerprint traffic never re-measures), and
* **optionally on disk** — point ``REPRO_TUNE_CACHE`` at a JSON file and
  verdicts persist across processes (loaded lazily, written atomically).

``REPRO_TUNE=0`` disables measurement entirely; callers then fall back to
the analytic cost-model comparison, exactly as before this layer existed.
Measurement runs with counters disabled and ``record=False`` so tuning never
perturbs traffic accounting.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time

import numpy as np

from ..perf.counters import counters_disabled

__all__ = [
    "tuning_enabled",
    "set_tuning_enabled",
    "measured_assembled_format",
    "autotune_stats",
    "clear_autotune_cache",
]

_ENABLED = os.environ.get("REPRO_TUNE", "1").strip().lower() not in (
    "0", "off", "false", "no")

#: matrices larger than this measure too slowly relative to their setup
#: budget; the analytic model handles them
_MAX_TUNE_NNZ = 50_000_000

#: below this the kernels finish in microseconds — timing is noise and the
#: format choice is irrelevant, so the analytic model decides
_MIN_TUNE_ROWS = 4096

#: timing repeats per candidate (after one warm-up apply)
_REPEATS = 3

_LOCK = threading.Lock()
_CACHE: dict[tuple, str] = {}
_DISK_LOADED = False
_STATS = {"measured": 0, "hits": 0, "disk_hits": 0}


def tuning_enabled() -> bool:
    """Whether measured format selection is active (``REPRO_TUNE``)."""
    return _ENABLED


def set_tuning_enabled(enabled: bool) -> bool:
    """Enable/disable measurement (process-wide); returns the old state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def autotune_stats() -> dict:
    """Counters describing the tuner's cache behaviour (for tests/serving)."""
    with _LOCK:
        return dict(_STATS, cached=len(_CACHE))


def clear_autotune_cache() -> None:
    """Forget every in-process verdict (tests)."""
    global _DISK_LOADED
    with _LOCK:
        _CACHE.clear()
        _DISK_LOADED = False
        for k in _STATS:
            _STATS[k] = 0


def _cache_path() -> str | None:
    path = os.environ.get("REPRO_TUNE_CACHE", "").strip()
    return path or None


def _load_disk_cache_locked() -> None:
    """Merge the on-disk verdicts into the in-process cache (best effort)."""
    global _DISK_LOADED
    if _DISK_LOADED:
        return
    _DISK_LOADED = True
    path = _cache_path()
    if path is None or not os.path.exists(path):
        return
    try:
        with open(path, encoding="utf-8") as fh:
            stored = json.load(fh)
        for key_str, choice in stored.items():
            if choice in ("csr", "ell"):
                _CACHE.setdefault(tuple(key_str.split("|")), choice)
    except (OSError, ValueError):  # pragma: no cover - corrupt/racing cache
        pass


def _store_disk_cache(snapshot: dict[tuple, str]) -> None:
    """Atomically rewrite the disk cache with the current verdicts."""
    path = _cache_path()
    if path is None:
        return
    payload = {"|".join(key): choice for key, choice in snapshot.items()}
    try:
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=0, sort_keys=True)
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - read-only cache dir etc.
        pass


def _time_apply(fn, repeats: int = _REPEATS) -> float:
    """Best-of-``repeats`` wall time of ``fn`` after one warm-up call."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measured_assembled_format(operator, backend) -> str | None:
    """Timed CSR-vs-sliced-ELL verdict for an ``AssembledOperator``.

    Returns ``"csr"`` / ``"ell"``, or ``None`` when measurement is disabled,
    the matrix is outside the tuning budget, or timing failed — the caller
    then falls back to the analytic cost model.
    """
    if not _ENABLED:
        return None
    csr = operator.csr
    if csr.nnz > _MAX_TUNE_NNZ or csr.nrows < _MIN_TUNE_ROWS:
        return None
    key = (csr.fingerprint(), backend.name, operator.precision.label,
           str(int(operator.chunk_size)))
    with _LOCK:
        _load_disk_cache_locked()
        cached = _CACHE.get(key)
        if cached is not None:
            _STATS["hits"] += 1
            return cached

    try:
        from ..sparse.ell import SlicedEllMatrix

        ell = operator._ell
        if ell is None:
            ell = SlicedEllMatrix(csr, chunk_size=operator.chunk_size)
        # deterministic probe in the matrix storage dtype (the level's apply
        # promotes vectors to at least this precision)
        x = (np.random.default_rng(csr.nrows)
             .uniform(-1.0, 1.0, csr.ncols).astype(operator.dtype))
        with counters_disabled():
            csr_s = _time_apply(lambda: backend.spmv_csr(
                csr.values, csr.indices, csr.indptr, x, record=False,
                scratch=csr.scratch()))
            ell_s = _time_apply(lambda: backend.spmv_ell(ell, x, record=False))
        choice = "ell" if ell_s < csr_s else "csr"
        if choice == "ell":
            operator._ell = ell          # keep the winner's storage warm
    except Exception:  # pragma: no cover - measurement must never break solves
        return None

    with _LOCK:
        _CACHE[key] = choice
        _STATS["measured"] += 1
        snapshot = dict(_CACHE)
    _store_disk_cache(snapshot)
    return choice

"""Precision specifications for kernels and solver levels.

A :class:`PrecisionSpec` bundles the *storage* precision of the operands
(matrix values, vectors, preconditioner values) with the *compute* precision
used for arithmetic.  This mirrors Table 1 of the paper, where e.g. the F^m3
level stores ``A`` in fp16 but keeps its Arnoldi vectors in fp32 and therefore
performs SpMV in fp32.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .dtypes import Precision, as_precision, promote

__all__ = ["PrecisionSpec", "LevelPrecision", "F3R_PRECISIONS", "uniform_spec"]


@dataclass(frozen=True)
class PrecisionSpec:
    """Storage + compute precision for a single kernel invocation.

    Parameters
    ----------
    matrix:
        Storage precision of sparse-matrix values.
    vector:
        Storage precision of vectors produced by the kernel.
    compute:
        Precision of the arithmetic.  Defaults to the promotion of matrix and
        vector precisions, matching the paper's promotion rule.
    """

    matrix: Precision = Precision.FP64
    vector: Precision = Precision.FP64
    compute: Precision | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "matrix", as_precision(self.matrix))
        object.__setattr__(self, "vector", as_precision(self.vector))
        if self.compute is None:
            object.__setattr__(self, "compute", promote(self.matrix, self.vector))
        else:
            object.__setattr__(self, "compute", as_precision(self.compute))

    # ------------------------------------------------------------------ #
    def with_matrix(self, precision: Precision | str) -> "PrecisionSpec":
        return replace(self, matrix=as_precision(precision), compute=None)

    def with_vector(self, precision: Precision | str) -> "PrecisionSpec":
        return replace(self, vector=as_precision(precision), compute=None)

    @property
    def is_uniform(self) -> bool:
        return self.matrix == self.vector == self.compute

    def describe(self) -> str:
        return f"A={self.matrix.label}, vec={self.vector.label}, compute={self.compute.label}"


def uniform_spec(precision: Precision | str) -> PrecisionSpec:
    """A spec with matrix, vector and compute all in the same precision."""
    p = as_precision(precision)
    return PrecisionSpec(matrix=p, vector=p, compute=p)


@dataclass(frozen=True)
class LevelPrecision:
    """Precision assignment of one level of a nested solver (one row of Table 1).

    Parameters
    ----------
    matrix:
        Precision the coefficient matrix ``A`` is stored in at this level.
    vector:
        Precision of the level's own vectors (Arnoldi basis, residuals, ...).
    preconditioner:
        Precision of the primary preconditioner values when this level applies
        it directly (``None`` for levels whose preconditioner is an inner
        solver, shown as "-" in Table 1).
    """

    matrix: Precision = Precision.FP64
    vector: Precision = Precision.FP64
    preconditioner: Precision | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "matrix", as_precision(self.matrix))
        object.__setattr__(self, "vector", as_precision(self.vector))
        if self.preconditioner is not None:
            object.__setattr__(self, "preconditioner", as_precision(self.preconditioner))

    def spmv_spec(self) -> PrecisionSpec:
        """PrecisionSpec for SpMV at this level (A storage vs vector storage)."""
        return PrecisionSpec(matrix=self.matrix, vector=self.vector)

    def describe(self) -> str:
        m = "-" if self.preconditioner is None else self.preconditioner.label
        return f"A={self.matrix.label}, vectors={self.vector.label}, M={m}"


#: The default F3R precision schedule of Table 1, keyed by level index (1-based:
#: level 1 = outermost FGMRES, level 4 = innermost Richardson).
F3R_PRECISIONS: dict[int, LevelPrecision] = {
    1: LevelPrecision(matrix=Precision.FP64, vector=Precision.FP64),
    2: LevelPrecision(matrix=Precision.FP32, vector=Precision.FP32),
    3: LevelPrecision(matrix=Precision.FP16, vector=Precision.FP32),
    4: LevelPrecision(
        matrix=Precision.FP16, vector=Precision.FP16, preconditioner=Precision.FP16
    ),
}

"""Emulated mixed-precision arithmetic (fp64 / fp32 / fp16).

This package is the substrate that lets the reproduction run the paper's
precision schedule on commodity hardware: NumPy's ``float16``/``float32``
implement the same IEEE-754 formats the paper targets, so rounding — the only
precision effect that influences convergence — is reproduced exactly.
"""

from .dtypes import (
    BYTES_PER_INDEX,
    BYTES_PER_VALUE,
    Precision,
    PrecisionTraits,
    as_precision,
    dtype_of,
    precision_of_dtype,
    promote,
    traits,
)
from .rounding import cast_array, cast_like, chop_chain, representable, round_to, saturate
from .spec import F3R_PRECISIONS, LevelPrecision, PrecisionSpec, uniform_spec
from .analysis import (
    CastReport,
    analyze_cast,
    axpy_error_bound,
    dot_error_bound,
    relative_rounding_error,
    spmv_error_bound,
)

__all__ = [
    "Precision",
    "PrecisionTraits",
    "PrecisionSpec",
    "LevelPrecision",
    "F3R_PRECISIONS",
    "BYTES_PER_INDEX",
    "BYTES_PER_VALUE",
    "as_precision",
    "dtype_of",
    "precision_of_dtype",
    "promote",
    "traits",
    "uniform_spec",
    "round_to",
    "cast_array",
    "cast_like",
    "chop_chain",
    "representable",
    "saturate",
    "CastReport",
    "analyze_cast",
    "dot_error_bound",
    "axpy_error_bound",
    "spmv_error_bound",
    "relative_rounding_error",
]

"""Rounding and casting helpers for emulated mixed-precision arithmetic.

Every kernel in :mod:`repro` that claims to run "in fp16" or "in fp32" routes
its results through these helpers so the stored values are bit-identical to
what native low-precision hardware would hold.  NumPy's ``astype`` performs
IEEE round-to-nearest-even, matching the conversion instructions used on the
paper's CPU (``vcvtps2ph``-family) and GPU.
"""

from __future__ import annotations

import numpy as np

from .dtypes import Precision, as_precision

__all__ = [
    "round_to",
    "cast_array",
    "cast_like",
    "representable",
    "saturate",
    "chop_chain",
]


def round_to(x, precision: Precision | str) -> np.ndarray:
    """Round ``x`` to ``precision`` and return it in that dtype.

    Scalars are returned as 0-d arrays of the target dtype; arrays are
    converted with round-to-nearest-even.  Values exceeding the target range
    become ``inf`` exactly as they would on hardware (fp16 overflows at 65504).
    """
    p = as_precision(precision)
    arr = np.asarray(x)
    if arr.dtype == p.dtype:
        return arr
    return arr.astype(p.dtype)


def cast_array(x: np.ndarray, precision: Precision | str, copy: bool = False) -> np.ndarray:
    """Cast an array to the storage dtype of ``precision``.

    Unlike :func:`round_to` this always returns an ``ndarray`` (never a view of
    a scalar) and can force a copy, which is what the preconditioner-storage
    casting in the paper does ("we first construct it in fp64 and then cast its
    values to fp32 or fp16").
    """
    p = as_precision(precision)
    arr = np.asarray(x)
    if arr.dtype == p.dtype and not copy:
        return arr
    return arr.astype(p.dtype, copy=True)


def cast_like(x: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Cast ``x`` to the dtype of ``reference``."""
    if x.dtype == reference.dtype:
        return x
    return x.astype(reference.dtype)


def representable(x, precision: Precision | str) -> bool:
    """True when every finite element of ``x`` survives a round-trip to ``precision``
    without overflowing to infinity.

    Used by tests and by the overflow accounting to detect when an fp16 cast
    destroys information catastrophically (the paper's "precision overflow"
    failure mode of fp16-F2).
    """
    p = as_precision(precision)
    arr = np.asarray(x, dtype=np.float64)
    finite = np.isfinite(arr)
    if not np.any(finite):
        return True
    return bool(np.all(np.abs(arr[finite]) <= p.max))


def saturate(x, precision: Precision | str) -> np.ndarray:
    """Cast to ``precision`` but clamp overflowing magnitudes to the largest
    finite value instead of producing infinities.

    The paper's solvers do not saturate (hardware fp16 overflows to inf), but
    saturation is offered as an opt-in robustness feature and exercised in the
    failure-injection tests.
    """
    p = as_precision(precision)
    arr = np.asarray(x, dtype=np.float64)
    clipped = np.clip(arr, -p.max, p.max)
    return clipped.astype(p.dtype)


def chop_chain(x, *precisions: Precision | str) -> np.ndarray:
    """Round ``x`` through a chain of precisions in order.

    ``chop_chain(v, "fp32", "fp16")`` models storing a value to fp32 memory and
    then re-storing to fp16 — the double-rounding path taken when a fp64
    preconditioner is cast first to fp32 then to fp16.
    """
    arr = np.asarray(x)
    for p in precisions:
        arr = round_to(arr, p)
    return arr

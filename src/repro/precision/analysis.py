"""Round-off error analysis and overflow accounting utilities.

These helpers support two things:

1. Tests that verify emulated low-precision kernels obey standard forward
   error bounds (e.g. a dot product computed in precision ``u`` satisfies
   ``|fl(x·y) − x·y| ≤ n·u·|x|·|y| / (1 − n·u)``).
2. Diagnostics the solvers can attach to their convergence histories: how many
   values overflowed/underflowed when cast to fp16, and how much information a
   cast destroyed.  Section 6.2 of the paper attributes the failure of
   fp16-F2 to exactly this kind of "precision overflow"; the accounting makes
   that observable in the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dtypes import Precision, as_precision

__all__ = [
    "dot_error_bound",
    "axpy_error_bound",
    "spmv_error_bound",
    "CastReport",
    "analyze_cast",
    "relative_rounding_error",
]


def _gamma(n: int, u: float) -> float:
    """Higham's gamma_n = n*u / (1 - n*u); inf when n*u >= 1."""
    nu = n * u
    if nu >= 1.0:
        return float("inf")
    return nu / (1.0 - nu)


def dot_error_bound(n: int, precision: Precision | str) -> float:
    """Forward error bound constant for an n-term dot product in ``precision``.

    ``|fl(x^T y) - x^T y| <= gamma_n * |x|^T |y|`` with ``gamma_n = n u/(1-n u)``.
    """
    p = as_precision(precision)
    return _gamma(n, p.eps)


def axpy_error_bound(precision: Precision | str) -> float:
    """Error bound constant for y <- a*x + y (two rounding errors per element)."""
    p = as_precision(precision)
    return _gamma(2, p.eps)


def spmv_error_bound(max_nnz_per_row: int, precision: Precision | str) -> float:
    """Row-wise forward error bound constant for sparse mat-vec in ``precision``.

    Each output element is a dot product over at most ``max_nnz_per_row``
    terms, so the bound constant is ``gamma_{nnz_row}``.
    """
    p = as_precision(precision)
    return _gamma(max(1, max_nnz_per_row), p.eps)


def relative_rounding_error(x, precision: Precision | str) -> np.ndarray:
    """Element-wise relative error of rounding ``x`` to ``precision``.

    Zero elements have zero error by convention.  Overflowing elements report
    ``inf``.
    """
    p = as_precision(precision)
    x64 = np.asarray(x, dtype=np.float64)
    rounded = x64.astype(p.dtype).astype(np.float64)
    err = np.zeros_like(x64)
    nz = x64 != 0
    err[nz] = np.abs(rounded[nz] - x64[nz]) / np.abs(x64[nz])
    return err


@dataclass(frozen=True)
class CastReport:
    """Summary of what happens when an array is cast to a lower precision."""

    precision: Precision
    total: int
    overflowed: int
    underflowed_to_zero: int
    max_relative_error: float

    @property
    def overflow_fraction(self) -> float:
        return self.overflowed / self.total if self.total else 0.0

    @property
    def lossless(self) -> bool:
        return self.overflowed == 0 and self.max_relative_error == 0.0


def analyze_cast(x, precision: Precision | str) -> CastReport:
    """Analyze the effect of casting ``x`` down to ``precision``.

    Counts values whose magnitude exceeds the target's finite range (overflow
    to ±inf) and nonzero values that flush to zero (magnitude below the
    smallest subnormal), and records the worst relative rounding error among
    the surviving elements.
    """
    p = as_precision(precision)
    x64 = np.asarray(x, dtype=np.float64).ravel()
    total = x64.size
    if total == 0:
        return CastReport(p, 0, 0, 0, 0.0)

    finite = np.isfinite(x64)
    overflow = finite & (np.abs(x64) > p.max)
    smallest_subnormal = float(np.finfo(p.dtype).smallest_subnormal)
    underflow = finite & (x64 != 0) & (np.abs(x64) < smallest_subnormal / 2.0)

    survivors = finite & ~overflow & ~underflow & (x64 != 0)
    if np.any(survivors):
        rounded = x64[survivors].astype(p.dtype).astype(np.float64)
        rel = np.abs(rounded - x64[survivors]) / np.abs(x64[survivors])
        max_rel = float(np.max(rel))
    else:
        max_rel = 0.0

    return CastReport(
        precision=p,
        total=int(total),
        overflowed=int(np.count_nonzero(overflow)),
        underflowed_to_zero=int(np.count_nonzero(underflow)),
        max_relative_error=max_rel,
    )

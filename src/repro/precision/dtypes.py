"""Floating-point precision registry.

The paper's F3R solver mixes three IEEE-754 binary formats: fp64 (binary64),
fp32 (binary32) and fp16 (binary16).  On the paper's hardware these map to
native instructions (AVX-512 FP16, CUDA half); here they map to NumPy dtypes,
which implement the identical formats, so rounding behaviour — the only thing
that affects convergence — is reproduced exactly.

This module is the single source of truth for precision metadata: machine
epsilon, representable range, storage size, and promotion rules (the paper's
"higher-precision instructions are used when the inputs differ in precision").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Precision",
    "PrecisionTraits",
    "traits",
    "promote",
    "dtype_of",
    "precision_of_dtype",
    "BYTES_PER_VALUE",
    "BYTES_PER_INDEX",
]

#: Size of the integer column-index / row-pointer type used throughout the
#: paper's sparse formats ("All the solvers used 32-bit integers for column
#: indices and index pointer arrays").
BYTES_PER_INDEX = 4


class Precision(enum.Enum):
    """The three floating-point formats used by the paper.

    Members compare by *width*: ``Precision.FP16 < Precision.FP32 < Precision.FP64``
    is expressed through :func:`promote` and the ``bits`` property rather than
    rich comparisons, keeping the enum simple and hashable.
    """

    FP64 = "fp64"
    FP32 = "fp32"
    FP16 = "fp16"

    # ------------------------------------------------------------------ #
    @property
    def dtype(self) -> np.dtype:
        """NumPy dtype implementing this format."""
        return _DTYPES[self]

    @property
    def bits(self) -> int:
        return _BITS[self]

    @property
    def bytes(self) -> int:
        return _BITS[self] // 8

    @property
    def eps(self) -> float:
        """Unit roundoff (machine epsilon) of the format."""
        return float(np.finfo(self.dtype).eps)

    @property
    def max(self) -> float:
        """Largest finite representable value."""
        return float(np.finfo(self.dtype).max)

    @property
    def min_normal(self) -> float:
        """Smallest positive normal value."""
        return float(np.finfo(self.dtype).tiny)

    @property
    def label(self) -> str:
        return self.value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_DTYPES = {
    Precision.FP64: np.dtype(np.float64),
    Precision.FP32: np.dtype(np.float32),
    Precision.FP16: np.dtype(np.float16),
}
_BITS = {Precision.FP64: 64, Precision.FP32: 32, Precision.FP16: 16}

_BY_DTYPE = {dt: p for p, dt in _DTYPES.items()}
_BY_NAME = {p.value: p for p in Precision}
_BY_NAME.update({"double": Precision.FP64, "single": Precision.FP32, "half": Precision.FP16})

#: bytes per stored matrix/vector value for each precision
BYTES_PER_VALUE = {p: p.bytes for p in Precision}


@dataclass(frozen=True)
class PrecisionTraits:
    """Immutable bundle of numerical characteristics of a format.

    Convenient for property-based tests and for the overflow/underflow
    accounting in :mod:`repro.precision.analysis`.
    """

    precision: Precision
    eps: float
    max: float
    min_normal: float
    mantissa_bits: int
    exponent_bits: int

    @property
    def decimal_digits(self) -> float:
        """Approximate number of significant decimal digits."""
        return self.mantissa_bits * 0.30103


_MANTISSA = {Precision.FP64: 52, Precision.FP32: 23, Precision.FP16: 10}
_EXPONENT = {Precision.FP64: 11, Precision.FP32: 8, Precision.FP16: 5}


def traits(precision: Precision | str) -> PrecisionTraits:
    """Return the :class:`PrecisionTraits` for ``precision``."""
    p = as_precision(precision)
    return PrecisionTraits(
        precision=p,
        eps=p.eps,
        max=p.max,
        min_normal=p.min_normal,
        mantissa_bits=_MANTISSA[p],
        exponent_bits=_EXPONENT[p],
    )


def as_precision(value: Precision | str | np.dtype | type) -> Precision:
    """Coerce strings, numpy dtypes, or Precision members to a Precision.

    Accepts ``"fp16"/"fp32"/"fp64"``, ``"half"/"single"/"double"``, numpy
    dtypes and scalar types.
    """
    if isinstance(value, Precision):
        return value
    if isinstance(value, str):
        key = value.lower()
        if key in _BY_NAME:
            return _BY_NAME[key]
        raise ValueError(f"unknown precision name: {value!r}")
    dt = np.dtype(value)
    if dt in _BY_DTYPE:
        return _BY_DTYPE[dt]
    raise ValueError(f"unsupported dtype for precision emulation: {dt}")


def dtype_of(precision: Precision | str) -> np.dtype:
    """NumPy dtype corresponding to ``precision``."""
    return as_precision(precision).dtype


def precision_of_dtype(dtype: np.dtype | type) -> Precision:
    """Inverse of :func:`dtype_of`."""
    return as_precision(dtype)


def promote(*precisions: Precision | str) -> Precision:
    """Return the widest of the given precisions.

    Mirrors the paper's rule that when operands differ in precision the
    computation is carried out in the higher precision (e.g. the fp16-stored
    matrix in F^m3 is multiplied against fp32 Arnoldi vectors using fp32
    arithmetic).
    """
    if not precisions:
        raise ValueError("promote() requires at least one precision")
    widest = Precision.FP16
    order = {Precision.FP16: 0, Precision.FP32: 1, Precision.FP64: 2}
    for p in precisions:
        p = as_precision(p)
        if order[p] > order[widest]:
            widest = p
    return widest

"""Assembled-storage operator with CSR / sliced-ELLPACK format auto-selection.

Wraps a :class:`~repro.sparse.CSRMatrix` behind the
:class:`~repro.operators.LinearOperator` contract and picks the storage
format each apply actually runs on:

* an explicit ``format="csr"`` / ``format="ell"`` pins the choice;
* ``format="auto"`` (default) asks the active backend for a preference
  (:meth:`~repro.backends.base.KernelBackend.preferred_assembled_format` —
  the ``fast`` engine pins CSR for the dtypes scipy's compiled matvec
  handles) and otherwise compares the Section 4.1 per-row traffic of the two
  layouts: CSR moves ``nnz/row`` values + column indices + a row-pointer
  word, sliced ELLPACK moves its *padded* entries — so ELL wins only when
  the chunk padding overhead stays below the row-pointer saving (near-uniform
  row lengths, the regular-grid case).

The choice and the lazily built ELL form are cached per backend; everything
is derived from the immutable CSR source, so the wrapper adds no mutability.
"""

from __future__ import annotations

import numpy as np

from ..backends import get_backend
from ..precision import BYTES_PER_INDEX, Precision, as_precision
from .base import LinearOperator

__all__ = ["AssembledOperator"]

_FORMATS = ("auto", "csr", "ell")


class AssembledOperator(LinearOperator):
    """A CSR-backed operator that auto-selects its apply-time storage format."""

    def __init__(self, matrix, format: str = "auto", chunk_size: int = 32) -> None:
        from ..sparse.csr import CSRMatrix

        if not isinstance(matrix, CSRMatrix):
            raise TypeError("AssembledOperator wraps a CSRMatrix; "
                            f"got {type(matrix).__name__}")
        if format not in _FORMATS:
            raise ValueError(f"format must be one of {_FORMATS}; got {format!r}")
        self.csr = matrix
        self.format = format
        self.chunk_size = int(chunk_size)
        self.shape = matrix.shape
        self._ell = None
        self._format_choice: dict[str, str] = {}
        self._astype_cache: dict[Precision, "AssembledOperator"] = {}

    # ------------------------------------------------------------------ #
    @property
    def dtype(self) -> np.dtype:
        return self.csr.values.dtype

    @property
    def nnz(self) -> int:
        return self.csr.nnz

    @property
    def nnz_per_row(self) -> float:
        return self.csr.nnz_per_row

    def diagonal(self) -> np.ndarray:
        return self.csr.diagonal()

    def fingerprint(self) -> str:
        return self.csr.fingerprint()

    def memory_bytes(self) -> int:
        return self.csr.memory_bytes()

    def assembled_entries(self):
        return self.csr

    def apply_traffic_constant(self, value_precision=Precision.FP64) -> float:
        """``cA`` of the storage format the active backend's applies run on:
        structural nnz for CSR, padded entries for sliced ELL (computed
        without building the ELL arrays)."""
        p = as_precision(value_precision)
        if self._choose_format(get_backend()) == "ell":
            per_row = self._padded_nnz() / max(1, self.csr.nrows)
        else:
            per_row = self.csr.nnz_per_row
        return per_row * (p.bytes + BYTES_PER_INDEX) / 8.0

    # ------------------------------------------------------------------ #
    def _padded_nnz(self) -> int:
        """Stored entries of the sliced-ELL layout, without building it."""
        from ..sparse.ell import padded_entry_count

        return padded_entry_count(self.csr.row_nnz(), self.chunk_size)

    def _choose_format(self, backend) -> str:
        if self.format != "auto":
            return self.format
        choice = self._format_choice.get(backend.name)
        if choice is None:
            choice = backend.preferred_assembled_format(self.precision)
            if choice not in ("csr", "ell"):
                # measured verdict first: the plan autotuner times a few
                # warm-up applies per format and caches the result per
                # (fingerprint, backend, precision) — in-process and
                # optionally on disk (REPRO_TUNE_CACHE)
                from ..plans.autotune import measured_assembled_format

                choice = measured_assembled_format(self, backend)
            if choice not in ("csr", "ell"):
                # measurement disabled (REPRO_TUNE=0) or out of budget: the
                # analytic cost-model comparison (Section 4.1 traffic
                # constants, in bytes per row): CSR reads values + column
                # indices + one row-pointer word; sliced ELL reads its
                # padded entries.
                nrows = max(1, self.csr.nrows)
                entry = self.precision.bytes + BYTES_PER_INDEX
                csr_bytes = self.csr.nnz_per_row * entry + BYTES_PER_INDEX
                ell_bytes = (self._padded_nnz() / nrows) * entry
                choice = "ell" if ell_bytes < csr_bytes else "csr"
            self._format_choice[backend.name] = choice
        return choice

    def storage_for(self, backend):
        """The storage object applies run on under ``backend``."""
        if self._choose_format(backend) == "ell":
            if self._ell is None:
                from ..sparse.ell import SlicedEllMatrix

                self._ell = SlicedEllMatrix(self.csr, chunk_size=self.chunk_size)
            return self._ell
        return self.csr

    def storage(self):
        """The storage object the active backend's applies will run on."""
        return self.storage_for(get_backend())

    # ------------------------------------------------------------------ #
    def apply(self, x, out_precision=None, record: bool = True):
        x = self._validate_vector(x)
        return self.storage().matvec(x, out_precision=out_precision, record=record)

    def apply_batch(self, x, out_precision=None, record: bool = True):
        x = self._validate_block(x)
        return self.storage().matmat(x, out_precision=out_precision, record=record)

    # ------------------------------------------------------------------ #
    def astype(self, precision) -> "AssembledOperator":
        p = as_precision(precision)
        if p == self.precision:
            return self
        cached = self._astype_cache.get(p)
        if cached is None:
            # CSRMatrix.astype threads the cached fingerprint through, so the
            # cast copy's dispatcher key derives in O(1)
            cached = AssembledOperator(self.csr.astype(p), format=self.format,
                                       chunk_size=self.chunk_size)
            self._astype_cache[p] = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"AssembledOperator(shape={self.shape}, nnz={self.nnz}, "
                f"format={self.format!r}, precision={self.precision.label})")

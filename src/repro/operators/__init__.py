"""Operator abstraction layer: the solver stack's view of ``A``.

The nested solvers only ever *apply* the coefficient matrix, so they target
the :class:`LinearOperator` contract instead of assembled storage:

* :class:`AssembledOperator` — wraps a CSR matrix, auto-selecting CSR vs
  sliced-ELLPACK per backend/dtype via the cost model;
* :class:`StencilOperator` — matrix-free constant-coefficient stencil applies
  over the regular grids :mod:`repro.matgen` builds (see
  :mod:`repro.matgen.operators` for the ready-made problem generators);
* :class:`ShiftedOperator` / :class:`ScaledOperator` — composites for
  diagonal shifts and diagonal-scaled systems.

:func:`as_operator` coerces a raw :class:`~repro.sparse.CSRMatrix` (which
itself satisfies the contract structurally) into the wrapped form.
"""

from .base import LinearOperator, as_operator
from .assembled import AssembledOperator
from .composite import ScaledOperator, ShiftedOperator
from .stencil import StencilOperator

__all__ = [
    "LinearOperator",
    "AssembledOperator",
    "StencilOperator",
    "ShiftedOperator",
    "ScaledOperator",
    "as_operator",
]

"""Composite operators: diagonal shifts and diagonal scalings of a base operator.

The paper diagonally scales every test matrix before solving; with assembled
storage that is a one-off re-assembly, but a matrix-free operator cannot be
"re-assembled".  :class:`ScaledOperator` applies
``diag(row_scale) @ A @ diag(col_scale)`` compositionally — two elementwise
multiplies around the base apply — and :class:`ShiftedOperator` adds
``shift * I`` (regularization / time-stepping shifts) the same way.

Precision semantics: the component operations each follow the usual rules
(base apply in the promoted precision, the diagonal multiply in the promotion
of the scale and vector precisions, result rounded to the requested output
precision).  Composites therefore agree with an assembled equivalent to
rounding tolerance, not bitwise — the shift/scale is applied to the *product*,
not folded into pre-rounded stored entries.
"""

from __future__ import annotations

import numpy as np

from ..precision import Precision, as_precision, precision_of_dtype
from ..sparse import vectorops as vo
from .base import LinearOperator, as_operator, derived_fingerprint

__all__ = ["ShiftedOperator", "ScaledOperator"]


class ShiftedOperator(LinearOperator):
    """``A + shift * I`` without touching ``A``'s storage."""

    def __init__(self, base, shift: float) -> None:
        self.base = as_operator(base)
        if self.base.nrows != self.base.ncols:
            raise ValueError("ShiftedOperator requires a square base operator")
        self.shift = float(shift)
        self.shape = self.base.shape
        self._astype_cache: dict[Precision, "ShiftedOperator"] = {}

    @property
    def dtype(self) -> np.dtype:
        return self.base.dtype

    @property
    def nnz_per_row(self) -> float:
        # estimate: the diagonal is structurally present in every shipped base
        return self.base.nnz_per_row

    def apply(self, x, out_precision=None, record: bool = True):
        x = self._validate_vector(x)
        out = (as_precision(out_precision) if out_precision is not None
               else precision_of_dtype(x.dtype))
        y = self.base.apply(x, out_precision=out_precision, record=record)
        return vo.axpy(self.shift, x, y, out_precision=out, record=record)

    def apply_batch(self, x, out_precision=None, record: bool = True):
        x = self._validate_block(x)
        out = (as_precision(out_precision) if out_precision is not None
               else precision_of_dtype(x.dtype))
        y = self.base.apply_batch(x, out_precision=out_precision, record=record)
        return vo.axpy_block(self.shift, x, y, out_precision=out, record=record)

    def diagonal(self) -> np.ndarray:
        return self.base.diagonal() + self.shift

    def fingerprint(self) -> str:
        return derived_fingerprint(self.base.fingerprint(), "shifted",
                                   repr(self.shift))

    def astype(self, precision) -> "ShiftedOperator":
        p = as_precision(precision)
        if p == self.precision:
            return self
        cached = self._astype_cache.get(p)
        if cached is None:
            cached = self._astype_cache[p] = ShiftedOperator(self.base.astype(p),
                                                             self.shift)
        return cached

    def memory_bytes(self) -> int:
        return self.base.memory_bytes()

    def apply_traffic_constant(self, value_precision=Precision.FP64) -> float:
        # the shift adds one scalar, not a per-row stream
        return self.base.apply_traffic_constant(value_precision)

    def assembled_entries(self):
        """``A + shift*I`` materialized when the base has entries — keeps
        factorization preconditioners available for shifted assembled systems."""
        base = self.base.assembled_entries()
        if base is None:
            return None
        import scipy.sparse as sp

        from ..sparse.csr import CSRMatrix

        shifted = base.to_scipy() + self.shift * sp.identity(base.nrows,
                                                             format="csr")
        return CSRMatrix.from_scipy(shifted)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShiftedOperator({self.base!r}, shift={self.shift:g})"


class ScaledOperator(LinearOperator):
    """``diag(row_scale) @ A @ diag(col_scale)`` applied compositionally.

    ``row_scale=None`` / ``col_scale=None`` mean the identity on that side;
    symmetric diagonal scaling passes the same vector for both (the
    matrix-free analogue of :func:`repro.sparse.diagonal_scaling`).
    """

    def __init__(self, base, row_scale=None, col_scale=None) -> None:
        self.base = as_operator(base)
        self.shape = self.base.shape
        self.row_scale = (None if row_scale is None
                          else np.asarray(row_scale, dtype=np.float64))
        self.col_scale = (None if col_scale is None
                          else np.asarray(col_scale, dtype=np.float64))
        if self.row_scale is not None and self.row_scale.shape != (self.nrows,):
            raise ValueError(f"row_scale must have shape ({self.nrows},)")
        if self.col_scale is not None and self.col_scale.shape != (self.ncols,):
            raise ValueError(f"col_scale must have shape ({self.ncols},)")
        self._astype_cache: dict[Precision, "ScaledOperator"] = {}
        self._fingerprint: str | None = None

    @classmethod
    def symmetric(cls, base, scale) -> "ScaledOperator":
        """``diag(s) @ A @ diag(s)`` — e.g. ``s = 1/sqrt(|diag(A)|)``."""
        return cls(base, row_scale=scale, col_scale=scale)

    @property
    def dtype(self) -> np.dtype:
        return self.base.dtype

    @property
    def nnz_per_row(self) -> float:
        return self.base.nnz_per_row

    def _apply_common(self, x, out_precision, record, batched: bool):
        out = (as_precision(out_precision) if out_precision is not None
               else precision_of_dtype(x.dtype))
        if self.col_scale is not None:
            x = vo.diagmul(self.col_scale, x, record=record)
        base_apply = self.base.apply_batch if batched else self.base.apply
        y = base_apply(x, out_precision=out_precision, record=record)
        if self.row_scale is not None:
            y = vo.diagmul(self.row_scale, y, out_precision=out, record=record)
        return y.astype(out.dtype, copy=False)

    def apply(self, x, out_precision=None, record: bool = True):
        return self._apply_common(self._validate_vector(x), out_precision, record,
                                  batched=False)

    def apply_batch(self, x, out_precision=None, record: bool = True):
        return self._apply_common(self._validate_block(x), out_precision, record,
                                  batched=True)

    def diagonal(self) -> np.ndarray:
        diag = self.base.diagonal()
        if self.row_scale is not None:
            diag = diag * self.row_scale
        if self.col_scale is not None:
            diag = diag * self.col_scale
        return diag

    def fingerprint(self) -> str:
        fp = self._fingerprint
        if fp is None:
            import hashlib

            h = hashlib.blake2b(digest_size=16)
            h.update(repr((self.base.fingerprint(), "scaled",
                           self.row_scale is None, self.col_scale is None)).encode())
            if self.row_scale is not None:
                h.update(self.row_scale.tobytes())
            if self.col_scale is not None:
                h.update(self.col_scale.tobytes())
            fp = self._fingerprint = h.hexdigest()
        return fp

    def astype(self, precision) -> "ScaledOperator":
        p = as_precision(precision)
        if p == self.precision:
            return self
        cached = self._astype_cache.get(p)
        if cached is None:
            cached = self._astype_cache[p] = ScaledOperator(
                self.base.astype(p), self.row_scale, self.col_scale)
        return cached

    def memory_bytes(self) -> int:
        extra = sum(s.nbytes for s in (self.row_scale, self.col_scale)
                    if s is not None)
        return self.base.memory_bytes() + extra

    def apply_traffic_constant(self, value_precision=Precision.FP64) -> float:
        # each active scale vector adds one fp64 word per row per apply
        scales = ((self.row_scale is not None) + (self.col_scale is not None))
        return self.base.apply_traffic_constant(value_precision) + float(scales)

    def assembled_entries(self):
        """``diag(r) A diag(c)`` materialized when the base has entries."""
        base = self.base.assembled_entries()
        if base is None:
            return None
        from ..sparse.ops import apply_diagonal_scaling

        return apply_diagonal_scaling(
            base,
            self.row_scale if self.row_scale is not None else np.ones(self.nrows),
            self.col_scale if self.col_scale is not None else np.ones(self.ncols))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sides = (("row" if self.row_scale is not None else "-")
                 + "/" + ("col" if self.col_scale is not None else "-"))
        return f"ScaledOperator({self.base!r}, scaled={sides})"

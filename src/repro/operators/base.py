"""The linear-operator contract: what the solver stack requires of ``A``.

The paper's nested solvers only ever *apply* the coefficient matrix — every
level of the ``(F^m1, F^m2, F^m3, R^m4, M)`` hierarchy touches ``A`` through
``y = A x`` (or its multi-RHS form), never through its entries.  The
:class:`LinearOperator` contract captures exactly that surface, so the
solvers, preconditioner plumbing, dispatcher, and cost model can run against
assembled storage (:class:`~repro.operators.AssembledOperator`), matrix-free
stencils (:class:`~repro.operators.StencilOperator`), or composites
(:class:`~repro.operators.ShiftedOperator` / ``ScaledOperator``) without
knowing which one they hold.

The contract:

* ``shape`` / ``dtype`` / ``precision`` — dimensions and storage precision of
  the operator's coefficients (the precision-emulation rules promote the
  coefficient and vector precisions exactly as for assembled matrices).
* ``apply(x)`` / ``apply_batch(X)`` — the operator product, dispatched
  through the active kernel backend.  ``apply_batch`` defaults to a
  column-by-column loop over ``apply`` (the batched oracle); implementations
  with a genuinely batched kernel override it.
* ``nnz_per_row`` — structural nonzeros per row, the ``cA`` input of the
  Section 4.1 cost model (exact for the shipped operators, an estimate in
  general).
* ``fingerprint()`` — a stable content hash; the
  :class:`~repro.serve.BatchDispatcher` groups requests and keys its setup
  cache on it, so equal-valued operators held by different callers batch
  together.
* ``astype(precision)`` — the per-level precision cast used by
  :class:`~repro.solvers.nested.NestedSolverBuilder`; operators cache the
  casts (they are immutable), so repeated requests are free.
* ``diagonal()`` — ``diag(A)`` in fp64; the Jacobi fallback preconditioner
  for matrix-free solves is built from it.

:class:`~repro.sparse.CSRMatrix` itself satisfies the contract structurally
(it grew ``apply``/``apply_batch`` aliases), so existing call sites keep
working; :func:`as_operator` upgrades a raw matrix to an
:class:`AssembledOperator` to add format auto-selection on top.
"""

from __future__ import annotations

import abc

import numpy as np

from ..precision import BYTES_PER_INDEX, Precision, as_precision, precision_of_dtype

__all__ = ["LinearOperator", "as_operator"]


class LinearOperator(abc.ABC):
    """Abstract operator ``A``: everything the solver stack needs from a matrix."""

    #: ``(nrows, ncols)``; set by subclasses.
    shape: tuple[int, int]

    # ------------------------------------------------------------------ #
    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    @abc.abstractmethod
    def dtype(self) -> np.dtype:
        """Storage dtype of the operator's coefficients."""

    @property
    def precision(self) -> Precision:
        return precision_of_dtype(self.dtype)

    @property
    @abc.abstractmethod
    def nnz_per_row(self) -> float:
        """Structural nonzeros per row (the cost model's ``cA`` input)."""

    @property
    def nnz(self) -> int:
        """Structural nonzeros (estimate: ``nnz_per_row * nrows``)."""
        return int(round(self.nnz_per_row * self.nrows))

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def apply(self, x: np.ndarray, out_precision: Precision | str | None = None,
              record: bool = True) -> np.ndarray:
        """``y = A @ x`` with the usual precision-emulation rules.

        Arithmetic runs in the promotion of the operator and vector
        precisions; the result is rounded to ``out_precision`` (default: the
        vector precision).
        """

    def apply_batch(self, x: np.ndarray, out_precision: Precision | str | None = None,
                    record: bool = True) -> np.ndarray:
        """``Y = A @ X`` for ``X`` of shape ``(ncols, k)``.

        The default loops :meth:`apply` column by column (the batched
        oracle); operators with a batched kernel override it with
        bit-compatible, counter-parity semantics.
        """
        cols = [self.apply(np.ascontiguousarray(x[:, j]),
                           out_precision=out_precision, record=record)
                for j in range(x.shape[1])]
        return np.stack(cols, axis=1)

    # Aliases matching the assembled-matrix surface, so code written against
    # CSRMatrix (``matvec``/``matmat``/``@``) works on any operator.
    def matvec(self, x: np.ndarray, out_precision: Precision | str | None = None,
               record: bool = True) -> np.ndarray:
        return self.apply(x, out_precision=out_precision, record=record)

    def matmat(self, x: np.ndarray, out_precision: Precision | str | None = None,
               record: bool = True) -> np.ndarray:
        return self.apply_batch(x, out_precision=out_precision, record=record)

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        return self.apply_batch(x) if x.ndim == 2 else self.apply(x)

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def fingerprint(self) -> str:
        """Stable content hash (dispatcher grouping / setup-cache key)."""

    @abc.abstractmethod
    def astype(self, precision: Precision | str) -> "LinearOperator":
        """The operator with coefficients cast to ``precision`` (cached)."""

    def diagonal(self) -> np.ndarray:
        """``diag(A)`` as a dense fp64 vector (Jacobi fallback source)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not expose its diagonal; supply an "
            "explicit preconditioner instead of 'auto'/'jacobi'")

    def assembled_entries(self):
        """The operator as an assembled :class:`~repro.sparse.CSRMatrix`,
        or ``None`` when entries are not (cheaply) available.

        The preconditioner factory uses this capability: factorization-based
        preconditioners (ILU/IC, block-Jacobi, AINV) need entries, so
        operators that can produce them keep the full ``"auto"`` selection —
        composites over assembled bases materialize their transform here —
        while genuinely matrix-free operators return ``None`` and fall back
        to Jacobi-from-:meth:`diagonal`.
        """
        return None

    def memory_bytes(self) -> int:
        """Bytes of coefficient storage (0 when effectively matrix-free)."""
        return 0

    def apply_traffic_constant(self, value_precision: Precision | str = Precision.FP64
                               ) -> float:
        """``cA`` of this operator's apply kernel, in fp64 words per row.

        The Section 4.1 cost-model input describing what one apply actually
        streams.  The default is the assembled constant (values + 32-bit
        indices per row); matrix-free operators override it with their
        collapsed coefficient traffic, and composites delegate to their base
        so the model sees the fused apply, not a notional assembly.
        """
        p = as_precision(value_precision)
        return self.nnz_per_row * (p.bytes + BYTES_PER_INDEX) / 8.0

    def _validate_vector(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.shape != (self.ncols,):
            raise ValueError(f"dimension mismatch: operator is {self.shape}, "
                             f"x has shape {x.shape}")
        return x

    def _validate_block(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim != 2 or x.shape[0] != self.ncols:
            raise ValueError(f"dimension mismatch: operator is {self.shape}, "
                             f"X has shape {x.shape}")
        return x

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(shape={self.shape}, "
                f"precision={self.precision.label})")


def as_operator(matrix, format: str = "auto") -> LinearOperator:
    """Coerce ``matrix`` to the operator contract.

    A :class:`LinearOperator` passes through unchanged; a
    :class:`~repro.sparse.CSRMatrix` is wrapped in an
    :class:`~repro.operators.AssembledOperator` (gaining CSR/ELL format
    auto-selection); any other object that already satisfies the contract
    structurally — ``apply``/``apply_batch``/``astype`` plus ``shape`` and
    ``precision`` (what the solver stack actually touches) — passes through
    as-is (e.g. a bare :class:`~repro.sparse.SlicedEllMatrix`, or a
    third-party duck type).  Anything else is rejected.
    """
    if isinstance(matrix, LinearOperator):
        return matrix
    from ..sparse.csr import CSRMatrix
    if isinstance(matrix, CSRMatrix):
        from .assembled import AssembledOperator

        return AssembledOperator(matrix, format=format)
    if (callable(getattr(matrix, "apply", None))
            and callable(getattr(matrix, "apply_batch", None))
            and callable(getattr(matrix, "astype", None))
            and getattr(matrix, "shape", None) is not None
            and getattr(matrix, "precision", None) is not None):
        return matrix
    raise TypeError(f"cannot interpret {type(matrix).__name__} as a LinearOperator; "
                    "pass a CSRMatrix, a LinearOperator implementation, or an "
                    "object with apply/apply_batch/astype, shape and precision")


def derived_fingerprint(parent: str, *parts) -> str:
    """Fingerprint of an operator derived from one with fingerprint ``parent``.

    O(1) in the operator size: conversions and composites thread the source
    fingerprint through instead of rehashing the underlying arrays, so all
    precision variants / composites of one operator produce consistent,
    cheaply computed cache keys.
    """
    import hashlib

    h = hashlib.blake2b(digest_size=16)
    h.update(repr((parent,) + parts).encode())
    return h.hexdigest()

"""Matrix-free stencil operator over a regular tensor grid.

A constant-coefficient stencil on an ``n = prod(dims)`` grid is fully
described by a handful of (offset, value) pairs — the 27-point HPCG/HPGMP
stencils, the 5/7-point Poisson stencils, upwind convection–diffusion and
anisotropic diffusion all fit.  Storing only those ``s`` coefficients removes
the assembled formats' memory floor entirely: the apply reads the input
vector and writes the output, with no value or index traffic (the cost
model's ``cA`` term collapses to the coefficient table).

The apply dispatches through the active kernel backend
(:meth:`~repro.backends.base.KernelBackend.apply_stencil`): ``reference``
runs the loop-faithful per-offset gather oracle, ``fast`` accumulates
grid-shaped slabs in place.  Both sum each row's contributions in ascending
column order — exactly the order the assembled CSR kernels use — so a
stencil apply is *bit-identical* to the reference SpMV on the matrix
:meth:`assemble` builds (the fast CSR path may differ in the last ulp where
it uses scipy's fused matvec; the equivalence tests pin both).

Grid convention: ``dims`` is C-ordered (last axis fastest), matching
``numpy.ravel_multi_index``.  The generators in :mod:`repro.matgen.operators`
translate each assembled generator's grid layout into this convention so the
operator and the assembled matrix agree entry for entry.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..backends import get_backend
from ..backends.workspace import ScratchOwner, ThreadLocalWorkspace
from ..precision import Precision, as_precision
from .base import LinearOperator, derived_fingerprint

__all__ = ["StencilOperator"]


class StencilOperator(LinearOperator, ScratchOwner):
    """Matrix-free ``A`` defined by constant stencil coefficients on a grid.

    Parameters
    ----------
    dims:
        Grid extents, C-ordered (last axis fastest).
    offsets:
        ``(s, len(dims))`` integer array of neighbour offsets; must contain
        no duplicates.  Entry ``A[i, j]`` exists for ``j = i + offset``
        whenever the offset stays inside the grid (Dirichlet truncation at
        the boundary, as the assembled generators do).
    values:
        ``(s,)`` coefficients, one per offset.
    precision:
        Storage precision of the coefficients (the operator analogue of the
        assembled value array's dtype).
    """

    def __init__(self, dims, offsets, values,
                 precision: Precision | str = Precision.FP64) -> None:
        self.dims = tuple(int(d) for d in dims)
        if not self.dims or min(self.dims) < 1:
            raise ValueError("grid dimensions must be positive")
        offsets = np.atleast_2d(np.asarray(offsets, dtype=np.int64))
        values = np.asarray(values, dtype=np.float64).ravel()
        if offsets.shape != (values.size, len(self.dims)):
            raise ValueError(f"offsets must have shape (s, {len(self.dims)}); "
                             f"got {offsets.shape} for {values.size} values")
        if len(np.unique(offsets, axis=0)) != offsets.shape[0]:
            raise ValueError("duplicate stencil offsets")

        n = 1
        for d in self.dims:
            n *= d
        self.shape = (n, n)
        # C-order strides in elements: strides[d] = prod(dims[d+1:])
        strides = np.ones(len(self.dims), dtype=np.int64)
        for d in range(len(self.dims) - 2, -1, -1):
            strides[d] = strides[d + 1] * self.dims[d + 1]
        self.strides = strides

        # Offsets are stored sorted by linear offset: per row, ascending
        # linear offset is ascending column index, which is the summation
        # order of the assembled CSR kernels (bit-parity contract).
        lin = offsets @ strides
        order = np.argsort(lin, kind="stable")
        self.offsets = np.ascontiguousarray(offsets[order])
        self.linear_offsets = np.ascontiguousarray(lin[order])
        p = as_precision(precision)
        self.values = values[order].astype(p.dtype)
        # fp64 view of the *stored* (precision-rounded) coefficients: every
        # derived artifact — casts, assembly, the separable decomposition —
        # must describe the matrix this operator actually applies, mirroring
        # CSRMatrix semantics where a cast rounds the stored values
        self._values64 = self.values.astype(np.float64)

        # exact structural nonzeros: each offset contributes
        # prod_d max(0, dims[d] - |offset[d]|) entries
        spans = np.maximum(
            np.asarray(self.dims, dtype=np.int64)[None, :] - np.abs(self.offsets), 0)
        self._offset_counts = np.prod(spans, axis=1)
        self._nnz = int(self._offset_counts.sum())

        self._slice_plan: list | None = None
        self._separable: tuple | None | str = "unset"
        self._astype_cache: dict[Precision, "StencilOperator"] = {}
        self._fingerprint: str | None = None
        self._scratch: ThreadLocalWorkspace | None = None
        self._par = None          # repro.par.ParState, attached on first use

    # ------------------------------------------------------------------ #
    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def nnz_per_row(self) -> float:
        return self._nnz / max(1, self.nrows)

    @property
    def npoints(self) -> int:
        """Number of stencil points ``s`` (the whole coefficient storage)."""
        return int(self.values.size)

    def memory_bytes(self) -> int:
        """Coefficient table only — the point of being matrix-free."""
        return self.values.size * (self.precision.bytes + self.offsets.itemsize
                                   * self.offsets.shape[1])

    def apply_traffic_constant(self, value_precision: Precision | str = Precision.FP64
                               ) -> float:
        """The fused apply reads only the ``s``-entry coefficient table —
        the assembled ``cA`` collapses to ``s * value_bytes / (8 n)``."""
        p = as_precision(value_precision)
        return self.npoints * p.bytes / max(1, self.nrows) / 8.0

    def diagonal(self) -> np.ndarray:
        # the *stored* (precision-rounded) coefficient, like CSRMatrix.diagonal
        mask = self.linear_offsets == 0
        value = float(self.values[mask][0]) if mask.any() else 0.0
        return np.full(self.nrows, value, dtype=np.float64)

    # ------------------------------------------------------------------ #
    def apply(self, x: np.ndarray, out_precision: Precision | str | None = None,
              record: bool = True) -> np.ndarray:
        x = self._validate_vector(x)
        return get_backend().apply_stencil(self, x, out_precision=out_precision,
                                           record=record)

    def apply_batch(self, x: np.ndarray, out_precision: Precision | str | None = None,
                    record: bool = True) -> np.ndarray:
        x = self._validate_block(x)
        return get_backend().apply_stencil_batch(self, x, out_precision=out_precision,
                                                 record=record)

    # ------------------------------------------------------------------ #
    # Geometry shared by the backend kernels
    # ------------------------------------------------------------------ #
    def _bounds(self, offset: np.ndarray) -> list[tuple[int, int]]:
        """Per-axis ``[lo, hi)`` destination-coordinate range for one offset."""
        return [(max(0, -int(o)), d - max(0, int(o)))
                for o, d in zip(offset, self.dims)]

    def slice_plan(self) -> list[tuple[int, tuple, tuple]]:
        """``(position, dst_slices, src_slices)`` per contributing offset.

        Sorted by linear offset (ascending column order); cached — the plan
        is pure layout.  Used by the vectorized ``fast`` kernel.
        """
        plan = self._slice_plan
        if plan is None:
            plan = []
            for pos, offset in enumerate(self.offsets):
                bounds = self._bounds(offset)
                if any(lo >= hi for lo, hi in bounds):
                    continue
                dst = tuple(slice(lo, hi) for lo, hi in bounds)
                src = tuple(slice(lo + int(o), hi + int(o))
                            for (lo, hi), o in zip(bounds, offset))
                plan.append((pos, dst, src))
            self._slice_plan = plan
        return plan

    def offset_gathers(self):
        """Yield ``(position, dst_indices, src_indices)`` per contributing offset.

        Flat destination indices of the valid box, ascending, with
        ``src = dst + linear_offset``.  Computed transiently — no cached
        state; used by :meth:`assemble` and :meth:`csr_gather_plan`.
        """
        for pos, offset in enumerate(self.offsets):
            bounds = self._bounds(offset)
            if any(lo >= hi for lo, hi in bounds):
                continue
            dst = np.zeros(1, dtype=np.int64)
            for (lo, hi), stride in zip(bounds, self.strides):
                axis = np.arange(lo, hi, dtype=np.int64) * stride
                dst = (dst[:, None] + axis[None, :]).reshape(-1)
            yield pos, dst, dst + int(self.linear_offsets[pos])

    def csr_gather_plan(self):
        """``(indptr, entries)`` mapping each offset's products to CSR slots.

        ``entries`` is a list of ``(position, csr_positions, src_indices)``;
        writing ``values[position] * x[src]`` to ``csr_positions`` for every
        entry produces exactly the per-row, column-ordered product stream of
        the assembled matrix, so reducing it with the assembled kernels'
        ``row_segment_sums`` is *bit-identical* to the reference CSR SpMV.
        Computed transiently — the loop-faithful oracle carries no cache.
        """
        n = self.nrows
        gathers = list(self.offset_gathers())
        row_nnz = np.zeros(n, dtype=np.int64)
        for _, dst, _ in gathers:
            row_nnz[dst] += 1
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(row_nnz, out=indptr[1:])
        # offsets arrive in ascending linear-offset (= column) order, so a
        # running per-row rank assigns each product its in-row CSR slot
        rank = np.zeros(n, dtype=np.int64)
        entries = []
        for pos, dst, src in gathers:
            entries.append((pos, indptr[dst] + rank[dst], src))
            rank[dst] += 1
        return indptr, entries

    def box_separable(self):
        """Decomposition ``A = α·I + Conv(k_{D-1}) ∘ … ∘ Conv(k_0)``, if any.

        Detects stencils whose coefficient box factors as an outer product
        of per-axis 1-D kernels plus a diagonal correction — the HPCG/HPGMP
        box-stencil family (all off-diagonals the product of axis factors,
        diagonal adjusted).  The ``fast`` backend then applies the operator
        as one 1-D convolution sweep per axis instead of one slab update per
        stencil point, collapsing 27 read-modify-write passes into ~11.

        Returns ``None`` when the stencil is not separable or the sweep
        would not beat the per-offset path; otherwise ``(alpha, taps)``
        where ``taps[d]`` is a list of ``(offset, weight)`` pairs for axis
        ``d`` (the normalization is folded into axis 0).  Cached — pure
        coefficient analysis.
        """
        sep = self._separable
        if sep != "unset":
            return sep
        self._separable = sep = self._compute_box_separable()
        return sep

    def _compute_box_separable(self):
        ndim = len(self.dims)
        if ndim == 1:
            return None   # a 1-D sweep is the per-offset path
        offsets = self.offsets
        vals = self._values64    # the stored (precision-rounded) coefficients
        lo = offsets.min(axis=0)
        hi = offsets.max(axis=0)
        box = tuple((hi - lo + 1).tolist())
        dense = np.zeros(box)
        dense[tuple((offsets - lo).T)] = vals
        corner = dense[(0,) * ndim]
        if corner == 0.0:
            return None
        # axis cross-sections through the anchor corner; for a rank-1 box
        # (plus diagonal correction) the full tensor is their outer product
        # normalized by corner^(ndim-1)
        kernels = []
        for ax in range(ndim):
            idx = [0] * ndim
            idx[ax] = slice(None)
            kernels.append(dense[tuple(idx)].copy())
        product = kernels[0]
        for kern in kernels[1:]:
            product = np.multiply.outer(product, kern)
        product = product / corner ** (ndim - 1)
        center = tuple((-lo).tolist()) if bool(np.all((lo <= 0) & (hi >= 0))) else None
        expected = dense.copy()
        alpha = 0.0
        if center is not None:
            alpha = float(dense[center] - product[center])
            expected[center] = product[center]
        scale = float(np.max(np.abs(vals)))
        if not np.allclose(product, expected, rtol=1e-12, atol=1e-15 * scale):
            return None
        folded = [kernels[0] / corner ** (ndim - 1)] + kernels[1:]
        taps = []
        for ax, kern in enumerate(folded):
            axis_taps = [(int(lo[ax]) + j, float(w)) for j, w in enumerate(kern)
                         if w != 0.0]
            if not axis_taps:
                return None
            taps.append(axis_taps)
        # one pass per tap + the diagonal combine vs one pass per stencil point
        if sum(len(t) for t in taps) + 2 >= self.npoints:
            return None
        return alpha, taps

    # ------------------------------------------------------------------ #
    def assemble(self):
        """The equivalent assembled :class:`~repro.sparse.CSRMatrix`.

        Entry for entry what the matching :mod:`repro.matgen` generator
        builds; used by the equivalence tests and as an escape hatch for
        consumers that genuinely need entries (ILU-type preconditioners).
        """
        from ..sparse.coo import COOMatrix

        rows_list, cols_list, vals_list = [], [], []
        for pos, dst, src in self.offset_gathers():
            rows_list.append(dst)
            cols_list.append(src)
            vals_list.append(np.full(dst.size, self._values64[pos]))
        rows = np.concatenate(rows_list) if rows_list else np.empty(0, np.int64)
        cols = np.concatenate(cols_list) if cols_list else np.empty(0, np.int64)
        vals = np.concatenate(vals_list) if vals_list else np.empty(0, np.float64)
        csr = COOMatrix(rows.astype(np.int32), cols.astype(np.int32), vals,
                        self.shape).to_csr()
        return csr if self.precision == Precision.FP64 else csr.astype(self.precision)

    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        fp = self._fingerprint
        if fp is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(repr(("stencil", self.dims, str(self.values.dtype))).encode())
            h.update(self.offsets.tobytes())
            h.update(self.values.tobytes())
            fp = self._fingerprint = h.hexdigest()
        return fp

    def astype(self, precision: Precision | str) -> "StencilOperator":
        p = as_precision(precision)
        if p == self.precision:
            return self
        cached = self._astype_cache.get(p)
        if cached is None:
            cached = StencilOperator(self.dims, self.offsets, self._values64,
                                     precision=p)
            cached._fingerprint = derived_fingerprint(self.fingerprint(), "astype",
                                                      p.label)
            self._astype_cache[p] = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"StencilOperator(dims={self.dims}, points={self.npoints}, "
                f"precision={self.precision.label})")

"""Remote shard transport: the batch protocol over TCP, partition-tolerant.

The ROADMAP's multi-host step: the gateway's fingerprint->shard routing and
one-hop batch protocol generalize from a local :class:`~repro.par.procpool.
ProcPool` to remote workers.  This module is the transport layer of that
step — :class:`ShardServer` wraps a local :class:`~repro.serve.dispatcher.
BatchDispatcher` behind a socket, :class:`RemoteShard` is the client-side
handle a :class:`~repro.serve.cluster.ClusterGateway` routes batches onto —
and robustness across the socket is the headline:

* **Length-prefixed frames** — every message is ``magic | u32 length |
  pickled tuple``, the tuple shapes mirroring the ProcPool pipe protocol
  (``("solve", req_id, fingerprint, setup, rhs_block, deadlines, degrade)``
  down, ``("result", req_id, slots, snapshot)`` / ``("error", req_id, kind,
  type_name, message)`` up), so the serving tiers speak one dialect whether
  the worker is a forked process or another host.
* **Heartbeats with miss-count detection** — both ends emit ``("hb",)``
  every ``heartbeat_interval``; a link silent for ``miss_limit`` intervals
  is declared dead and torn down, which converts a silent partition into
  the same observable event as a closed socket.
* **Reconnect with jittered exponential backoff** — the client owns link
  recovery: backoff doubles per attempt up to ``backoff_max`` with
  deterministic per-attempt jitter, and after ``reconnect_attempts``
  consecutive failures the shard is declared *down*: in-flight futures fail
  typed (:class:`ShardUnreachable`) so the cluster can fail over, while a
  slow background probe keeps trying — a shard that comes back is revived.
* **Bounded inflight-replay buffer** — every unacknowledged request stays
  in a bounded buffer (``max_inflight``; admission beyond it fails typed)
  and is replayed after a reconnect and re-sent after ``resend_timeout``
  of silence, which makes dropped frames and ambiguous disconnects safe.
* **Idempotent request ids** — the server keeps a bounded LRU of completed
  responses plus the set of currently-executing ids.  A replayed request
  that already completed is answered from the cache (never re-executed);
  one replayed *while executing* just re-targets the reply at the newest
  connection.  Both halves of the ambiguous-disconnect problem — the batch
  the server finished but the client never heard about, and the batch the
  server received but had not acknowledged — therefore resolve to exactly
  one completion.
* **Deterministic network fault injection** — every frame send consults
  :func:`repro.faults.maybe_net` (sites ``net.client`` / ``net.server``):
  seeded drops, duplicated deliveries, injected per-message delay, and
  abrupt disconnects replay exactly from ``REPRO_FAULTS``, so the chaos
  hammer drives real sockets through real partitions deterministically.

Deadlines cross the wire as wall-clock absolutes (the PR 8 convention for
crossing process boundaries); the server converts back to relative on
arrival and expires overdue columns without solving them.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from .. import faults
from ..par.procpool import ExpiredRequest, WorkerError
from ..solvers.guards import InvalidInput
from .dispatcher import (
    AdmissionRefused,
    BatchDispatcher,
    CircuitOpen,
    DeadlineExceeded,
    _resolve_once,
)

__all__ = [
    "RemoteError",
    "RemoteShard",
    "ShardServer",
    "ShardUnreachable",
    "recv_frame",
    "send_frame",
    "spawn_server",
]

_MAGIC = b"RPS1"
_HEADER = struct.Struct(">I")
_MAX_FRAME = 1 << 30


class ShardUnreachable(RuntimeError):
    """The remote shard cannot be reached (reconnect attempts exhausted)."""

    def __init__(self, name: str, reason: str) -> None:
        super().__init__(f"shard {name!r} unreachable: {reason}")
        self.shard = name
        self.reason = reason


@dataclass(frozen=True)
class RemoteError:
    """Per-slot failure marker in a result frame (picklable).

    ``kind`` follows the :class:`~repro.par.procpool.WorkerError` taxonomy:
    ``"setup"`` feeds the caller's circuit breaker, ``"solve"`` is a
    request-level execution failure (already past the server dispatcher's
    own retries), ``"invalid"``/``"admission"`` are boundary rejections.
    """

    kind: str
    type_name: str
    message: str

    def to_exception(self) -> Exception:
        return WorkerError(self.kind, self.type_name, self.message)


# ------------------------------------------------------------------ #
# Frame codec
# ------------------------------------------------------------------ #
def send_frame(sock: socket.socket, obj, site: str | None = None,
               lock: threading.Lock | None = None) -> None:
    """Serialize and send one frame, applying injected network faults.

    With an active fault plan and a ``site``, the frame may be dropped
    (silently not sent), duplicated (sent twice), delayed, or the link torn
    down mid-send (socket closed + :class:`ConnectionResetError`) — all
    deterministic per ``(seed, site, call-count)``.
    """
    event, delay = (faults.maybe_net(site) if site is not None
                    else (None, 0.0))
    if delay > 0.0:
        time.sleep(delay)
    if event == "drop":
        return
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    frame = _MAGIC + _HEADER.pack(len(payload)) + payload
    if event == "disconnect":
        try:
            sock.close()
        finally:
            raise ConnectionResetError(f"injected disconnect at {site}")
    if lock is not None:
        with lock:
            sock.sendall(frame)
            if event == "dup":
                sock.sendall(frame)
    else:
        sock.sendall(frame)
        if event == "dup":
            sock.sendall(frame)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("peer closed the connection")
        buf += chunk
    return bytes(buf)


def recv_frame(sock: socket.socket):
    """Receive one length-prefixed frame and unpickle its payload."""
    header = _recv_exact(sock, len(_MAGIC) + _HEADER.size)
    if header[:len(_MAGIC)] != _MAGIC:
        raise ConnectionError(f"bad frame magic {header[:len(_MAGIC)]!r}")
    (length,) = _HEADER.unpack(header[len(_MAGIC):])
    if length > _MAX_FRAME:
        raise ConnectionError(f"frame length {length} exceeds cap")
    return pickle.loads(_recv_exact(sock, length))


# ------------------------------------------------------------------ #
# Server
# ------------------------------------------------------------------ #
class _Conn:
    """One accepted client connection (socket + its send lock)."""

    __slots__ = ("sock", "lock", "peer", "alive")

    def __init__(self, sock: socket.socket, peer) -> None:
        self.sock = sock
        self.lock = threading.Lock()
        self.peer = peer
        self.alive = True

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.close()
        except OSError:
            pass


class ShardServer:
    """Serves the batch protocol over TCP on top of a local dispatcher.

    Parameters mirror :class:`~repro.serve.dispatcher.BatchDispatcher`
    where they configure the wrapped dispatcher; transport-specific knobs:

    heartbeat_interval:
        Seconds between ``("hb",)`` frames to every live connection.
    client_timeout:
        A connection silent this long is closed (default: six heartbeat
        intervals) — the client reconnects and replays.
    dedup_cache:
        Completed responses kept for request-id deduplication (bounded
        LRU).  Sized to comfortably exceed any client's ``max_inflight``.
    fault_spec:
        Optional ``REPRO_FAULTS`` grammar string installed at construction
        — how a *spawned* server process receives its seeded fault plan.
    artifacts_dir:
        Optional persistent artifact store path (the shared
        ``REPRO_ARTIFACTS`` store failover warm-up reads from).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 config=None, preconditioner="auto",
                 nblocks: int | None = None, alpha: float = 1.0,
                 backend: str | None = None, cache_size: int = 8,
                 max_workers: int = 2, max_retries: int = 1,
                 overload=False, heartbeat_interval: float = 0.5,
                 client_timeout: float | None = None,
                 dedup_cache: int = 1024, name: str | None = None,
                 fault_spec: str | None = None,
                 artifacts_dir: str | None = None) -> None:
        if artifacts_dir is not None:
            from ..cache import set_artifacts_dir

            set_artifacts_dir(artifacts_dir)
        if fault_spec is not None:
            faults.install_from_env(fault_spec)
        self.heartbeat_interval = float(heartbeat_interval)
        self.client_timeout = (float(client_timeout) if client_timeout
                               is not None else 6.0 * self.heartbeat_interval)
        self.dedup_cache = int(dedup_cache)
        self._dispatcher = BatchDispatcher(
            config, preconditioner=preconditioner, nblocks=nblocks,
            alpha=alpha, max_batch=1 << 30, cache_size=cache_size,
            max_workers=max_workers, backend=backend,
            max_retries=max_retries, overload=overload)
        self._host = host
        self._requested_port = int(port)
        self._listener: socket.socket | None = None
        self._nonce = os.urandom(8).hex()
        self._lock = threading.Lock()
        self._conns: list[_Conn] = []
        self._operators: dict[str, object] = {}
        self._done: OrderedDict[str, tuple] = OrderedDict()
        self._running: dict[str, _Conn] = {}
        self._counters = {
            "requests": 0, "batches": 0, "dedup_hits": 0,
            "replayed_running": 0, "stale_misses": 0, "connections": 0,
        }
        self._closed = False
        self._threads: list[threading.Thread] = []
        self.name = name

    # -------------------------------------------------------------- #
    def start(self) -> "ShardServer":
        """Bind, listen, and start the accept/heartbeat threads."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._host, self._requested_port))
            listener.listen(16)
        except BaseException:
            listener.close()
            raise
        self._listener = listener
        if self.name is None:
            self.name = "%s:%d" % listener.getsockname()[:2]
        for target, tag in ((self._accept_loop, "accept"),
                            (self._heartbeat_loop, "hb")):
            thread = threading.Thread(target=target, daemon=True,
                                      name=f"repro-shard-{tag}")
            thread.start()
            self._threads.append(thread)
        return self

    @property
    def address(self) -> tuple[str, int]:
        if self._listener is None:
            raise RuntimeError("server not started")
        return self._listener.getsockname()[:2]

    def __enter__(self) -> "ShardServer":
        return self.start() if self._listener is None else self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- #
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return          # listener closed
            sock.settimeout(self.client_timeout)
            conn = _Conn(sock, peer)
            with self._lock:
                self._conns.append(conn)
                self._counters["connections"] += 1
            threading.Thread(target=self._serve_conn, args=(conn,),
                             daemon=True, name="repro-shard-conn").start()

    def _heartbeat_loop(self) -> None:
        while not self._closed:
            time.sleep(self.heartbeat_interval)
            with self._lock:
                conns = [c for c in self._conns if c.alive]
            for conn in conns:
                self._send(conn, ("hb",))

    def _serve_conn(self, conn: _Conn) -> None:
        try:
            hello = recv_frame(conn.sock)
            if not (isinstance(hello, tuple) and hello[0] == "hello"):
                raise ConnectionError(f"expected hello, got {hello!r}")
            send_frame(conn.sock, ("hello", self._nonce, {"name": self.name}),
                       lock=conn.lock)
            while not self._closed:
                frame = recv_frame(conn.sock)
                self._handle(conn, frame)
        except (ConnectionError, OSError, EOFError, pickle.PickleError,
                socket.timeout):
            pass
        finally:
            conn.close()
            with self._lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    # -------------------------------------------------------------- #
    def _handle(self, conn: _Conn, frame) -> None:
        kind = frame[0]
        if kind == "hb":
            return
        if kind == "solve":
            _, rid, fp, setup, rhs_block, deadlines, degrade = frame
            self._handle_solve(conn, rid, fp, setup, rhs_block,
                               deadlines, degrade)
        elif kind == "warm":
            _, rid, fp, setup = frame
            self._handle_warm(conn, rid, fp, setup)
        elif kind == "evict":
            self._handle_evict(frame[1])
        else:
            raise ConnectionError(f"unknown frame kind {kind!r}")

    def _replay_check(self, conn: _Conn, rid: str) -> bool:
        """Serve a replayed request id from dedup state.  True = handled."""
        with self._lock:
            cached = self._done.get(rid)
            if cached is not None:
                self._done.move_to_end(rid)
                self._counters["dedup_hits"] += 1
            elif rid in self._running:
                # replayed while executing: answer the newest connection
                # when the batch completes, never execute twice
                self._running[rid] = conn
                self._counters["dedup_hits"] += 1
                self._counters["replayed_running"] += 1
                return True
        if cached is not None:
            self._send(conn, cached)
            return True
        return False

    def _handle_solve(self, conn: _Conn, rid: str, fp: str, setup,
                      rhs_block: np.ndarray, deadlines, degrade) -> None:
        faults.maybe_kill_process("remote.server")
        if self._replay_check(conn, rid):
            return
        with self._lock:
            if setup is not None:
                self._operators[fp] = setup
            operator = self._operators.get(fp)
            if operator is None:
                self._counters["stale_misses"] += 1
            else:
                self._counters["requests"] += rhs_block.shape[1]
                self._counters["batches"] += 1
                self._running[rid] = conn
        if operator is None:
            # NOT cached in the dedup LRU: once the client re-sends the
            # setup, the same id must execute
            self._send(conn, ("error", rid, "stale", "KeyError",
                              f"unknown fingerprint {fp!r}"))
            return
        ncols = rhs_block.shape[1]
        slots: list = [None] * ncols
        futures: dict[int, Future] = {}
        now = time.time()
        for i in range(ncols):
            wall = None if deadlines is None else deadlines[i]
            if wall is not None and wall <= now:
                slots[i] = ExpiredRequest(overshoot_s=now - wall)
                continue
            degradable = bool(degrade[i]) if degrade is not None else False
            try:
                futures[i] = self._dispatcher.submit(
                    operator, rhs_block[:, i],
                    deadline=None if wall is None else wall - time.time(),
                    degradable=degradable)
            except InvalidInput as exc:
                slots[i] = RemoteError("invalid", type(exc).__name__, str(exc))
            except Exception as exc:   # noqa: BLE001 - admission/closed
                slots[i] = RemoteError("admission", type(exc).__name__,
                                       str(exc))
        if not futures:
            self._complete(rid, ("result", rid, slots, self._snapshot()))
            return
        self._dispatcher.flush()
        remaining = [len(futures)]
        state_lock = threading.Lock()

        def _on_done(index: int, future: Future) -> None:
            exc = future.exception()
            if exc is None:
                slots[index] = future.result()
            elif isinstance(exc, DeadlineExceeded):
                slots[index] = ExpiredRequest(overshoot_s=0.0)
            elif isinstance(exc, CircuitOpen):
                slots[index] = RemoteError("setup", type(exc).__name__,
                                           str(exc))
            else:
                slots[index] = RemoteError("solve", type(exc).__name__,
                                           str(exc))
            with state_lock:
                remaining[0] -= 1
                last = remaining[0] == 0
            if last:
                self._complete(rid, ("result", rid, slots, self._snapshot()))

        for i, future in futures.items():
            future.add_done_callback(
                lambda f, i=i: _on_done(i, f))

    def _handle_warm(self, conn: _Conn, rid: str, fp: str, setup) -> None:
        if self._replay_check(conn, rid):
            return
        with self._lock:
            self._operators[fp] = setup
            self._running[rid] = conn
        try:
            (future,) = self._dispatcher.prewarm([setup], wait=False)
        except Exception as exc:   # noqa: BLE001 - closed dispatcher
            self._complete(rid, ("error", rid, "setup",
                                 type(exc).__name__, str(exc)))
            return

        def _on_done(f: Future) -> None:
            exc = f.exception()
            if exc is None:
                self._complete(rid, ("result", rid, [], self._snapshot()))
            else:
                self._complete(rid, ("error", rid, "setup",
                                     type(exc).__name__, str(exc)))

        future.add_done_callback(_on_done)

    def _handle_evict(self, fp: str) -> None:
        with self._lock:
            self._operators.pop(fp, None)
        dispatcher = self._dispatcher
        with dispatcher._lock:
            for key in [k for k in dispatcher._solvers if k[0] == fp]:
                dispatcher._solvers.pop(key, None)

    def _complete(self, rid: str, response: tuple) -> None:
        """Cache the finished response for dedup, then deliver it."""
        with self._lock:
            conn = self._running.pop(rid, None)
            self._done[rid] = response
            self._done.move_to_end(rid)
            while len(self._done) > self.dedup_cache:
                self._done.popitem(last=False)
        if conn is not None:
            self._send(conn, response)

    def _send(self, conn: _Conn, frame: tuple) -> None:
        """Best-effort delivery; a failed send closes the connection and
        leaves the response in the dedup cache for the client's replay."""
        if not conn.alive:
            return
        try:
            send_frame(conn.sock, frame, site="net.server", lock=conn.lock)
        except (OSError, ConnectionError):
            conn.close()

    # -------------------------------------------------------------- #
    def _snapshot(self) -> dict:
        stats = self._dispatcher.stats
        with self._lock:
            snapshot = dict(self._counters)
        snapshot.update(
            name=self.name,
            cache_hits=stats.cache_hits,
            cache_misses=stats.cache_misses,
            escalations=stats.escalations,
            deadline_misses=stats.deadline_misses,
            retries=stats.retries,
            prewarms=stats.prewarms,
        )
        return snapshot

    def stats(self) -> dict:
        return self._snapshot()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            conn.close()
        self._dispatcher.close(wait=False)


# ------------------------------------------------------------------ #
# Client
# ------------------------------------------------------------------ #
class _Inflight:
    __slots__ = ("rid", "kind", "fp", "rhs_block", "deadlines", "degrade",
                 "setup_factory", "future", "first_sent", "last_sent", "seq")

    def __init__(self, rid: str, kind: str, fp: str, setup_factory,
                 rhs_block=None, deadlines=None, degrade=None,
                 seq: int = 0) -> None:
        self.rid = rid
        self.kind = kind                  # "solve" | "warm"
        self.fp = fp
        self.setup_factory = setup_factory
        self.rhs_block = rhs_block
        self.deadlines = deadlines
        self.degrade = degrade
        self.future: Future = Future()
        self.first_sent = time.monotonic()
        self.last_sent = self.first_sent
        self.seq = seq


def _parse_address(address) -> tuple[str, int]:
    if isinstance(address, str):
        host, _, port = address.rpartition(":")
        return host or "127.0.0.1", int(port)
    host, port = address
    return host, int(port)


class RemoteShard:
    """Client-side transport handle for one remote shard server.

    Mirrors the :class:`~repro.par.procpool.ProcPool` submission surface at
    batch granularity — :meth:`submit_batch` returns a future resolving to
    ``(slots, snapshot)`` where each slot is a
    :class:`~repro.solvers.SolveResult`, an
    :class:`~repro.par.procpool.ExpiredRequest`, or a :class:`RemoteError`
    — and owns every link-level concern (heartbeats, reconnect with
    jittered exponential backoff, bounded inflight replay, resend after
    silence, request-id dedup cooperation).  See the module docstring for
    the protocol-level guarantees.

    ``setup_factory`` is called (at frame-build time) only when the current
    server session does not know the fingerprint yet — including after a
    reconnect landed on a *restarted* server (fresh nonce), where every
    replayed frame re-attaches its operator.
    """

    def __init__(self, address, name: str | None = None,
                 connect_timeout: float = 5.0,
                 heartbeat_interval: float = 0.5, miss_limit: int = 3,
                 max_inflight: int = 128, resend_timeout: float = 1.0,
                 backoff_base: float = 0.05, backoff_max: float = 2.0,
                 reconnect_attempts: int = 8,
                 probe_interval: float | None = None) -> None:
        self._host, self._port = _parse_address(address)
        self.name = name or f"{self._host}:{self._port}"
        self.connect_timeout = float(connect_timeout)
        self.heartbeat_interval = float(heartbeat_interval)
        self.miss_limit = int(miss_limit)
        self.max_inflight = int(max_inflight)
        self.resend_timeout = float(resend_timeout)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self.reconnect_attempts = int(reconnect_attempts)
        self.probe_interval = (float(probe_interval) if probe_interval
                               is not None else max(backoff_max, 0.5))
        self._nonce = os.urandom(4).hex()
        self._seq = 0
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._server_nonce: str | None = None
        self._known: set[str] = set()
        self._inflight: OrderedDict[str, _Inflight] = OrderedDict()
        self._connected = threading.Event()
        self._last_rx = time.monotonic()
        self._dead = False
        self._closed = False
        self._rtts: deque[float] = deque(maxlen=128)
        self._last_snapshot: dict = {}
        self._counters = {
            "reconnects": 0, "resends": 0, "replays": 0, "late_results": 0,
            "heartbeat_misses": 0, "stale_recoveries": 0,
        }
        try:
            self._connect_once()
        except (OSError, ConnectionError):
            pass                          # the rx thread keeps trying
        self._threads = [
            threading.Thread(target=self._rx_loop, daemon=True,
                             name=f"repro-remote-rx-{self.name}"),
            threading.Thread(target=self._hb_loop, daemon=True,
                             name=f"repro-remote-hb-{self.name}"),
        ]
        for thread in self._threads:
            thread.start()

    # -------------------------------------------------------------- #
    # Link management
    # -------------------------------------------------------------- #
    def _connect_once(self) -> None:
        sock = socket.create_connection((self._host, self._port),
                                        timeout=self.connect_timeout)
        try:
            send_frame(sock, ("hello", f"{self.name}/{self._nonce}"))
            reply = recv_frame(sock)
            if not (isinstance(reply, tuple) and reply[0] == "hello"):
                raise ConnectionError(f"bad handshake reply {reply!r}")
            nonce = reply[1]
        except BaseException:
            sock.close()
            raise
        sock.settimeout(None)
        with self._lock:
            if nonce != self._server_nonce:
                # a *different* server instance answered (restart / failback
                # to a fresh replica): its dedup and operator state is empty
                self._server_nonce = nonce
                self._known.clear()
            self._sock = sock
            self._last_rx = time.monotonic()
        self._connected.set()

    def _kill_link(self) -> None:
        with self._lock:
            sock, self._sock = self._sock, None
        self._connected.clear()
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _mark_dead(self) -> None:
        with self._lock:
            if self._dead:
                return
            self._dead = True
            entries = list(self._inflight.values())
            self._inflight.clear()
        exc = ShardUnreachable(
            self.name, f"{self.reconnect_attempts} reconnect attempts failed")
        for entry in entries:
            _resolve_once(entry.future, exc=exc)

    def _jitter(self, attempt: int) -> float:
        # deterministic per (shard, attempt): spreads a thundering herd of
        # reconnecting clients without perturbing seeded replays
        import zlib

        roll = zlib.crc32(f"{self.name}:{self._nonce}:{attempt}".encode())
        return 0.5 + (roll % 1024) / 1024.0

    def _rx_loop(self) -> None:
        attempt = 0
        while not self._closed:
            sock = self._sock
            if sock is None:
                attempt += 1
                try:
                    self._connect_once()
                except (OSError, ConnectionError):
                    if attempt >= self.reconnect_attempts:
                        self._mark_dead()
                        delay = self.probe_interval
                    else:
                        delay = min(self.backoff_max,
                                    self.backoff_base * (2 ** (attempt - 1)))
                        delay *= self._jitter(attempt)
                    time.sleep(delay)
                    continue
                with self._lock:
                    revived = self._dead
                    self._dead = False
                    self._counters["reconnects"] += 1
                attempt = 0
                if revived:
                    pass                   # fresh traffic will find us up
                self._replay_inflight()
                continue
            try:
                frame = recv_frame(sock)
            except (OSError, ConnectionError, EOFError, pickle.PickleError):
                if self._closed:
                    return
                self._kill_link()
                continue
            with self._lock:
                self._last_rx = time.monotonic()
            self._dispatch_frame(frame)

    def _hb_loop(self) -> None:
        while not self._closed:
            time.sleep(self.heartbeat_interval)
            sock = self._sock
            if sock is None:
                continue
            silent = time.monotonic() - self._last_rx
            if silent > self.miss_limit * self.heartbeat_interval:
                # miss-count trip: a silent partition becomes a dead link
                with self._lock:
                    self._counters["heartbeat_misses"] += 1
                self._kill_link()
                continue
            try:
                send_frame(sock, ("hb",), site="net.client",
                           lock=self._send_lock)
            except (OSError, ConnectionError):
                self._kill_link()
                continue
            self._resend_sweep()

    def _resend_sweep(self) -> None:
        """Re-send inflight frames unanswered past ``resend_timeout`` —
        the recovery path for silently dropped frames on a healthy link."""
        now = time.monotonic()
        with self._lock:
            stale = [e for e in self._inflight.values()
                     if now - e.last_sent > self.resend_timeout]
        for entry in stale:
            with self._lock:
                self._counters["resends"] += 1
            self._send_entry(entry)

    def _replay_inflight(self) -> None:
        with self._lock:
            entries = sorted(self._inflight.values(), key=lambda e: e.seq)
            self._counters["replays"] += len(entries)
        for entry in entries:
            self._send_entry(entry)

    # -------------------------------------------------------------- #
    # Frame handling
    # -------------------------------------------------------------- #
    def _dispatch_frame(self, frame) -> None:
        kind = frame[0]
        if kind == "hb":
            return
        if kind == "result":
            _, rid, slots, snapshot = frame
            with self._lock:
                entry = self._inflight.pop(rid, None)
                if entry is None:
                    # a duplicated delivery or a hedge-lost reply: the
                    # request already completed — never a second completion
                    self._counters["late_results"] += 1
                    return
                self._rtts.append(time.monotonic() - entry.first_sent)
                self._last_snapshot = snapshot or {}
            _resolve_once(entry.future, result=(slots, snapshot))
        elif kind == "error":
            _, rid, err_kind, type_name, message = frame
            if err_kind == "stale":
                # the server session lost (or never had) this fingerprint's
                # setup: re-send with the operator attached
                with self._lock:
                    entry = self._inflight.get(rid)
                    if entry is None:
                        self._counters["late_results"] += 1
                        return
                    self._known.discard(entry.fp)
                    self._counters["stale_recoveries"] += 1
                self._send_entry(entry)
                return
            with self._lock:
                entry = self._inflight.pop(rid, None)
            if entry is not None:
                _resolve_once(entry.future,
                              exc=WorkerError(err_kind, type_name, message))

    def _send_entry(self, entry: _Inflight) -> None:
        sock = self._sock
        if sock is None:
            return                        # buffered; replayed on reconnect
        with self._lock:
            attach_setup = entry.fp not in self._known
        setup = entry.setup_factory() if attach_setup else None
        if entry.kind == "warm":
            frame = ("warm", entry.rid, entry.fp,
                     setup if setup is not None else entry.setup_factory())
        else:
            frame = ("solve", entry.rid, entry.fp, setup, entry.rhs_block,
                     entry.deadlines, entry.degrade)
        try:
            send_frame(sock, frame, site="net.client", lock=self._send_lock)
        except (OSError, ConnectionError):
            self._kill_link()
            return
        entry.last_sent = time.monotonic()
        if attach_setup:
            with self._lock:
                self._known.add(entry.fp)

    # -------------------------------------------------------------- #
    # Submission surface
    # -------------------------------------------------------------- #
    def _admit(self, kind: str, fp: str, setup_factory, rhs_block=None,
               deadlines=None, degrade=None) -> _Inflight:
        with self._lock:
            if self._closed:
                raise ShardUnreachable(self.name, "client closed")
            if self._dead:
                raise ShardUnreachable(
                    self.name,
                    f"down after {self.reconnect_attempts} reconnect attempts")
            if len(self._inflight) >= self.max_inflight:
                raise AdmissionRefused(
                    f"shard {self.name!r} inflight-replay buffer full "
                    f"({self.max_inflight})")
            self._seq += 1
            rid = f"{self._nonce}-{self._seq}"
            entry = _Inflight(rid, kind, fp, setup_factory,
                              rhs_block=rhs_block, deadlines=deadlines,
                              degrade=degrade, seq=self._seq)
            self._inflight[rid] = entry
        return entry

    def submit_batch(self, fingerprint: str, rhs_block: np.ndarray,
                     setup_factory, deadlines=None, degrade=None) -> Future:
        """Ship one batch; future resolves to ``(slots, snapshot)``.

        ``deadlines`` are wall-clock absolutes (``time.time()`` domain) or
        ``None`` per column; ``degrade`` is an optional per-column
        degradable flag list.
        """
        entry = self._admit("solve", fingerprint, setup_factory,
                            rhs_block=rhs_block, deadlines=deadlines,
                            degrade=degrade)
        self._send_entry(entry)
        return entry.future

    def submit_warm(self, fingerprint: str, setup_factory) -> Future:
        """Build the fingerprint's setup server-side before traffic."""
        entry = self._admit("warm", fingerprint, setup_factory)
        self._send_entry(entry)
        return entry.future

    def evict(self, fingerprint: str) -> None:
        """Best-effort server-side cache eviction."""
        sock = self._sock
        if sock is None:
            return
        try:
            send_frame(sock, ("evict", fingerprint), site="net.client",
                       lock=self._send_lock)
        except (OSError, ConnectionError):
            self._kill_link()

    # -------------------------------------------------------------- #
    @property
    def healthy(self) -> bool:
        return not self._dead and not self._closed

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def wait_connected(self, timeout: float | None = None) -> bool:
        return self._connected.wait(timeout)

    def rtt_percentile(self, q: float,
                       min_samples: int = 1) -> float | None:
        """Observed round-trip percentile in seconds (``None`` until at
        least ``min_samples`` round trips have been measured)."""
        with self._lock:
            samples = list(self._rtts)
        if len(samples) < max(1, min_samples):
            return None
        return float(np.percentile(np.asarray(samples), q))

    def stats(self) -> dict:
        with self._lock:
            counters = dict(self._counters)
            samples = list(self._rtts)
            state = ("closed" if self._closed else
                     "down" if self._dead else
                     "up" if self._sock is not None else "connecting")
            inflight = len(self._inflight)
            snapshot = dict(self._last_snapshot)
        rtt = {"samples": len(samples)}
        if samples:
            arr = np.asarray(samples) * 1e3
            rtt["p50_ms"] = round(float(np.percentile(arr, 50)), 3)
            rtt["p95_ms"] = round(float(np.percentile(arr, 95)), 3)
        counters.update(name=self.name, kind="remote",
                        address=f"{self._host}:{self._port}",
                        state=state, inflight=inflight, rtt=rtt,
                        server=snapshot)
        return counters

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            entries = list(self._inflight.values())
            self._inflight.clear()
        self._kill_link()
        for entry in entries:
            _resolve_once(entry.future,
                          exc=ShardUnreachable(self.name, "client closed"))

    def __enter__(self) -> "RemoteShard":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RemoteShard({self.name!r}, "
                f"state={self.stats()['state']!r})")


# ------------------------------------------------------------------ #
# Subprocess servers (chaos tests, examples)
# ------------------------------------------------------------------ #
def _server_process_main(pipe, kwargs: dict) -> None:  # pragma: no cover
    server = ShardServer(**kwargs).start()
    pipe.send(server.address)
    pipe.close()
    threading.Event().wait()              # serve until the process is killed


def spawn_server(timeout: float = 60.0, **kwargs):
    """Start a :class:`ShardServer` in a fresh spawned process.

    Returns ``(process, (host, port))``.  The process is a daemon serving
    until terminated — the real-process tier that kill injection and
    failover tests need (an in-process server cannot die independently).
    """
    import multiprocessing as mp

    ctx = mp.get_context("spawn")
    parent, child = ctx.Pipe()
    process = ctx.Process(target=_server_process_main, args=(child, kwargs),
                          daemon=True)
    process.start()
    child.close()
    if not parent.poll(timeout):
        process.terminate()
        raise RuntimeError("spawned shard server did not report its address")
    address = parent.recv()
    parent.close()
    return process, address

"""Cluster gateway: rendezvous routing over local *and* remote shards.

The multi-host front door the ROADMAP's serving item points at: a
:class:`ClusterGateway` exposes the familiar dispatcher surface
(``submit`` / ``flush`` / ``drain`` / ``solve_many`` / ``prewarm``) and
routes each operator fingerprint onto a *member ring* — every member is
either a local :class:`~repro.serve.dispatcher.BatchDispatcher` or a
:class:`~repro.serve.remote.RemoteShard` speaking the batch protocol over
TCP — using the same rendezvous hash as the process tier
(:func:`~repro.serve.gateway.rank_members`), so local and remote shards mix
in one ring and a fingerprint's placement is stable across processes.

The robustness story layers on the transport guarantees of
:mod:`repro.serve.remote`:

* **Replica failover** — the rendezvous *ranking* is the failover order:
  when a member is dead (:class:`~repro.serve.remote.ShardUnreachable`
  after its reconnect budget) the fingerprint's batches re-dispatch to the
  next-ranked healthy member, which rebuilds the setup — warm from the
  shared ``REPRO_ARTIFACTS`` store when one is configured — and the
  ``failovers`` counter ticks.  A revived member (the client's background
  probe reconnected) re-enters the ring automatically.
* **Hedged dispatch** — a batch carrying deadline-critical requests arms a
  hedge timer (``hedge_ms`` fixed, or ``hedge_factor`` x the primary's
  observed ``hedge_percentile`` RTT once ``hedge_min_samples`` are in):
  when it trips before the primary answers, the same request ids ship to
  the next-ranked member and the first response wins.  Request futures
  resolve exactly once — the loser's response is counted
  (``late_results``) and dropped, never delivered twice.
* **Retry with backoff** — transport-level failures re-dispatch the batch
  (``max_retries`` per request, linear backoff on a timer); per-request
  failures computed *by* a shard (expired deadlines, setup errors) arrive
  as typed slots and are final — the shard's own dispatcher already
  retried them.
* **Per-fingerprint circuit breaker** — repeated remote *setup* failures
  open the fingerprint's breaker exactly as in the local dispatcher.

``stats.summary()["cluster"]`` carries the member table (per-link state,
RTT percentiles, reconnect/resend/heartbeat-miss counters, the server-side
snapshot) plus the cluster counters (``hedges``, ``hedge_wins``,
``failovers``, ``late_results``, aggregated ``reconnects``/``resends``) —
all of it flowing through :func:`~repro.serve.metrics.render_metrics`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from ..core import F3RConfig
from ..par.procpool import ExpiredRequest
from ..solvers import SolveResult
from ..solvers.guards import InvalidInput
from .dispatcher import (
    AdmissionRefused,
    BatchDispatcher,
    CircuitOpen,
    DeadlineExceeded,
    DispatchStats,
    DispatcherClosed,
    _Breaker,
    _Request,
    _resolve_once,
)
from .gateway import rank_members
from .remote import RemoteError, RemoteShard, ShardUnreachable

__all__ = ["ClusterConfig", "ClusterGateway", "ClusterStats"]


@dataclass
class ClusterConfig:
    """Membership and policy for a :class:`ClusterGateway`.

    ``members`` is a sequence of ``(name, target)`` pairs: ``target`` is
    ``"host:port"`` for a remote shard or ``"local"`` for an in-process
    dispatcher member.  Names are the rendezvous identities — stable names
    keep fingerprint placement stable across restarts.
    """

    members: tuple = ()
    max_batch: int = 8
    max_queue: int | None = None
    max_retries: int = 2
    retry_backoff: float = 0.05
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    #: fixed hedge delay in milliseconds (None: derive from observed RTT)
    hedge_ms: float | None = None
    hedge_percentile: float = 95.0
    hedge_factor: float = 1.5
    hedge_min_samples: int = 8
    # transport knobs forwarded to every RemoteShard member
    heartbeat_interval: float = 0.5
    miss_limit: int = 3
    max_inflight: int = 128
    resend_timeout: float = 1.0
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    reconnect_attempts: int = 8
    connect_timeout: float = 5.0

    def __post_init__(self) -> None:
        self.members = tuple((str(name), str(target))
                             for name, target in self.members)
        if len({name for name, _ in self.members}) != len(self.members):
            raise ValueError("cluster member names must be unique")


@dataclass
class ClusterStats(DispatchStats):
    """Dispatcher counters plus the cluster's routing/hedging/failover view."""

    hedges: int = 0
    hedge_wins: int = 0
    failovers: int = 0
    late_results: int = 0

    #: the owning gateway (set post-init) — summary() reads the member table
    members_source: object = field(default=None, repr=False)

    def summary(self) -> dict:
        base = super().summary()
        gateway = self.members_source
        members = ({} if gateway is None else
                   {name: member.stats()
                    for name, member in gateway._members.items()})

        def agg(key: str) -> int:
            return sum(int(m.get(key, 0) or 0) for m in members.values())

        base["cluster"] = {
            "members": members,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "failovers": self.failovers,
            "late_results": self.late_results,
            "reconnects": agg("reconnects"),
            "resends": agg("resends"),
            "heartbeat_misses": agg("heartbeat_misses"),
            "dead_members": sorted(
                name for name, m in members.items()
                if m.get("state") in ("down", "closed")),
        }
        return base


class _LocalMember:
    """A ring member backed by an in-process :class:`BatchDispatcher`.

    Speaks the same ``submit_batch -> Future[(slots, snapshot)]`` contract
    as :class:`~repro.serve.remote.RemoteShard`, so the gateway's dispatch,
    hedging, and failover paths are transport-agnostic.
    """

    def __init__(self, name: str, dispatcher: BatchDispatcher) -> None:
        self.name = name
        self._dispatcher = dispatcher
        self._closed = False

    @property
    def healthy(self) -> bool:
        return not self._closed

    def submit_batch(self, fingerprint: str, rhs_block: np.ndarray,
                     setup_factory, deadlines=None, degrade=None) -> Future:
        del fingerprint
        operator = setup_factory()
        outer: Future = Future()
        ncols = rhs_block.shape[1]
        slots: list = [None] * ncols
        futures: dict[int, Future] = {}
        now = time.time()
        for i in range(ncols):
            wall = None if deadlines is None else deadlines[i]
            if wall is not None and wall <= now:
                slots[i] = ExpiredRequest(overshoot_s=now - wall)
                continue
            degradable = bool(degrade[i]) if degrade is not None else False
            try:
                futures[i] = self._dispatcher.submit(
                    operator, rhs_block[:, i],
                    deadline=None if wall is None else wall - time.time(),
                    degradable=degradable)
            except InvalidInput as exc:
                slots[i] = RemoteError("invalid", type(exc).__name__, str(exc))
            except Exception as exc:   # noqa: BLE001 - admission/closed
                slots[i] = RemoteError("admission", type(exc).__name__,
                                       str(exc))
        if not futures:
            _resolve_once(outer, result=(slots, self._snapshot()))
            return outer
        self._dispatcher.flush()
        remaining = [len(futures)]
        state_lock = threading.Lock()

        def _on_done(index: int, future: Future) -> None:
            exc = future.exception()
            if exc is None:
                slots[index] = future.result()
            elif isinstance(exc, DeadlineExceeded):
                slots[index] = ExpiredRequest(overshoot_s=0.0)
            elif isinstance(exc, CircuitOpen):
                slots[index] = RemoteError("setup", type(exc).__name__,
                                           str(exc))
            else:
                slots[index] = RemoteError("solve", type(exc).__name__,
                                           str(exc))
            with state_lock:
                remaining[0] -= 1
                last = remaining[0] == 0
            if last:
                _resolve_once(outer, result=(slots, self._snapshot()))

        for i, future in futures.items():
            future.add_done_callback(lambda f, i=i: _on_done(i, f))
        return outer

    def submit_warm(self, fingerprint: str, setup_factory) -> Future:
        del fingerprint
        outer: Future = Future()
        try:
            (inner,) = self._dispatcher.prewarm([setup_factory()], wait=False)
        except Exception as exc:   # noqa: BLE001 - closed dispatcher
            _resolve_once(outer, exc=exc)
            return outer

        def _on_done(f: Future) -> None:
            exc = f.exception()
            if exc is None:
                _resolve_once(outer, result=([], self._snapshot()))
            else:
                _resolve_once(outer, exc=exc)

        inner.add_done_callback(_on_done)
        return outer

    def evict(self, fingerprint: str) -> None:
        dispatcher = self._dispatcher
        with dispatcher._lock:
            for key in [k for k in dispatcher._solvers
                        if k[0] == fingerprint]:
                dispatcher._solvers.pop(key, None)

    def rtt_percentile(self, q: float, min_samples: int = 1) -> None:
        return None                      # local batches are never hedged off

    def _snapshot(self) -> dict:
        stats = self._dispatcher.stats
        return {"name": self.name, "requests": stats.requests,
                "batches": stats.batches, "cache_hits": stats.cache_hits,
                "cache_misses": stats.cache_misses}

    def stats(self) -> dict:
        return {"name": self.name, "kind": "local",
                "state": "closed" if self._closed else "up",
                "server": self._snapshot()}

    def close(self) -> None:
        self._closed = True
        self._dispatcher.close(wait=False)


class _Flight:
    """One batch's journey through the ring: primary, hedge, failover."""

    __slots__ = ("fp", "operator", "requests", "outstanding", "resolved",
                 "hedge_timer")

    def __init__(self, fp: str, operator, requests: list) -> None:
        self.fp = fp
        self.operator = operator
        self.requests = requests
        self.outstanding: dict[str, Future] = {}
        self.resolved = False
        self.hedge_timer: threading.Timer | None = None


class ClusterGateway:
    """Routes batches over a mixed local/remote member ring.

    Parameters
    ----------
    config, preconditioner, nblocks, alpha, backend, cache_size,
    max_workers:
        Solver/dispatcher parameters for *local* members (remote members
        were configured when their server started).
    cluster:
        The :class:`ClusterConfig` naming the members and the
        retry/hedge/transport policy.

    Usage::

        cluster = ClusterConfig(members=[("alpha", "127.0.0.1:7101"),
                                         ("beta", "local")])
        with ClusterGateway(config, cluster=cluster) as gateway:
            futures = [gateway.submit(A, b) for b in rhs_stream]
            gateway.drain()
    """

    def __init__(self, config: F3RConfig | None = None,
                 cluster: ClusterConfig | None = None,
                 preconditioner="auto", nblocks: int | None = None,
                 alpha: float = 1.0, backend: str | None = None,
                 cache_size: int = 8, max_workers: int = 2) -> None:
        if cluster is None or not cluster.members:
            raise ValueError("cluster requires a ClusterConfig with members")
        self.config = config or F3RConfig()
        self.cluster = cluster
        self._cond = threading.Condition()
        self._members: dict[str, object] = {}
        for name, target in cluster.members:
            if target == "local":
                dispatcher = BatchDispatcher(
                    self.config, preconditioner=preconditioner,
                    nblocks=nblocks, alpha=alpha, max_batch=1 << 30,
                    cache_size=cache_size, max_workers=max_workers,
                    backend=backend, overload=False)
                self._members[name] = _LocalMember(name, dispatcher)
            else:
                self._members[name] = RemoteShard(
                    target, name=name,
                    connect_timeout=cluster.connect_timeout,
                    heartbeat_interval=cluster.heartbeat_interval,
                    miss_limit=cluster.miss_limit,
                    max_inflight=cluster.max_inflight,
                    resend_timeout=cluster.resend_timeout,
                    backoff_base=cluster.backoff_base,
                    backoff_max=cluster.backoff_max,
                    reconnect_attempts=cluster.reconnect_attempts)
        self._pending: OrderedDict[str, tuple[object, list[_Request]]] = \
            OrderedDict()
        self._breakers: dict[str, _Breaker] = {}
        self._outstanding = 0
        self._seq = 0
        self._closed = False
        self.stats = ClusterStats()
        self.stats.members_source = self

    # -------------------------------------------------------------- #
    # Submission surface (the dispatcher contract)
    # -------------------------------------------------------------- #
    def submit(self, matrix, rhs: np.ndarray, deadline: float | None = None,
               degradable: bool = False) -> Future:
        """Enqueue one solve request onto the ring; future resolves to its
        :class:`~repro.solvers.SolveResult`.

        ``deadline`` is seconds from now (crossing the wire as a wall-clock
        absolute); deadline-carrying requests are the hedging candidates.
        Priority admission is a per-shard concern — each member's local
        dispatcher applies its own overload policy.
        """
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.shape != (matrix.nrows,):
            raise InvalidInput(
                f"rhs has shape {rhs.shape}; expected ({matrix.nrows},)",
                site="cluster.submit",
                detail={"shape": tuple(rhs.shape),
                        "expected_rows": matrix.nrows})
        if not np.all(np.isfinite(rhs)):
            bad = int(np.flatnonzero(~np.isfinite(rhs))[0])
            raise InvalidInput(
                f"rhs contains non-finite entries (first at index {bad})",
                site="cluster.submit", detail={"first_bad_row": bad})
        request = _Request(
            rhs,
            None if deadline is None else time.monotonic() + float(deadline),
            degradable=bool(degradable))
        ready = None
        with self._cond:
            if self._closed:
                raise DispatcherClosed("cluster gateway is closed")
            if (self.cluster.max_queue is not None
                    and self._outstanding >= self.cluster.max_queue):
                self.stats.rejected += 1
                raise AdmissionRefused(
                    f"outstanding requests at max_queue="
                    f"{self.cluster.max_queue}")
            self._seq += 1
            request.seq = self._seq
            self.stats.requests += 1
            self._outstanding += 1
            fp = matrix.fingerprint()
            if fp not in self._pending:
                self._pending[fp] = (matrix, [])
            self._pending[fp][1].append(request)
            if len(self._pending[fp][1]) >= self.cluster.max_batch:
                ready = (fp, *self._pending.pop(fp))
        if ready is not None:
            self._dispatch(*ready)
        return request.future

    def flush(self) -> None:
        """Dispatch every pending group, regardless of its size."""
        with self._cond:
            groups = [(fp, matrix, requests)
                      for fp, (matrix, requests) in self._pending.items()]
            self._pending.clear()
        for fp, matrix, requests in groups:
            self._dispatch(fp, matrix, requests)

    def drain(self) -> None:
        """Flush and block until every admitted request has resolved —
        through retries, hedges, and failovers."""
        self.flush()
        with self._cond:
            while self._outstanding > 0:
                self._cond.wait(timeout=0.1)

    def solve_many(self, pairs) -> list[SolveResult]:
        futures = [self.submit(matrix, rhs) for matrix, rhs in pairs]
        self.drain()
        return [f.result() for f in futures]

    def prewarm(self, operators, wait: bool = True,
                timeout: float | None = None) -> list[Future]:
        """Build each operator's setup on its primary member."""
        futures = []
        for operator in operators:
            fp = operator.fingerprint()
            member = self._first_healthy(fp)
            if member is None:
                failed: Future = Future()
                failed.set_exception(ShardUnreachable(
                    "cluster", "no healthy member for prewarm"))
                futures.append(failed)
                continue
            futures.append(member.submit_warm(fp, lambda op=operator: op))
            with self._cond:
                self.stats.prewarms += 1
        if wait:
            for future in futures:
                future.result(timeout)
        return futures

    def evict(self, fingerprint: str) -> None:
        """Best-effort eviction of a fingerprint's setup, ring-wide."""
        for member in self._members.values():
            member.evict(fingerprint)

    # -------------------------------------------------------------- #
    # Routing and flights
    # -------------------------------------------------------------- #
    def _ranked_members(self, fp: str) -> list:
        return [self._members[name]
                for name in rank_members(fp, list(self._members))]

    def _first_healthy(self, fp: str):
        for member in self._ranked_members(fp):
            if member.healthy:
                return member
        return None

    def _fail_all(self, requests: list[_Request], exc: BaseException) -> None:
        for request in requests:
            self._finish(request, exc=exc)

    def _dispatch(self, fp: str, operator, requests: list[_Request],
                  failover_from: str | None = None) -> None:
        requests = self._split_expired(requests)
        if not requests:
            return
        if self._closed:
            self._fail_all(requests, DispatcherClosed(
                "cluster gateway closed before dispatch"))
            return
        try:
            self._breaker_check(fp)
        except CircuitOpen as exc:
            self._fail_all(requests, exc)
            return
        candidates = [m for m in self._ranked_members(fp) if m.healthy]
        if failover_from is not None and len(candidates) > 1:
            candidates = ([m for m in candidates
                           if m.name != failover_from] or candidates)
        if not candidates:
            self._fail_all(requests, ShardUnreachable(
                "cluster", f"no healthy members for fingerprint {fp!r}"))
            return
        flight = _Flight(fp, operator, requests)
        with self._cond:
            self.stats.batches += 1
            self.stats.batched_requests += len(requests)
            self.stats.largest_batch = max(self.stats.largest_batch,
                                           len(requests))
            if failover_from is not None:
                self.stats.failovers += 1
        self._launch(flight, candidates[0], origin="primary")
        if (len(candidates) > 1
                and any(r.deadline is not None for r in requests)):
            delay = self._hedge_delay(candidates[0])
            if delay is not None:
                timer = threading.Timer(delay, self._hedge,
                                        args=(flight, candidates))
                timer.daemon = True
                flight.hedge_timer = timer
                timer.start()

    def _hedge_delay(self, member) -> float | None:
        cfg = self.cluster
        if cfg.hedge_ms is not None:
            return cfg.hedge_ms / 1e3
        rtt = member.rtt_percentile(cfg.hedge_percentile,
                                    min_samples=cfg.hedge_min_samples)
        if rtt is None:
            return None
        return rtt * cfg.hedge_factor

    def _hedge(self, flight: _Flight, candidates: list) -> None:
        with self._cond:
            if flight.resolved or self._closed:
                return
            primary_names = set(flight.outstanding)
        backup = next((m for m in candidates[1:]
                       if m.healthy and m.name not in primary_names), None)
        if backup is None:
            return
        with self._cond:
            self.stats.hedges += 1
        self._launch(flight, backup, origin="hedge")

    def _launch(self, flight: _Flight, member, origin: str) -> None:
        offset = time.time() - time.monotonic()
        deadlines = [None if r.deadline is None else r.deadline + offset
                     for r in flight.requests]
        if all(d is None for d in deadlines):
            deadlines = None
        degrade = [r.degradable for r in flight.requests]
        if not any(degrade):
            degrade = None
        rhs_block = np.stack([r.rhs for r in flight.requests], axis=1)
        operator = flight.operator
        try:
            future = member.submit_batch(
                flight.fp, rhs_block, lambda: operator,
                deadlines=deadlines, degrade=degrade)
        except Exception as exc:   # noqa: BLE001 - typed transport failures
            self._transport_failed(flight, member, origin, exc)
            return
        with self._cond:
            flight.outstanding[member.name] = future
        future.add_done_callback(
            lambda f: self._member_done(flight, member, origin, f))

    def _member_done(self, flight: _Flight, member, origin: str,
                     future: Future) -> None:
        exc = future.exception()
        if exc is not None:
            self._transport_failed(flight, member, origin, exc)
            return
        slots, _snapshot = future.result()
        with self._cond:
            flight.outstanding.pop(member.name, None)
            if flight.resolved:
                # the hedge race's loser (or a duplicated delivery): every
                # request future already resolved exactly once — drop it
                self.stats.late_results += 1
                return
            flight.resolved = True
            timer, flight.hedge_timer = flight.hedge_timer, None
            if origin == "hedge":
                self.stats.hedge_wins += 1
        if timer is not None:
            timer.cancel()
        setup_failed = False
        for request, slot in zip(flight.requests, slots):
            if isinstance(slot, SolveResult):
                if slot.recovery is not None:
                    with self._cond:
                        self.stats.escalations += slot.recovery.escalations
                self._finish(request, result=slot)
            elif isinstance(slot, ExpiredRequest):
                with self._cond:
                    self.stats.deadline_misses += 1
                self._finish(request, exc=DeadlineExceeded(
                    f"deadline passed before execution on shard "
                    f"{member.name!r} (overshoot {slot.overshoot_s:.3f}s)"))
            else:                         # RemoteError
                if slot.kind == "setup":
                    setup_failed = True
                self._finish(request, exc=slot.to_exception())
        self._breaker_record(flight.fp, ok=not setup_failed)

    def _transport_failed(self, flight: _Flight, member, origin: str,
                          exc: BaseException) -> None:
        with self._cond:
            flight.outstanding.pop(member.name, None)
            if flight.resolved:
                return
            if flight.outstanding:
                return      # a companion launch is still racing: it is the retry
            # the flight is dead: mark it resolved so a still-armed hedge
            # timer cannot launch duplicate work alongside the retry below
            flight.resolved = True
            timer, flight.hedge_timer = flight.hedge_timer, None
        if timer is not None:
            timer.cancel()
        live = [r for r in flight.requests if not r.future.done()]
        if not live:
            return
        if self._closed or isinstance(exc, DispatcherClosed):
            self._fail_all(live, DispatcherClosed(
                "cluster gateway closed while the batch was in flight"))
            return
        retryable, exhausted = [], []
        for request in live:
            if request.attempts < self.cluster.max_retries:
                request.attempts += 1
                retryable.append(request)
            else:
                exhausted.append(request)
        self._fail_all(exhausted, exc)
        if not retryable:
            return
        failover_from = (member.name
                         if isinstance(exc, ShardUnreachable) else None)
        with self._cond:
            self.stats.retries += len(retryable)
        delay = self.cluster.retry_backoff * max(r.attempts
                                                 for r in retryable)
        timer = threading.Timer(
            delay, self._dispatch,
            args=(flight.fp, flight.operator, retryable),
            kwargs={"failover_from": failover_from})
        timer.daemon = True
        timer.start()

    # -------------------------------------------------------------- #
    # Shared helpers (the dispatcher patterns, cluster-scoped)
    # -------------------------------------------------------------- #
    def _finish(self, request: _Request, result=None, exc=None) -> None:
        if request.future.done():
            return
        with self._cond:
            self._outstanding -= 1
            if self._outstanding <= 0:
                self._cond.notify_all()
        if exc is not None:
            _resolve_once(request.future, exc=exc)
        else:
            _resolve_once(request.future, result=result)

    def _split_expired(self, requests: list[_Request]) -> list[_Request]:
        now = time.monotonic()
        live = []
        for request in requests:
            if request.deadline is not None and now > request.deadline:
                with self._cond:
                    self.stats.deadline_misses += 1
                self._finish(request, exc=DeadlineExceeded(
                    f"deadline passed {now - request.deadline:.3f}s "
                    f"before dispatch"))
            else:
                live.append(request)
        return live

    def _breaker_check(self, fp: str) -> None:
        with self._cond:
            breaker = self._breakers.get(fp)
            if breaker is None or breaker.opened_at is None:
                return
            if (time.monotonic() - breaker.opened_at
                    >= self.cluster.breaker_cooldown):
                breaker.opened_at = None
                breaker.failures = self.cluster.breaker_threshold - 1
                return
        raise CircuitOpen(
            f"setup circuit open for operator {fp!r} "
            f"({self.cluster.breaker_threshold} consecutive failures)")

    def _breaker_record(self, fp: str, ok: bool) -> None:
        with self._cond:
            if ok:
                self._breakers.pop(fp, None)
                return
            breaker = self._breakers.setdefault(fp, _Breaker())
            breaker.failures += 1
            if (breaker.failures >= self.cluster.breaker_threshold
                    and breaker.opened_at is None):
                breaker.opened_at = time.monotonic()
                self.stats.breaker_trips += 1

    # -------------------------------------------------------------- #
    def close(self) -> None:
        """Stop accepting work, fail undispatched requests typed, and close
        every member (in-flight batch futures fail through the members)."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            abandoned = [request for _, requests in self._pending.values()
                         for request in requests]
            self._pending.clear()
        for request in abandoned:
            self._finish(request, exc=DispatcherClosed(
                "cluster gateway closed before dispatch"))
        for member in self._members.values():
            member.close()

    def __enter__(self) -> "ClusterGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        if exc_info[0] is None:
            self.drain()
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        states = {name: member.stats().get("state")
                  for name, member in self._members.items()}
        return f"ClusterGateway(members={states})"

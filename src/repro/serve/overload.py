"""Brownout controller: the serving tier's graceful-degradation policy.

The dispatcher and the gateway already *survive* failure (PR 6's recovery
ladder and circuit breakers, PR 8's worker respawn); this module decides how
they behave *before* failure, when load approaches capacity.  The
:class:`BrownoutController` is a hysteresis state machine::

    NORMAL ──pressure high──► BROWNOUT ──pressure higher──► SHED
       ▲                          │                           │
       └────── pressure low ──────┴────── pressure lower ─────┘

driven by signals the serving layer already tracks — queue fill against
``max_queue``, deadline-miss and breaker-trip rates from the recovery
counters, worker-pool occupancy — and degrading service progressively:

* **BROWNOUT** — requests submitted with ``degradable=True`` start one
  precision tier lower (``fp64``→``fp32``→``fp16``,
  :func:`repro.core.recovery.degraded_variant`).  The PR 6 recovery ladder
  stays active on the degraded sibling, so a solve that stagnates at the
  cheaper tier re-escalates — converged results stay correct, brownout only
  trades iterations for per-iteration cost.  Background work that competes
  with serving — opportunistic warm-ups, autotune measurement — is
  suppressed (:func:`repro.plans.autotune.set_measurement_suppressed`).
* **SHED** — additionally, requests below ``shed_priority_floor`` are
  refused at admission with :class:`~repro.serve.LoadShed` before they cost
  any queue slot.

Hysteresis discipline: entry thresholds sit strictly above exit thresholds
and every transition requires ``dwell`` (up) or ``recover_dwell`` (down)
consecutive observations, so a *constant* pressure signal can never
oscillate the state — it climbs to its fixed point and stays (property
tested).  Every transition is recorded as a structured, counted event
surfaced under ``stats.summary()["overload"]``.

The controller is enabled by default; ``REPRO_OVERLOAD=0`` (or
``overload=False`` at construction) restores the pre-PR 9 hard
``max_queue`` wall bit-for-bit.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "BrownoutConfig",
    "BrownoutController",
    "BrownoutTransition",
    "overload_enabled",
    "resolve_controller",
]

#: state names, in escalation order (indices are the machine's levels)
STATES = ("normal", "brownout", "shed")


def overload_enabled() -> bool:
    """Whether the brownout controller is on by default (``REPRO_OVERLOAD``)."""
    return os.environ.get("REPRO_OVERLOAD", "1").strip().lower() not in (
        "0", "off", "false", "no")


@dataclass(frozen=True)
class BrownoutConfig:
    """Thresholds and dwell counts for the hysteresis state machine.

    Entry thresholds must sit strictly above the matching exit thresholds
    (validated) — that gap, plus the dwell counts, is what makes the machine
    oscillation-free on any constant pressure signal.

    ``miss_high`` / ``trip_high`` normalize the rate signals: a windowed
    deadline-miss fraction of ``miss_high`` (or ``trip_high`` breaker trips
    in the window) reads as full pressure on that signal.  ``occupancy_weight``
    discounts pool occupancy — a fully busy pool is healthy steady state, so
    occupancy alone (weighted 0.5 by default) can never cross the brownout
    entry threshold without a second signal.
    """

    enter_brownout: float = 0.75
    exit_brownout: float = 0.45
    enter_shed: float = 0.92
    exit_shed: float = 0.70
    dwell: int = 3
    recover_dwell: int = 8
    window: int = 32
    shed_priority_floor: int = 1
    degrade: bool = True
    miss_high: float = 0.25
    trip_high: float = 3.0
    occupancy_weight: float = 0.5

    def __post_init__(self) -> None:
        if not (0.0 <= self.exit_brownout < self.enter_brownout <= 1.0):
            raise ValueError("need 0 <= exit_brownout < enter_brownout <= 1")
        if not (0.0 <= self.exit_shed < self.enter_shed <= 1.0):
            raise ValueError("need 0 <= exit_shed < enter_shed <= 1")
        if self.enter_brownout > self.enter_shed:
            raise ValueError("enter_brownout must not exceed enter_shed")
        if self.exit_brownout > self.exit_shed:
            raise ValueError("exit_brownout must not exceed exit_shed")
        if self.dwell < 1 or self.recover_dwell < 1:
            raise ValueError("dwell counts must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")


@dataclass
class BrownoutTransition:
    """One state change, as a structured event."""

    observation: int            # observation count at the transition
    from_state: str
    to_state: str
    pressure: float

    def summary(self) -> dict:
        return {"observation": self.observation, "from": self.from_state,
                "to": self.to_state, "pressure": round(self.pressure, 4)}


@dataclass
class _Window:
    """Rolling per-observation deltas of the cumulative failure counters."""

    misses: deque = field(default_factory=deque)
    trips: deque = field(default_factory=deque)
    requests: deque = field(default_factory=deque)
    last: tuple[int, int, int] = (0, 0, 0)


class BrownoutController:
    """Hysteresis NORMAL→BROWNOUT→SHED machine over serving pressure.

    Call :meth:`observe` with the current signals (the owning dispatcher
    does this under its lock on every submit and completion); read the
    policy via :meth:`admits`, :meth:`should_degrade`, and
    :meth:`suppress_background`.  Not internally locked — the owner's lock
    is the synchronization, exactly like ``DispatchStats``.
    """

    #: transitions kept verbatim for the stats summary (counters never cap)
    _KEEP_TRANSITIONS = 16

    def __init__(self, config: BrownoutConfig | None = None) -> None:
        self.config = config or BrownoutConfig()
        self._level = 0
        self._above = 0             # consecutive observations above entry
        self._below = 0             # consecutive observations below exit
        self._observations = 0
        self._window = _Window()
        self.pressure = 0.0
        self.transitions: list[BrownoutTransition] = []
        self.transition_count = 0
        self.entries = {"normal": 0, "brownout": 0, "shed": 0}

    # -------------------------------------------------------------- #
    @property
    def state(self) -> str:
        return STATES[self._level]

    def admits(self, priority: int) -> bool:
        """Whether a request at ``priority`` is admitted in the current state."""
        return (self._level < 2
                or priority >= self.config.shed_priority_floor)

    def should_degrade(self) -> bool:
        """Whether degradable requests should start one precision tier lower."""
        return self._level >= 1 and self.config.degrade

    def suppress_background(self) -> bool:
        """Whether opportunistic warm-ups / autotune measurement should pause."""
        return self._level >= 1

    # -------------------------------------------------------------- #
    def _windowed_rates(self, misses: int, trips: int,
                        requests: int) -> tuple[float, float]:
        w = self._window
        d_miss = max(0, misses - w.last[0])
        d_trip = max(0, trips - w.last[1])
        d_req = max(0, requests - w.last[2])
        w.last = (misses, trips, requests)
        for dq, val in ((w.misses, d_miss), (w.trips, d_trip),
                        (w.requests, d_req)):
            dq.append(val)
            if len(dq) > self.config.window:
                dq.popleft()
        total_req = sum(w.requests)
        miss_rate = sum(w.misses) / max(1, total_req)
        return miss_rate, float(sum(w.trips))

    def observe(self, queue_fill: float = 0.0, occupancy: float = 0.0,
                deadline_misses: int = 0, breaker_trips: int = 0,
                requests: int = 0) -> str:
        """Fold one snapshot of the serving signals into the machine.

        ``queue_fill`` and ``occupancy`` are instantaneous fractions in
        [0, 1]; ``deadline_misses`` / ``breaker_trips`` / ``requests`` are
        the *cumulative* stats counters — the controller windows their
        deltas itself.  Returns the (possibly new) state name.
        """
        cfg = self.config
        miss_rate, trips_in_window = self._windowed_rates(
            deadline_misses, breaker_trips, requests)
        pressure = max(
            min(1.0, max(0.0, queue_fill)),
            min(1.0, max(0.0, occupancy)) * cfg.occupancy_weight,
            min(1.0, miss_rate / cfg.miss_high) if cfg.miss_high > 0 else 0.0,
            min(1.0, trips_in_window / cfg.trip_high) if cfg.trip_high > 0 else 0.0,
        )
        self.pressure = pressure
        self._observations += 1

        enter = (cfg.enter_brownout, cfg.enter_shed)
        exit_ = (cfg.exit_brownout, cfg.exit_shed)
        # climb: pressure above the *next* level's entry threshold
        if self._level < 2 and pressure >= enter[self._level]:
            self._above += 1
        else:
            self._above = 0
        # recover: pressure below the *current* level's exit threshold
        if self._level > 0 and pressure <= exit_[self._level - 1]:
            self._below += 1
        else:
            self._below = 0

        if self._above >= cfg.dwell:
            self._move(self._level + 1)
        elif self._below >= cfg.recover_dwell:
            self._move(self._level - 1)
        return self.state

    def _move(self, level: int) -> None:
        previous = self.state
        self._level = level
        self._above = 0
        self._below = 0
        self.entries[self.state] += 1
        self.transitions.append(BrownoutTransition(
            observation=self._observations, from_state=previous,
            to_state=self.state, pressure=self.pressure))
        self.transition_count += 1
        if len(self.transitions) > self._KEEP_TRANSITIONS:
            del self.transitions[:-self._KEEP_TRANSITIONS]
        self._apply_side_effects()

    def _apply_side_effects(self) -> None:
        # autotune measurement is process-global state; suppression follows
        # the controller's degraded/recovered edges (best effort when several
        # controllers coexist — the last transition wins)
        from ..plans.autotune import set_measurement_suppressed

        set_measurement_suppressed(self.suppress_background())

    def summary(self) -> dict:
        """Structured overload state for ``stats.summary()["overload"]``."""
        return {
            "state": self.state,
            "pressure": round(self.pressure, 4),
            "observations": self._observations,
            "transitions": self.transition_count,
            "entries": dict(self.entries),
            "last_transitions": [t.summary() for t in self.transitions],
        }


def resolve_controller(overload) -> BrownoutController | None:
    """Normalize a dispatcher's ``overload=`` argument to a controller.

    ``None`` → a fresh default controller when ``REPRO_OVERLOAD`` allows it;
    ``False`` → disabled (the legacy hard admission wall); ``True`` → a
    fresh default controller regardless of the environment; a
    :class:`BrownoutController` (or :class:`BrownoutConfig`) instance is
    used as given.
    """
    if overload is None:
        return BrownoutController() if overload_enabled() else None
    if overload is False:
        return None
    if overload is True:
        return BrownoutController()
    if isinstance(overload, BrownoutConfig):
        return BrownoutController(overload)
    return overload

"""Prometheus-style text exposition of the serving stats.

:func:`render_metrics` flattens the nested ``stats.summary()`` dict from a
:class:`~repro.serve.BatchDispatcher` / :class:`~repro.serve.ShardedGateway`
into the Prometheus text format (version 0.0.4): one ``# HELP`` / ``# TYPE``
header per metric followed by its samples, so any Prometheus-compatible
scraper can watch a serving deployment without calling Python::

    # HELP repro_requests Cumulative counter from stats.summary().
    # TYPE repro_requests counter
    repro_requests 128
    # TYPE repro_overload_shed_by_priority gauge
    repro_overload_shed_by_priority{priority="0"} 7

Rendering rules (pure function of the dict — no registry, no deps):

* Nested dicts join their path with ``_`` (``recovery.retries`` →
  ``repro_recovery_retries``).
* A dict whose values are all scalars *and* whose parent key is a known
  per-key breakdown (``queue_depth``, ``shed_by_priority``,
  ``thread_verdicts``, ``warm_from_artifacts``, ``entries``) renders as one
  labeled metric family instead of one metric per key.
* Known cumulative counters are typed ``counter``, everything else
  ``gauge``; booleans render as 0/1; non-numeric leaves are skipped.

``examples/metrics_server.py`` serves this text over ``http.server`` —
the scrape endpoint is ~20 lines of stdlib.
"""

from __future__ import annotations

import math

__all__ = ["render_metrics"]

#: leaf names that are cumulative counters (everything else is a gauge)
_COUNTERS = frozenset({
    "requests", "batches", "batched_requests", "cache_hits", "cache_misses",
    "escalations", "retries", "breaker_trips", "deadline_misses", "rejected",
    "shed", "degraded", "prewarms", "opportunistic_warmups", "transitions",
    "observations", "worker_deaths", "worker_hangs", "expired",
    "degraded_batches", "shm_attaches", "pickled_setups", "measured",
    "hits", "disk_hits", "thread_measured", "thread_hits", "saves",
    "misses", "evictions",
    # remote shard / cluster tier
    "reconnects", "resends", "replays", "late_results", "heartbeat_misses",
    "stale_recoveries", "dedup_hits", "replayed_running", "stale_misses",
    "connections", "hedges", "hedge_wins", "failovers",
})

#: parent keys whose scalar-valued dict children render as one labeled
#: family: parent key -> label name
_LABELED = {
    "queue_depth": "shard",
    "shed_by_priority": "priority",
    "thread_verdicts": "threads",
    "warm_from_artifacts": "kind",
    "entries": "state",
    "by_kind": "kind",
    "by_site": "site",
}

#: parent keys whose dict-of-dicts children render as per-leaf families
#: labeled by the child key (e.g. cluster.members.alpha.reconnects ->
#: repro_cluster_members_reconnects{member="alpha"}): parent -> label name
_LABELED_NESTED = {
    "members": "member",
}

#: path components dropped from metric names (pure presentation nesting)
_SKIPPED_KEYS = frozenset({"last_transitions", "__token__"})


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _escape_label(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double-quote, and newline must be escaped inside ``"..."``.
    Fingerprints and shard addresses are arbitrary strings — without this,
    a hostile (or merely unlucky) label value corrupts the exposition."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _scalar(value) -> float | None:
    """Numeric sample value, or ``None`` for a non-numeric leaf."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        value = float(value)
        return value if math.isfinite(value) else None
    return None


def _format(value: float) -> str:
    return str(int(value)) if value == int(value) else repr(value)


def _is_labeled_family(key: str, value) -> bool:
    return (key in _LABELED and isinstance(value, dict) and value
            and all(_scalar(v) is not None for v in value.values()))


def _walk(prefix: str, node: dict, samples: list) -> None:
    for key, value in node.items():
        if key in _SKIPPED_KEYS:
            continue
        name = f"{prefix}_{_sanitize(str(key))}"
        if _is_labeled_family(key, value):
            label = _LABELED[key]
            for lkey, lval in sorted(value.items(), key=lambda kv: str(kv[0])):
                samples.append((name, key,
                                f'{label}="{_escape_label(str(lkey))}"',
                                _scalar(lval)))
        elif (key in _LABELED_NESTED and isinstance(value, dict) and value
                and all(isinstance(v, dict) for v in value.values())):
            # one family per leaf, labeled by the member/worker name, so a
            # cluster's per-link series share a metric name across links
            label = _LABELED_NESTED[key]
            for mkey, mdict in sorted(value.items(),
                                      key=lambda kv: str(kv[0])):
                pair = f'{label}="{_escape_label(str(mkey))}"'
                for lkey, lval in mdict.items():
                    if lkey in _SKIPPED_KEYS or isinstance(lval, dict):
                        continue
                    scalar = _scalar(lval)
                    leaf_name = f"{name}_{_sanitize(str(lkey))}"
                    if scalar is not None:
                        samples.append((leaf_name, lkey, pair, scalar))
                    elif isinstance(lval, str):
                        samples.append(
                            (leaf_name, lkey,
                             f'{pair},state="{_escape_label(lval)}"', 1.0))
        elif isinstance(value, dict):
            _walk(name, value, samples)
        else:
            scalar = _scalar(value)
            if scalar is None and isinstance(value, str):
                # string states (e.g. overload.state) become labeled 1-samples
                samples.append((name, key,
                                f'state="{_escape_label(value)}"', 1.0))
            elif scalar is not None:
                samples.append((name, key, None, scalar))


def render_metrics(summary: dict, prefix: str = "repro",
                   help_text: bool = True) -> str:
    """Render a ``stats.summary()`` dict as Prometheus exposition text.

    ``prefix`` namespaces every metric; ``help_text=False`` drops the
    ``# HELP`` lines (some ingestion pipelines prefer the terse form).
    Returns a string ending in a newline, ready to serve as
    ``text/plain; version=0.0.4``.
    """
    samples: list = []
    _walk(_sanitize(prefix), summary, samples)
    lines: list[str] = []
    seen_headers: set[str] = set()
    for name, leaf, label, value in samples:
        if value is None:
            continue
        if name not in seen_headers:
            seen_headers.add(name)
            kind = "counter" if leaf in _COUNTERS else "gauge"
            if help_text:
                lines.append(f"# HELP {name} "
                             f"{'Cumulative counter' if kind == 'counter' else 'Gauge'}"
                             f" from stats.summary().")
            lines.append(f"# TYPE {name} {kind}")
        body = f"{name}{{{label}}}" if label else name
        lines.append(f"{body} {_format(value)}")
    return "\n".join(lines) + "\n"

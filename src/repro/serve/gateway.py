"""Sharded serving gateway: the front door of the process tier.

:class:`ShardedGateway` keeps the :class:`~repro.serve.BatchDispatcher`
contract — submit/flush/drain/solve_many/prewarm/close, fingerprint
grouping, deadline/retry/circuit-breaker semantics, ``stats.summary()`` —
but executes batches on ``REPRO_PROCS`` worker *processes* instead of
threads, so the Python-level solve path (level scheduling, plan dispatch,
the FGMRES loop) is no longer serialized on one GIL.

Architecture::

    submit(op, rhs) ──► per-fingerprint pending groups   (gateway thread)
                             │ max_batch / flush()
                             ▼
                     rendezvous route fp → shard         (stable hashing)
                             │ one queue hop per batch
                             ▼
        worker process: attach shm operator ▸ warm from REPRO_ARTIFACTS
                        ▸ F3RSolver.solve_batch ▸ ship SolveResults back

* **Routing** — each operator fingerprint maps to one shard via
  highest-random-weight (rendezvous) hashing: stable for any worker count,
  deterministic across runs and processes (content hashes, not
  ``hash()``).  Pinning a fingerprint to one shard is what preserves the
  in-process dispatcher's semantics exactly: the shard sees the same
  batch stream, in the same order, against one cached solver — so results
  are bit-identical to ``REPRO_PROCS=1`` (the adaptive Richardson weights
  evolve identically).
* **Zero-copy operators** — on a fingerprint's first dispatch the gateway
  publishes its storage into a :class:`~repro.par.shm.ShmRegistry` segment;
  only the descriptor crosses the queue, once per (worker, fingerprint).
  Operators with no shared-memory form (composites) fall back to a one-time
  pickled setup.
* **Default 1 = in-process** — with a resolved process count of one the
  gateway *is* a :class:`BatchDispatcher` (same objects, same threads); the
  process tier spins up only when ``REPRO_PROCS`` (or the ``procs=``
  argument) asks for more.
* **Failure model** — a worker death (real or injected via
  ``kill_rate`` in :mod:`repro.faults`) fails the in-flight batches with
  :class:`~repro.par.procpool.WorkerDied`; the gateway respawns the slot
  and re-dispatches surviving requests under the PR 6 retry policy.
  Worker-side *setup* failures feed the same per-fingerprint circuit
  breaker as the dispatcher's.  A worker that is alive but silent
  (wedged; injected via ``hang_rate``) is killed by the pool's watchdog
  (:class:`~repro.par.procpool.WorkerHung`, a ``WorkerDied`` subtype) and
  handled by the very same respawn/retry path.
* **Overload** — the dispatcher's priority admission and brownout
  controller apply unchanged: ``submit(..., priority=, degradable=)``,
  load shedding at a full ``max_queue`` (typed
  :class:`~repro.serve.dispatcher.LoadShed`), precision degradation for
  ``degradable`` batches under pressure, and request deadlines enforced a
  second time *inside* the worker (wall-clock absolutes cross the process
  boundary; a batch that sat in a shard queue past its deadlines returns
  typed :class:`~repro.serve.dispatcher.DeadlineExceeded` failures
  instead of burning solve time).
* **Stats** — ``stats.summary()`` gains a ``procs`` section (process
  count, per-shard queue depth, shm registry bytes, merged worker counters
  including warm-from-artifact hits) and folds worker-side recovery
  escalations into ``recovery.escalations``.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future

import numpy as np

from ..core import F3RConfig, degraded_variant
from ..operators import LinearOperator
from ..par.procpool import (
    ExpiredRequest,
    ProcPool,
    WorkerDied,
    WorkerError,
    WorkerInit,
    resolve_procs,
)
from ..par.shm import ShmRegistry, operator_payload
from ..solvers import SolveResult
from ..solvers.guards import InvalidInput
from ..sparse import CSRMatrix
from .dispatcher import (
    BatchDispatcher,
    CircuitOpen,
    DeadlineExceeded,
    DispatchStats,
    DispatcherClosed,
    AdmissionRefused,
    LoadShed,
    _Breaker,
    _Request,
    _resolve_once,
)
from .overload import resolve_controller

__all__ = ["GatewayStats", "ShardedGateway", "rank_members",
           "route_fingerprint"]


def rank_members(fingerprint: str, names) -> list:
    """Rendezvous-rank ``names`` for a fingerprint, best first.

    Highest random weight over ``blake2b(fp | name)``: deterministic across
    processes and runs, minimally disruptive when membership changes (only
    the moved fingerprints re-route), and the ranking *tail* is the natural
    failover/hedge order — when the primary dies, the fingerprint's traffic
    moves to the second-ranked member, exactly where a fresh rendezvous over
    the survivors would place it.  Ties keep input order (stable sort).
    """
    names = list(names)
    return sorted(
        names,
        key=lambda name: hashlib.blake2b(f"{fingerprint}|{name}".encode(),
                                         digest_size=8).digest(),
        reverse=True)


def route_fingerprint(fingerprint: str, nshards: int) -> int:
    """Rendezvous-hash a fingerprint onto a shard in ``[0, nshards)``.

    The integer-shard special case of :func:`rank_members` (shard ``i``
    participates under the name ``str(i)``).
    """
    if nshards <= 1:
        return 0
    return int(rank_members(fingerprint, [str(s) for s in range(nshards)])[0])


class GatewayStats(DispatchStats):
    """Dispatcher counters plus the gateway's ``procs`` section.

    ``summary()`` merges the worker processes' latest shipped snapshots:
    their recovery escalations fold into ``recovery.escalations`` and their
    shm/warm-from-artifact counters appear under ``procs.workers``.
    """

    def __init__(self, gateway: "ShardedGateway") -> None:
        super().__init__()
        self._gateway = gateway

    def summary(self) -> dict:
        base = super().summary()
        return self._gateway._merge_summary(base)


class ShardedGateway:
    """Process-sharded drop-in for :class:`BatchDispatcher`.

    Accepts the dispatcher's serving parameters plus ``procs`` (an int,
    ``"auto"``, or ``None`` = the ``REPRO_PROCS`` configuration) and the
    watchdog knobs ``hang_timeout`` / ``heartbeat_interval`` (forwarded to
    :class:`~repro.par.procpool.ProcPool`; inert in in-process mode, where
    no process can wedge independently of the gateway).  The overload
    knobs ``priority_depths`` and ``overload`` mean exactly what they do
    on :class:`BatchDispatcher`.  With a resolved count of 1 every call
    delegates to an internal :class:`BatchDispatcher` — identical
    behavior, zero new processes.

    Usage::

        with ShardedGateway(config, procs="auto", max_batch=8) as gateway:
            futures = [gateway.submit(A, b) for b in rhs_stream]
            gateway.flush()
            results = [f.result() for f in futures]
    """

    def __init__(self, config: F3RConfig | None = None, preconditioner="auto",
                 nblocks: int | None = None, alpha: float = 1.0,
                 procs: int | str | None = None, max_batch: int = 8,
                 max_workers: int = 2, cache_size: int = 8,
                 backend: str | None = None, max_queue: int | None = None,
                 max_retries: int = 1, retry_backoff: float = 0.05,
                 breaker_threshold: int = 3, breaker_cooldown: float = 30.0,
                 max_published: int = 64,
                 priority_depths: dict[int, int] | None = None,
                 overload=None, hang_timeout: float | None = 30.0,
                 heartbeat_interval: float | None = None) -> None:
        self.config = config or F3RConfig()
        self.nprocs = resolve_procs(procs)
        self.max_batch = int(max_batch)
        self.max_queue = max_queue
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = float(breaker_cooldown)
        self._precond_spec = (preconditioner, nblocks, alpha)
        self.backend = backend

        if self.nprocs <= 1:
            self._dispatcher = BatchDispatcher(
                self.config, preconditioner=preconditioner, nblocks=nblocks,
                alpha=alpha, max_batch=max_batch, cache_size=cache_size,
                max_workers=max_workers, backend=backend, max_queue=max_queue,
                max_retries=max_retries, retry_backoff=retry_backoff,
                breaker_threshold=breaker_threshold,
                breaker_cooldown=breaker_cooldown,
                priority_depths=priority_depths, overload=overload)
            # graft the gateway stats view on so stats.summary() carries the
            # procs section in both modes (re-attaching the controller the
            # dispatcher wired onto the stats object it just replaced)
            self._dispatcher.stats = GatewayStats(self)
            self._dispatcher.stats.controller = self._dispatcher._overload
            self.stats = self._dispatcher.stats
            self.registry = None
            self.pool = None
            return

        self._dispatcher = None
        self.priority_depths = (None if priority_depths is None
                                else dict(priority_depths))
        self._overload = resolve_controller(overload)
        self.stats = GatewayStats(self)
        self.stats.controller = self._overload
        self.registry = ShmRegistry(max_published=max_published)
        self.pool = ProcPool(self.nprocs, self._worker_init(),
                             hang_timeout=hang_timeout,
                             heartbeat_interval=heartbeat_interval)
        self._lock = threading.Lock()
        self._pending: OrderedDict[str, tuple[object, list[_Request]]] = OrderedDict()
        self._inflight: list[tuple[Future, list[_Request]]] = []
        self._retry_timers: list[threading.Timer] = []
        self._retry_pending = 0
        self._breakers: dict[str, _Breaker] = {}
        self._outstanding = 0
        self._by_priority: dict[int, int] = {}
        self._seq = 0
        self._warm_pending: list[Future] = []
        self._closed = False

    def _worker_init(self) -> WorkerInit:
        """Snapshot the parent's effective execution settings for workers.

        Spawn inherits the environment; programmatic overrides (artifact
        dir, thread budget, an installed fault plan) are shipped explicitly.
        """
        from .. import faults
        from ..cache import artifacts_dir
        from ..par import configured_threads

        preconditioner, nblocks, alpha = self._precond_spec
        plan = faults.active_plan()
        return WorkerInit(
            config=self.config, preconditioner=preconditioner,
            nblocks=nblocks, alpha=alpha, backend=self.backend,
            artifacts_dir=artifacts_dir() or "", threads=configured_threads(),
            fault_spec=plan.spec() if plan is not None else None)

    # ------------------------------------------------------------------ #
    # Submission (proc mode; nprocs==1 delegates wholesale)
    # ------------------------------------------------------------------ #
    def _observe_locked(self) -> None:
        """Feed the brownout controller one snapshot (caller holds the lock).

        Occupancy is the shard-level analogue of the dispatcher's busy
        workers: in-flight batches over the process count."""
        controller = self._overload
        if controller is None:
            return
        inflight = sum(1 for f, _ in self._inflight if not f.done())
        controller.observe(
            queue_fill=(self._outstanding / self.max_queue
                        if self.max_queue else 0.0),
            occupancy=min(1.0, inflight / max(1, self.nprocs)),
            deadline_misses=self.stats.deadline_misses,
            breaker_trips=self.stats.breaker_trips,
            requests=self.stats.requests)

    def _shed_mark_locked(self, priority: int) -> None:
        self.stats.shed += 1
        self.stats.shed_by_priority[priority] = \
            self.stats.shed_by_priority.get(priority, 0) + 1

    def _shed_victim_locked(self, priority: int) -> _Request | None:
        """Pop the lowest-priority-oldest-deadline pending request strictly
        below ``priority`` (same policy as the dispatcher's)."""
        best_key, best = None, None
        for fp, (_, reqs) in self._pending.items():
            for req in reqs:
                if req.priority >= priority:
                    continue
                order = (req.priority,
                         req.deadline if req.deadline is not None
                         else float("inf"),
                         req.seq)
                if best_key is None or order < best_key:
                    best_key, best = order, (fp, req)
        if best is None:
            return None
        fp, victim = best
        group = self._pending[fp]
        group[1].remove(victim)
        if not group[1]:
            del self._pending[fp]
        self._outstanding -= 1
        self._by_priority[victim.priority] = \
            self._by_priority.get(victim.priority, 0) - 1
        self._shed_mark_locked(victim.priority)
        return victim

    def submit(self, matrix: CSRMatrix | LinearOperator, rhs: np.ndarray,
               deadline: float | None = None, priority: int = 0,
               degradable: bool = False) -> Future:
        """Enqueue one solve request; future resolves to its
        :class:`~repro.solvers.SolveResult`.  Semantics are exactly
        :meth:`BatchDispatcher.submit` — validation, admission with
        priority shedding, deadlines, degradation eligibility, fingerprint
        grouping at ``max_batch``."""
        if self._dispatcher is not None:
            return self._dispatcher.submit(matrix, rhs, deadline=deadline,
                                           priority=priority,
                                           degradable=degradable)
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.shape != (matrix.nrows,):
            raise InvalidInput(
                f"rhs has shape {rhs.shape}; expected ({matrix.nrows},)",
                site="gateway.submit",
                detail={"shape": tuple(rhs.shape), "expected_rows": matrix.nrows})
        if not np.all(np.isfinite(rhs)):
            bad = int(np.flatnonzero(~np.isfinite(rhs))[0])
            raise InvalidInput(
                f"rhs contains non-finite entries (first at index {bad})",
                site="gateway.submit", detail={"first_bad_row": bad})
        request = _Request(
            rhs, None if deadline is None else time.monotonic() + float(deadline),
            priority=int(priority), degradable=bool(degradable))
        ready = None
        victim = None
        with self._lock:
            if self._closed:
                raise DispatcherClosed("gateway is closed")
            self._seq += 1
            request.seq = self._seq
            controller = self._overload
            self._observe_locked()
            if controller is not None and not controller.admits(request.priority):
                self._shed_mark_locked(request.priority)
                raise LoadShed(
                    f"shedding priority {request.priority} below floor "
                    f"{controller.config.shed_priority_floor} "
                    f"(overload state {controller.state!r})",
                    priority=request.priority)
            if self.priority_depths is not None:
                bound = self.priority_depths.get(request.priority)
                if (bound is not None
                        and self._by_priority.get(request.priority, 0) >= bound):
                    self._shed_mark_locked(request.priority)
                    raise LoadShed(
                        f"priority {request.priority} outstanding bound "
                        f"{bound} is full", priority=request.priority)
            if (self.max_queue is not None
                    and self._outstanding >= self.max_queue):
                if controller is not None:
                    victim = self._shed_victim_locked(request.priority)
                if victim is None:
                    self.stats.rejected += 1
                    if controller is None:
                        raise AdmissionRefused(
                            f"outstanding requests at max_queue={self.max_queue}")
                    self._shed_mark_locked(request.priority)
                    raise LoadShed(
                        f"outstanding requests at max_queue={self.max_queue} "
                        f"and nothing below priority {request.priority} to shed",
                        priority=request.priority)
            self.stats.requests += 1
            self._outstanding += 1
            self._by_priority[request.priority] = \
                self._by_priority.get(request.priority, 0) + 1
            key = matrix.fingerprint()
            if key not in self._pending:
                self._pending[key] = (matrix, [])
            self._pending[key][1].append(request)
            if len(self._pending[key][1]) >= self.max_batch:
                ready = (key, *self._pending.pop(key))
        if victim is not None:
            victim.future.set_exception(LoadShed(
                f"shed at priority {victim.priority}: displaced by a "
                f"priority {request.priority} arrival under queue pressure",
                priority=victim.priority))
        if ready is not None:
            self._dispatch(ready[0], ready[1], ready[2])
        return request.future

    def flush(self) -> None:
        """Dispatch every pending group, regardless of its size."""
        if self._dispatcher is not None:
            self._dispatcher.flush()
            return
        with self._lock:
            groups = [(fp, op, reqs) for fp, (op, reqs) in self._pending.items()]
            self._pending.clear()
        for fp, operator, requests in groups:
            self._dispatch(fp, operator, requests)

    def drain(self) -> None:
        """Flush and block until every dispatched batch (and retry) resolves."""
        if self._dispatcher is not None:
            self._dispatcher.drain()
            return
        self.flush()
        while True:
            with self._lock:
                self._inflight = [(f, reqs) for f, reqs in self._inflight
                                  if not f.done()]
                inflight = [f for f, _ in self._inflight]
                retrying = self._retry_pending
            if not inflight and retrying == 0:
                return
            for f in inflight:
                f.exception()   # wait; per-request errors live on request futures
            if not inflight:
                time.sleep(0.01)

    def solve_many(self, pairs) -> list[SolveResult]:
        """Submit ``(operator, rhs)`` pairs, run everything, return results in order."""
        futures = [self.submit(matrix, rhs) for matrix, rhs in pairs]
        self.drain()
        return [f.result() for f in futures]

    # ------------------------------------------------------------------ #
    def prewarm(self, operators, wait: bool = True,
                timeout: float | None = None) -> list[Future]:
        """Build solver setups on their routed shards before traffic arrives.

        Each operator's shard factorizes — or warms from ``REPRO_ARTIFACTS``
        — ahead of the first batch; completions count in
        ``stats.summary()["cold_start"]``.
        """
        if self._dispatcher is not None:
            return self._dispatcher.prewarm(operators, wait=wait,
                                            timeout=timeout)
        futures = []
        for operator in operators:
            fp = operator.fingerprint()
            shard = route_fingerprint(fp, self.nprocs)
            self.pool.ensure_worker(shard)
            start = time.monotonic()
            # callers get a tracked wrapper, not the pool future: if close()
            # wins the race the wrapper fails typed (DispatcherClosed)
            # instead of surfacing the pool's generic shutdown error
            outer: Future = Future()
            with self._lock:
                if self._closed:
                    raise DispatcherClosed("gateway is closed")
                self._warm_pending = [f for f in self._warm_pending
                                      if not f.done()]
                self._warm_pending.append(outer)
            try:
                inner = self.pool.submit_warm(
                    shard, fp,
                    lambda op=operator, f=fp: self._setup_payload(op, f))
            except BaseException as exc:   # noqa: BLE001 - relayed typed
                _resolve_once(outer, exc=exc)
                futures.append(outer)
                continue

            def _relay(done, begun=start, tracked=outer):
                exc = done.exception()
                if exc is None:
                    with self._lock:
                        self.stats.prewarms += 1
                        self.stats.prewarm_ms += (time.monotonic() - begun) * 1e3
                    _resolve_once(tracked, result=done.result())
                else:
                    _resolve_once(tracked, exc=exc)

            inner.add_done_callback(_relay)
            futures.append(outer)
        if wait:
            for future in futures:
                future.result(timeout)
        return futures

    # ------------------------------------------------------------------ #
    # Dispatch path
    # ------------------------------------------------------------------ #
    def _setup_payload(self, operator, fp: str) -> dict:
        """First-contact payload for a (worker, fingerprint): publish the
        operator's storage into the registry and hand out the descriptor,
        or fall back to a one-time pickle for non-publishable families."""
        payload = operator_payload(operator)
        if payload is not None:
            arrays, meta = payload
            return {"descriptor": self.registry.publish(fp, arrays, meta)}
        return {"pickle": pickle.dumps(operator)}

    def _breaker_check(self, fp: str) -> None:
        with self._lock:
            breaker = self._breakers.get(fp)
            if breaker is None or breaker.opened_at is None:
                return
            if time.monotonic() - breaker.opened_at >= self.breaker_cooldown:
                breaker.opened_at = None
                breaker.failures = self.breaker_threshold - 1
                return
        raise CircuitOpen(
            f"setup circuit open for operator {fp!r} "
            f"({self.breaker_threshold} consecutive failures)")

    def _breaker_record(self, fp: str, ok: bool) -> None:
        with self._lock:
            if ok:
                self._breakers.pop(fp, None)
                return
            breaker = self._breakers.setdefault(fp, _Breaker())
            breaker.failures += 1
            if (breaker.failures >= self.breaker_threshold
                    and breaker.opened_at is None):
                breaker.opened_at = time.monotonic()
                self.stats.breaker_trips += 1

    def _finish(self, request: _Request, result=None, exc=None) -> None:
        if request.future.done():
            return
        with self._lock:
            self._outstanding -= 1
            self._by_priority[request.priority] = \
                self._by_priority.get(request.priority, 0) - 1
            # completions are observations too: pressure recovers as the
            # queue drains even if no new submissions arrive
            self._observe_locked()
        if exc is not None:
            request.future.set_exception(exc)
        else:
            request.future.set_result(result)

    def _split_expired(self, requests: list[_Request]) -> list[_Request]:
        now = time.monotonic()
        live = []
        for req in requests:
            if req.deadline is not None and now > req.deadline:
                with self._lock:
                    self.stats.deadline_misses += 1
                self._finish(req, exc=DeadlineExceeded(
                    f"deadline passed {now - req.deadline:.3f}s before dispatch"))
            else:
                live.append(req)
        return live

    def _dispatch(self, fp: str, operator, requests: list[_Request],
                  retry: bool = False) -> None:
        requests = self._split_expired(requests)
        if not requests:
            return
        with self._lock:
            closed = self._closed
        if closed and retry:
            for req in requests:
                self._finish(req, exc=DispatcherClosed(
                    "gateway closed before dispatch"))
            return
        # brownout degradation happens at batch granularity here: the
        # degrade decision rides the queue hop as a flag, so degradable
        # requests split into their own batch for the same shard
        controller = self._overload
        degrade_to = (degraded_variant(self.config.variant)
                      if controller is not None and controller.should_degrade()
                      else None)
        parts: list[tuple[list[_Request], bool]] = [(requests, False)]
        if degrade_to is not None:
            degraded = [r for r in requests if r.degradable]
            if degraded:
                ids = set(map(id, degraded))
                normal = [r for r in requests if id(r) not in ids]
                parts = ([(normal, False)] if normal else []) + [(degraded, True)]
                with self._lock:
                    self.stats.degraded += len(degraded)
        for part, degrade in parts:
            self._dispatch_part(fp, operator, part, degrade)

    def _dispatch_part(self, fp: str, operator, requests: list[_Request],
                       degrade: bool) -> None:
        try:
            self._breaker_check(fp)
            shard = route_fingerprint(fp, self.nprocs)
            self.pool.ensure_worker(shard)
            rhs_block = np.stack([req.rhs for req in requests], axis=1)
            deadlines = None
            if any(req.deadline is not None for req in requests):
                # re-express monotonic deadlines as wall-clock absolutes:
                # monotonic clocks are not comparable across processes
                offset = time.time() - time.monotonic()
                deadlines = [None if req.deadline is None
                             else req.deadline + offset for req in requests]
            batch_future = self.pool.submit_batch(
                shard, fp, rhs_block,
                lambda: self._setup_payload(operator, fp),
                deadlines=deadlines, degrade=degrade)
        except BaseException as exc:   # noqa: BLE001 - routed to retry policy
            self._retry_or_fail(fp, operator, requests, exc)
            return
        with self._lock:
            self._inflight.append((batch_future, requests))
            self.stats.batches += 1
            self.stats.batched_requests += len(requests)
            self.stats.largest_batch = max(self.stats.largest_batch,
                                           len(requests))
        batch_future.add_done_callback(
            lambda done: self._on_batch_done(fp, operator, requests, done))

    def _on_batch_done(self, fp: str, operator, requests: list[_Request],
                       batch_future: Future) -> None:
        """Collector-thread callback: distribute results or route failures."""
        exc = batch_future.exception()
        if exc is not None:
            if isinstance(exc, WorkerDied):
                # respawn the slot before the retry lands on it
                self.pool.ensure_worker(exc.worker_id)
            if isinstance(exc, WorkerError) and exc.kind == "stale":
                # the setup-carrying batch died before the worker could build
                # the solver: reship setup on the retry, no breaker charge
                self.pool.forget(fp)
            elif isinstance(exc, WorkerError) and exc.kind == "setup":
                self._breaker_record(fp, ok=False)
            self._retry_or_fail(fp, operator, requests, exc)
            return
        results, _snapshot = batch_future.result()
        self._breaker_record(fp, ok=True)
        for req, result in zip(requests, results):
            if isinstance(result, ExpiredRequest):
                # the worker refused to solve a request whose deadline had
                # already passed when it dequeued the batch
                with self._lock:
                    self.stats.deadline_misses += 1
                self._finish(req, exc=DeadlineExceeded(
                    f"deadline passed {result.overshoot_s:.3f}s before the "
                    f"worker dequeued the batch"))
                continue
            if result.recovery is not None:
                with self._lock:
                    self.stats.escalations += result.recovery.escalations
            self._finish(req, result=result)

    def _retry_or_fail(self, fp: str, operator, requests: list[_Request],
                       exc: BaseException) -> None:
        """PR 6 semantics: re-dispatch surviving requests, fail the exhausted."""
        retryable, exhausted = [], []
        for req in requests:
            if req.attempts < self.max_retries and not isinstance(
                    exc, (InvalidInput, DispatcherClosed, CircuitOpen)):
                req.attempts += 1
                retryable.append(req)
            else:
                exhausted.append(req)
        for req in exhausted:
            self._finish(req, exc=exc)
        if not retryable:
            return
        delay = self.retry_backoff * max(r.attempts for r in retryable)
        with self._lock:
            self.stats.retries += len(retryable)
            self._retry_pending += 1

        # backoff on a timer: this path runs on the pool's collector thread,
        # which must keep draining responses and watching for deaths
        def _redispatch():
            try:
                self._dispatch(fp, operator, retryable, retry=True)
            finally:
                with self._lock:
                    self._retry_pending -= 1

        timer = threading.Timer(delay, _redispatch)
        timer.daemon = True
        with self._lock:
            self._retry_timers = [t for t in self._retry_timers if t.is_alive()]
            self._retry_timers.append(timer)
        timer.start()

    # ------------------------------------------------------------------ #
    # Eviction and shutdown
    # ------------------------------------------------------------------ #
    def evict(self, fingerprint: str) -> bool:
        """Evict one operator tier-wide: unlink its shm segment now and tell
        every attached worker to drop its solver, plans, and mapping.
        Returns whether a publication existed."""
        if self._dispatcher is not None:
            return False
        descriptor = self.registry.evict(fingerprint)
        self.pool.evict(fingerprint)
        return descriptor is not None

    def close(self, wait: bool = True) -> None:
        """Stop accepting work, stop the workers, unlink every segment.

        With ``wait=True`` in-flight batches complete first; pending
        (never-dispatched) requests fail with :class:`DispatcherClosed`
        either way.  After ``close`` returns no shared-memory segment
        created by this gateway remains linked.
        """
        if self._dispatcher is not None:
            self._dispatcher.close(wait=wait)
            return
        with self._lock:
            if self._closed:
                return
            self._closed = True
            abandoned = [req for _, reqs in self._pending.values() for req in reqs]
            self._pending.clear()
            timers = list(self._retry_timers)
        for req in abandoned:
            self._finish(req, exc=DispatcherClosed(
                "gateway closed before dispatch"))
        for timer in timers:
            timer.cancel()
        if wait:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                with self._lock:
                    self._inflight = [(f, r) for f, r in self._inflight
                                      if not f.done()]
                    self._warm_pending = [f for f in self._warm_pending
                                          if not f.done()]
                    busy = (bool(self._inflight) or self._retry_pending > 0
                            or bool(self._warm_pending))
                if not busy:
                    break
                time.sleep(0.01)
        # warm-ups that did not complete (close(wait=False), or a stuck
        # worker) must fail typed, not leak as forever-pending futures
        with self._lock:
            warm_pending = list(self._warm_pending)
            self._warm_pending.clear()
        for outer in warm_pending:
            _resolve_once(outer, exc=DispatcherClosed(
                "gateway closed before warm-up completed"))
        self.pool.close()
        self.registry.close()

    def __enter__(self) -> "ShardedGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        if exc_info[0] is None:
            self.drain()
        self.close()

    # ------------------------------------------------------------------ #
    # Stats
    # ------------------------------------------------------------------ #
    def _merge_summary(self, base: dict) -> dict:
        """Fold worker snapshots into the dispatcher-shaped summary."""
        if self._dispatcher is not None or self.pool is None:
            base["procs"] = {"procs": 1, "mode": "in-process"}
            return base
        snapshots = dict(self.pool.stats_snapshots)
        warm: dict[str, int] = {}
        workers = {"batches": 0, "requests": 0, "shm_attaches": 0,
                   "shm_bytes": 0, "pickled_setups": 0, "plan_cache": 0,
                   "expired": 0, "degraded_batches": 0,
                   "artifact_saved_ms": 0.0}
        escalations = 0
        for snap in snapshots.values():
            for field in ("batches", "requests", "shm_attaches", "shm_bytes",
                          "pickled_setups", "plan_cache", "expired",
                          "degraded_batches"):
                workers[field] += snap.get(field, 0)
            workers["artifact_saved_ms"] += snap.get("artifact_saved_ms", 0.0)
            escalations += snap.get("escalations", 0)
            for kind, hits in snap.get("warm_from_artifacts", {}).items():
                warm[kind] = warm.get(kind, 0) + hits
        workers["warm_from_artifacts"] = warm
        workers["artifact_saved_ms"] = round(workers["artifact_saved_ms"], 3)
        base["recovery"]["escalations"] += escalations
        depths = self.pool.queue_depths()
        base["procs"] = {
            "procs": self.nprocs,
            "mode": "process-pool",
            "occupancy": {
                "in_flight_batches": sum(depths.values()),
                "busy_shards": sum(1 for d in depths.values() if d > 0),
            },
            "queue_depth": depths,
            "shm": self.registry.stats(),
            "workers": workers,
            "worker_deaths": self.pool.deaths,
            "worker_hangs": self.pool.hangs,
        }
        return base

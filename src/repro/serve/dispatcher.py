"""Request batching and preconditioner caching for high-throughput serving.

A production deployment of the solver faces many concurrent, mostly repetitive
solve requests: the same handful of operators (one per model / grid / time
step) hit with ever-changing right-hand sides.  The
:class:`BatchDispatcher` turns that request stream into efficient work:

* **Grouping** — incoming ``(operator, rhs)`` requests are grouped by the
  operator's ``fingerprint()`` — assembled matrices and matrix-free stencil
  operators flow through one queue — so requests against the same operator
  land in the same batch even when callers hold different operator objects:
  independently *built* equal operators share a content hash, and precision
  casts of one operator share an O(1) key derived from their common source
  (a cast copy does not, however, batch with an equal matrix built directly
  at the target precision — see :meth:`~repro.sparse.CSRMatrix.fingerprint`).
* **Setup caching** — the expensive per-matrix setup (precision casts, ILU(0)
  factorization, triangular-solve plans) is built once per
  ``(fingerprint, config)`` and kept in a bounded LRU; subsequent batches
  reuse it.  Compiled :class:`~repro.plans.SolvePlan` objects sit in their
  own fingerprint-keyed cache *alongside* this LRU — a solver evicted from
  the setup cache and rebuilt for returning traffic re-binds its plans (and
  the measured autotune verdicts) instantly instead of re-deriving them;
  :attr:`DispatchStats.summary` surfaces both caches.
* **Batched execution** — each group is solved with
  :meth:`~repro.core.F3RSolver.solve_batch`, so the hot kernels run as
  SpMM / batched triangular solves instead of per-request vector kernels.
* **Worker threads** — batches execute on a thread pool.  Every object with
  scratch state (matrices, factors, solver levels) carries per-thread
  workspaces (:class:`~repro.backends.workspace.ThreadLocalWorkspace`), so
  one cached solver may execute batches on several workers concurrently.
  The adaptive Richardson weights remain algorithmically shared state, as in
  any concurrent use of a shared solver.
* **Pool awareness** — when intra-kernel threading is on
  (``REPRO_THREADS`` > 1, :mod:`repro.par`), each executing batch registers
  as one budget consumer, so its kernels fan across
  ``budget // active-batches`` threads: the two parallelism layers share
  one budget instead of multiplying.  :attr:`DispatchStats.summary`
  surfaces the pool occupancy (``pool``) and the autotuned thread verdicts
  (``autotune.thread_verdicts``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..backends import use_backend
from ..core import F3RConfig, F3RSolver
from ..operators import LinearOperator
from ..solvers import SolveResult
from ..sparse import CSRMatrix

__all__ = ["BatchDispatcher", "DispatchStats"]


@dataclass
class DispatchStats:
    """Counters describing what the dispatcher has done so far.

    All mutation happens under the owning dispatcher's lock; the stats object
    itself is plain data.
    """

    requests: int = 0
    batches: int = 0
    batched_requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    largest_batch: int = 0

    def summary(self) -> dict:
        """Dispatcher counters plus the plan-layer state a production
        deployment watches: the plan/autotune caches, the autotuned
        thread-count verdicts (``autotune.thread_verdicts``), and the
        worker-pool budget/occupancy (``pool`` — how many batch executions
        currently share the intra-kernel thread budget)."""
        from ..par import pool_stats
        from ..plans import autotune_stats, plan_cache_stats

        return {
            "requests": self.requests,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "largest_batch": self.largest_batch,
            "plan_cache": plan_cache_stats(),
            "autotune": autotune_stats(),
            "pool": pool_stats(),
        }


class _Request:
    __slots__ = ("rhs", "future")

    def __init__(self, rhs: np.ndarray) -> None:
        self.rhs = rhs
        self.future: Future = Future()


class BatchDispatcher:
    """Groups solve requests by matrix and executes them as batched solves.

    Parameters
    ----------
    config:
        :class:`~repro.core.F3RConfig` used for every solver built by the
        dispatcher (default: the package default F3R configuration).
    preconditioner, nblocks, alpha:
        Forwarded to :class:`~repro.core.F3RSolver` when a new setup is built.
    max_batch:
        A pending group is dispatched as soon as it reaches this many
        requests; smaller groups wait for :meth:`flush`.
    cache_size:
        Number of ``(matrix fingerprint, config)`` solver setups kept in the
        LRU cache.
    max_workers:
        Worker threads executing batches.
    backend:
        Kernel backend the workers solve on (default: the process default).

    Usage::

        with BatchDispatcher(config, max_batch=8) as dispatcher:
            futures = [dispatcher.submit(A, b) for b in rhs_stream]
            dispatcher.flush()
            results = [f.result() for f in futures]
    """

    def __init__(self, config: F3RConfig | None = None, preconditioner="auto",
                 nblocks: int | None = None, alpha: float = 1.0,
                 max_batch: int = 8, cache_size: int = 8, max_workers: int = 2,
                 backend: str | None = None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.config = config or F3RConfig()
        self.max_batch = int(max_batch)
        self.cache_size = int(cache_size)
        self.backend = backend
        self._precond_spec = (preconditioner, nblocks, alpha)
        self._pool = ThreadPoolExecutor(max_workers=max_workers,
                                        thread_name_prefix="repro-serve")
        self._lock = threading.Lock()
        # fingerprint -> (operator, [pending requests]); insertion-ordered so
        # flush dispatches groups in arrival order.  Assembled and
        # matrix-free operators share the one queue.
        self._pending: OrderedDict[
            str, tuple[CSRMatrix | LinearOperator, list[_Request]]] = OrderedDict()
        self._solvers: OrderedDict[tuple, F3RSolver] = OrderedDict()
        self._building: dict[tuple, Future] = {}
        self._inflight: list[Future] = []
        self._closed = False
        self.stats = DispatchStats()

    # ------------------------------------------------------------------ #
    def submit(self, matrix: CSRMatrix | LinearOperator, rhs: np.ndarray) -> Future:
        """Enqueue one solve request; returns a future resolving to its
        :class:`~repro.solvers.SolveResult`.

        ``matrix`` is anything :class:`~repro.core.F3RSolver` accepts — an
        assembled :class:`~repro.sparse.CSRMatrix` or any
        :class:`~repro.operators.LinearOperator` (matrix-free stencils,
        composites).  The request is dispatched when its operator group
        fills to ``max_batch`` or on the next :meth:`flush`.
        """
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.shape != (matrix.nrows,):
            raise ValueError(f"rhs has shape {rhs.shape}; expected ({matrix.nrows},)")
        request = _Request(rhs)
        ready = None
        with self._lock:
            if self._closed:
                raise RuntimeError("dispatcher is closed")
            self.stats.requests += 1
            key = matrix.fingerprint()
            if key not in self._pending:
                self._pending[key] = (matrix, [])
            self._pending[key][1].append(request)
            if len(self._pending[key][1]) >= self.max_batch:
                ready = self._pending.pop(key)
        if ready is not None:
            self._dispatch(*ready)
        return request.future

    def flush(self) -> None:
        """Dispatch every pending group, regardless of its size."""
        with self._lock:
            groups = list(self._pending.values())
            self._pending.clear()
        for matrix, requests in groups:
            self._dispatch(matrix, requests)

    def drain(self) -> None:
        """Flush and block until every dispatched batch has completed."""
        self.flush()
        while True:
            with self._lock:
                inflight = [f for f in self._inflight if not f.done()]
                self._inflight = inflight
            if not inflight:
                return
            for f in inflight:
                f.exception()        # wait; per-request errors live on request futures

    def solve_many(self, pairs) -> list[SolveResult]:
        """Submit ``(operator, rhs)`` pairs, run everything, return results in order."""
        futures = [self.submit(matrix, rhs) for matrix, rhs in pairs]
        self.drain()
        return [f.result() for f in futures]

    # ------------------------------------------------------------------ #
    def _solver_for(self, matrix: CSRMatrix | LinearOperator) -> F3RSolver:
        key = (matrix.fingerprint(), self.config)
        with self._lock:
            solver = self._solvers.get(key)
            if solver is not None:
                self._solvers.move_to_end(key)
                self.stats.cache_hits += 1
                return solver
            build = self._building.get(key)
            if build is None:
                build = self._building[key] = Future()
                is_builder = True
                self.stats.cache_misses += 1
            else:
                # another worker is already building this setup: wait for it
                # instead of duplicating the factorization
                is_builder = False
                self.stats.cache_hits += 1
        if not is_builder:
            return build.result()

        # build outside the lock (the factorization is the expensive part)
        preconditioner, nblocks, alpha = self._precond_spec
        try:
            solver = F3RSolver(matrix, preconditioner=preconditioner,
                               config=self.config, nblocks=nblocks, alpha=alpha)
        except BaseException as exc:   # noqa: BLE001 - relayed to waiters
            with self._lock:
                self._building.pop(key, None)
            build.set_exception(exc)
            raise
        with self._lock:
            self._solvers[key] = solver
            self._solvers.move_to_end(key)
            while len(self._solvers) > self.cache_size:
                self._solvers.popitem(last=False)
            self._building.pop(key, None)
        build.set_result(solver)
        return solver

    def _dispatch(self, matrix, requests: list[_Request]) -> None:
        future = self._pool.submit(self._execute, matrix, requests)
        with self._lock:
            self._inflight.append(future)
            self.stats.batches += 1
            self.stats.batched_requests += len(requests)
            self.stats.largest_batch = max(self.stats.largest_batch, len(requests))

    def _execute(self, matrix, requests: list[_Request]) -> None:
        from ..par import pool_consumer

        try:
            # one budget across both parallelism layers: each concurrently
            # executing batch registers as a consumer, so its intra-kernel
            # threads get budget // active-batches — the oversubscription
            # guard between inter-request workers and partitioned kernels
            with pool_consumer():
                solver = self._solver_for(matrix)
                rhs_block = np.stack([req.rhs for req in requests], axis=1)
                if self.backend is not None:
                    with use_backend(self.backend):
                        batch = solver.solve_batch(rhs_block)
                else:
                    batch = solver.solve_batch(rhs_block)
        except BaseException as exc:   # noqa: BLE001 - propagated via futures
            for req in requests:
                if not req.future.done():
                    req.future.set_exception(exc)
            return
        for req, result in zip(requests, batch.results):
            req.future.set_result(result)

    # ------------------------------------------------------------------ #
    def close(self, wait: bool = True) -> None:
        """Stop accepting requests; optionally wait for in-flight batches.

        Pending (never-dispatched) requests are failed with
        :class:`RuntimeError` so no caller blocks forever on an abandoned
        future.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            abandoned = [req for _, reqs in self._pending.values() for req in reqs]
            self._pending.clear()
        for req in abandoned:
            req.future.set_exception(RuntimeError("dispatcher closed before dispatch"))
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "BatchDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        # finish the work on a clean exit; tear down fast on an exception
        if exc_info[0] is None:
            self.drain()
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BatchDispatcher(max_batch={self.max_batch}, "
                f"cached_setups={len(self._solvers)}, stats={self.stats.summary()})")

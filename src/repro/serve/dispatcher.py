"""Request batching and preconditioner caching for high-throughput serving.

A production deployment of the solver faces many concurrent, mostly repetitive
solve requests: the same handful of operators (one per model / grid / time
step) hit with ever-changing right-hand sides.  The
:class:`BatchDispatcher` turns that request stream into efficient work:

* **Grouping** — incoming ``(operator, rhs)`` requests are grouped by the
  operator's ``fingerprint()`` — assembled matrices and matrix-free stencil
  operators flow through one queue — so requests against the same operator
  land in the same batch even when callers hold different operator objects:
  independently *built* equal operators share a content hash, and precision
  casts of one operator share an O(1) key derived from their common source
  (a cast copy does not, however, batch with an equal matrix built directly
  at the target precision — see :meth:`~repro.sparse.CSRMatrix.fingerprint`).
* **Setup caching** — the expensive per-matrix setup (precision casts, ILU(0)
  factorization, triangular-solve plans) is built once per
  ``(fingerprint, config)`` and kept in a bounded LRU; subsequent batches
  reuse it.  Compiled :class:`~repro.plans.SolvePlan` objects sit in their
  own fingerprint-keyed cache *alongside* this LRU — a solver evicted from
  the setup cache and rebuilt for returning traffic re-binds its plans (and
  the measured autotune verdicts) instantly instead of re-deriving them;
  :attr:`DispatchStats.summary` surfaces both caches.
* **Batched execution** — each group is solved with
  :meth:`~repro.core.F3RSolver.solve_batch`, so the hot kernels run as
  SpMM / batched triangular solves instead of per-request vector kernels.
* **Worker threads** — batches execute on a thread pool.  Every object with
  scratch state (matrices, factors, solver levels) carries per-thread
  workspaces (:class:`~repro.backends.workspace.ThreadLocalWorkspace`), so
  one cached solver may execute batches on several workers concurrently.
* **Ordered execution per fingerprint** — the adaptive Richardson weights
  are shared solver state that evolves across batches, so batches against
  *the same* operator execute in dispatch order (a per-fingerprint ticket
  taken at dispatch time; a worker whose batch is not next in line for its
  fingerprint waits for its turn).  Batches against different operators
  still run fully in parallel.  Result: ``max_workers=N`` is bit-identical
  to ``max_workers=1`` for any fixed dispatch order — the former PR 8
  caveat that concurrent same-fingerprint batches race the weights is
  closed.  Ordering is abandoned (never deadlocked on) once :meth:`close`
  begins tearing the pool down.
* **Pool awareness** — when intra-kernel threading is on
  (``REPRO_THREADS`` > 1, :mod:`repro.par`), each executing batch registers
  as one budget consumer, so its kernels fan across
  ``budget // active-batches`` threads: the two parallelism layers share
  one budget instead of multiplying.  :attr:`DispatchStats.summary`
  surfaces the pool occupancy (``pool``) and the autotuned thread verdicts
  (``autotune.thread_verdicts``).

Hardening (the serving failure model):

* **Boundary validation** — a mis-shaped or non-finite right-hand side is
  rejected at :meth:`~BatchDispatcher.submit` with a structured
  :class:`~repro.solvers.InvalidInput` before any setup work is spent.
* **Admission** — ``max_queue`` bounds the outstanding (accepted, not yet
  completed) requests; beyond it :meth:`~BatchDispatcher.submit` raises
  :class:`AdmissionRefused` instead of queueing unboundedly.
* **Priorities & load shedding** — ``submit(..., priority=)`` ranks
  requests; when ``max_queue`` fills, the brownout controller sheds the
  lowest-priority-oldest-deadline *pending* request (typed
  :class:`LoadShed`, a subclass of :class:`AdmissionRefused`) to admit
  higher-priority work instead of refusing everything at the wall.
  ``priority_depths`` adds per-priority outstanding bounds.
* **Brownout** — a :class:`~repro.serve.overload.BrownoutController`
  (default on; ``REPRO_OVERLOAD=0`` disables) watches queue fill,
  deadline-miss/breaker-trip rates, and pool occupancy; under pressure it
  starts ``degradable=True`` requests one precision tier lower (the
  recovery ladder is the safety net), suppresses opportunistic warm-ups
  and autotune measurement, and at the SHED level refuses work below its
  priority floor at admission.  ``stats.summary()["overload"]`` carries
  the state, the shed/degraded counters, and every transition.
* **Deadlines** — ``submit(..., deadline=seconds)`` attaches a per-request
  deadline; a request still undispatched past it fails with
  :class:`DeadlineExceeded` instead of occupying a batch slot.
* **Retry** — a batch that dies (worker exception) is re-queued with
  backoff instead of failing its requests, up to ``max_retries`` per
  request; only exhausted requests see the error.
* **Circuit breaker** — repeated *setup* failures for one operator
  fingerprint open a per-fingerprint breaker: further batches fail fast
  with :class:`CircuitOpen` (no futile refactorizations) until
  ``breaker_cooldown`` elapses and a probe attempt is allowed through.
* **Graceful drain** — ``close(wait=True)`` completes in-flight batches;
  ``close(wait=False)`` cancels batches not yet running and fails their
  futures with :class:`DispatcherClosed` so no caller blocks forever.

The recovery-related counters (``escalations`` harvested from
:class:`~repro.core.SolveReport` results, ``retries``, ``breaker_trips``,
``deadline_misses``) appear under ``stats.summary()["recovery"]``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..backends import use_backend
from ..core import F3RConfig, F3RSolver, degraded_variant
from ..faults import maybe_delay, maybe_fail_worker
from ..operators import LinearOperator
from ..solvers import SolveResult
from ..solvers.guards import InvalidInput
from ..sparse import CSRMatrix
from .overload import resolve_controller

__all__ = [
    "AdmissionRefused",
    "BatchDispatcher",
    "CircuitOpen",
    "DeadlineExceeded",
    "DispatchStats",
    "DispatcherClosed",
    "LoadShed",
]


class DispatcherClosed(RuntimeError):
    """The dispatcher no longer accepts or will never run this work."""


class DeadlineExceeded(RuntimeError):
    """The request's deadline passed before its batch was executed."""


class AdmissionRefused(RuntimeError):
    """The dispatcher's outstanding-request bound (``max_queue``) is full."""


class LoadShed(AdmissionRefused):
    """This request was shed under overload (priority admission policy).

    Raised on a *pending* request's future when a higher-priority arrival
    displaces it from a full queue, and at :meth:`BatchDispatcher.submit`
    when the incoming request itself is the lowest-priority work in sight
    (or falls below the SHED-state priority floor).  Subclasses
    :class:`AdmissionRefused`: pre-priority callers that catch the hard
    admission wall keep working unchanged.
    """

    def __init__(self, message: str, priority: int | None = None) -> None:
        super().__init__(message)
        self.priority = priority


class CircuitOpen(RuntimeError):
    """Setup for this operator fingerprint keeps failing; failing fast."""


@dataclass
class DispatchStats:
    """Counters describing what the dispatcher has done so far.

    All mutation happens under the owning dispatcher's lock; the stats object
    itself is plain data.
    """

    requests: int = 0
    batches: int = 0
    batched_requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    largest_batch: int = 0
    escalations: int = 0
    retries: int = 0
    breaker_trips: int = 0
    deadline_misses: int = 0
    rejected: int = 0
    shed: int = 0
    degraded: int = 0
    shed_by_priority: dict = field(default_factory=dict)
    prewarms: int = 0
    opportunistic_warmups: int = 0
    prewarm_ms: float = 0.0

    #: the owning dispatcher's BrownoutController (set post-init; None when
    #: the controller is disabled) — summary() folds its state in
    controller: object = None

    def summary(self) -> dict:
        """Dispatcher counters plus the plan-layer state a production
        deployment watches: the plan/autotune caches, the autotuned
        thread-count verdicts (``autotune.thread_verdicts``), the
        worker-pool budget/occupancy (``pool``), the robustness
        counters (``recovery``), and the cold-start picture
        (``cold_start``: warm-up completions plus the persistent artifact
        cache's hit/miss/saved-time counters)."""
        from ..cache import cold_start_stats
        from ..par import pool_stats
        from ..plans import autotune_stats, plan_cache_stats

        artifacts = cold_start_stats()
        if self.controller is not None:
            overload = dict(self.controller.summary())
        else:
            overload = {"state": "disabled", "pressure": 0.0,
                        "observations": 0, "transitions": 0,
                        "entries": {}, "last_transitions": []}
        overload["shed"] = self.shed
        overload["degraded"] = self.degraded
        overload["shed_by_priority"] = {
            str(p): n for p, n in sorted(self.shed_by_priority.items())}
        return {
            "requests": self.requests,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "largest_batch": self.largest_batch,
            "recovery": {
                "escalations": self.escalations,
                "retries": self.retries,
                "breaker_trips": self.breaker_trips,
                "deadline_misses": self.deadline_misses,
                "rejected": self.rejected,
            },
            "overload": overload,
            "plan_cache": plan_cache_stats(),
            "autotune": autotune_stats(),
            "pool": pool_stats(),
            "cold_start": {
                "prewarms": self.prewarms,
                "opportunistic_warmups": self.opportunistic_warmups,
                "prewarm_ms": round(self.prewarm_ms, 3),
                "setup_ms_saved": round(artifacts["saved_ms"], 3),
                "artifacts": artifacts,
            },
        }


@dataclass
class _Breaker:
    """Per-fingerprint setup-failure state."""

    failures: int = 0
    opened_at: float | None = None


def _resolve_once(future: Future, result=None, exc=None) -> None:
    """Resolve a future, tolerating a concurrent resolution (close vs task)."""
    if future.done():
        return
    try:
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(result)
    except Exception:      # InvalidStateError: the race lost — already resolved
        pass


class _Request:
    __slots__ = ("rhs", "future", "deadline", "attempts", "priority",
                 "degradable", "seq")

    def __init__(self, rhs: np.ndarray, deadline: float | None = None,
                 priority: int = 0, degradable: bool = False,
                 seq: int = 0) -> None:
        self.rhs = rhs
        self.future: Future = Future()
        self.deadline = deadline          # absolute time.monotonic(), or None
        self.attempts = 0
        self.priority = priority
        self.degradable = degradable
        self.seq = seq                    # admission order (shed tie-break)


class BatchDispatcher:
    """Groups solve requests by matrix and executes them as batched solves.

    Parameters
    ----------
    config:
        :class:`~repro.core.F3RConfig` used for every solver built by the
        dispatcher (default: the package default F3R configuration).
    preconditioner, nblocks, alpha:
        Forwarded to :class:`~repro.core.F3RSolver` when a new setup is built.
    max_batch:
        A pending group is dispatched as soon as it reaches this many
        requests; smaller groups wait for :meth:`flush`.
    cache_size:
        Number of ``(matrix fingerprint, config)`` solver setups kept in the
        LRU cache.
    max_workers:
        Worker threads executing batches.
    backend:
        Kernel backend the workers solve on (default: the process default).
    max_queue:
        Admission bound: maximum outstanding (accepted, not yet completed)
        requests; ``None`` (default) means unbounded.
    max_retries:
        How many times a request is re-queued after its batch dies before
        the error reaches its future.
    retry_backoff:
        Base delay (seconds) before a died batch is re-executed; grows
        linearly with the attempt count.
    breaker_threshold, breaker_cooldown:
        Consecutive setup failures for one operator fingerprint that open
        its circuit breaker, and the seconds before a probe attempt is
        allowed through again.
    priority_depths:
        Optional per-priority outstanding bounds, e.g. ``{0: 16}`` caps
        priority-0 work at 16 outstanding requests (typed :class:`LoadShed`
        beyond it) regardless of ``max_queue`` headroom.
    overload:
        The brownout controller: ``None`` (default) builds one unless
        ``REPRO_OVERLOAD=0``; ``False`` disables it (restoring the hard
        pre-priority admission wall exactly); ``True`` forces a default
        controller; a :class:`~repro.serve.overload.BrownoutController` or
        :class:`~repro.serve.overload.BrownoutConfig` is used as given.

    Usage::

        with BatchDispatcher(config, max_batch=8) as dispatcher:
            futures = [dispatcher.submit(A, b) for b in rhs_stream]
            dispatcher.flush()
            results = [f.result() for f in futures]
    """

    def __init__(self, config: F3RConfig | None = None, preconditioner="auto",
                 nblocks: int | None = None, alpha: float = 1.0,
                 max_batch: int = 8, cache_size: int = 8, max_workers: int = 2,
                 backend: str | None = None, max_queue: int | None = None,
                 max_retries: int = 1, retry_backoff: float = 0.05,
                 breaker_threshold: int = 3,
                 breaker_cooldown: float = 30.0,
                 priority_depths: dict[int, int] | None = None,
                 overload=None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 (or None for unbounded)")
        self.config = config or F3RConfig()
        self.max_batch = int(max_batch)
        self.cache_size = int(cache_size)
        self.backend = backend
        self.max_queue = max_queue
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = float(breaker_cooldown)
        self.priority_depths = (None if priority_depths is None
                                else dict(priority_depths))
        self._overload = resolve_controller(overload)
        self._precond_spec = (preconditioner, nblocks, alpha)
        self._max_workers = int(max_workers)
        self._pool = ThreadPoolExecutor(max_workers=max_workers,
                                        thread_name_prefix="repro-serve")
        self._lock = threading.Lock()
        # fingerprint -> (operator, [pending requests]); insertion-ordered so
        # flush dispatches groups in arrival order.  Assembled and
        # matrix-free operators share the one queue.
        self._pending: OrderedDict[
            str, tuple[CSRMatrix | LinearOperator, list[_Request]]] = OrderedDict()
        self._solvers: OrderedDict[tuple, F3RSolver] = OrderedDict()
        self._building: dict[tuple, Future] = {}
        self._breakers: dict[tuple, _Breaker] = {}
        self._inflight: list[tuple[Future, list[_Request]]] = []
        # setup keys evicted from the solver LRU: returning traffic for one
        # of these triggers an opportunistic warm-up on an idle worker
        # (bounded insertion-ordered set)
        self._evicted: OrderedDict[tuple, None] = OrderedDict()
        # per-fingerprint execution ordering (see module docstring): tickets
        # are issued under self._lock at pool-submit time, so every
        # fingerprint's ticket order is consistent with the executor's FIFO
        # start order — a batch waiting for its turn always has its
        # predecessor already running (no deadlock possible)
        self._order_cond = threading.Condition()
        self._fp_next: dict[str, int] = {}
        self._fp_turn: dict[str, int] = {}
        self._order_abandoned = False
        self._busy_workers = 0
        self._outstanding = 0
        self._by_priority: dict[int, int] = {}
        self._seq = 0
        self._warm_pending: list[Future] = []
        self._closed = False
        self.stats = DispatchStats()
        self.stats.controller = self._overload

    # ------------------------------------------------------------------ #
    def _observe_locked(self) -> None:
        """Feed the brownout controller one snapshot (caller holds the lock)."""
        controller = self._overload
        if controller is None:
            return
        queue_fill = (self._outstanding / self.max_queue
                      if self.max_queue else 0.0)
        controller.observe(
            queue_fill=queue_fill,
            occupancy=self._busy_workers / max(1, self._max_workers),
            deadline_misses=self.stats.deadline_misses,
            breaker_trips=self.stats.breaker_trips,
            requests=self.stats.requests)

    def _shed_mark_locked(self, priority: int) -> None:
        self.stats.shed += 1
        self.stats.shed_by_priority[priority] = \
            self.stats.shed_by_priority.get(priority, 0) + 1

    def _shed_victim_locked(self, priority: int) -> _Request | None:
        """Pop the lowest-priority-oldest-deadline pending request strictly
        below ``priority``, releasing its admission slot; ``None`` when every
        pending request is at least as important as the arrival."""
        best_key, best = None, None
        for fp, (_, reqs) in self._pending.items():
            for req in reqs:
                if req.priority >= priority:
                    continue
                order = (req.priority,
                         req.deadline if req.deadline is not None
                         else float("inf"),
                         req.seq)
                if best_key is None or order < best_key:
                    best_key, best = order, (fp, req)
        if best is None:
            return None
        fp, victim = best
        group = self._pending[fp]
        group[1].remove(victim)
        if not group[1]:
            del self._pending[fp]
        self._outstanding -= 1
        self._by_priority[victim.priority] = \
            self._by_priority.get(victim.priority, 0) - 1
        self._shed_mark_locked(victim.priority)
        return victim

    def submit(self, matrix: CSRMatrix | LinearOperator, rhs: np.ndarray,
               deadline: float | None = None, priority: int = 0,
               degradable: bool = False) -> Future:
        """Enqueue one solve request; returns a future resolving to its
        :class:`~repro.solvers.SolveResult`.

        ``matrix`` is anything :class:`~repro.core.F3RSolver` accepts — an
        assembled :class:`~repro.sparse.CSRMatrix` or any
        :class:`~repro.operators.LinearOperator` (matrix-free stencils,
        composites).  The request is dispatched when its operator group
        fills to ``max_batch`` or on the next :meth:`flush`.

        ``deadline`` is seconds from now; a request whose deadline passes
        before its batch executes fails with :class:`DeadlineExceeded`.
        ``priority`` (higher = more important) ranks the request for load
        shedding: when ``max_queue`` is full a lower-priority pending
        request is shed (its future fails with :class:`LoadShed`) to admit
        this one; with nothing less important pending, *this* call raises
        :class:`LoadShed`.  ``degradable=True`` permits the brownout
        controller to start the solve one precision tier lower under
        pressure (the recovery ladder re-escalates on stagnation).

        Raises :class:`~repro.solvers.InvalidInput` for a mis-shaped or
        non-finite right-hand side, :class:`AdmissionRefused` (or its
        :class:`LoadShed` subtype) when admission fails, and
        :class:`DispatcherClosed` after :meth:`close`.
        """
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.shape != (matrix.nrows,):
            raise InvalidInput(
                f"rhs has shape {rhs.shape}; expected ({matrix.nrows},)",
                site="dispatcher.submit",
                detail={"shape": tuple(rhs.shape), "expected_rows": matrix.nrows})
        if not np.all(np.isfinite(rhs)):
            bad = int(np.flatnonzero(~np.isfinite(rhs))[0])
            raise InvalidInput(
                f"rhs contains non-finite entries (first at index {bad})",
                site="dispatcher.submit", detail={"first_bad_row": bad})
        request = _Request(
            rhs, None if deadline is None else time.monotonic() + float(deadline),
            priority=int(priority), degradable=bool(degradable))
        ready = None
        victim = None
        with self._lock:
            if self._closed:
                raise DispatcherClosed("dispatcher is closed")
            self._seq += 1
            request.seq = self._seq
            controller = self._overload
            self._observe_locked()
            if controller is not None and not controller.admits(request.priority):
                self._shed_mark_locked(request.priority)
                raise LoadShed(
                    f"shedding priority {request.priority} below floor "
                    f"{controller.config.shed_priority_floor} "
                    f"(overload state {controller.state!r})",
                    priority=request.priority)
            if self.priority_depths is not None:
                bound = self.priority_depths.get(request.priority)
                if (bound is not None
                        and self._by_priority.get(request.priority, 0) >= bound):
                    self._shed_mark_locked(request.priority)
                    raise LoadShed(
                        f"priority {request.priority} outstanding bound "
                        f"{bound} is full", priority=request.priority)
            if (self.max_queue is not None
                    and self._outstanding >= self.max_queue):
                if controller is not None:
                    victim = self._shed_victim_locked(request.priority)
                if victim is None:
                    self.stats.rejected += 1
                    if controller is None:
                        raise AdmissionRefused(
                            f"outstanding requests at max_queue={self.max_queue}")
                    self._shed_mark_locked(request.priority)
                    raise LoadShed(
                        f"outstanding requests at max_queue={self.max_queue} "
                        f"and nothing below priority {request.priority} to shed",
                        priority=request.priority)
            self.stats.requests += 1
            self._outstanding += 1
            self._by_priority[request.priority] = \
                self._by_priority.get(request.priority, 0) + 1
            key = matrix.fingerprint()
            if key not in self._pending:
                self._pending[key] = (matrix, [])
            self._pending[key][1].append(request)
            if len(self._pending[key][1]) >= self.max_batch:
                ready = self._pending.pop(key)
            # opportunistic warm-up: this fingerprint was evicted from the
            # solver LRU and is back — rebuild its setup on an idle worker
            # while the group waits to fill, instead of inside the batch
            # (suppressed while the brownout controller reports pressure)
            rewarm = None
            setup_key = (key, self.config)
            if (setup_key in self._evicted
                    and setup_key not in self._solvers
                    and setup_key not in self._building
                    and self._busy_workers < self._max_workers
                    and (controller is None
                         or not controller.suppress_background())):
                self._evicted.pop(setup_key, None)
                rewarm = matrix
        if victim is not None:
            victim.future.set_exception(LoadShed(
                f"shed at priority {victim.priority}: displaced by a "
                f"priority {request.priority} arrival under queue pressure",
                priority=victim.priority))
        if rewarm is not None:
            self._pool.submit(self._warm_one, rewarm, opportunistic=True)
        if ready is not None:
            self._dispatch(*ready)
        return request.future

    def flush(self) -> None:
        """Dispatch every pending group, regardless of its size."""
        with self._lock:
            groups = list(self._pending.values())
            self._pending.clear()
        for matrix, requests in groups:
            self._dispatch(matrix, requests)

    def drain(self) -> None:
        """Flush and block until every dispatched batch has completed.

        Retried batches re-enter the in-flight list before their failed
        predecessor resolves, so the loop also waits out retries.
        """
        self.flush()
        while True:
            with self._lock:
                self._inflight = [(f, reqs) for f, reqs in self._inflight
                                  if not f.done()]
                inflight = [f for f, _ in self._inflight]
            if not inflight:
                return
            for f in inflight:
                f.exception()        # wait; per-request errors live on request futures

    def solve_many(self, pairs) -> list[SolveResult]:
        """Submit ``(operator, rhs)`` pairs, run everything, return results in order."""
        futures = [self.submit(matrix, rhs) for matrix, rhs in pairs]
        self.drain()
        return [f.result() for f in futures]

    # ------------------------------------------------------------------ #
    def prewarm(self, operators, wait: bool = True,
                timeout: float | None = None) -> list[Future]:
        """Build the solver setup for each operator before traffic arrives.

        The expensive per-operator work — factorization, level schedules,
        plan compilation state — runs on the worker pool (populating the
        setup LRU, the plan cache and, with ``REPRO_ARTIFACTS``, the
        persistent artifact store), so the first real request finds a warm
        cache.  With ``wait=True`` (default) the call blocks until every
        build finishes and re-raises the first failure; with ``wait=False``
        it returns the build futures immediately.

        Completions are counted in ``stats.summary()["cold_start"]``.

        The returned futures are tracked: if :meth:`close` runs before a
        warm-up did (``close(wait=False)`` cancels queued pool work), the
        future fails with :class:`DispatcherClosed` instead of being left
        cancelled or forever pending.
        """
        futures = []
        for operator in operators:
            outer: Future = Future()
            with self._lock:
                if self._closed:
                    raise DispatcherClosed("dispatcher is closed")
                self._warm_pending = [f for f in self._warm_pending
                                      if not f.done()]
                self._warm_pending.append(outer)
            try:
                self._pool.submit(self._warm_task, operator, outer)
            except RuntimeError:
                # the executor shut down between the check and the submit
                _resolve_once(outer, exc=DispatcherClosed(
                    "dispatcher closed before warm-up"))
            futures.append(outer)
        if wait:
            for future in futures:
                future.result(timeout)
        return futures

    def _warm_task(self, operator, outer: Future) -> None:
        """Pool-side prewarm wrapper: relay the outcome onto the tracked
        future exactly once (close() may have failed it typed already)."""
        try:
            self._warm_one(operator)
        except BaseException as exc:   # noqa: BLE001 - relayed to the future
            _resolve_once(outer, exc=exc)
        else:
            _resolve_once(outer)

    def _warm_one(self, matrix, opportunistic: bool = False) -> None:
        """Worker-side warm-up: build (or revalidate) one operator's setup."""
        from ..par import pool_consumer

        start = time.monotonic()
        try:
            with self._lock:
                self._busy_workers += 1
            with pool_consumer():
                self._solver_for(matrix)
        except BaseException:   # noqa: BLE001 - breaker state already updated
            if not opportunistic:
                raise           # explicit prewarm(): surface via the future
        else:
            with self._lock:
                if opportunistic:
                    self.stats.opportunistic_warmups += 1
                else:
                    self.stats.prewarms += 1
                self.stats.prewarm_ms += (time.monotonic() - start) * 1e3
        finally:
            with self._lock:
                self._busy_workers -= 1

    # ------------------------------------------------------------------ #
    def _finish(self, request: _Request, result=None, exc=None) -> None:
        """Resolve a request future exactly once and release its admission slot."""
        if request.future.done():
            return
        with self._lock:
            self._outstanding -= 1
            self._by_priority[request.priority] = \
                self._by_priority.get(request.priority, 0) - 1
            # completions are observations too: pressure recovers as the
            # queue drains even if no new submissions arrive
            self._observe_locked()
        if exc is not None:
            request.future.set_exception(exc)
        else:
            request.future.set_result(result)

    def _breaker_check(self, key: tuple) -> None:
        """Raise :class:`CircuitOpen` when the fingerprint's breaker is open."""
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None or breaker.opened_at is None:
                return
            if time.monotonic() - breaker.opened_at >= self.breaker_cooldown:
                # half-open: let one probe attempt through; a failure re-opens
                breaker.opened_at = None
                breaker.failures = self.breaker_threshold - 1
                return
        raise CircuitOpen(
            f"setup circuit open for operator {key[0]!r} "
            f"({self.breaker_threshold} consecutive failures)")

    def _breaker_record(self, key: tuple, ok: bool) -> None:
        with self._lock:
            if ok:
                self._breakers.pop(key, None)
                return
            breaker = self._breakers.setdefault(key, _Breaker())
            breaker.failures += 1
            if (breaker.failures >= self.breaker_threshold
                    and breaker.opened_at is None):
                breaker.opened_at = time.monotonic()
                self.stats.breaker_trips += 1

    def _solver_for(self, matrix: CSRMatrix | LinearOperator) -> F3RSolver:
        key = (matrix.fingerprint(), self.config)
        self._breaker_check(key)
        with self._lock:
            solver = self._solvers.get(key)
            if solver is not None:
                self._solvers.move_to_end(key)
                self.stats.cache_hits += 1
                return solver
            build = self._building.get(key)
            if build is None:
                build = self._building[key] = Future()
                is_builder = True
                self.stats.cache_misses += 1
            else:
                # another worker is already building this setup: wait for it
                # instead of duplicating the factorization
                is_builder = False
                self.stats.cache_hits += 1
        if not is_builder:
            return build.result()

        # build outside the lock (the factorization is the expensive part)
        preconditioner, nblocks, alpha = self._precond_spec
        try:
            solver = F3RSolver(matrix, preconditioner=preconditioner,
                               config=self.config, nblocks=nblocks, alpha=alpha)
        except BaseException as exc:   # noqa: BLE001 - relayed to waiters
            with self._lock:
                self._building.pop(key, None)
            self._breaker_record(key, ok=False)
            build.set_exception(exc)
            raise
        with self._lock:
            self._solvers[key] = solver
            self._solvers.move_to_end(key)
            self._evicted.pop(key, None)
            while len(self._solvers) > self.cache_size:
                evicted_key, _ = self._solvers.popitem(last=False)
                self._evicted[evicted_key] = None
                while len(self._evicted) > 4 * self.cache_size:
                    self._evicted.popitem(last=False)
            self._building.pop(key, None)
        self._breaker_record(key, ok=True)
        build.set_result(solver)
        return solver

    def _dispatch(self, matrix, requests: list[_Request],
                  retry: bool = False) -> None:
        with self._lock:
            if self._closed and retry:
                # no new pool work after close(): fail the survivors instead
                # of leaking them into a shut-down executor
                pending_fail = list(requests)
            else:
                pending_fail = None
                fp = matrix.fingerprint()
                with self._order_cond:
                    ticket = self._fp_next.get(fp, 0)
                    self._fp_next[fp] = ticket + 1
                future = self._pool.submit(self._execute, matrix, requests,
                                           fp, ticket)
                self._inflight.append((future, requests))
                self.stats.batches += 1
                self.stats.batched_requests += len(requests)
                self.stats.largest_batch = max(self.stats.largest_batch,
                                               len(requests))
        if pending_fail is not None:
            for req in pending_fail:
                self._finish(req, exc=DispatcherClosed(
                    "dispatcher closed before dispatch"))

    def _split_expired(self, requests: list[_Request]) -> list[_Request]:
        """Fail past-deadline requests; return the still-live ones."""
        now = time.monotonic()
        live = []
        for req in requests:
            if req.deadline is not None and now > req.deadline:
                with self._lock:
                    self.stats.deadline_misses += 1
                self._finish(req, exc=DeadlineExceeded(
                    f"deadline passed {now - req.deadline:.3f}s before execution"))
            else:
                live.append(req)
        return live

    def _order_wait(self, fp: str, ticket: int) -> None:
        """Block until ``ticket`` is the next batch for ``fp`` (or ordering
        has been abandoned by a closing dispatcher)."""
        with self._order_cond:
            while (not self._order_abandoned and not self._closed
                   and self._fp_turn.get(fp, 0) < ticket):
                self._order_cond.wait(timeout=1.0)

    def _order_advance(self, fp: str, ticket: int) -> None:
        with self._order_cond:
            self._fp_turn[fp] = max(self._fp_turn.get(fp, 0), ticket + 1)
            if self._fp_turn[fp] >= self._fp_next.get(fp, 0):
                # every issued ticket consumed: drop the bookkeeping
                self._fp_turn.pop(fp, None)
                self._fp_next.pop(fp, None)
            self._order_cond.notify_all()

    def _execute(self, matrix, requests: list[_Request],
                 fp: str | None = None, ticket: int | None = None) -> None:
        if ticket is not None:
            self._order_wait(fp, ticket)
        try:
            self._execute_batch(matrix, requests)
        finally:
            if ticket is not None:
                self._order_advance(fp, ticket)

    def _execute_batch(self, matrix, requests: list[_Request]) -> None:
        from ..par import pool_consumer

        requests = self._split_expired(requests)
        if not requests:
            return
        try:
            with self._lock:
                self._busy_workers += 1
            maybe_delay("dispatcher.latency")
            maybe_fail_worker("dispatcher.worker")
            # one budget across both parallelism layers: each concurrently
            # executing batch registers as a consumer, so its intra-kernel
            # threads get budget // active-batches — the oversubscription
            # guard between inter-request workers and partitioned kernels
            with pool_consumer():
                solver = self._solver_for(matrix)
                # brownout degradation: degradable requests solve one
                # precision tier lower on a cached sibling (recovery ladder
                # active there, so stagnation re-escalates)
                degrade_to = None
                controller = self._overload
                if controller is not None and controller.should_degrade():
                    degrade_to = degraded_variant(self.config.variant)
                degraded = ([r for r in requests if r.degradable]
                            if degrade_to is not None else [])
                parts = []
                if len(degraded) < len(requests):
                    ids = set(map(id, degraded))
                    parts.append(([r for r in requests if id(r) not in ids],
                                  solver))
                if degraded:
                    parts.append((degraded, solver.degraded_sibling(degrade_to)))
                    with self._lock:
                        self.stats.degraded += len(degraded)
                batches = []
                for part, part_solver in parts:
                    rhs_block = np.stack([req.rhs for req in part], axis=1)
                    if self.backend is not None:
                        with use_backend(self.backend):
                            batches.append((part, part_solver.solve_batch(rhs_block)))
                    else:
                        batches.append((part, part_solver.solve_batch(rhs_block)))
        except BaseException as exc:   # noqa: BLE001 - retried or propagated
            self._retry_or_fail(matrix, requests, exc)
            return
        finally:
            with self._lock:
                self._busy_workers -= 1
        for part, batch in batches:
            for req, result in zip(part, batch.results):
                if result.recovery is not None:
                    with self._lock:
                        self.stats.escalations += result.recovery.escalations
                self._finish(req, result=result)

    def _retry_or_fail(self, matrix, requests: list[_Request],
                       exc: BaseException) -> None:
        """Re-queue a died batch's surviving requests; fail the exhausted ones."""
        retryable, exhausted = [], []
        for req in requests:
            if req.attempts < self.max_retries and not isinstance(
                    exc, (InvalidInput, DispatcherClosed, CircuitOpen)):
                req.attempts += 1
                retryable.append(req)
            else:
                exhausted.append(req)
        for req in exhausted:
            self._finish(req, exc=exc)
        if not retryable:
            return
        with self._lock:
            self.stats.retries += len(retryable)
        # linear backoff on the worker that owned the died batch: the retry
        # dispatch below lands in _inflight before this batch resolves, so
        # drain() cannot slip through the gap
        time.sleep(self.retry_backoff * max(r.attempts for r in retryable))
        self._dispatch(matrix, retryable, retry=True)

    # ------------------------------------------------------------------ #
    def close(self, wait: bool = True) -> None:
        """Stop accepting requests; optionally wait for in-flight batches.

        Pending (never-dispatched) requests are failed with
        :class:`DispatcherClosed` so no caller blocks forever on an
        abandoned future.  With ``wait=False``, batches queued on the pool
        but not yet running are cancelled and their requests failed the
        same way; the running batches finish in the background.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            abandoned = [req for _, reqs in self._pending.values() for req in reqs]
            self._pending.clear()
        for req in abandoned:
            self._finish(req, exc=DispatcherClosed(
                "dispatcher closed before dispatch"))
        if not wait:
            # cancelled batches never advance their ordering ticket: release
            # any worker waiting for a turn that will never come
            with self._order_cond:
                self._order_abandoned = True
                self._order_cond.notify_all()
        self._pool.shutdown(wait=wait, cancel_futures=not wait)
        if not wait:
            with self._lock:
                inflight = list(self._inflight)
            for future, reqs in inflight:
                if future.cancelled():
                    for req in reqs:
                        self._finish(req, exc=DispatcherClosed(
                            "dispatcher closed before dispatch"))
        # warm-ups whose pool task was cancelled (or never ran) must fail
        # typed, not leak as forever-pending / CancelledError futures
        with self._lock:
            warm_pending = list(self._warm_pending)
            self._warm_pending.clear()
        for outer in warm_pending:
            _resolve_once(outer, exc=DispatcherClosed(
                "dispatcher closed before warm-up completed"))

    def __enter__(self) -> "BatchDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        # finish the work on a clean exit; tear down fast on an exception
        if exc_info[0] is None:
            self.drain()
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BatchDispatcher(max_batch={self.max_batch}, "
                f"cached_setups={len(self._solvers)}, stats={self.stats.summary()})")
